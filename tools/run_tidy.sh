#!/usr/bin/env bash
# Run the project's clang-tidy gate over all first-party translation units.
#
# Usage:
#   tools/run_tidy.sh [BUILD_DIR] [-- extra clang-tidy args...]
#
# BUILD_DIR must contain a compile_commands.json (any preset exports one;
# the `tidy` preset exists for exactly this: `cmake --preset tidy`).
# Defaults to build-tidy, falling back to build.
#
# Exits non-zero on any clang-tidy diagnostic (the .clang-tidy config sets
# WarningsAsErrors: '*'), so this script is usable directly as a CI gate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

build_dir=""
if [[ $# -gt 0 && $1 != "--" ]]; then
  build_dir="$1"
  shift
fi
if [[ $# -gt 0 && $1 == "--" ]]; then
  shift
fi
if [[ -z ${build_dir} ]]; then
  for candidate in "${repo_root}/build-tidy" "${repo_root}/build"; do
    if [[ -f ${candidate}/compile_commands.json ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi
if [[ -z ${build_dir} || ! -f ${build_dir}/compile_commands.json ]]; then
  echo "run_tidy.sh: no compile_commands.json found." >&2
  echo "  Configure first, e.g.: cmake --preset tidy" >&2
  exit 2
fi

tidy_bin="${CLANG_TIDY:-}"
if [[ -z ${tidy_bin} ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z ${tidy_bin} ]]; then
  echo "run_tidy.sh: clang-tidy not found on PATH (set CLANG_TIDY to" >&2
  echo "  override). Install clang-tidy to run this gate." >&2
  exit 127
fi

# First-party TUs only: never lint tests' generated code, GTest headers, or
# the lint fixtures (which are deliberately broken).
mapfile -t sources < <(
  find "${repo_root}/src" "${repo_root}/bench" "${repo_root}/examples" \
       "${repo_root}/tests" -name '*.cpp' \
    -not -path '*/lint_fixtures/*' | sort
)

echo "run_tidy.sh: ${tidy_bin} over ${#sources[@]} files (db: ${build_dir})"

jobs="$(nproc 2> /dev/null || echo 4)"
printf '%s\n' "${sources[@]}" \
  | xargs -P "${jobs}" -n 8 "${tidy_bin}" -p "${build_dir}" --quiet "$@"
echo "run_tidy.sh: clean"
