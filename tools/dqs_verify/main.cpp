// dqs_verify — static protocol analyzer CLI.
//
// Certifies the protocol invariants of the paper's samplers WITHOUT
// simulating a single amplitude (docs/ANALYSIS.md):
//
//   dqs_verify --grid                 verify the standard (N, n, ν, M)
//                                     sweep, both query models (default
//                                     action when no other is given)
//   dqs_verify --mutants              require every mutation fixture to be
//                                     flagged by its expected pass
//   dqs_verify --universe N --machines n --nu v --total M
//                                     verify one parameter point
//   dqs_verify --transcript FILE ...  parse a recorded transcript (wire
//                                     format of Transcript::to_string) and
//                                     verify it against the public
//                                     parameters given with the flags above
//
// Common flags: --mode seq|par|both (default both; transcripts require a
// single mode), --trials K (obliviousness perturbation trials, default 3),
// --seed S, --quiet (diagnostics only, no per-point progress).
//
// Exit code: 0 clean, 1 diagnostics found (or a mutant not flagged),
// 2 usage error.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/mutations.hpp"
#include "analysis/param_grid.hpp"
#include "analysis/verifier.hpp"
#include "common/cli.hpp"
#include "common/require.hpp"

namespace {

using qs::PublicParams;
using qs::QueryMode;

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "sequential" : "parallel";
}

std::string point_name(const PublicParams& p, QueryMode mode) {
  std::ostringstream os;
  os << "(N=" << p.universe << ", n=" << p.machines << ", nu=" << p.nu
     << ", M=" << p.total << ", " << mode_name(mode) << ")";
  return os.str();
}

struct Options {
  qs::analysis::VerifyOptions verify;
  std::vector<QueryMode> modes;
  bool quiet = false;
};

/// Verify one parameter point; prints diagnostics, returns their count.
std::size_t verify_point(const PublicParams& params, QueryMode mode,
                         const Options& options) {
  const auto report =
      qs::analysis::verify_compiled(params, mode, options.verify);
  if (!report.clean()) {
    std::cout << "FAIL " << point_name(params, mode) << "\n"
              << report.render();
  } else if (!options.quiet) {
    std::cout << "ok   " << point_name(params, mode) << "\n";
  }
  return report.diagnostics.size();
}

int run_grid(const Options& options) {
  std::size_t findings = 0;
  std::size_t points = 0;
  for (const auto& params : qs::analysis::standard_grid()) {
    for (const auto mode : options.modes) {
      findings += verify_point(params, mode, options);
      ++points;
    }
  }
  std::cout << "dqs_verify: " << points << " schedule(s), " << findings
            << " diagnostic(s)\n";
  return findings == 0 ? 0 : 1;
}

int run_mutants(const PublicParams& params) {
  std::size_t missed = 0;
  for (const auto& spec : qs::analysis::mutation_catalog()) {
    const auto diagnostics = qs::analysis::run_mutation(spec, params);
    bool flagged = false;
    for (const auto& d : diagnostics) flagged |= d.pass == spec.expected_pass;
    if (flagged) {
      std::cout << "flagged " << spec.name << " (by " << spec.expected_pass
                << ", " << diagnostics.size() << " diagnostic(s))\n";
    } else {
      ++missed;
      std::cout << "MISSED  " << spec.name << " — expected a "
                << spec.expected_pass << " finding; got:\n";
      for (const auto& d : diagnostics)
        std::cout << "  " << qs::analysis::to_string(d) << "\n";
    }
  }
  std::cout << "dqs_verify: "
            << qs::analysis::mutation_catalog().size() - missed << "/"
            << qs::analysis::mutation_catalog().size()
            << " mutation fixture(s) flagged\n";
  return missed == 0 ? 0 : 1;
}

int run_transcript(const std::string& path, const PublicParams& params,
                   const Options& options) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dqs_verify: cannot open transcript file: " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const qs::Transcript transcript = qs::parse_transcript(text.str());
  QS_REQUIRE(options.modes.size() == 1,
             "--transcript needs --mode seq or --mode par");
  const auto mode = options.modes.front();
  const auto report =
      qs::analysis::verify_transcript(transcript, params, mode);
  std::cout << "transcript " << path << " (" << transcript.size()
            << " events) against " << point_name(params, mode) << ": "
            << (report.clean() ? "clean" : "FAIL") << "\n"
            << report.render();
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    qs::CliArgs args(argc, argv);

    Options options;
    options.verify.obliviousness_trials =
        args.get("trials", std::uint64_t{3});
    options.verify.seed = args.get("seed", std::uint64_t{0x5eed});
    options.quiet = args.get("quiet", false);

    const std::string mode = args.get("mode", std::string("both"));
    if (mode == "seq" || mode == "sequential") {
      options.modes = {QueryMode::kSequential};
    } else if (mode == "par" || mode == "parallel") {
      options.modes = {QueryMode::kParallel};
    } else if (mode == "both") {
      options.modes = {QueryMode::kSequential, QueryMode::kParallel};
    } else {
      std::cerr << "dqs_verify: unknown --mode '" << mode << "'\n";
      return 2;
    }

    PublicParams params;
    params.universe = args.get("universe", std::uint64_t{32});
    params.machines = args.get("machines", std::uint64_t{4});
    params.nu = args.get("nu", std::uint64_t{3});
    params.total = args.get("total", std::uint64_t{24});

    const bool grid = args.get("grid", false);
    const bool mutants = args.get("mutants", false);
    const std::string transcript_path =
        args.get("transcript", std::string());
    const bool single_point = args.has("universe") || args.has("machines") ||
                              args.has("nu") || args.has("total");

    const auto unused = args.unused();
    if (!unused.empty()) {
      std::cerr << "dqs_verify: unknown flag --" << unused.front() << "\n";
      return 2;
    }

    int status = 0;
    bool acted = false;
    if (!transcript_path.empty()) {
      status = std::max(status, run_transcript(transcript_path, params,
                                               options));
      acted = true;
    }
    if (mutants) {
      status = std::max(status, run_mutants(params));
      acted = true;
    }
    if (single_point && transcript_path.empty()) {
      std::size_t findings = 0;
      for (const auto m : options.modes)
        findings += verify_point(params, m, options);
      status = std::max(status, findings == 0 ? 0 : 1);
      acted = true;
    }
    if (grid || !acted) status = std::max(status, run_grid(options));
    return status;
  } catch (const std::exception& e) {
    std::cerr << "dqs_verify: " << e.what() << "\n";
    return 2;
  }
}
