// dqs_verify — static protocol analyzer CLI.
//
// Certifies the protocol invariants of the paper's samplers WITHOUT
// simulating a single amplitude (docs/ANALYSIS.md):
//
//   dqs_verify --grid                 verify the standard (N, n, ν, M)
//                                     sweep, both query models (default
//                                     action when no other is given)
//   dqs_verify --mutants              require every mutation fixture to be
//                                     flagged by its expected pass
//   dqs_verify --universe N --machines n --nu v --total M
//                                     verify one parameter point
//   dqs_verify --transcript FILE ...  parse a recorded transcript (wire
//                                     format of Transcript::to_string) and
//                                     verify it against the public
//                                     parameters given with the flags above
//   dqs_verify --abstint              run the abstract-interpretation
//                                     domains over the grid (or the single
//                                     point given with the flags above) and
//                                     require every dqs-cert-v1 certificate
//                                     to be clean; --cert-dir DIR writes
//                                     one certificate JSON per point
//   dqs_verify --tv                   symbolic translation validation plus
//                                     the static obliviousness (taint)
//                                     proof over the grid (or the single
//                                     point): every lowering and fusion of
//                                     each point's compiled pipeline is
//                                     proved against its reference operator
//                                     semantics and a dqs-tv-v1 certificate
//                                     is required to be clean; --cert-dir
//                                     DIR writes one per point, --trials K
//                                     controls the dynamic cross-check
//                                     (0 skips it)
//   dqs_verify --mutants --kill-matrix PATH
//                                     additionally write the per-fixture
//                                     kill matrix (dqs-kill-matrix-v1 JSON)
//
// Common flags: --mode seq|par|both (default both; transcripts require a
// single mode), --trials K (obliviousness perturbation trials, default 3),
// --seed S, --quiet (diagnostics only, no per-point progress).
//
// Exit code: 0 clean, 1 diagnostics found (or a mutant not flagged),
// 2 usage error.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/abstint/certificate.hpp"
#include "analysis/mutations.hpp"
#include "analysis/param_grid.hpp"
#include "analysis/tv/certificate.hpp"
#include "analysis/verifier.hpp"
#include "common/cli.hpp"
#include "common/require.hpp"
#include "telemetry/export.hpp"

namespace {

using qs::PublicParams;
using qs::QueryMode;

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "sequential" : "parallel";
}

std::string point_name(const PublicParams& p, QueryMode mode) {
  std::ostringstream os;
  os << "(N=" << p.universe << ", n=" << p.machines << ", nu=" << p.nu
     << ", M=" << p.total << ", " << mode_name(mode) << ")";
  return os.str();
}

struct Options {
  qs::analysis::VerifyOptions verify;
  std::vector<QueryMode> modes;
  bool quiet = false;
};

/// Verify one parameter point; prints diagnostics, returns their count.
std::size_t verify_point(const PublicParams& params, QueryMode mode,
                         const Options& options) {
  const auto report =
      qs::analysis::verify_compiled(params, mode, options.verify);
  if (!report.clean()) {
    std::cout << "FAIL " << point_name(params, mode) << "\n"
              << report.render();
  } else if (!options.quiet) {
    std::cout << "ok   " << point_name(params, mode) << "\n";
  }
  return report.diagnostics.size();
}

int run_grid(const Options& options) {
  std::size_t findings = 0;
  std::size_t points = 0;
  for (const auto& params : qs::analysis::standard_grid()) {
    for (const auto mode : options.modes) {
      findings += verify_point(params, mode, options);
      ++points;
    }
  }
  std::cout << "dqs_verify: " << points << " schedule(s), " << findings
            << " diagnostic(s)\n";
  return findings == 0 ? 0 : 1;
}

/// File-safe point id, e.g. cert_N32_n4_nu3_M24_sequential.
std::string point_slug(const PublicParams& p, QueryMode mode) {
  std::ostringstream os;
  os << "N" << p.universe << "_n" << p.machines << "_nu" << p.nu << "_M"
     << p.total << "_" << mode_name(mode);
  return os.str();
}

/// Abstractly interpret one point and (optionally) persist the
/// certificate; prints diagnostics, returns their count.
std::size_t abstint_point(const PublicParams& params, QueryMode mode,
                          const Options& options,
                          const std::string& cert_dir) {
  const auto cert = qs::analysis::certify_compiled(params, mode);
  if (!cert.clean()) {
    std::cout << "FAIL " << point_name(params, mode) << "\n";
    for (const auto& d : cert.diagnostics) std::cout << d << "\n";
  } else if (!options.quiet) {
    std::cout << "cert " << point_name(params, mode) << ": d=" << cert.cost.d
              << " queries=" << cert.cost.sequential_total << "+"
              << cert.cost.parallel_rounds << "r"
              << " p=" << cert.amplitude.success_probability
              << " support<=" << cert.support.bound << "\n";
  }
  if (!cert_dir.empty()) {
    const auto path = std::filesystem::path(cert_dir) /
                      ("cert_" + point_slug(params, mode) + ".json");
    std::ofstream out(path);
    QS_REQUIRE(static_cast<bool>(out),
               "cannot write certificate file under --cert-dir");
    out << qs::analysis::to_json(cert) << "\n";
  }
  return cert.diagnostics.size();
}

int run_abstint(const Options& options, const std::string& cert_dir,
                bool single_point, const PublicParams& single) {
  if (!cert_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cert_dir, ec);
  }
  std::size_t findings = 0;
  std::size_t points = 0;
  if (single_point) {
    for (const auto mode : options.modes) {
      findings += abstint_point(single, mode, options, cert_dir);
      ++points;
    }
  } else {
    for (const auto& params : qs::analysis::standard_grid()) {
      for (const auto mode : options.modes) {
        findings += abstint_point(params, mode, options, cert_dir);
        ++points;
      }
    }
  }
  std::cout << "dqs_verify: abstint certified " << points
            << " schedule(s), " << findings << " diagnostic(s)\n";
  return findings == 0 ? 0 : 1;
}

/// Translation-validate one point and (optionally) persist the dqs-tv-v1
/// certificate; prints diagnostics, returns their count.
std::size_t tv_point(const PublicParams& params, QueryMode mode,
                     const Options& options, const std::string& cert_dir) {
  qs::analysis::tv::TvOptions tv_options;
  tv_options.obliviousness_trials = options.verify.obliviousness_trials;
  tv_options.seed = options.verify.seed;
  const auto cert = qs::analysis::tv::certify_tv(params, mode, tv_options);
  if (!cert.clean()) {
    std::cout << "FAIL " << point_name(params, mode) << "\n";
    for (const auto& d : cert.base.diagnostics) std::cout << d << "\n";
  } else if (!options.quiet) {
    std::cout << "tv   " << point_name(params, mode) << ": proofs="
              << cert.tv.proofs.size() << " (lowerings=" << cert.tv.lowerings
              << " fusions=" << cert.tv.fusions
              << ") max_error=" << cert.tv.max_error << " oblivious="
              << (cert.taint.oblivious_statically_proven ? "static"
                                                         : "UNPROVEN")
              << " cross-check=" << cert.dynamic_cross_check << "\n";
  }
  if (!cert_dir.empty()) {
    const auto path = std::filesystem::path(cert_dir) /
                      ("tv_cert_" + point_slug(params, mode) + ".json");
    std::ofstream out(path);
    QS_REQUIRE(static_cast<bool>(out),
               "cannot write certificate file under --cert-dir");
    out << qs::analysis::tv::to_json(cert) << "\n";
  }
  std::size_t findings = cert.base.diagnostics.size();
  if (!cert.taint.oblivious_statically_proven && findings == 0) {
    // The static proof failing without any diagnostic would silently
    // weaken the obliviousness guarantee; surface it.
    std::cout << "FAIL " << point_name(params, mode)
              << ": static obliviousness unproven\n";
    findings = 1;
  }
  return findings;
}

int run_tv(const Options& options, const std::string& cert_dir,
           bool single_point, const PublicParams& single) {
  if (!cert_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cert_dir, ec);
  }
  std::size_t findings = 0;
  std::size_t points = 0;
  if (single_point) {
    for (const auto mode : options.modes) {
      findings += tv_point(single, mode, options, cert_dir);
      ++points;
    }
  } else {
    for (const auto& params : qs::analysis::standard_grid()) {
      for (const auto mode : options.modes) {
        findings += tv_point(params, mode, options, cert_dir);
        ++points;
      }
    }
  }
  std::cout << "dqs_verify: tv certified " << points << " schedule(s), "
            << findings << " diagnostic(s)\n";
  return findings == 0 ? 0 : 1;
}

/// One row of the kill matrix: which passes flagged a mutation fixture.
struct KillRow {
  std::string name;
  std::string expected;
  bool flagged = false;
  std::set<std::string> killed_by;
  std::size_t diagnostics = 0;
};

void write_kill_matrix(const std::vector<KillRow>& rows,
                       const std::string& path) {
  std::ofstream out(path);
  QS_REQUIRE(static_cast<bool>(out), "cannot write --kill-matrix file");
  out << "{\n  \"schema\": \"dqs-kill-matrix-v1\",\n  \"fixtures\": [";
  bool first_row = true;
  for (const auto& row : rows) {
    out << (first_row ? "\n" : ",\n");
    first_row = false;
    out << "    {\"name\": \"" << qs::telemetry::json_escape(row.name)
        << "\", \"expected\": \""
        << qs::telemetry::json_escape(row.expected)
        << "\", \"flagged\": " << (row.flagged ? "true" : "false")
        << ", \"diagnostics\": " << row.diagnostics << ", \"killed_by\": [";
    bool first_pass = true;
    for (const auto& pass : row.killed_by) {
      if (!first_pass) out << ", ";
      first_pass = false;
      out << "\"" << qs::telemetry::json_escape(pass) << "\"";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

int run_mutants(const PublicParams& params,
                const std::string& kill_matrix_path) {
  std::size_t missed = 0;
  std::vector<KillRow> rows;
  for (const auto& spec : qs::analysis::mutation_catalog()) {
    const auto diagnostics = qs::analysis::run_mutation(spec, params);
    KillRow row{spec.name, spec.expected_pass, false, {},
                diagnostics.size()};
    for (const auto& d : diagnostics) row.killed_by.insert(d.pass);
    row.flagged = row.killed_by.count(spec.expected_pass) > 0;
    if (row.flagged) {
      std::cout << "flagged " << spec.name << " (by " << spec.expected_pass
                << ", " << diagnostics.size() << " diagnostic(s))\n";
    } else {
      ++missed;
      std::cout << "MISSED  " << spec.name << " — expected a "
                << spec.expected_pass << " finding; got:\n";
      for (const auto& d : diagnostics)
        std::cout << "  " << qs::analysis::to_string(d) << "\n";
    }
    rows.push_back(std::move(row));
  }
  if (!kill_matrix_path.empty()) write_kill_matrix(rows, kill_matrix_path);
  std::cout << "dqs_verify: "
            << qs::analysis::mutation_catalog().size() - missed << "/"
            << qs::analysis::mutation_catalog().size()
            << " mutation fixture(s) flagged\n";
  return missed == 0 ? 0 : 1;
}

int run_transcript(const std::string& path, const PublicParams& params,
                   const Options& options) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dqs_verify: cannot open transcript file: " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const qs::Transcript transcript = qs::parse_transcript(text.str());
  QS_REQUIRE(options.modes.size() == 1,
             "--transcript needs --mode seq or --mode par");
  const auto mode = options.modes.front();
  const auto report =
      qs::analysis::verify_transcript(transcript, params, mode);
  std::cout << "transcript " << path << " (" << transcript.size()
            << " events) against " << point_name(params, mode) << ": "
            << (report.clean() ? "clean" : "FAIL") << "\n"
            << report.render();
  return report.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    qs::CliArgs args(argc, argv);

    Options options;
    options.verify.obliviousness_trials =
        args.get("trials", std::uint64_t{3});
    options.verify.seed = args.get("seed", std::uint64_t{0x5eed});
    options.quiet = args.get("quiet", false);

    const std::string mode = args.get("mode", std::string("both"));
    if (mode == "seq" || mode == "sequential") {
      options.modes = {QueryMode::kSequential};
    } else if (mode == "par" || mode == "parallel") {
      options.modes = {QueryMode::kParallel};
    } else if (mode == "both") {
      options.modes = {QueryMode::kSequential, QueryMode::kParallel};
    } else {
      std::cerr << "dqs_verify: unknown --mode '" << mode << "'\n";
      return 2;
    }

    PublicParams params;
    params.universe = args.get("universe", std::uint64_t{32});
    params.machines = args.get("machines", std::uint64_t{4});
    params.nu = args.get("nu", std::uint64_t{3});
    params.total = args.get("total", std::uint64_t{24});

    const bool grid = args.get("grid", false);
    const bool mutants = args.get("mutants", false);
    const bool abstint = args.get("abstint", false);
    const bool tv = args.get("tv", false);
    const std::string cert_dir = args.get("cert-dir", std::string());
    const std::string kill_matrix_path =
        args.get("kill-matrix", std::string());
    const std::string transcript_path =
        args.get("transcript", std::string());
    const bool single_point = args.has("universe") || args.has("machines") ||
                              args.has("nu") || args.has("total");

    const auto unused = args.unused();
    if (!unused.empty()) {
      std::cerr << "dqs_verify: unknown flag --" << unused.front() << "\n";
      return 2;
    }

    int status = 0;
    bool acted = false;
    if (!transcript_path.empty()) {
      status = std::max(status, run_transcript(transcript_path, params,
                                               options));
      acted = true;
    }
    if (mutants) {
      status = std::max(status, run_mutants(params, kill_matrix_path));
      acted = true;
    }
    if (abstint) {
      // --abstint --grid sweeps the grid even when a single point is also
      // given; a bare --abstint with point flags certifies just that point.
      status = std::max(status,
                        run_abstint(options, cert_dir,
                                    single_point && !grid, params));
      acted = true;
    }
    if (tv) {
      // Same sweep semantics as --abstint.
      status = std::max(status,
                        run_tv(options, cert_dir, single_point && !grid,
                               params));
      acted = true;
    }
    if (single_point && transcript_path.empty() && !abstint && !tv) {
      std::size_t findings = 0;
      for (const auto m : options.modes)
        findings += verify_point(params, m, options);
      status = std::max(status, findings == 0 ? 0 : 1);
      acted = true;
    }
    if (grid || !acted) {
      if (!abstint && !tv) status = std::max(status, run_grid(options));
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "dqs_verify: " << e.what() << "\n";
    return 2;
  }
}
