// dqs_trace — telemetry exerciser, exporter, and overhead gate.
//
// Two jobs (docs/TELEMETRY.md):
//
//   dqs_trace [--universe N --machines n --total M --nu-extra k --seed S]
//             [--mode seq|par|both] [--trace FILE] [--metrics FILE]
//             [--quiet]
//       Run the paper's sampler(s) with telemetry enabled, optionally write
//       the Chrome trace-event file and the metrics JSONL snapshot, and
//       SELF-CHECK the three independent query accountings against each
//       other: the telemetry counters (sampling.oracle.*), the QueryStats
//       ledger returned by the sampler, and stats_of(transcript) replayed
//       from the recorded wire transcript. Any mismatch is a bug in exactly
//       one of the three paths and exits 1.
//
//   dqs_trace --overhead [--baseline FILE] [--write-baseline FILE]
//             [--fault-baseline FILE] [--write-fault-baseline FILE]
//       Measure the DISABLED-telemetry cost of one instrumentation point
//       (Span + tag + counter, all short-circuited) relative to the
//       cheapest instrumented qsim kernel (apply_global_phase over a
//       4096-dim register) — a machine-relative percentage, stable across
//       hosts unlike wall-clock baselines. With --baseline, exit 1 when the
//       measured percentage exceeds the recorded one by more than 5
//       percentage points (the CI perf-smoke gate). The same pass measures
//       the DISABLED fault-injection seam (sampling/fault_seam.hpp): one
//       relaxed interposer load plus a never-taken branch per oracle event.
//       With --fault-baseline, exit 1 when that probe exceeds the recorded
//       percentage by more than 0.5 percentage points — the fault seam must
//       stay an order of magnitude cheaper than the telemetry budget
//       (docs/ROBUSTNESS.md).
//
// Exit code: 0 clean, 1 mismatch or overhead regression, 2 usage error.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/transcript.hpp"
#include "distdb/workload.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/fault_seam.hpp"
#include "sampling/samplers.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace qs;

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "sequential" : "parallel";
}

/// One telemetry⇄ledger⇄transcript cross-check; returns mismatch count.
std::size_t run_and_check(const DistributedDatabase& db, QueryMode mode,
                          bool quiet) {
  // Fresh counters per run so telemetry values are exactly this run's.
  telemetry::registry().reset();

  Transcript transcript;
  SamplerOptions options;
  options.transcript = &transcript;
  const auto result = mode == QueryMode::kSequential
                          ? run_sequential_sampler(db, options)
                          : run_parallel_sampler(db, options);

  std::size_t mismatches = 0;
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      ++mismatches;
      std::printf("MISMATCH [%s] %s\n", mode_name(mode), what.c_str());
    }
  };

  // Path 1 vs path 2: replay the wire transcript into a ledger.
  const auto replayed = stats_of(transcript, db.num_machines());
  check(replayed == result.stats,
        "stats_of(transcript) != sampler QueryStats ledger");

  // Path 3: the telemetry mirror maintained by TelemetryBackend.
  check(telemetry::counter("sampling.oracle.sequential").value() ==
            result.stats.total_sequential(),
        "counter sampling.oracle.sequential != total_sequential()");
  check(telemetry::counter("sampling.parallel_rounds").value() ==
            result.stats.parallel_rounds,
        "counter sampling.parallel_rounds != parallel_rounds");
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    const auto t_j =
        telemetry::counter("sampling.oracle.machine." + std::to_string(j))
            .value();
    check(t_j == result.stats.sequential_per_machine[j],
          "counter sampling.oracle.machine." + std::to_string(j) +
              " != t_" + std::to_string(j));
  }

  if (!quiet) {
    std::printf(
        "%-10s  events=%zu  t_total=%llu  rounds=%llu  fidelity=%.12f  %s\n",
        mode_name(mode), transcript.size(),
        static_cast<unsigned long long>(result.stats.total_sequential()),
        static_cast<unsigned long long>(result.stats.parallel_rounds),
        result.fidelity, mismatches == 0 ? "ok" : "MISMATCH");
  }
  return mismatches;
}

int run_selfcheck(const CliArgs& args) {
  const auto universe = args.get("universe", std::uint64_t{128});
  const auto machines = args.get("machines", std::uint64_t{4});
  const auto total = args.get("total", std::uint64_t{24});
  const auto nu_extra = args.get("nu-extra", std::uint64_t{0});
  const auto seed = args.get("seed", std::uint64_t{7});
  const auto mode_arg = args.get("mode", std::string("both"));
  const auto trace_path = args.get("trace", std::string());
  const auto metrics_path = args.get("metrics", std::string());
  const bool quiet = args.get("quiet", false);

  std::vector<QueryMode> modes;
  if (mode_arg == "seq" || mode_arg == "both")
    modes.push_back(QueryMode::kSequential);
  if (mode_arg == "par" || mode_arg == "both")
    modes.push_back(QueryMode::kParallel);
  QS_REQUIRE(!modes.empty(), "unknown --mode (want seq|par|both)");

  telemetry::set_metrics_enabled(true);
  telemetry::set_tracing_enabled(true);
  telemetry::tracer().clear();

  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + nu_extra;
  const DistributedDatabase db(std::move(datasets), nu);

  std::size_t mismatches = 0;
  for (const auto mode : modes) mismatches += run_and_check(db, mode, quiet);

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    QS_REQUIRE(os.good(), "cannot open --trace file " + trace_path);
    telemetry::write_chrome_trace(os);
    if (!quiet)
      std::printf("wrote %zu trace events to %s\n", telemetry::tracer().size(),
                  trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    QS_REQUIRE(os.good(), "cannot open --metrics file " + metrics_path);
    telemetry::write_metrics_jsonl(os);
    if (!quiet) std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }

  if (mismatches != 0) {
    std::printf("dqs_trace: %zu accounting mismatch(es)\n", mismatches);
    return 1;
  }
  if (!quiet) std::printf("dqs_trace: all accountings agree\n");
  return 0;
}

struct OverheadMeasurement {
  double primitive_ns = 0.0;  ///< one disabled instrumentation point
  double fault_ns = 0.0;      ///< one disabled fault-seam probe
  double kernel_ns = 0.0;     ///< one cheapest-instrumented-kernel call
  double percent() const { return primitive_ns / kernel_ns * 100.0; }
  double fault_percent() const { return fault_ns / kernel_ns * 100.0; }
};

OverheadMeasurement measure_overhead() {
  // Both layers OFF — this is the cost every un-benched user pays.
  telemetry::set_enabled(false);

  auto& probe_counter = telemetry::counter("dqs_trace.overhead.probe");
  auto& probe_hist = telemetry::histogram("dqs_trace.overhead.probe.ns");

  OverheadMeasurement m;

  // The per-kernel prologue: a timed span plus a call counter, all
  // short-circuited by the two relaxed enable loads.
  constexpr std::size_t kPrimitiveReps = 1u << 21;
  const auto primitive_pass = [&] {
    const auto start = telemetry::monotonic_ns();
    for (std::size_t i = 0; i < kPrimitiveReps; ++i) {
      telemetry::Span span("overhead.probe", &probe_hist);
      span.tag("dim", static_cast<std::int64_t>(i));
      probe_counter.add();
    }
    return double(telemetry::monotonic_ns() - start) / kPrimitiveReps;
  };

  // The fault-injection seam consulted before every oracle event
  // (sampling/fault_seam.hpp): one acquire load of the interposer pointer
  // and a branch that is never taken while no interposer is installed.
  // The compiler cannot elide the load (another thread may install one),
  // so this measures exactly what every fault-free run pays per event.
  const auto fault_pass = [&] {
    std::size_t diverted = 0;
    const auto start = telemetry::monotonic_ns();
    for (std::size_t i = 0; i < kPrimitiveReps; ++i) {
      if (auto* interposer = oracle_interposer()) {
        diverted += interposer->on_sequential(i, false);
      }
    }
    QS_REQUIRE(diverted == 0, "an interposer was installed mid-measurement");
    return double(telemetry::monotonic_ns() - start) / kPrimitiveReps;
  };

  // apply_global_phase is the CHEAPEST instrumented kernel (one complex
  // multiply per amplitude), so primitive/kernel is the WORST-CASE relative
  // overhead across the instrumented surface.
  RegisterLayout layout;
  layout.add("elem", 4096);
  StateVector sv(layout);
  constexpr std::size_t kKernelReps = 4096;
  const cplx phase(0.7071067811865476, 0.7071067811865476);
  const auto kernel_pass = [&] {
    const auto start = telemetry::monotonic_ns();
    for (std::size_t i = 0; i < kKernelReps; ++i) sv.apply_global_phase(phase);
    return double(telemetry::monotonic_ns() - start) / kKernelReps;
  };

  // Warm up once, then keep the BEST of three passes of each — minimum is
  // the standard noise-robust estimator for tight loops.
  (void)primitive_pass();
  (void)fault_pass();
  (void)kernel_pass();
  m.primitive_ns = primitive_pass();
  m.fault_ns = fault_pass();
  m.kernel_ns = kernel_pass();
  for (int pass = 0; pass < 2; ++pass) {
    m.primitive_ns = std::min(m.primitive_ns, primitive_pass());
    m.fault_ns = std::min(m.fault_ns, fault_pass());
    m.kernel_ns = std::min(m.kernel_ns, kernel_pass());
  }
  return m;
}

void write_overhead_json(const std::string& path, double primitive_ns,
                         double kernel_ns, double percent) {
  std::ofstream os(path);
  QS_REQUIRE(os.good(), "cannot open baseline file " + path);
  char line[256];
  std::snprintf(line, sizeof line,
                "{\"schema\":\"dqs-overhead-v1\",\"primitive_ns\":%.3f,"
                "\"kernel_ns\":%.3f,\"overhead_percent\":%.4f}\n",
                primitive_ns, kernel_ns, percent);
  os << line;
}

/// Compare one measured machine-relative percentage against a recorded
/// dqs-overhead-v1 baseline with `slack_pp` percentage points of budget.
/// Returns false (and prints) on regression.
bool check_against_baseline(const std::string& baseline_path, double measured,
                            double slack_pp, const char* what, bool quiet) {
  std::ifstream is(baseline_path);
  QS_REQUIRE(is.good(), "cannot read baseline file " + baseline_path);
  std::ostringstream text;
  text << is.rdbuf();
  const auto doc = telemetry::json::parse(text.str());
  QS_REQUIRE(doc.at("schema").as_string() == "dqs-overhead-v1",
             "unexpected baseline schema");
  const double baseline = doc.at("overhead_percent").as_number();
  if (measured > baseline + slack_pp) {
    std::printf(
        "%s OVERHEAD REGRESSION: measured %.4f%% > baseline %.4f%% + %.1fpp\n",
        what, measured, baseline, slack_pp);
    return false;
  }
  if (!quiet)
    std::printf("%s within budget (baseline %.4f%% + %.1fpp)\n", what,
                baseline, slack_pp);
  return true;
}

int run_overhead(const CliArgs& args) {
  const auto baseline_path = args.get("baseline", std::string());
  const auto write_path = args.get("write-baseline", std::string());
  const auto fault_baseline_path = args.get("fault-baseline", std::string());
  const auto fault_write_path =
      args.get("write-fault-baseline", std::string());
  const bool quiet = args.get("quiet", false);

  const auto m = measure_overhead();
  if (!quiet) {
    std::printf(
        "disabled-telemetry overhead: %.2f ns/hook over a %.2f ns kernel "
        "= %.4f%%\n",
        m.primitive_ns, m.kernel_ns, m.percent());
    std::printf(
        "disabled-fault-seam overhead: %.2f ns/probe over a %.2f ns kernel "
        "= %.4f%%\n",
        m.fault_ns, m.kernel_ns, m.fault_percent());
  }

  if (!write_path.empty()) {
    write_overhead_json(write_path, m.primitive_ns, m.kernel_ns, m.percent());
    if (!quiet) std::printf("baseline written to %s\n", write_path.c_str());
  }
  if (!fault_write_path.empty()) {
    write_overhead_json(fault_write_path, m.fault_ns, m.kernel_ns,
                        m.fault_percent());
    if (!quiet)
      std::printf("fault baseline written to %s\n", fault_write_path.c_str());
  }

  bool ok = true;
  if (!baseline_path.empty()) {
    // 5pp of slack: the telemetry prologue is several timer reads deep.
    ok = check_against_baseline(baseline_path, m.percent(), 5.0, "telemetry",
                                quiet) &&
         ok;
  }
  if (!fault_baseline_path.empty()) {
    // 0.5pp of slack: the fault seam is one load and an untaken branch —
    // any drift past half a point of the cheapest kernel means the seam
    // grew real work (docs/ROBUSTNESS.md).
    ok = check_against_baseline(fault_baseline_path, m.fault_percent(), 0.5,
                                "fault-seam", quiet) &&
         ok;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::CliArgs args(argc, argv);
    const bool overhead = args.get("overhead", false);
    return overhead ? run_overhead(args) : run_selfcheck(args);
  } catch (const qs::ContractViolation& e) {
    std::fprintf(stderr, "dqs_trace: %s\n", e.what());
    return 2;
  }
}
