// dqs_chaos — deterministic fault-injection grid for the recovery layer
// (docs/ROBUSTNESS.md).
//
//   dqs_chaos --grid [--quiet] [--write-failed DIR]
//       Run the full chaos grid — plan seeds {1,2,3} × modes {seq,par} ×
//       machine counts {2,3,5} over a fixed N=32, M=20 workload — and
//       assert, per point, the recovery layer's whole contract:
//
//         * recovery terminates and the sampler completes under the plan;
//         * the final state, samples, fidelity and primary QueryStats are
//           BIT-IDENTICAL to the fault-free run (zero-error recovery);
//         * the recovered transcript is protocol-clean
//           (TransportSession::validate_schedule) and passes the
//           dqs_verify passes: the four structural checkers via
//           lift_transcript + verify_program, and obliviousness via a
//           perturbed-database re-run with identical public parameters
//           whose recovered transcript must be identical;
//         * the recovery ledger balances: injected faults == plan size,
//           failed attempts == the recovery QueryStats total;
//         * a recovery that displaced nothing reproduces the canonical
//           schedule exactly.
//
//   dqs_chaos --ipc [--quiet] [--write-failed DIR] [--worker-stderr DIR]
//       The same 18-point grid over REAL worker processes
//       (docs/DISTRIBUTION.md): each point forks one worker per machine,
//       SIGKILLs / SIGSTOPs them and tears live frames mid-schedule per an
//       ipc-flavoured fault plan, and asserts — on top of every in-process
//       check — that the recovery planned over the real processes is
//       event-for-event identical to the simulated recovery, that the
//       replayed result is bit-identical to the fault-free IN-PROCESS run,
//       and that shutdown reaps every child (no zombies).
//
//   dqs_chaos --plan FILE [--universe N --machines n --total M --seed S]
//             [--mode seq|par]
//       Replay one scripted fault plan (the --write-failed artifact
//       format) against a reproducible workload and run the same checks.
//
// Exit code: 0 all points clean, 1 any failure, 2 usage error.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/cli.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/transport.hpp"
#include "distdb/workload.hpp"
#include "distdb/ipc/supervisor.hpp"
#include "faults/fault_plan.hpp"
#include "faults/faulty_transport.hpp"
#include "faults/ipc_chaos.hpp"
#include "faults/recovery.hpp"
#include "qsim/measure.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"

namespace {

using namespace qs;

constexpr std::uint64_t kUniverse = 32;
constexpr std::uint64_t kTotal = 20;
constexpr std::size_t kSampleDraws = 8;
constexpr std::uint64_t kSampleSeed = 0xdecaf;

const char* mode_name(QueryMode mode) {
  return mode == QueryMode::kSequential ? "seq" : "par";
}

/// A workload pair with IDENTICAL public parameters but different data —
/// the perturbed twin is what certifies obliviousness under faults.
struct WorkloadPair {
  DistributedDatabase db;
  DistributedDatabase twin;
};

WorkloadPair make_workload(std::uint64_t universe, std::uint64_t machines,
                           std::uint64_t total, std::uint64_t seed) {
  Rng rng_a(seed);
  Rng rng_b(seed + 0x9e3779b9);
  auto a = workload::uniform_random(universe, machines, total, rng_a);
  auto b = workload::uniform_random(universe, machines, total, rng_b);
  // One shared ν keeps PublicParams identical across the pair.
  const auto nu = std::max(min_capacity(a), min_capacity(b));
  return {DistributedDatabase(std::move(a), nu),
          DistributedDatabase(std::move(b), nu)};
}

std::vector<std::size_t> draw_samples(const SamplerResult& result) {
  Rng rng(kSampleSeed);
  std::vector<std::size_t> samples;
  samples.reserve(kSampleDraws);
  for (std::size_t i = 0; i < kSampleDraws; ++i) {
    samples.push_back(
        measure_register(result.state, result.registers.elem, rng));
  }
  return samples;
}

bool bit_identical(const StateVector& a, const StateVector& b) {
  const auto sa = a.amplitudes();
  const auto sb = b.amplitudes();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] != sb[i]) return false;
  }
  return true;
}

/// Run one (workload, mode, plan) point; returns "" when every check
/// passes, else the first failure's description.
std::string check_point(const WorkloadPair& pair, QueryMode mode,
                        const FaultPlan& plan, const RetryPolicy& policy) {
  const PublicParams params = public_params_of(pair.db);
  const Transcript schedule = compile_schedule(params, mode);

  // Fault-free baseline.
  Transcript t0;
  SamplerOptions base_options;
  base_options.transcript = &t0;
  const SamplerResult r0 = mode == QueryMode::kSequential
                               ? run_sequential_sampler(pair.db, base_options)
                               : run_parallel_sampler(pair.db, base_options);

  // Recovered run under the plan.
  Transcript t1;
  SamplerOptions fault_options;
  fault_options.transcript = &t1;
  const FaultedRun run =
      run_sampler_with_faults(pair.db, mode, plan, policy, fault_options);
  if (!run.ok()) {
    return "recovery failed to complete: " + run.recovery.failure;
  }
  const RecoveryLedger& ledger = run.recovery.ledger;

  // Zero-error recovery: everything observable is bit-identical.
  if (!bit_identical(run.result->state, r0.state)) {
    return "recovered state differs from the fault-free state";
  }
  if (run.result->fidelity != r0.fidelity) {
    return "recovered fidelity differs from the fault-free run";
  }
  if (!(run.result->stats == r0.stats)) {
    return "primary QueryStats ledger differs from the fault-free run";
  }
  if (draw_samples(*run.result) != draw_samples(r0)) {
    return "recovered samples differ from the fault-free samples";
  }

  // The recovered transcript is still a legal, certified protocol run.
  if (const auto violation =
          TransportSession::validate_schedule(t1, pair.db.num_machines())) {
    return "recovered transcript is not protocol-clean: " + *violation;
  }
  const auto report =
      analysis::verify_program(analysis::lift_transcript(t1, params, mode));
  if (!report.clean()) {
    return "recovered transcript fails dqs_verify: " + report.render();
  }
  if (!(stats_of(t1, pair.db.num_machines()) == run.result->stats)) {
    return "recovered transcript does not replay to the run's ledger";
  }

  // Obliviousness under faults: the perturbed twin (same PublicParams,
  // different data) must recover along the IDENTICAL schedule.
  Transcript t2;
  SamplerOptions twin_options;
  twin_options.transcript = &t2;
  const FaultedRun twin =
      run_sampler_with_faults(pair.twin, mode, plan, policy, twin_options);
  if (!twin.ok()) return "perturbed-database recovery failed to complete";
  if (!(t2 == t1)) {
    return "recovered schedule depends on the data (obliviousness broken)";
  }
  if (!(twin.recovery.ledger == ledger)) {
    return "recovery ledger depends on the data (obliviousness broken)";
  }

  // The ledger balances against the plan and its own QueryStats.
  if (ledger.injected_faults != plan.size()) {
    return "injected-fault count " + std::to_string(ledger.injected_faults) +
           " != plan size " + std::to_string(plan.size());
  }
  const std::uint64_t charged = ledger.recovery.total_sequential() +
                                ledger.recovery.parallel_rounds;
  if (ledger.failed_attempts != charged) {
    return "failed attempts " + std::to_string(ledger.failed_attempts) +
           " not fully charged to the recovery ledger (" +
           std::to_string(charged) + ")";
  }

  // No displacement ⇒ the canonical schedule was reproduced exactly.
  bool displaced = false;
  for (const auto& ev : run.recovery.events) displaced |= ev.displaced;
  if (!displaced && !(t1 == schedule)) {
    return "undisplaced recovery altered the canonical schedule";
  }
  if (displaced && mode == QueryMode::kParallel) {
    return "parallel rounds cannot be displaced, but one was";
  }
  return "";
}

/// Plan flavour for the ipc grid: mostly process-level faults — real
/// SIGKILLs, SIGSTOPs and torn frames — over a thin layer of the
/// transport-level kinds, so both realisation paths stay exercised.
FaultProfile ipc_profile() {
  FaultProfile profile;
  profile.drop_rate = 0.02;
  profile.delay_rate = 0.02;
  profile.crash_rate = 0.0;  // superseded by the REAL kill below
  profile.transient_rate = 0.02;
  profile.process_kill_rate = 0.04;
  profile.process_hang_rate = 0.02;
  profile.torn_frame_rate = 0.04;
  return profile;
}

/// One ipc grid point: realise `plan` against real worker processes and
/// assert the whole contract — identical recovered schedule to the
/// simulation, bit-identical observables to the fault-free IN-PROCESS run,
/// verifier-clean transcripts, obliviousness over a twin fleet, balanced
/// ledger, zombie-free teardown. Returns "" when clean.
std::string check_ipc_point(const WorkloadPair& pair, QueryMode mode,
                            const FaultPlan& plan, const RetryPolicy& policy,
                            const std::string& stderr_dir) {
  const std::size_t machines = pair.db.num_machines();
  const PublicParams params = public_params_of(pair.db);
  const Transcript schedule = compile_schedule(params, mode);

  // Fault-free in-process baseline: the gold standard the socket transport
  // must hit bit for bit.
  const SamplerResult r0 = mode == QueryMode::kSequential
                               ? run_sequential_sampler(pair.db)
                               : run_parallel_sampler(pair.db);

  // The same plan dry-run on the SIMULATED transport. The ipc session
  // mirrors its logical clock exactly, so the recovered schedules must be
  // identical event for event — this is what makes a real SIGKILL
  // recoverable by the unchanged planner.
  FaultyTransportSession sim(machines, plan);
  const RecoveryOutcome simulated =
      plan_recovery(schedule, machines, sim, policy);

  ipc::IpcOptions ipc_options;
  ipc_options.heartbeat_timeout_ms = 200;  // fast watchdog for SIGSTOPs
  ipc_options.worker_stderr_dir = stderr_dir;
  ipc::IpcSupervisor supervisor(pair.db, ipc_options);
  if (auto failure = supervisor.start()) {
    return "supervisor failed to start: " + failure->to_string();
  }

  Transcript t1;
  SamplerOptions fault_options;
  fault_options.transcript = &t1;
  const FaultedRun run = run_ipc_sampler_with_faults(
      pair.db, mode, plan, policy, supervisor, fault_options);
  if (run.ok() != simulated.ok) {
    return std::string("ipc recovery ") + (run.ok() ? "succeeded" : "failed") +
           " where the simulation " + (simulated.ok ? "succeeded" : "failed");
  }
  if (!run.ok()) return "ipc recovery failed: " + run.recovery.failure;

  // Real and simulated recovery agree attempt for attempt.
  if (run.recovery.events.size() != simulated.events.size()) {
    return "ipc recovery planned " +
           std::to_string(run.recovery.events.size()) +
           " events; the simulation planned " +
           std::to_string(simulated.events.size());
  }
  for (std::size_t i = 0; i < simulated.events.size(); ++i) {
    const RecoveredEvent& a = run.recovery.events[i];
    const RecoveredEvent& b = simulated.events[i];
    if (!(a.event == b.event) || a.attempts != b.attempts ||
        a.waited != b.waited || a.injected != b.injected ||
        a.displaced != b.displaced) {
      return "ipc recovery diverged from the simulated recovery at event " +
             std::to_string(i);
    }
  }
  if (!(run.recovery.ledger == simulated.ledger)) {
    return "ipc recovery ledger differs from the simulated ledger";
  }

  // Zero-error recovery over real sockets: bit-identical observables.
  if (!bit_identical(run.result->state, r0.state)) {
    return "ipc recovered state differs from the in-process state";
  }
  if (run.result->fidelity != r0.fidelity) {
    return "ipc recovered fidelity differs from the in-process run";
  }
  if (!(run.result->stats == r0.stats)) {
    return "ipc primary QueryStats ledger differs from the in-process run";
  }
  if (draw_samples(*run.result) != draw_samples(r0)) {
    return "ipc recovered samples differ from the in-process samples";
  }

  // The recovered transcript is still a legal, certified protocol run.
  if (const auto violation =
          TransportSession::validate_schedule(t1, machines)) {
    return "ipc transcript is not protocol-clean: " + *violation;
  }
  const auto report =
      analysis::verify_program(analysis::lift_transcript(t1, params, mode));
  if (!report.clean()) {
    return "ipc transcript fails dqs_verify: " + report.render();
  }

  // Obliviousness with real processes: the twin recovers over its OWN
  // fresh fleet along the identical schedule.
  ipc::IpcSupervisor twin_supervisor(pair.twin, ipc_options);
  if (auto failure = twin_supervisor.start()) {
    return "twin supervisor failed to start: " + failure->to_string();
  }
  Transcript t2;
  SamplerOptions twin_options;
  twin_options.transcript = &t2;
  const FaultedRun twin = run_ipc_sampler_with_faults(
      pair.twin, mode, plan, policy, twin_supervisor, twin_options);
  if (!twin.ok()) return "twin ipc recovery failed to complete";
  if (!(t2 == t1)) {
    return "ipc recovered schedule depends on the data (obliviousness broken)";
  }
  if (!(twin.recovery.ledger == run.recovery.ledger)) {
    return "ipc recovery ledger depends on the data (obliviousness broken)";
  }

  // The ledger balances against the plan.
  if (run.recovery.ledger.injected_faults != plan.size()) {
    return "ipc injected-fault count " +
           std::to_string(run.recovery.ledger.injected_faults) +
           " != plan size " + std::to_string(plan.size());
  }

  // Zombie-free teardown: every forked child reaped.
  supervisor.shutdown();
  twin_supervisor.shutdown();
  if (supervisor.zombies() != 0 || twin_supervisor.zombies() != 0) {
    return "shutdown left zombie workers";
  }
  return "";
}

void write_failed_plan(const std::string& dir, const std::string& name,
                       const FaultPlan& plan, const std::string& failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const auto path = dir + "/" + name + ".plan";
  std::ofstream os(path);
  if (!os.good()) {
    std::fprintf(stderr, "dqs_chaos: cannot write %s\n", path.c_str());
    return;
  }
  os << "# failure: " << failure << "\n" << plan.to_string();
  std::printf("failing plan written to %s\n", path.c_str());
}

int run_grid(const CliArgs& args) {
  const bool quiet = args.get("quiet", false);
  const auto failed_dir = args.get("write-failed", std::string());
  const RetryPolicy policy;

  std::size_t points = 0;
  std::size_t failures = 0;
  for (const std::uint64_t machines : {2, 3, 5}) {
    const WorkloadPair pair =
        make_workload(kUniverse, machines, kTotal, 100 + machines);
    for (const QueryMode mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto events = compiled_schedule_length(
          public_params_of(pair.db), mode);
      for (const std::uint64_t plan_seed : {1, 2, 3}) {
        const FaultPlan plan =
            FaultPlan::random(plan_seed, events, machines);
        const std::string failure = check_point(pair, mode, plan, policy);
        ++points;
        if (!failure.empty()) {
          ++failures;
          std::printf("FAIL n=%llu %s plan_seed=%llu: %s\n",
                      static_cast<unsigned long long>(machines),
                      mode_name(mode),
                      static_cast<unsigned long long>(plan_seed),
                      failure.c_str());
          if (!failed_dir.empty()) {
            write_failed_plan(failed_dir,
                              "n" + std::to_string(machines) + "_" +
                                  mode_name(mode) + "_s" +
                                  std::to_string(plan_seed),
                              plan, failure);
          }
        } else if (!quiet) {
          std::printf("ok    n=%llu %s plan_seed=%llu  events=%llu faults=%zu\n",
                      static_cast<unsigned long long>(machines),
                      mode_name(mode),
                      static_cast<unsigned long long>(plan_seed),
                      static_cast<unsigned long long>(events), plan.size());
        }
      }
    }
  }
  if (failures != 0) {
    std::printf("dqs_chaos: %zu/%zu grid points failed\n", failures, points);
    return 1;
  }
  if (!quiet) {
    std::printf("dqs_chaos: all %zu grid points recovered bit-identically\n",
                points);
  }
  return 0;
}

int run_ipc_grid(const CliArgs& args) {
  const bool quiet = args.get("quiet", false);
  const auto failed_dir = args.get("write-failed", std::string());
  const auto stderr_dir = args.get("worker-stderr", std::string());
  const RetryPolicy policy;

  std::size_t points = 0;
  std::size_t failures = 0;
  for (const std::uint64_t machines : {2, 3, 5}) {
    const WorkloadPair pair =
        make_workload(kUniverse, machines, kTotal, 100 + machines);
    for (const QueryMode mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto events = compiled_schedule_length(
          public_params_of(pair.db), mode);
      for (const std::uint64_t plan_seed : {1, 2, 3}) {
        const FaultPlan plan =
            FaultPlan::random(plan_seed, events, machines, ipc_profile());
        const std::string failure =
            check_ipc_point(pair, mode, plan, policy, stderr_dir);
        ++points;
        if (!failure.empty()) {
          ++failures;
          std::printf("FAIL n=%llu %s plan_seed=%llu: %s\n",
                      static_cast<unsigned long long>(machines),
                      mode_name(mode),
                      static_cast<unsigned long long>(plan_seed),
                      failure.c_str());
          if (!failed_dir.empty()) {
            write_failed_plan(failed_dir,
                              "ipc_n" + std::to_string(machines) + "_" +
                                  mode_name(mode) + "_s" +
                                  std::to_string(plan_seed),
                              plan, failure);
          }
        } else if (!quiet) {
          std::printf("ok    n=%llu %s plan_seed=%llu  events=%llu faults=%zu\n",
                      static_cast<unsigned long long>(machines),
                      mode_name(mode),
                      static_cast<unsigned long long>(plan_seed),
                      static_cast<unsigned long long>(events), plan.size());
        }
      }
    }
  }
  if (failures != 0) {
    std::printf("dqs_chaos: %zu/%zu ipc grid points failed\n", failures,
                points);
    return 1;
  }
  if (!quiet) {
    std::printf(
        "dqs_chaos: all %zu ipc grid points recovered bit-identically over "
        "real worker processes\n",
        points);
  }
  return 0;
}

int run_replay(const CliArgs& args) {
  const auto plan_path = args.get("plan", std::string());
  const auto universe = args.get("universe", kUniverse);
  const auto machines = args.get("machines", std::uint64_t{3});
  const auto total = args.get("total", kTotal);
  const auto seed = args.get("seed", std::uint64_t{103});
  const auto mode_arg = args.get("mode", std::string("seq"));
  QS_REQUIRE(mode_arg == "seq" || mode_arg == "par",
             "unknown --mode (want seq|par)");
  const QueryMode mode =
      mode_arg == "seq" ? QueryMode::kSequential : QueryMode::kParallel;

  std::ifstream is(plan_path);
  QS_REQUIRE(is.good(), "cannot read --plan file " + plan_path);
  std::ostringstream text;
  text << is.rdbuf();
  const FaultPlan plan = parse_fault_plan(text.str());

  const WorkloadPair pair = make_workload(universe, machines, total, seed);
  const std::string failure = check_point(pair, mode, plan, RetryPolicy{});
  if (!failure.empty()) {
    std::printf("FAIL %s: %s\n", plan_path.c_str(), failure.c_str());
    return 1;
  }
  std::printf("ok: %zu scripted fault(s) recovered bit-identically\n",
              plan.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    if (args.has("plan")) return run_replay(args);
    if (args.get("grid", false)) return run_grid(args);
    if (args.get("ipc", false)) return run_ipc_grid(args);
    std::fprintf(stderr,
                 "usage: dqs_chaos --grid [--quiet] [--write-failed DIR]\n"
                 "       dqs_chaos --ipc [--quiet] [--write-failed DIR] "
                 "[--worker-stderr DIR]\n"
                 "       dqs_chaos --plan FILE [--universe N --machines n "
                 "--total M --seed S] [--mode seq|par]\n");
    return 2;
  } catch (const qs::ContractViolation& e) {
    std::fprintf(stderr, "dqs_chaos: %s\n", e.what());
    return 2;
  }
}
