#!/usr/bin/env python3
"""dqs_lint: repo-specific invariant linter for the dqs codebase.

Enforces rules the generic tools (compiler warnings, sanitizers,
clang-tidy) cannot express, because they encode *project* invariants tied
to the paper's model rather than C++ correctness:

  omp-confinement     #pragma omp may appear only in src/qsim/parallel.hpp.
                      Every kernel must go through the parallel_for helpers
                      so the no-OpenMP build, the TSan annotations, and any
                      future scheduling change stay in one place.
  rng-discipline      std::mt19937 / rand() / std::random_device etc. are
                      forbidden outside src/common/rng.*. All randomness
                      flows through qs::Rng so every run is reproducible
                      from a printed seed.
  query-accounting    Library code that invokes a Machine oracle
                      (apply_oracle / apply_controlled_oracle) must see the
                      query-accounting types: the file or its paired header
                      must include distdb/query_stats.hpp or
                      distdb/distributed_database.hpp. The paper's results
                      are statements about query counts (Thms 1.1/4.3/4.5);
                      an unaccounted oracle path would silently void them.
  no-iostream-in-lib  No <iostream> / std::cout / std::cerr / printf in
                      library code; only src/apps (and bench/, examples/,
                      tests/, which are not scanned by this rule) may talk
                      to stdio. Library results travel through return
                      values and the Table/stats types.
  header-guard        Every header must start with #pragma once (or a
                      classic include guard).
  no-relative-include First-party includes are "module/file.hpp" rooted at
                      src/; "../" paths bypass the module layering.
  transcript-discipline
                      Transcript::record_sequential / record_parallel_round
                      may be called in library code only from the sampling
                      backends (src/sampling/backend.cpp, schedule.cpp) and
                      the Transcript module itself. Recorded transcripts
                      are the evidence the obliviousness certification
                      compares bit-for-bit (docs/ANALYSIS.md); a stray
                      producer could forge that evidence. Tests and the
                      mutation fixtures re-record deliberately and carry
                      explicit suppressions.
  timing-discipline   Raw wall-clock reads (std::chrono, std::clock,
                      clock_gettime, gettimeofday, <chrono>/<ctime>
                      includes) are forbidden in src/ outside
                      src/telemetry/. All timing flows through
                      telemetry::Span / telemetry::monotonic_ns so the
                      disabled-telemetry fast path stays the ONLY timing
                      cost in library code and the overhead gate
                      (dqs_trace --overhead) measures every timer the
                      library can ever start. Benches, tests and tools may
                      time freely — this rule scans src/ only.
  kill-matrix-completeness
                      Every checker pass / abstract domain registered
                      between `// dqs-lint: pass-registry-begin` and
                      `-end` markers (pass_names() in src/analysis,
                      domain_names() in src/analysis/abstint) must have at
                      least one mutation fixture naming it — searched in
                      the mutations*.cpp nearest the registry file. An
                      analyzer pass no corrupted schedule can trigger is
                      untested tooling (see dqs_verify --mutants).
  tv-exhaustiveness   Every CompiledOp kind registered between
                      `// dqs-lint: op-kind-registry-begin` and `-end`
                      markers (the Kind enum in src/qsim/compiled_op.hpp)
                      must appear in a `tv-handled-kinds` marker span (the
                      symbolic translation-validation engine's dispatch in
                      src/analysis/tv/engine.cpp). A kind the engine cannot
                      discharge would compile — and fuse — without any
                      equivalence proof (docs/ANALYSIS.md).
  lock-discipline     No mutex guard (std::lock_guard / unique_lock /
                      scoped_lock / shared_lock) may be live on a line that
                      executes a sampling schedule (run_*_sampler,
                      run_sampler_with_faults, run_sampling_circuit) or
                      drives a TransportSession (send_sequential,
                      receive_sequential, begin/end_parallel_round).
                      Schedule execution is the long pole — a lock held
                      across it serialises every coalesced client and can
                      deadlock against the update path (docs/SERVING.md).
                      The serving layer's builder protocol releases the
                      service lock for the whole build; this rule keeps it
                      (and any future caller) honest. Guards are tracked
                      per scope; an explicit guard.unlock() disarms and
                      guard.lock() re-arms.
  simd-discipline     Per-amplitude block loops in src/qsim kernel code —
                      the `for (std::size_t i = begin; i < end; ++i)` shape
                      the parallel_for_blocks scheduler hands out — must be
                      annotated with DQS_PRAGMA_SIMD on the line above (or
                      carry an explicit allow comment in the adjacent
                      comment block). These loops ARE the replay hot path
                      (docs/PERF.md); an unannotated one silently forfeits
                      the vector width the K1 speedup floors assume.
                      Deterministic reductions and scattered-write loops
                      are legitimate exceptions — reassociation would break
                      the bit-identical-across-threads contract — and each
                      carries an allow comment saying so.
  ipc-discipline      Files under src/ that do OS-level I/O (they include
                      <unistd.h>, <sys/socket.h>, <poll.h>, <sys/wait.h>
                      or <sys/select.h>) may not call the blocking
                      syscalls (read/write/send/recv*/accept/poll/select/
                      waitpid families) directly — every such call must go
                      through the EINTR-retrying, deadline-honoring
                      wrappers in src/distdb/ipc/io.hpp (read_full /
                      write_full / wait_readable / waitpid_retry /
                      waitpid_deadline). A bare call that returns early on
                      EINTR tears a frame mid-transfer or leaks a zombie;
                      the wrappers are the single place the retry loop and
                      the poll-based deadline live (docs/DISTRIBUTION.md).
                      src/distdb/ipc/io.cpp is the wrappers' definition
                      site and the one sanctioned caller.
  error-taxonomy      Library code under src/ must fail through the typed
                      error taxonomy — QS_REQUIRE / QS_ASSERT raising
                      qs::ContractViolation — never via bare throw,
                      abort(), std::terminate, assert() or exit(). The
                      recovery layer (src/faults/) and the serving-layer
                      degradation paths catch ContractViolation at
                      well-defined seams (docs/ROBUSTNESS.md); an escape
                      hatch that bypasses the taxonomy either kills the
                      process outright (no graceful degradation possible)
                      or throws a type those seams will not catch.

Usage:
  tools/dqs_lint.py [--root DIR] [--list-rules] [paths...]

With no paths, scans src/ tests/ bench/ examples/ under the root (skipping
any lint_fixtures directory). Exit code 1 if violations are found.

Suppression: append  // dqs-lint: allow(<rule-id>)  to the offending line
(or place it on the line above). Like NOLINT, a suppression should carry a
comment explaining why the invariant genuinely does not apply.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CXX_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hxx"}
SCAN_DIRS = ("src", "tests", "bench", "examples")
EXCLUDE_DIR = "lint_fixtures"

ALLOW_RE = re.compile(r"dqs-lint:\s*allow\(([a-z0-9-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure.

    Keeps the suppression marker usable by leaving `dqs-lint: allow(...)`
    detection to the raw text; this stripped view is only used for token
    matching so that tokens in comments or strings do not trigger rules.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self, root: Path) -> str:
        try:
            rel = self.path.relative_to(root)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


class File:
    """One scanned file: raw lines, stripped lines, suppression map."""

    def __init__(self, path: Path, root: Path):
        self.path = path
        self.root = root
        self.rel = path.relative_to(root).as_posix()
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.stripped_lines = strip_comments_and_strings(self.raw).splitlines()
        # The stripper blanks string literals, which would also blank the
        # quoted path of an #include directive; include-matching rules use
        # this view instead: the raw line wherever the stripped view proves
        # the directive is live code (not inside a comment), blank elsewhere.
        self.include_lines = [
            raw if "#" in stripped and "include" in stripped else ""
            for raw, stripped in zip(self.raw_lines, self.stripped_lines)
        ]

    def allowed(self, lineno: int, rule: str) -> bool:
        """True if `rule` is suppressed on this line or the one above."""
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(self.raw_lines):
                for m in ALLOW_RE.finditer(self.raw_lines[ln - 1]):
                    if m.group(1) == rule:
                        return True
        return False


# --- rules -----------------------------------------------------------------

OMP_ALLOWED = {"src/qsim/parallel.hpp"}


def rule_omp_confinement(f: File):
    if f.rel in OMP_ALLOWED:
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if re.search(r"#\s*pragma\s+omp\b", line):
            yield Violation(
                f.path, i, "omp-confinement",
                "#pragma omp outside src/qsim/parallel.hpp; use the "
                "parallel_for helpers so every kernel shares one "
                "scheduling/TSan/no-OpenMP story")


RNG_ALLOWED_PREFIX = "src/common/rng."
RNG_TOKENS = re.compile(
    r"std\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|"
    r"random_device|knuth_b|ranlux\w+)\b"
    r"|(?<![\w:])s?rand\s*\("
    r"|#\s*include\s*<random>")


def rule_rng_discipline(f: File):
    if f.rel.startswith(RNG_ALLOWED_PREFIX):
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if RNG_TOKENS.search(line):
            yield Violation(
                f.path, i, "rng-discipline",
                "standard-library RNG outside src/common/rng.*; take a "
                "qs::Rng so the run is reproducible from a printed seed")


ORACLE_CALL = re.compile(r"\bapply(_controlled)?_oracle\s*\(")
ACCOUNTING_INCLUDES = re.compile(
    r'#\s*include\s*"distdb/(query_stats|distributed_database)\.hpp"')
ORACLE_EXEMPT = {
    # Definition sites of the oracle itself and of the ledger.
    "src/distdb/machine.hpp",
    "src/distdb/machine.cpp",
    "src/distdb/distributed_database.hpp",
    "src/distdb/distributed_database.cpp",
}


def rule_query_accounting(f: File):
    if not f.rel.startswith("src/") or f.rel in ORACLE_EXEMPT:
        return
    hits = [i for i, line in enumerate(f.stripped_lines, 1)
            if ORACLE_CALL.search(line)]
    if not hits:
        return
    if ACCOUNTING_INCLUDES.search("\n".join(f.include_lines)):
        return
    # A .cpp may rely on its paired header for the include.
    pair = f.path.with_suffix(".hpp")
    if f.path.suffix == ".cpp" and pair.exists():
        if ACCOUNTING_INCLUDES.search(
                pair.read_text(encoding="utf-8", errors="replace")):
            return
    for i in hits:
        yield Violation(
            f.path, i, "query-accounting",
            "oracle invocation without the query-accounting types in "
            "scope; include distdb/query_stats.hpp (or route through "
            "DistributedDatabase) so the call is charged to the paper's "
            "cost model")


IOSTREAM_EXEMPT_PREFIX = "src/apps/"
IOSTREAM_TOKENS = re.compile(
    r"#\s*include\s*<iostream>"
    r"|std\s*::\s*(cout|cerr|clog)\b"
    r"|(?<![\w:])f?printf\s*\("
    r"|(?<![\w:])puts\s*\(")


def rule_no_iostream_in_lib(f: File):
    if not f.rel.startswith("src/"):
        return
    if f.rel.startswith(IOSTREAM_EXEMPT_PREFIX):
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if IOSTREAM_TOKENS.search(line):
            yield Violation(
                f.path, i, "no-iostream-in-lib",
                "stdio write from library code; return values / Table / "
                "stats carry results, only src/apps, bench and examples "
                "may print")


GUARD_RE = re.compile(r"#\s*pragma\s+once|#\s*ifndef\s+\w+")


def rule_header_guard(f: File):
    if f.path.suffix not in {".hpp", ".h", ".hxx"}:
        return
    for line in f.stripped_lines:
        if not line.strip():
            continue
        if GUARD_RE.match(line.strip()):
            return
        break  # first non-blank stripped line is not a guard
    yield Violation(
        f.path, 1, "header-guard",
        "header does not open with #pragma once (or an include guard)")


RELATIVE_INCLUDE = re.compile(r'#\s*include\s*"(\.\./[^"]*)"')


def rule_no_relative_include(f: File):
    for i, line in enumerate(f.include_lines, 1):
        m = RELATIVE_INCLUDE.search(line)
        if m:
            yield Violation(
                f.path, i, "no-relative-include",
                f'relative include "{m.group(1)}"; include '
                '"module/file.hpp" rooted at src/ instead')


TRANSCRIPT_CALL = re.compile(r"\brecord_(sequential|parallel_round)\s*\(")
TRANSCRIPT_EXEMPT = {
    # The only sanctioned producers: the recording sampler backend and the
    # schedule compiler's dry-run backend…
    "src/sampling/backend.cpp",
    "src/sampling/schedule.cpp",
    # …and the Transcript module itself (declarations, definitions, and
    # parse_transcript's reconstruction).
    "src/distdb/transcript.hpp",
    "src/distdb/transcript.cpp",
}


def rule_transcript_discipline(f: File):
    if not f.rel.startswith("src/") or f.rel in TRANSCRIPT_EXEMPT:
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if TRANSCRIPT_CALL.search(line):
            yield Violation(
                f.path, i, "transcript-discipline",
                "Transcript::record_* outside the sampling backends; "
                "recorded transcripts are the oracle-log evidence the "
                "obliviousness certification compares bit-for-bit, so only "
                "src/sampling/{backend,schedule}.cpp may append events")


TIMING_ALLOWED_PREFIX = "src/telemetry/"
TIMING_TOKENS = re.compile(
    r"std\s*::\s*chrono\b"
    r"|std\s*::\s*clock\s*\("
    r"|(?<![\w:])(clock_gettime|gettimeofday|timespec_get)\s*\("
    r"|#\s*include\s*<(chrono|ctime|time\.h|sys/time\.h)>")


def rule_timing_discipline(f: File):
    if not f.rel.startswith("src/") or f.rel.startswith(TIMING_ALLOWED_PREFIX):
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if TIMING_TOKENS.search(line):
            yield Violation(
                f.path, i, "timing-discipline",
                "raw wall-clock read in library code; go through "
                "telemetry::Span / telemetry::monotonic_ns so timing stays "
                "behind the telemetry enable flags and inside the overhead "
                "budget gated by dqs_trace --overhead")


KERNEL_DIR_PREFIX = "src/qsim/"
KERNEL_FUNCTION_ALLOWED = {
    # The compiled-operator layer's lowering entry points: they ACCEPT a
    # std::function once per (operator, layout) and bake it into flat
    # arrays — the whole point of the rule.
    "src/qsim/compiled_op.hpp",
    "src/qsim/compiled_op.cpp",
    # Whole-circuit fragments (std::function<void(StateVector&)> applied
    # once per circuit, not per amplitude).
    "src/qsim/controlled.hpp",
    "src/qsim/controlled.cpp",
    "src/qsim/density_evolution.hpp",
    "src/qsim/density_evolution.cpp",
    "src/qsim/operator_builder.hpp",
    "src/qsim/operator_builder.cpp",
}
KERNEL_FUNCTION_TOKEN = re.compile(r"std\s*::\s*function\s*<")


def rule_no_std_function_in_kernels(f: File):
    if not f.rel.startswith(KERNEL_DIR_PREFIX):
        return
    if f.rel in KERNEL_FUNCTION_ALLOWED:
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if KERNEL_FUNCTION_TOKEN.search(line):
            yield Violation(
                f.path, i, "no-std-function-in-kernels",
                "std::function in statevector kernel code; per-amplitude "
                "indirect dispatch is the hot-loop cost the compiled-"
                "operator layer removes — lower the operator once through "
                "qsim/compiled_op.hpp (or, for a retained naive reference "
                "path, suppress with an explicit allow comment)")


REGISTRY_BEGIN = re.compile(r"dqs-lint:\s*pass-registry-begin")
REGISTRY_END = re.compile(r"dqs-lint:\s*pass-registry-end")
REGISTRY_ID = re.compile(r'"([a-z][a-z0-9-]*)"')

_MUTATION_CORPUS_CACHE: dict = {}


def _mutation_corpus(f: File):
    """Concatenated mutations*.cpp text covering f, or None.

    The fixtures for a registry live in the mutations*.cpp of the nearest
    ancestor directory that has any — src/analysis/mutations.cpp for both
    the structural-pass registry (src/analysis/passes.cpp) and the abstract
    domains (src/analysis/abstint/engine.cpp).
    """
    directory = f.path.parent
    while True:
        if directory in _MUTATION_CORPUS_CACHE:
            return _MUTATION_CORPUS_CACHE[directory]
        sources = sorted(directory.glob("mutations*.cpp"))
        if sources:
            corpus = "\n".join(
                s.read_text(encoding="utf-8", errors="replace")
                for s in sources)
            _MUTATION_CORPUS_CACHE[directory] = corpus
            return corpus
        if directory == f.root or directory.parent == directory:
            _MUTATION_CORPUS_CACHE[directory] = None
            return None
        directory = directory.parent


def rule_kill_matrix_completeness(f: File):
    registered = []  # (line, id) inside pass-registry marker spans
    in_registry = False
    for i, raw in enumerate(f.raw_lines, 1):
        if REGISTRY_BEGIN.search(raw):
            in_registry = True
            continue
        if REGISTRY_END.search(raw):
            in_registry = False
            continue
        if in_registry:
            for m in REGISTRY_ID.finditer(raw):
                registered.append((i, m.group(1)))
    if not registered:
        return
    corpus = _mutation_corpus(f)
    for lineno, name in registered:
        if corpus is None or f'"{name}"' not in corpus:
            yield Violation(
                f.path, lineno, "kill-matrix-completeness",
                f'registered pass "{name}" has no mutation fixture that '
                "kills it; add one to the nearest mutations*.cpp so "
                "dqs_verify --mutants proves the pass can actually flag a "
                "corrupted schedule")


OP_KIND_BEGIN = re.compile(r"dqs-lint:\s*op-kind-registry-begin")
OP_KIND_END = re.compile(r"dqs-lint:\s*op-kind-registry-end")
TV_HANDLED_BEGIN = re.compile(r"dqs-lint:\s*tv-handled-kinds-begin")
TV_HANDLED_END = re.compile(r"dqs-lint:\s*tv-handled-kinds-end")
KIND_TOKEN = re.compile(r"\bk[A-Z][A-Za-z0-9]*\b")

_TV_HANDLED_CACHE: dict = {}


def _tv_handled_kinds(root: Path):
    """Union of kind tokens inside tv-handled-kinds marker spans under root.

    Collected once per root from every scanned C++ file (the span lives in
    src/analysis/tv/engine.cpp in the real tree; the self-test fixtures
    carry their own). Returns None when no span exists anywhere — the rule
    then reports every registered kind as unhandled.
    """
    if root in _TV_HANDLED_CACHE:
        return _TV_HANDLED_CACHE[root]
    handled: set | None = None
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            if EXCLUDE_DIR in path.relative_to(root).parts:
                continue
            text = path.read_text(encoding="utf-8", errors="replace")
            if "tv-handled-kinds-begin" not in text:
                continue
            in_span = False
            for raw in text.splitlines():
                if TV_HANDLED_BEGIN.search(raw):
                    in_span = True
                    handled = set() if handled is None else handled
                    continue
                if TV_HANDLED_END.search(raw):
                    in_span = False
                    continue
                if in_span:
                    handled.update(KIND_TOKEN.findall(raw))
    _TV_HANDLED_CACHE[root] = handled
    return handled


def rule_tv_exhaustiveness(f: File):
    registered = []  # (line, kind) inside op-kind registry marker spans
    in_registry = False
    for i, (raw, stripped) in enumerate(
            zip(f.raw_lines, f.stripped_lines), 1):
        if OP_KIND_BEGIN.search(raw):
            in_registry = True
            continue
        if OP_KIND_END.search(raw):
            in_registry = False
            continue
        if in_registry:
            # Stripped view: doc comments naming other kinds must not count
            # as registrations.
            for kind in KIND_TOKEN.findall(stripped):
                registered.append((i, kind))
    if not registered:
        return
    handled = _tv_handled_kinds(f.root)
    for lineno, kind in registered:
        if handled is None or kind not in handled:
            yield Violation(
                f.path, lineno, "tv-exhaustiveness",
                f'CompiledOp kind "{kind}" is not listed in a '
                "tv-handled-kinds span; teach the symbolic translation-"
                "validation engine (src/analysis/tv/engine.cpp) to "
                "discharge the new kind's proof obligations — an unhandled "
                "kind would compile without any equivalence proof")


LOCK_GUARD_DECL = re.compile(
    r"std\s*::\s*(?:lock_guard|unique_lock|shared_lock|scoped_lock)\s*"
    r"(?:<[^;>]*>)?\s+(\w+)\s*[({]")
LOCK_UNLOCK = re.compile(r"\b(\w+)\s*\.\s*unlock\s*\(")
LOCK_RELOCK = re.compile(r"\b(\w+)\s*\.\s*lock\s*\(")
LOCK_EXECUTOR = re.compile(
    r"\brun_(?:sequential|parallel|centralized|budgeted)_sampler\s*\("
    r"|\brun_sampler_with_faults\s*\("
    r"|\brun_sampling_circuit\s*\("
    r"|\.\s*(?:send_sequential|receive_sequential|"
    r"begin_parallel_round|end_parallel_round)\s*\(")


def rule_lock_discipline(f: File):
    """Flag schedule execution / Transport calls under a live lock guard.

    A small scope tracker walks the stripped text: a guard declaration
    arms a named guard at the current brace depth, `g.unlock()` disarms
    it, `g.lock()` re-arms it, and the closing brace of the declaring
    scope retires it. Any executor token on a line with at least one
    armed guard is a violation. Line-local events are processed in
    column order, so `lock.unlock(); run_sequential_sampler(...)` on one
    line is (correctly) clean.
    """
    if not f.rel.startswith("src/"):
        return
    depth = 0
    guards: dict[str, list] = {}  # name -> [decl_depth, armed]
    for i, line in enumerate(f.stripped_lines, 1):
        events = []  # (column, kind, payload)
        for col, ch in enumerate(line):
            if ch == "{":
                events.append((col, "open", None))
            elif ch == "}":
                events.append((col, "close", None))
        for m in LOCK_GUARD_DECL.finditer(line):
            events.append((m.start(1), "decl", m.group(1)))
        for m in LOCK_UNLOCK.finditer(line):
            events.append((m.start(), "unlock", m.group(1)))
        for m in LOCK_RELOCK.finditer(line):
            events.append((m.start(), "relock", m.group(1)))
        for m in LOCK_EXECUTOR.finditer(line):
            events.append((m.start(), "executor", m.group(0)))
        for _, kind, payload in sorted(events, key=lambda e: e[0]):
            if kind == "open":
                depth += 1
            elif kind == "close":
                depth -= 1
                guards = {name: g for name, g in guards.items()
                          if g[0] <= depth}
            elif kind == "decl":
                guards[payload] = [depth, True]
            elif kind == "unlock":
                if payload in guards:
                    guards[payload][1] = False
            elif kind == "relock":
                if payload in guards:
                    guards[payload][1] = True
            elif kind == "executor":
                live = sorted(n for n, g in guards.items() if g[1])
                if live:
                    yield Violation(
                        f.path, i, "lock-discipline",
                        f"schedule/Transport execution while guard(s) "
                        f"{', '.join(live)} are held; release the lock "
                        "across the whole execution (the coalescing "
                        "builder protocol, docs/SERVING.md) — a lock held "
                        "here serialises every client and can deadlock "
                        "against the update path")


SIMD_BLOCK_LOOP = re.compile(
    r"for\s*\(\s*(?:std\s*::\s*)?size_t\s+\w+\s*=\s*begin\s*;"
    r"\s*\w+\s*<\s*end\b")
SIMD_PRAGMA = "DQS_PRAGMA_SIMD"
SIMD_ALLOW = "allow(simd-discipline)"


def rule_simd_discipline(f: File):
    """Require DQS_PRAGMA_SIMD (or an allow comment) on block loops.

    For each matching loop, walk upward: comment-only/blank lines are
    skipped (an allow marker anywhere in that contiguous comment block
    counts — rationale comments legitimately wrap past one line); the
    nearest preceding CODE line must carry DQS_PRAGMA_SIMD.
    """
    if not f.rel.startswith(KERNEL_DIR_PREFIX):
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if not SIMD_BLOCK_LOOP.search(line):
            continue
        satisfied = SIMD_ALLOW in f.raw_lines[i - 1]
        j = i - 1
        while not satisfied and j >= 1:
            if SIMD_ALLOW in f.raw_lines[j - 1]:
                satisfied = True
                break
            if not f.stripped_lines[j - 1].strip():
                j -= 1  # blank or comment-only: keep walking
                continue
            satisfied = SIMD_PRAGMA in f.stripped_lines[j - 1]
            break
        if not satisfied:
            yield Violation(
                f.path, i, "simd-discipline",
                "per-amplitude block loop without DQS_PRAGMA_SIMD; this is "
                "the replay hot path the K1 speedup floors assume is "
                "vectorized — annotate it, or add an allow comment stating "
                "why vectorization is unsound here (e.g. a deterministic "
                "reduction whose fold order must not be reassociated)")


IPC_IO_ALLOWED = {
    # The wrappers' own definition site: the EINTR loop and the poll-based
    # deadline budget live here and nowhere else.
    "src/distdb/ipc/io.cpp",
}
IPC_OS_HEADERS = re.compile(
    r"#\s*include\s*<(unistd\.h|sys/socket\.h|poll\.h|sys/wait\.h|"
    r"sys/select\.h)>")
# Matches a bare or global-scope (`::read`) call to a blocking syscall.
# Member calls (`sock.send`, `peer->recv`) and namespaced functions
# (`ipc::read_full`) are excluded by the lookbehind: a preceding `.`, `>`,
# `:` or word character means the token is not the libc symbol.
IPC_SYSCALL = re.compile(
    r"(?<![\w.>:])(?:::\s*)?"
    r"(read|write|recv|send|recvmsg|sendmsg|accept|accept4|poll|ppoll|"
    r"select|pselect|waitpid|wait3|wait4)\s*\(")


def rule_ipc_discipline(f: File):
    if not f.rel.startswith("src/") or f.rel in IPC_IO_ALLOWED:
        return
    if not IPC_OS_HEADERS.search("\n".join(f.include_lines)):
        return
    for i, line in enumerate(f.stripped_lines, 1):
        m = IPC_SYSCALL.search(line)
        if m:
            yield Violation(
                f.path, i, "ipc-discipline",
                f"bare {m.group(1)}() in a file doing OS-level I/O; go "
                "through the EINTR/deadline-safe wrappers in "
                "src/distdb/ipc/io.hpp (read_full / write_full / "
                "wait_readable / waitpid_retry / waitpid_deadline) — a "
                "call that returns early on EINTR tears a frame or leaks "
                "a zombie, and the wrappers are the single place the "
                "retry loop and the poll deadline live")


ERROR_TAXONOMY_EXEMPT = {
    # The definition site of the taxonomy itself: QS_REQUIRE/QS_ASSERT
    # expand to the one sanctioned throw.
    "src/common/require.hpp",
}
ERROR_TAXONOMY_TOKENS = re.compile(
    r"(?<![\w:])throw\b"
    r"|(?<![\w:])abort\s*\("
    r"|(?<![\w:])assert\s*\("
    r"|(?<![\w:])(quick_)?exit\s*\("
    r"|std\s*::\s*(terminate|abort|exit|quick_exit|_Exit)\s*\(")


def rule_error_taxonomy(f: File):
    if not f.rel.startswith("src/") or f.rel in ERROR_TAXONOMY_EXEMPT:
        return
    for i, line in enumerate(f.stripped_lines, 1):
        if ERROR_TAXONOMY_TOKENS.search(line):
            yield Violation(
                f.path, i, "error-taxonomy",
                "library failure outside the typed error taxonomy; raise "
                "through QS_REQUIRE/QS_ASSERT (qs::ContractViolation) so "
                "the recovery and degradation seams can catch it — bare "
                "throw/abort/assert/exit either kills the process or "
                "throws a type the seams will not catch")


RULES = {
    "omp-confinement": rule_omp_confinement,
    "rng-discipline": rule_rng_discipline,
    "query-accounting": rule_query_accounting,
    "no-iostream-in-lib": rule_no_iostream_in_lib,
    "header-guard": rule_header_guard,
    "no-relative-include": rule_no_relative_include,
    "transcript-discipline": rule_transcript_discipline,
    "timing-discipline": rule_timing_discipline,
    "no-std-function-in-kernels": rule_no_std_function_in_kernels,
    "kill-matrix-completeness": rule_kill_matrix_completeness,
    "tv-exhaustiveness": rule_tv_exhaustiveness,
    "lock-discipline": rule_lock_discipline,
    "simd-discipline": rule_simd_discipline,
    "ipc-discipline": rule_ipc_discipline,
    "error-taxonomy": rule_error_taxonomy,
}


# --- driver ----------------------------------------------------------------

def collect_files(root: Path, paths: list[str]) -> list[Path]:
    if paths:
        candidates: list[Path] = []
        for p in paths:
            path = Path(p)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                print(f"dqs_lint: no such file or directory: {p}",
                      file=sys.stderr)
                raise SystemExit(2)
            if path.is_dir():
                candidates.extend(sorted(path.rglob("*")))
            else:
                candidates.append(path)
    else:
        candidates = []
        for d in SCAN_DIRS:
            base = root / d
            if base.is_dir():
                candidates.extend(sorted(base.rglob("*")))
    out = []
    for path in candidates:
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        try:
            rel_parts = path.relative_to(root).parts
        except ValueError:
            rel_parts = path.parts
        if EXCLUDE_DIR in rel_parts:
            continue
        out.append(path)
    return out


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src tests bench "
                         "examples under --root)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    root = args.root.resolve()
    violations: list[Violation] = []
    checked = 0
    for path in collect_files(root, args.paths):
        try:
            f = File(path, root)
        except ValueError:
            # Outside the root; lint with a synthetic rel path.
            f = File(path, path.parent)
        checked += 1
        for rule, fn in RULES.items():
            for v in fn(f):
                if not f.allowed(v.line, rule):
                    violations.append(v)

    for v in sorted(violations, key=lambda v: (str(v.path), v.line, v.rule)):
        print(v.render(root))
    if violations:
        print(f"dqs_lint: {len(violations)} violation(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"dqs_lint: OK ({checked} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
