#!/usr/bin/env python3
"""Self-test for tools/dqs_lint.py.

Runs the linter over tests/lint_fixtures, which contains one deliberate
violation of every rule plus negative controls (an allowed apps stdio
write, a suppressed RNG use, and a clean header whose comments/strings
contain violation-shaped tokens). Asserts that each violation is reported
at the right file and with the right rule id, and that the controls are
NOT reported — so the linter itself is tested, not just run.
"""

import re
import subprocess
import sys
import unittest
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "dqs_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

EXPECTED = {
    ("src/qsim/bad_omp.cpp", "omp-confinement"),
    ("src/sampling/bad_rng.cpp", "rng-discipline"),
    ("src/sampling/bad_accounting.cpp", "query-accounting"),
    ("src/qsim/bad_iostream.cpp", "no-iostream-in-lib"),
    ("src/qsim/bad_guard.hpp", "header-guard"),
    ("src/distdb/bad_relative.cpp", "no-relative-include"),
    ("src/sampling/bad_transcript.cpp", "transcript-discipline"),
    ("src/qsim/bad_timing.cpp", "timing-discipline"),
    ("src/qsim/bad_function_kernel.cpp", "no-std-function-in-kernels"),
    ("src/analysis/bad_registry.cpp", "kill-matrix-completeness"),
    ("src/qsim/bad_op_registry.cpp", "tv-exhaustiveness"),
    ("src/qsim/bad_scalar_loop.cpp", "simd-discipline"),
    ("src/estimation/bad_error.cpp", "error-taxonomy"),
    ("src/distdb/bad_ipc_read.cpp", "ipc-discipline"),
    ("src/serving/bad_lock.cpp", "lock-discipline"),
}

CONTROL_FILES = {
    "src/apps/ok_app_io.cpp",
    "src/common/ok_suppressed.cpp",
    "src/common/ok_clean.hpp",
    "src/analysis/mutations.cpp",
    "src/analysis/tv_handled.cpp",
}

REPORT_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z0-9-]+)\]")


def run_lint(*args):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, check=False)


class DqsLintSelfTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.result = run_lint("--root", str(FIXTURES))
        cls.reported = set()
        cls.by_file = {}
        for line in cls.result.stdout.splitlines():
            m = REPORT_RE.match(line)
            if m:
                cls.reported.add((m.group("file"), m.group("rule")))
                cls.by_file.setdefault(m.group("file"), set()).add(
                    m.group("rule"))

    def test_exit_code_signals_violations(self):
        self.assertEqual(self.result.returncode, 1, self.result.stdout)

    def test_each_rule_fires_on_its_fixture(self):
        for expected in sorted(EXPECTED):
            with self.subTest(expected=expected):
                self.assertIn(expected, self.reported,
                              f"missing report; got: {self.reported}")

    def test_controls_are_not_flagged(self):
        for control in sorted(CONTROL_FILES):
            with self.subTest(control=control):
                self.assertNotIn(control, self.by_file,
                                 f"control flagged: {self.by_file}")

    def test_no_unexpected_reports(self):
        self.assertEqual(self.reported, EXPECTED)

    def test_repo_is_clean(self):
        result = run_lint("--root", str(REPO))
        self.assertEqual(result.returncode, 0,
                         f"repo lint failed:\n{result.stdout}")

    def test_list_rules_matches_fixture_coverage(self):
        result = run_lint("--list-rules")
        self.assertEqual(result.returncode, 0)
        rules = set(result.stdout.split())
        covered = {rule for _, rule in EXPECTED}
        self.assertEqual(rules, covered,
                         "every rule must have a violation fixture")


if __name__ == "__main__":
    unittest.main()
