#!/usr/bin/env python3
"""Validate Chrome trace-event JSON written by telemetry::write_chrome_trace.

Checks, for each file given:

  * the document parses as JSON with a traceEvents list;
  * every event is an object with name (string), ph (string), pid and
    tid (integers);
  * every complete event (ph == "X") additionally has numeric ts and a
    non-negative dur, plus a cat string;
  * per thread, the END timestamps (ts + dur) of complete events are
    non-decreasing in file order — the tracer records a span when it
    FINISHES, so finish order per thread is the buffer order (start
    order is not monotone for nested spans, by design);
  * optionally --require-events N: at least N complete events present.

Usage: tools/validate_trace.py [--require-events N] FILE...
Exit code: 0 all valid, 1 any invalid, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def validate_doc(doc, *, require_events: int = 0) -> list[str]:
    """Return a list of problems (empty == valid trace document)."""
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document is not an object with a traceEvents list"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    complete = 0
    last_end_per_tid: dict[int, float] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where} missing name")
        if not isinstance(ev.get("ph"), str):
            problems.append(f"{where} missing ph")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where} missing integer {key}")
        if ev["ph"] != "X":
            continue  # metadata events ("M") carry no timing
        complete += 1
        if not isinstance(ev.get("cat"), str):
            problems.append(f"{where} complete event missing cat")
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            problems.append(f"{where} ts is not a number")
            continue
        if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                or dur < 0):
            problems.append(f"{where} dur is not a non-negative number")
            continue
        tid = ev.get("tid")
        if isinstance(tid, int):
            end = ts + dur
            if end < last_end_per_tid.get(tid, float("-inf")):
                problems.append(
                    f"{where} end timestamp goes backwards on tid {tid}")
            last_end_per_tid[tid] = max(
                last_end_per_tid.get(tid, float("-inf")), end)
    if complete < require_events:
        problems.append(
            f"only {complete} complete event(s), require {require_events}")
    return problems


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--require-events", type=int, default=0, metavar="N",
                    help="fail unless at least N complete events present")
    ap.add_argument("files", nargs="+", type=Path)
    args = ap.parse_args(argv)

    bad = 0
    for path in args.files:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable: {e}")
            bad += 1
            continue
        problems = validate_doc(doc, require_events=args.require_events)
        if problems:
            bad += 1
            for p in problems:
                print(f"{path}: {p}")
        else:
            n = sum(1 for ev in doc["traceEvents"]
                    if isinstance(ev, dict) and ev.get("ph") == "X")
            tids = {ev.get("tid") for ev in doc["traceEvents"]
                    if isinstance(ev, dict) and ev.get("ph") == "X"}
            print(f"{path}: ok ({n} events on {len(tids)} thread(s))")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
