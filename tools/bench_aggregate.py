#!/usr/bin/env python3
"""Aggregate per-bench dqs-bench-v1 documents into one suite document.

Reads the JSON files written by the benches' --json flag, validates each
one (tools/validate_bench_json.py rules), and writes a single
dqs-bench-suite-v1 document — the repo's machine-readable perf
trajectory, committed at the repo root as BENCH_sampling.json so the
paper-shaped tables are diffable across PRs:

  {"schema": "dqs-bench-suite-v1",
   "benches": [<dqs-bench-v1 documents, sorted by bench id>]}

The suite document deliberately carries NO timestamp or host field:
regenerating it from the same code must be byte-identical, so a diff in
review is a genuine result change, never clock churn.

Usage: tools/bench_aggregate.py --out BENCH_sampling.json FILE...
Exit code: 0 written, 1 validation failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from validate_bench_json import validate_doc

SUITE_SCHEMA = "dqs-bench-suite-v1"


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, required=True,
                    help="aggregate output path (e.g. BENCH_sampling.json)")
    ap.add_argument("--allow-failed", action="store_true",
                    help="include documents whose bench exited non-zero")
    ap.add_argument("files", nargs="+", type=Path)
    args = ap.parse_args(argv)

    docs = []
    bad = 0
    for path in args.files:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable: {e}")
            bad += 1
            continue
        problems = validate_doc(doc, allow_failed=args.allow_failed)
        if problems:
            bad += 1
            for p in problems:
                print(f"{path}: {p}")
            continue
        docs.append(doc)

    if bad:
        print(f"bench_aggregate: {bad} invalid input(s), nothing written",
              file=sys.stderr)
        return 1

    ids = [doc["bench"] for doc in docs]
    dupes = {b for b in ids if ids.count(b) > 1}
    if dupes:
        print(f"bench_aggregate: duplicate bench id(s): {sorted(dupes)}",
              file=sys.stderr)
        return 1

    docs.sort(key=lambda d: d["bench"])
    suite = {"schema": SUITE_SCHEMA, "benches": docs}
    args.out.write_text(json.dumps(suite, indent=1, sort_keys=False) + "\n",
                        encoding="utf-8")
    tables = sum(len(d["tables"]) for d in docs)
    print(f"{args.out}: {len(docs)} bench(es), {tables} table(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
