#!/usr/bin/env python3
"""Validate dqs-bench-v1 JSON documents (bench --json output).

Checks, for each file given:

  * the document parses as JSON and carries schema == "dqs-bench-v1";
  * required keys: bench (string), claim (string), exit_code (int or
    null), tables (list);
  * every table has name (string), headers (list of strings) and rows
    whose width equals the header count;
  * row cells are numbers, strings or booleans only (no nesting).

By default a non-zero recorded exit_code fails validation (the bench's
own claim check failed); pass --allow-failed to accept such documents,
e.g. when archiving a deliberately red run.

Usage: tools/validate_bench_json.py [--allow-failed] FILE...
Exit code: 0 all valid, 1 any invalid, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "dqs-bench-v1"


def validate_doc(doc, *, allow_failed: bool = False) -> list[str]:
    """Return a list of problems (empty == valid dqs-bench-v1 document)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in ("bench", "claim"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            problems.append(f"missing or non-string {key!r}")
    if "exit_code" not in doc:
        problems.append("missing exit_code")
    else:
        code = doc["exit_code"]
        if code is not None and not isinstance(code, int):
            problems.append("exit_code must be an integer or null")
        elif code is None:
            problems.append("exit_code is null (bench did not finish)")
        elif code != 0 and not allow_failed:
            problems.append(f"bench recorded failure exit_code {code}")
    tables = doc.get("tables")
    if not isinstance(tables, list):
        return problems + ["tables is not a list"]
    for t, table in enumerate(tables):
        where = f"tables[{t}]"
        if not isinstance(table, dict):
            problems.append(f"{where} is not an object")
            continue
        if not isinstance(table.get("name"), str) or not table.get("name"):
            problems.append(f"{where} missing name")
        headers = table.get("headers")
        if (not isinstance(headers, list)
                or not all(isinstance(h, str) for h in headers)):
            problems.append(f"{where} headers must be a list of strings")
            continue
        rows = table.get("rows")
        if not isinstance(rows, list):
            problems.append(f"{where} rows is not a list")
            continue
        for r, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(headers):
                problems.append(
                    f"{where} rows[{r}] width != {len(headers)} headers")
            elif not all(isinstance(c, (int, float, str, bool))
                         for c in row):
                problems.append(f"{where} rows[{r}] has a non-scalar cell")
    return problems


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--allow-failed", action="store_true",
                    help="accept documents whose bench exited non-zero")
    ap.add_argument("files", nargs="+", type=Path)
    args = ap.parse_args(argv)

    bad = 0
    for path in args.files:
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable: {e}")
            bad += 1
            continue
        problems = validate_doc(doc, allow_failed=args.allow_failed)
        if problems:
            bad += 1
            for p in problems:
                print(f"{path}: {p}")
        else:
            tables = doc["tables"]
            rows = sum(len(t.get("rows", [])) for t in tables)
            print(f"{path}: ok ({doc['bench']}: {len(tables)} table(s), "
                  f"{rows} row(s))")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
