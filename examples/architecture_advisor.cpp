// Architecture advisor — "which query model should my deployment use?"
//
// Section 6 leaves the choice of network architecture open; this tool
// answers it empirically for YOUR parameters. Given the store shape
// (N, n, M, ν) and the channel physics (per-round decoherence from
// storage latency, per-qubit-trip decoherence from transport), it
// simulates the sequential, parallel and hierarchical samplers and ranks
// them by expected output fidelity at equal task, reporting the query /
// round / wire ledgers alongside.
//
//   ./architecture_advisor [--universe 128] [--machines 8] [--total 32]
//                          [--extra-capacity 2] [--p-round 0.01]
//                          [--p-trip 0.0005] [--trajectories 32]
//                          [--seed 5]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "distdb/communication.hpp"
#include "distdb/workload.hpp"
#include "sampling/hierarchical.hpp"
#include "sampling/noisy_sampler.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const CliArgs args(argc, argv);
  const auto universe = args.get("universe", std::uint64_t{128});
  const auto machines = args.get("machines", std::uint64_t{8});
  const auto total = args.get("total", std::uint64_t{32});
  const auto extra = args.get("extra-capacity", std::uint64_t{2});
  const auto p_round = args.get("p-round", 0.01);
  const auto p_trip = args.get("p-trip", 0.0005);
  const auto trajectories = args.get("trajectories", std::uint64_t{32});
  const auto seed = args.get("seed", std::uint64_t{5});

  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + extra;
  const DistributedDatabase db(std::move(datasets), nu);

  std::printf("store: N=%llu n=%llu M=%llu nu=%llu | channel: p_round=%.4f "
              "p_trip=%.5f\n\n",
              (unsigned long long)universe, (unsigned long long)machines,
              (unsigned long long)db.total(), (unsigned long long)db.nu(),
              p_round, p_trip);

  NoiseModel noise;
  noise.dephasing_per_round = p_round;
  noise.dephasing_per_qubit_trip = p_trip;

  struct Candidate {
    std::string name;
    QueryMode mode;
  };
  const Candidate candidates[] = {
      {"sequential", QueryMode::kSequential},
      {"parallel", QueryMode::kParallel},
  };

  TextTable table({"architecture", "noisy_fid(mean)", "rounds(latency)",
                   "qubit_trips", "exact_queries"});
  std::string best = "—";
  double best_fid = -1.0;
  for (const auto& candidate : candidates) {
    Rng noise_rng(seed + 100);
    const auto noisy = run_noisy_sampler(db, candidate.mode, noise,
                                         trajectories, noise_rng);
    const auto exact = candidate.mode == QueryMode::kSequential
                           ? run_sequential_sampler(db)
                           : run_parallel_sampler(db);
    const auto wire = communication_report(db, exact.stats);
    if (noisy.mean_fidelity > best_fid) {
      best_fid = noisy.mean_fidelity;
      best = candidate.name;
    }
    table.add_row({candidate.name, TextTable::cell(noisy.mean_fidelity, 4),
                   TextTable::cell(wire.rounds),
                   TextTable::cell(wire.qubits_moved),
                   TextTable::cell(candidate.mode == QueryMode::kSequential
                                       ? exact.stats.total_sequential()
                                       : exact.stats.parallel_rounds)});
  }

  // Hierarchical middle grounds, simulated under the same channel.
  for (const std::size_t groups : {2u, 4u}) {
    if (groups >= machines) continue;
    Rng noise_rng(seed + 200 + groups);
    const auto partition = contiguous_partition(machines, groups);
    const auto noisy = run_noisy_hierarchical_sampler(
        db, partition, noise, trajectories, noise_rng);
    const std::string name = "hierarchical g=" + std::to_string(groups);
    if (noisy.mean_fidelity > best_fid) {
      best_fid = noisy.mean_fidelity;
      best = name;
    }
    table.add_row({name, TextTable::cell(noisy.mean_fidelity, 4),
                   TextTable::cell(noisy.group_rounds), "—",
                   TextTable::cell(noisy.group_rounds)});
  }
  table.print(std::cout, "candidate architectures");

  std::printf("\nrecommendation under this channel: **%s** "
              "(mean fidelity %.4f over %llu trajectories)\n",
              best.c_str(), best_fid, (unsigned long long)trajectories);
  std::printf("rule of thumb: storage/latency-dominated decoherence -> "
              "parallel; transport-dominated -> sequential; mixed -> try "
              "a hierarchy.\n");
  return 0;
}
