// Federated frequency estimation — the paper's motivating workload shape.
//
// n sites (say, hospitals) each hold a shard of skewed categorical records
// (Zipf-distributed keys; sites may share keys — the generality Section 1
// stresses). A coordinator wants coherent samples from the FEDERATED
// frequency distribution c_i/M without any site shipping its raw data:
// each site only exposes the counting oracle O_j of Eq. (1).
//
// The example contrasts three strategies on the same data:
//   1. quantum parallel sampling  (Θ(√(νN/M)) rounds, exact state),
//   2. quantum sequential sampling (Θ(n√(νN/M)) queries),
//   3. classical rejection sampling (Θ(n·νN/M) probes PER SAMPLE).
//
//   ./federated_frequency [--universe 256] [--sites 4] [--records 96]
//                         [--skew 1.2] [--samples 64] [--seed 7]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "distdb/workload.hpp"
#include "sampling/classical.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  const qs::CliArgs args(argc, argv);
  const auto universe = args.get("universe", std::uint64_t{256});
  const auto sites = args.get("sites", std::uint64_t{4});
  const auto records = args.get("records", std::uint64_t{96});
  const auto skew = args.get("skew", 1.2);
  const auto samples = args.get("samples", std::uint64_t{64});
  const auto seed = args.get("seed", std::uint64_t{7});

  qs::Rng rng(seed);
  auto shards = qs::workload::zipf(universe, sites, records, skew, rng);
  const auto nu = qs::min_capacity(shards);
  qs::DistributedDatabase db(std::move(shards), nu);

  std::printf("federated store: N=%zu keys, n=%zu sites, M=%llu records, "
              "nu=%llu\n\n",
              db.universe(), db.num_machines(),
              (unsigned long long)db.total(), (unsigned long long)db.nu());

  // Quantum: ONE coherent preparation yields a reusable sampling state;
  // producing k independent samples costs k preparations.
  const auto par = qs::run_parallel_sampler(db);
  const auto seq = qs::run_sequential_sampler(db);
  std::printf("quantum parallel  : %6llu rounds/sample   (fidelity %.9f)\n",
              (unsigned long long)par.stats.parallel_rounds, par.fidelity);
  std::printf("quantum sequential: %6llu queries/sample  (fidelity %.9f)\n",
              (unsigned long long)seq.stats.total_sequential(), seq.fidelity);

  // Classical rejection sampling under the same multiplicity-probe access.
  qs::Rng crng(seed + 1);
  const auto classical = qs::classical_rejection_sampling(
      db, static_cast<std::size_t>(samples), crng);
  std::printf("classical rejection: %.1f probes/sample over %llu samples\n",
              static_cast<double>(classical.queries) /
                  static_cast<double>(samples),
              (unsigned long long)samples);

  const double quantum_cost =
      static_cast<double>(seq.stats.total_sequential());
  const double classical_cost = static_cast<double>(classical.queries) /
                                static_cast<double>(samples);
  std::printf("\nper-sample speedup (classical/quantum, sequential): %.1fx\n",
              classical_cost / quantum_cost);
  std::printf("theory: classical n*nuN/M = %.0f, quantum ~ (pi/2+1) n*sqrt(nuN/M) = %.0f\n",
              double(db.num_machines()) * double(db.nu()) * double(universe) /
                  double(db.total()),
              (1.57 + 1.0) * double(db.num_machines()) *
                  std::sqrt(double(db.nu()) * double(universe) /
                            double(db.total())));
  return seq.fidelity > 1.0 - 1e-9 ? 0 : 1;
}
