// dqs — command-line driver for the library.
//
// Subcommand-style interface over the public API, working on databases in
// the dqsdb text format (see distdb/serialize.hpp):
//
//   ./dqs_cli --cmd generate --out db.txt [--workload zipf|uniform|disjoint]
//             [--universe 64] [--machines 4] [--total 96] [--seed 1]
//   ./dqs_cli --cmd info     --db db.txt
//   ./dqs_cli --cmd sample   --db db.txt [--mode seq|par] [--shots 10]
//   ./dqs_cli --cmd count    --db db.txt [--rounds 7] [--shots 32]
//   ./dqs_cli --cmd verify   --db db.txt      # fidelity + query audit
//   ./dqs_cli --cmd mean     --db db.txt [--below 32]   # E[1{key < below}]
//   ./dqs_cli --cmd member   --db db.txt --key 7        # is key present?
//   ./dqs_cli --cmd schedule --db db.txt [--mode seq|par] # compile + audit
//
// With no --cmd, runs a self-demo (generate → info → sample → count) in a
// temporary file.
#include <cstdio>
#include <string>

#include "apps/mean_estimation.hpp"
#include "apps/subset_sampling.hpp"
#include "common/cli.hpp"
#include "distdb/communication.hpp"
#include "distdb/serialize.hpp"
#include "distdb/transport.hpp"
#include "distdb/workload.hpp"
#include "estimation/amplitude_estimation.hpp"
#include "qsim/measure.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"

namespace {

using namespace qs;

int cmd_generate(const CliArgs& args) {
  const auto out = args.get("out", std::string("db.txt"));
  const auto kind = args.get("workload", std::string("uniform"));
  const auto universe = args.get("universe", std::uint64_t{64});
  const auto machines = args.get("machines", std::uint64_t{4});
  const auto total = args.get("total", std::uint64_t{96});
  const auto seed = args.get("seed", std::uint64_t{1});

  Rng rng(seed);
  std::vector<Dataset> datasets;
  if (kind == "zipf") {
    datasets = workload::zipf(universe, machines, total, 1.2, rng);
  } else if (kind == "disjoint") {
    datasets = workload::disjoint_partition(
        universe, machines, std::max<std::uint64_t>(1, total / universe));
  } else {
    datasets = workload::uniform_random(universe, machines, total, rng);
  }
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  save_database_file(out, db);
  std::printf("wrote %s: N=%zu n=%zu M=%llu nu=%llu (%s workload)\n",
              out.c_str(), db.universe(), db.num_machines(),
              (unsigned long long)db.total(), (unsigned long long)db.nu(),
              kind.c_str());
  return 0;
}

int cmd_info(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  std::printf("universe N      : %zu\n", db.universe());
  std::printf("machines n      : %zu\n", db.num_machines());
  std::printf("capacity nu     : %llu\n", (unsigned long long)db.nu());
  std::printf("cardinality M   : %llu\n", (unsigned long long)db.total());
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    const auto& data = db.machine(j).data();
    std::printf("  machine %zu    : M_j=%llu  m_j=%zu  max c_ij=%llu\n", j,
                (unsigned long long)data.total(), data.support_size(),
                (unsigned long long)data.max_multiplicity());
  }
  const double a = static_cast<double>(db.total()) /
                   (double(db.nu()) * double(db.universe()));
  const auto plan = plan_zero_error(std::max(a, 1e-12));
  std::printf("good amplitude a: %.6f — sampler would use %zu D "
              "applications\n",
              a, plan.d_applications());
  return 0;
}

int cmd_sample(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  const bool parallel = args.get("mode", std::string("seq")) == "par";
  const auto shots = args.get("shots", std::uint64_t{10});
  const auto result = parallel ? run_parallel_sampler(db)
                               : run_sequential_sampler(db);
  std::printf("fidelity %.12f; ", result.fidelity);
  if (parallel) {
    std::printf("%llu parallel rounds\n",
                (unsigned long long)result.stats.parallel_rounds);
  } else {
    std::printf("%llu sequential queries\n",
                (unsigned long long)result.stats.total_sequential());
  }
  Rng rng(args.get("seed", std::uint64_t{2}));
  std::printf("measurements:");
  for (std::uint64_t s = 0; s < shots; ++s) {
    std::printf(" %zu",
                measure_register(result.state, result.registers.elem, rng));
  }
  std::printf("\n");
  return result.fidelity > 1.0 - 1e-9 ? 0 : 1;
}

int cmd_count(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  const auto rounds = args.get("rounds", std::uint64_t{7});
  const auto shots = args.get("shots", std::uint64_t{32});
  Rng rng(args.get("seed", std::uint64_t{3}));
  const auto estimate = estimate_total_count(
      db, QueryMode::kParallel, exponential_schedule(rounds, shots), rng);
  std::printf("M_hat = %.2f (true %llu), %llu parallel rounds spent\n",
              estimate.m_hat, (unsigned long long)db.total(),
              (unsigned long long)estimate.amplitude.oracle_cost);
  return 0;
}

int cmd_verify(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  const auto seq = run_sequential_sampler(db);
  const auto par = run_parallel_sampler(db);
  const auto seq_wire = communication_report(db, seq.stats);
  const auto par_wire = communication_report(db, par.stats);
  std::printf("sequential: fidelity %.12f, %llu queries, %llu qubit-trips\n",
              seq.fidelity, (unsigned long long)seq.stats.total_sequential(),
              (unsigned long long)seq_wire.qubits_moved);
  std::printf("parallel  : fidelity %.12f, %llu rounds,  %llu qubit-trips\n",
              par.fidelity, (unsigned long long)par.stats.parallel_rounds,
              (unsigned long long)par_wire.qubits_moved);
  const bool ok = seq.fidelity > 1.0 - 1e-9 && par.fidelity > 1.0 - 1e-9;
  std::printf("verdict: %s\n", ok ? "EXACT" : "DEGRADED");
  return ok ? 0 : 1;
}

int cmd_mean(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  const auto below = args.get("below", db.universe() / 2);
  Rng rng(args.get("seed", std::uint64_t{4}));
  const auto estimate = estimate_mean(
      db, [&](std::size_t i) { return i < below ? 1.0 : 0.0; },
      QueryMode::kParallel, exponential_schedule(7, 32), rng);
  double truth = 0.0;
  const auto p = db.target_distribution();
  for (std::size_t i = 0; i < below && i < p.size(); ++i) truth += p[i];
  std::printf("E[key < %llu] = %.4f (true %.4f), %llu parallel rounds\n",
              (unsigned long long)below, estimate.mean_hat, truth,
              (unsigned long long)estimate.oracle_cost);
  return 0;
}

int cmd_member(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  const auto key = args.get("key", std::uint64_t{0});
  Rng rng(args.get("seed", std::uint64_t{5}));
  const auto result = distributed_membership(
      db, key, QueryMode::kSequential, exponential_schedule(7, 32), rng);
  std::printf("key %llu: %s (post-sampling mass %.4f; true count %llu)\n",
              (unsigned long long)key,
              result.present ? "PRESENT" : "absent", result.mass,
              (unsigned long long)db.total_count(key));
  return 0;
}

int cmd_schedule(const CliArgs& args) {
  const auto db = load_database_file(args.get("db", std::string("db.txt")));
  const bool parallel = args.get("mode", std::string("seq")) == "par";
  const auto mode = parallel ? QueryMode::kParallel : QueryMode::kSequential;
  const auto params = public_params_of(db);
  const auto schedule = compile_schedule(params, mode);
  const auto violation =
      TransportSession::validate_schedule(schedule, params.machines);
  std::printf("compiled %zu oracle events from public params (N=%zu n=%zu "
              "nu=%llu M=%llu)\n",
              schedule.size(), params.universe, params.machines,
              (unsigned long long)params.nu,
              (unsigned long long)params.total);
  std::printf("transport audit: %s\n",
              violation ? violation->c_str() : "protocol-clean");
  if (schedule.size() <= 64) std::printf("%s\n", schedule.to_string().c_str());
  return violation ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const qs::CliArgs args(argc, argv);
  const auto cmd = args.get("cmd", std::string(""));
  if (cmd == "generate") return cmd_generate(args);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "sample") return cmd_sample(args);
  if (cmd == "count") return cmd_count(args);
  if (cmd == "verify") return cmd_verify(args);
  if (cmd == "mean") return cmd_mean(args);
  if (cmd == "member") return cmd_member(args);
  if (cmd == "schedule") return cmd_schedule(args);

  // Self-demo.
  std::printf("== dqs self-demo (use --cmd for real work) ==\n\n");
  const char* demo_db = "/tmp/dqs_cli_demo.db";
  {
    const char* argv_gen[] = {"dqs", "--out", demo_db, "--workload", "zipf"};
    if (cmd_generate(qs::CliArgs(5, argv_gen)) != 0) return 1;
  }
  const char* argv_db[] = {"dqs", "--db", demo_db};
  const qs::CliArgs db_args(3, argv_db);
  std::printf("\n-- info --\n");
  if (cmd_info(db_args) != 0) return 1;
  std::printf("\n-- sample --\n");
  if (cmd_sample(db_args) != 0) return 1;
  std::printf("\n-- count --\n");
  if (cmd_count(db_args) != 0) return 1;
  std::printf("\n-- verify --\n");
  return cmd_verify(db_args);
}
