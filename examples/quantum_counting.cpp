// Quantum counting — learning the public parameters the sampler needs.
//
// Theorem 4.3's plan needs the TOTAL cardinality M (the amplitude √(M/νN)
// "is known"). This example shows the full bootstrap a deployment would
// run when M is not known a priori:
//
//   1. estimate M with maximum-likelihood amplitude estimation (quantum
//      counting, Heisenberg precision) using the same oracles,
//   2. estimate each machine's load M_j the same way (capacity planning /
//      hot-shard detection),
//   3. plan and run the exact sampler with the estimated M and report the
//      realised fidelity.
//
//   ./quantum_counting [--universe 128] [--machines 4] [--total 48]
//                      [--rounds 7] [--shots 48] [--seed 9]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "distdb/workload.hpp"
#include "estimation/amplitude_estimation.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  const qs::CliArgs args(argc, argv);
  const auto universe = args.get("universe", std::uint64_t{128});
  const auto machines = args.get("machines", std::uint64_t{4});
  const auto total = args.get("total", std::uint64_t{48});
  const auto rounds = args.get("rounds", std::uint64_t{7});
  const auto shots = args.get("shots", std::uint64_t{48});
  const auto seed = args.get("seed", std::uint64_t{9});

  qs::Rng rng(seed);
  auto datasets = qs::workload::zipf(universe, machines, total, 1.1, rng);
  const auto nu = qs::min_capacity(datasets) + 1;
  qs::DistributedDatabase db(std::move(datasets), nu);

  std::printf("database: N=%zu n=%zu nu=%llu — true M=%llu (pretend we "
              "don't know it)\n\n",
              db.universe(), db.num_machines(), (unsigned long long)db.nu(),
              (unsigned long long)db.total());

  // 1. Quantum counting of M.
  const auto schedule = qs::exponential_schedule(rounds, shots);
  auto count = qs::estimate_total_count(db, qs::QueryMode::kParallel,
                                        schedule, rng);
  std::printf("quantum count: M_hat = %.2f  (true %llu), cost %llu parallel "
              "rounds over %zu shots\n",
              count.m_hat, (unsigned long long)db.total(),
              (unsigned long long)count.amplitude.oracle_cost,
              count.amplitude.total_shots);

  // Classical baseline at the same budget.
  const auto classical = qs::classical_count_estimate(
      db, count.amplitude.oracle_cost, rng);
  std::printf("classical at equal budget: M_hat = %.2f\n\n", classical.m_hat);

  // 2. Per-machine load estimates.
  std::printf("per-machine loads (capacity planning):\n");
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    const auto local = qs::estimate_machine_count(db, j, schedule, rng);
    std::printf("  machine %zu: M_%zu ≈ %6.2f   (true %llu)\n", j, j,
                local.m_hat,
                (unsigned long long)db.machine(j).data().total());
  }

  // 3. Plan the sampler from the ESTIMATE and measure the damage.
  const double a_hat = count.m_hat / (double(db.nu()) * double(db.universe()));
  const auto plan = qs::plan_zero_error(std::min(std::max(a_hat, 1e-9), 1.0));
  std::printf("\nplan from estimate: %zu iterations (exact plan would use "
              "%zu)\n",
              plan.full_iterations,
              qs::plan_zero_error(double(db.total()) /
                                  (double(db.nu()) * double(db.universe())))
                  .full_iterations);
  const auto exact = qs::run_sequential_sampler(db);
  std::printf("sampler with the true M: fidelity %.12f, %llu queries\n",
              exact.fidelity,
              (unsigned long long)exact.stats.total_sequential());
  return std::abs(count.m_hat - double(db.total())) <
                 0.25 * double(db.total()) + 3.0
             ? 0
             : 1;
}
