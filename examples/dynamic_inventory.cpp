// Dynamic distributed inventory — exercising Section 3's O(1) oracle
// updates.
//
// A retailer's inventory is sharded across n warehouse databases. Stock
// moves constantly: receiving (+1 multiplicity) and shipping (−1). The
// paper notes the counting oracle O_j is updated by left-multiplying the
// fixed shift U or U† — i.e. updates are CHEAP and never require rebuilding
// the database. This example streams random stock movements and, after each
// burst, draws a fresh quantum sample state to drive a "random audit"
// (pick a unit uniformly at random across all warehouses) — always exact,
// with query cost tracking √(νN/M) as the fill level changes.
//
//   ./dynamic_inventory [--skus 64] [--warehouses 4] [--initial 96]
//                       [--bursts 6] [--moves 24] [--seed 3]
#include <cstdio>

#include "common/cli.hpp"
#include "distdb/workload.hpp"
#include "qsim/measure.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  const qs::CliArgs args(argc, argv);
  const auto skus = args.get("skus", std::uint64_t{64});
  const auto warehouses = args.get("warehouses", std::uint64_t{4});
  const auto initial = args.get("initial", std::uint64_t{96});
  const auto bursts = args.get("bursts", std::uint64_t{6});
  const auto moves = args.get("moves", std::uint64_t{24});
  const auto seed = args.get("seed", std::uint64_t{3});

  qs::Rng rng(seed);
  auto stock = qs::workload::uniform_random(skus, warehouses, initial, rng);
  // Generous capacity so restocking has headroom.
  const auto nu = qs::min_capacity(stock) + 6;
  qs::DistributedDatabase db(std::move(stock), nu);

  std::printf("inventory: %zu SKUs x %zu warehouses, %llu units, capacity "
              "nu=%llu\n\n",
              db.universe(), db.num_machines(),
              (unsigned long long)db.total(), (unsigned long long)db.nu());
  std::printf("%-6s %-8s %-10s %-12s %-10s\n", "burst", "units", "a=M/nuN",
              "queries", "fidelity");

  bool all_exact = true;
  for (std::uint64_t b = 0; b < bursts; ++b) {
    // Stream stock movements (each is an O(1) oracle update).
    for (std::uint64_t m = 0; m < moves; ++m) {
      const auto w =
          static_cast<std::size_t>(rng.uniform_below(warehouses));
      const auto sku = static_cast<std::size_t>(rng.uniform_below(skus));
      const bool receiving = rng.bernoulli(0.55);
      if (receiving && db.total_count(sku) < db.nu() &&
          db.machine(w).data().count(sku) < db.machine(w).capacity()) {
        db.insert(w, sku);
      } else if (db.machine(w).data().count(sku) > 0) {
        db.erase(w, sku);
      }
    }
    if (db.total() == 0) {
      std::printf("%-6llu inventory empty, skipping audit\n",
                  (unsigned long long)b);
      continue;
    }

    // Random audit: fresh sampling state over the LIVE data.
    const auto result = qs::run_sequential_sampler(db);
    const double a = static_cast<double>(db.total()) /
                     (static_cast<double>(db.nu()) *
                      static_cast<double>(db.universe()));
    std::printf("%-6llu %-8llu %-10.4f %-12llu %-10.9f\n",
                (unsigned long long)b, (unsigned long long)db.total(), a,
                (unsigned long long)result.stats.total_sequential(),
                result.fidelity);
    all_exact = all_exact && result.fidelity > 1.0 - 1e-9;

    qs::Rng audit_rng(seed + 100 + b);
    const auto audited_sku =
        qs::measure_register(result.state, result.registers.elem, audit_rng);
    std::printf("       audit picked SKU %zu (joint stock %llu)\n",
                audited_sku,
                (unsigned long long)db.total_count(audited_sku));
  }
  return all_exact ? 0 : 1;
}
