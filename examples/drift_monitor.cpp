// Replica drift monitor — SWAP-test comparison of two live stores.
//
// Two replicas of a keyed store ingest the same logical stream, but
// replica B occasionally drops updates (a lossy link). The monitor
// periodically runs the quantum store comparison (apps/store_comparison):
// each check estimates the Bhattacharyya overlap of the two key
// distributions with a handful of SWAP-test shots, each shot costing one
// Grover-scaling preparation per store — no histogram is ever shipped or
// reconstructed. When the 95% interval's upper edge falls below the alarm
// threshold, the monitor flags the replica.
//
//   ./drift_monitor [--universe 64] [--rounds 8] [--per-round 30]
//                   [--drop 0.15] [--shots 800] [--threshold 0.98]
//                   [--seed 21]
#include <cstdio>

#include "apps/store_comparison.hpp"
#include "common/cli.hpp"
#include "distdb/workload.hpp"

int main(int argc, char** argv) {
  using namespace qs;
  const CliArgs args(argc, argv);
  const auto universe = args.get("universe", std::uint64_t{64});
  const auto rounds = args.get("rounds", std::uint64_t{8});
  const auto per_round = args.get("per-round", std::uint64_t{30});
  const auto drop = args.get("drop", 0.15);
  const auto shots = args.get("shots", std::uint64_t{800});
  const auto threshold = args.get("threshold", 0.98);
  const auto seed = args.get("seed", std::uint64_t{21});

  // Both replicas: 2 shards each, generous capacity for the stream.
  const std::uint64_t nu = per_round * rounds;
  DistributedDatabase replica_a(
      std::vector<Dataset>(2, Dataset(universe)), nu);
  DistributedDatabase replica_b(
      std::vector<Dataset>(2, Dataset(universe)), nu);

  Rng stream(seed);
  Rng swap_rng(seed + 1);
  const ZipfSampler keys(universe, 1.1);

  std::printf("monitoring two replicas, drop rate %.2f on B, alarm when "
              "overlap CI upper < %.3f\n\n",
              drop, threshold);
  std::printf("%-6s %-8s %-8s %-10s %-22s %-s\n", "round", "A_count",
              "B_count", "overlap", "95%-interval", "verdict");

  bool alarmed = false;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::uint64_t e = 0; e < per_round; ++e) {
      const auto key = keys.sample(stream);
      const auto shard = static_cast<std::size_t>(stream.uniform_below(2));
      replica_a.insert(shard, key);
      // B's loss is BIASED: it drops updates for hot keys (< N/4) — an
      // unbiased uniform drop would leave the distribution unchanged and
      // there would be nothing to detect.
      const bool lossy = key < universe / 4 && stream.bernoulli(drop);
      if (!lossy) replica_b.insert(shard, key);
    }
    const auto check = compare_stores(replica_a, replica_b,
                                      QueryMode::kParallel,
                                      static_cast<std::size_t>(shots),
                                      swap_rng);
    const bool alarm = check.overlap_hi < threshold;
    alarmed = alarmed || alarm;
    std::printf("%-6llu %-8llu %-8llu %-10.4f [%.4f, %.4f]       %s\n",
                (unsigned long long)round,
                (unsigned long long)replica_a.total(),
                (unsigned long long)replica_b.total(),
                check.overlap_estimate, check.overlap_lo, check.overlap_hi,
                alarm ? "DRIFT ALARM" : "ok");
  }

  std::printf("\n%s after %llu rounds (true final overlap: %.4f)\n",
              alarmed ? "drift was detected" : "no drift detected",
              (unsigned long long)rounds,
              compare_stores(replica_a, replica_b, QueryMode::kParallel, 10,
                             swap_rng)
                  .true_overlap);
  return 0;
}
