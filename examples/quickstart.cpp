// Quickstart: distributed quantum sampling in ~40 lines.
//
// Builds a small distributed database (3 machines, universe of 32 keys),
// runs both of the paper's samplers, and verifies the output: the final
// state encodes √(c_i/M) amplitudes exactly, using Θ(n√(νN/M)) sequential
// queries or Θ(√(νN/M)) parallel rounds.
//
//   ./quickstart [--universe 32] [--machines 3] [--total 48] [--seed 1]
#include <cstdio>

#include "common/cli.hpp"
#include "distdb/workload.hpp"
#include "qsim/measure.hpp"
#include "sampling/samplers.hpp"

int main(int argc, char** argv) {
  const qs::CliArgs args(argc, argv);
  const auto universe = args.get("universe", std::uint64_t{32});
  const auto machines = args.get("machines", std::uint64_t{3});
  const auto total = args.get("total", std::uint64_t{48});
  const auto seed = args.get("seed", std::uint64_t{1});

  // 1. Distribute a dataset across machines (uniformly at random here).
  qs::Rng rng(seed);
  auto datasets = qs::workload::uniform_random(universe, machines, total, rng);
  const auto nu = qs::min_capacity(datasets) + 1;
  qs::DistributedDatabase db(std::move(datasets), nu);

  std::printf("database: N=%zu  n=%zu  M=%llu  nu=%llu\n", db.universe(),
              db.num_machines(), (unsigned long long)db.total(),
              (unsigned long long)db.nu());

  // 2. Sequential sampling (Theorem 4.3).
  const auto seq = qs::run_sequential_sampler(db);
  std::printf("sequential: fidelity=%.12f  queries=%llu  (D applied %zu times)\n",
              seq.fidelity, (unsigned long long)seq.stats.total_sequential(),
              seq.plan.d_applications());

  // 3. Parallel sampling (Theorem 4.5).
  const auto par = qs::run_parallel_sampler(db);
  std::printf("parallel:   fidelity=%.12f  rounds=%llu\n", par.fidelity,
              (unsigned long long)par.stats.parallel_rounds);

  // 4. Measuring the output state samples the joint database (Section 3).
  qs::Rng shots(seed + 1);
  const auto hist =
      qs::histogram_register(seq.state, seq.registers.elem, shots, 20000);
  const double tv = qs::total_variation(qs::normalize_histogram(hist),
                                        db.target_distribution());
  std::printf("20000 measurements vs c_i/M: total variation = %.4f\n", tv);
  return tv < 0.05 && seq.fidelity > 1.0 - 1e-9 ? 0 : 1;
}
