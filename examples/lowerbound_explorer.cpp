// Lower-bound explorer — watch the adversary argument happen.
//
// For a chosen hard input (machine k holding `support` elements with
// `multiplicity` copies each; everything else empty), this tool runs the
// paper's own sampler in lockstep against the machine-k-emptied input and
// prints the measured potential D_t (Eq. 11/12) next to the two bounds the
// proof of Theorem 5.1 plays against each other:
//
//   ceiling  4 (m_k/N) t^2      (Lemma 5.8 — information spreads slowly)
//   floor    M_k / (2M)         (Lemma B.4 — success forces separation)
//
// The last column marks the first t where the ceiling clears the floor:
// below that t NO oblivious algorithm can reach fidelity > 9/16.
//
//   ./lowerbound_explorer [--universe 64] [--machines 2] [--k 0]
//                         [--support 4] [--multiplicity 3] [--samples 12]
//                         [--parallel] [--seed 11]
#include <cstdio>

#include "common/cli.hpp"
#include "lowerbound/potential.hpp"

int main(int argc, char** argv) {
  const qs::CliArgs args(argc, argv);
  const auto universe = args.get("universe", std::uint64_t{64});
  const auto machines = args.get("machines", std::uint64_t{2});
  const auto k = args.get("k", std::uint64_t{0});
  const auto support = args.get("support", std::uint64_t{4});
  const auto multiplicity = args.get("multiplicity", std::uint64_t{3});
  const auto samples = args.get("samples", std::uint64_t{12});
  const bool parallel = args.get("parallel", false);
  const auto seed = args.get("seed", std::uint64_t{11});

  const auto base = qs::make_canonical_hard_input(
      universe, machines, k, support, multiplicity);
  const auto check = qs::check_hard_input(base, k, multiplicity, multiplicity,
                                          0.5, 0.5);
  std::printf("hard input: N=%llu n=%llu k=%llu m_k=%llu kappa_k=%llu  "
              "(alpha=%.2f beta=%.2f %s)\n\n",
              (unsigned long long)universe, (unsigned long long)machines,
              (unsigned long long)k, (unsigned long long)support,
              (unsigned long long)multiplicity, check.alpha, check.beta,
              check.satisfied ? "OK" : check.violation.c_str());

  qs::Rng rng(seed);
  qs::PotentialOptions options;
  options.mode = parallel ? qs::QueryMode::kParallel
                          : qs::QueryMode::kSequential;
  options.family_samples = static_cast<std::size_t>(samples);
  const auto result =
      qs::measure_potential(base, k, multiplicity, options, rng);

  std::printf("family members sampled: %zu   mean final fidelity: %.9f\n",
              result.family_members, result.mean_final_fidelity);
  std::printf("floor M_k/2M = %.4f   theoretical crossover t* = %llu\n\n",
              result.floor(),
              (unsigned long long)result.crossover(result.floor()));

  std::printf("%-6s %-12s %-12s %-8s\n", "t", "D_t", "ceiling", "");
  const auto crossover = result.crossover(result.floor());
  for (std::size_t t = 0; t < result.d_t.size(); ++t) {
    std::printf("%-6zu %-12.6f %-12.4f %s\n", t + 1, result.d_t[t],
                result.ceiling(t + 1),
                (t + 1 == crossover ? "<- ceiling reaches floor" : ""));
  }
  std::printf("\nfinal D_t = %.4f >= floor %.4f : %s\n", result.d_t.back(),
              result.floor(),
              result.d_t.back() >= result.floor() - 1e-9 ? "yes (Lemma 5.7)"
                                                         : "VIOLATION");
  return result.d_t.back() >= result.floor() - 1e-9 ? 0 : 1;
}
