file(REMOVE_RECURSE
  "CMakeFiles/test_density.dir/test_density.cpp.o"
  "CMakeFiles/test_density.dir/test_density.cpp.o.d"
  "test_density"
  "test_density.pdb"
  "test_density[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
