file(REMOVE_RECURSE
  "CMakeFiles/test_gates.dir/test_gates.cpp.o"
  "CMakeFiles/test_gates.dir/test_gates.cpp.o.d"
  "test_gates"
  "test_gates.pdb"
  "test_gates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
