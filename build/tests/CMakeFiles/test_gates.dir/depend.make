# Empty dependencies file for test_gates.
# This may be replaced when dependencies are built.
