file(REMOVE_RECURSE
  "CMakeFiles/test_store_comparison.dir/test_store_comparison.cpp.o"
  "CMakeFiles/test_store_comparison.dir/test_store_comparison.cpp.o.d"
  "test_store_comparison"
  "test_store_comparison.pdb"
  "test_store_comparison[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
