# Empty compiler generated dependencies file for test_store_comparison.
# This may be replaced when dependencies are built.
