file(REMOVE_RECURSE
  "CMakeFiles/test_full_parallel_potential.dir/test_full_parallel_potential.cpp.o"
  "CMakeFiles/test_full_parallel_potential.dir/test_full_parallel_potential.cpp.o.d"
  "test_full_parallel_potential"
  "test_full_parallel_potential.pdb"
  "test_full_parallel_potential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_full_parallel_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
