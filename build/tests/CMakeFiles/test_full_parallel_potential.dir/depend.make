# Empty dependencies file for test_full_parallel_potential.
# This may be replaced when dependencies are built.
