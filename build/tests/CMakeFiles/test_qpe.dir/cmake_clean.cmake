file(REMOVE_RECURSE
  "CMakeFiles/test_qpe.dir/test_qpe.cpp.o"
  "CMakeFiles/test_qpe.dir/test_qpe.cpp.o.d"
  "test_qpe"
  "test_qpe.pdb"
  "test_qpe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
