# Empty compiler generated dependencies file for test_qpe.
# This may be replaced when dependencies are built.
