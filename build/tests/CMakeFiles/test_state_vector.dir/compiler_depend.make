# Empty compiler generated dependencies file for test_state_vector.
# This may be replaced when dependencies are built.
