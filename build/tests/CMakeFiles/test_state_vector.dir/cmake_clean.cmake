file(REMOVE_RECURSE
  "CMakeFiles/test_state_vector.dir/test_state_vector.cpp.o"
  "CMakeFiles/test_state_vector.dir/test_state_vector.cpp.o.d"
  "test_state_vector"
  "test_state_vector.pdb"
  "test_state_vector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
