file(REMOVE_RECURSE
  "CMakeFiles/test_transcript.dir/test_transcript.cpp.o"
  "CMakeFiles/test_transcript.dir/test_transcript.cpp.o.d"
  "test_transcript"
  "test_transcript.pdb"
  "test_transcript[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transcript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
