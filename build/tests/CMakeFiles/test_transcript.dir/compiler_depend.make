# Empty compiler generated dependencies file for test_transcript.
# This may be replaced when dependencies are built.
