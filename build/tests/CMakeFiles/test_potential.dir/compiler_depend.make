# Empty compiler generated dependencies file for test_potential.
# This may be replaced when dependencies are built.
