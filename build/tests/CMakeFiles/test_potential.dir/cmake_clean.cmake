file(REMOVE_RECURSE
  "CMakeFiles/test_potential.dir/test_potential.cpp.o"
  "CMakeFiles/test_potential.dir/test_potential.cpp.o.d"
  "test_potential"
  "test_potential.pdb"
  "test_potential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
