file(REMOVE_RECURSE
  "CMakeFiles/test_register_layout.dir/test_register_layout.cpp.o"
  "CMakeFiles/test_register_layout.dir/test_register_layout.cpp.o.d"
  "test_register_layout"
  "test_register_layout.pdb"
  "test_register_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_register_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
