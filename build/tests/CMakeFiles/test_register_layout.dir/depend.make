# Empty dependencies file for test_register_layout.
# This may be replaced when dependencies are built.
