# Empty dependencies file for test_density_evolution.
# This may be replaced when dependencies are built.
