file(REMOVE_RECURSE
  "CMakeFiles/test_density_evolution.dir/test_density_evolution.cpp.o"
  "CMakeFiles/test_density_evolution.dir/test_density_evolution.cpp.o.d"
  "test_density_evolution"
  "test_density_evolution.pdb"
  "test_density_evolution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_density_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
