file(REMOVE_RECURSE
  "CMakeFiles/test_subset_stream.dir/test_subset_stream.cpp.o"
  "CMakeFiles/test_subset_stream.dir/test_subset_stream.cpp.o.d"
  "test_subset_stream"
  "test_subset_stream.pdb"
  "test_subset_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subset_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
