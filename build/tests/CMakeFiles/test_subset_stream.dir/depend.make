# Empty dependencies file for test_subset_stream.
# This may be replaced when dependencies are built.
