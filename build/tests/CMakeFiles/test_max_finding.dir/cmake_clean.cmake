file(REMOVE_RECURSE
  "CMakeFiles/test_max_finding.dir/test_max_finding.cpp.o"
  "CMakeFiles/test_max_finding.dir/test_max_finding.cpp.o.d"
  "test_max_finding"
  "test_max_finding.pdb"
  "test_max_finding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_max_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
