# Empty dependencies file for test_max_finding.
# This may be replaced when dependencies are built.
