file(REMOVE_RECURSE
  "CMakeFiles/test_table_cli.dir/test_table_cli.cpp.o"
  "CMakeFiles/test_table_cli.dir/test_table_cli.cpp.o.d"
  "test_table_cli"
  "test_table_cli.pdb"
  "test_table_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
