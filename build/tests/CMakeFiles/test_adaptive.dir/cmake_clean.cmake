file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive.dir/test_adaptive.cpp.o"
  "CMakeFiles/test_adaptive.dir/test_adaptive.cpp.o.d"
  "test_adaptive"
  "test_adaptive.pdb"
  "test_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
