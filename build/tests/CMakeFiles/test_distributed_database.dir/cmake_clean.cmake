file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_database.dir/test_distributed_database.cpp.o"
  "CMakeFiles/test_distributed_database.dir/test_distributed_database.cpp.o.d"
  "test_distributed_database"
  "test_distributed_database.pdb"
  "test_distributed_database[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
