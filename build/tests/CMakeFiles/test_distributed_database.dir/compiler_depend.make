# Empty compiler generated dependencies file for test_distributed_database.
# This may be replaced when dependencies are built.
