# Empty compiler generated dependencies file for test_obliviousness.
# This may be replaced when dependencies are built.
