file(REMOVE_RECURSE
  "CMakeFiles/test_obliviousness.dir/test_obliviousness.cpp.o"
  "CMakeFiles/test_obliviousness.dir/test_obliviousness.cpp.o.d"
  "test_obliviousness"
  "test_obliviousness.pdb"
  "test_obliviousness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obliviousness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
