file(REMOVE_RECURSE
  "CMakeFiles/test_measure.dir/test_measure.cpp.o"
  "CMakeFiles/test_measure.dir/test_measure.cpp.o.d"
  "test_measure"
  "test_measure.pdb"
  "test_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
