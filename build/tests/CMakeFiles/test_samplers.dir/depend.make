# Empty dependencies file for test_samplers.
# This may be replaced when dependencies are built.
