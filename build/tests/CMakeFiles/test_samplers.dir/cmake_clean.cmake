file(REMOVE_RECURSE
  "CMakeFiles/test_samplers.dir/test_samplers.cpp.o"
  "CMakeFiles/test_samplers.dir/test_samplers.cpp.o.d"
  "test_samplers"
  "test_samplers.pdb"
  "test_samplers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
