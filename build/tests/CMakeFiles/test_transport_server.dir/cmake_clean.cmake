file(REMOVE_RECURSE
  "CMakeFiles/test_transport_server.dir/test_transport_server.cpp.o"
  "CMakeFiles/test_transport_server.dir/test_transport_server.cpp.o.d"
  "test_transport_server"
  "test_transport_server.pdb"
  "test_transport_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
