# Empty dependencies file for test_transport_server.
# This may be replaced when dependencies are built.
