# Empty dependencies file for test_wave4_misc.
# This may be replaced when dependencies are built.
