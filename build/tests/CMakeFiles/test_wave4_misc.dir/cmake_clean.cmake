file(REMOVE_RECURSE
  "CMakeFiles/test_wave4_misc.dir/test_wave4_misc.cpp.o"
  "CMakeFiles/test_wave4_misc.dir/test_wave4_misc.cpp.o.d"
  "test_wave4_misc"
  "test_wave4_misc.pdb"
  "test_wave4_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wave4_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
