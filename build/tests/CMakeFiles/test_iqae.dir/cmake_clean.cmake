file(REMOVE_RECURSE
  "CMakeFiles/test_iqae.dir/test_iqae.cpp.o"
  "CMakeFiles/test_iqae.dir/test_iqae.cpp.o.d"
  "test_iqae"
  "test_iqae.pdb"
  "test_iqae[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iqae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
