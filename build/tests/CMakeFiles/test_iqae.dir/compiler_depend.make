# Empty compiler generated dependencies file for test_iqae.
# This may be replaced when dependencies are built.
