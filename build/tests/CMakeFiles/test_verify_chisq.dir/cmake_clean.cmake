file(REMOVE_RECURSE
  "CMakeFiles/test_verify_chisq.dir/test_verify_chisq.cpp.o"
  "CMakeFiles/test_verify_chisq.dir/test_verify_chisq.cpp.o.d"
  "test_verify_chisq"
  "test_verify_chisq.pdb"
  "test_verify_chisq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_verify_chisq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
