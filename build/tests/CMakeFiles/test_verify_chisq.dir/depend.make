# Empty dependencies file for test_verify_chisq.
# This may be replaced when dependencies are built.
