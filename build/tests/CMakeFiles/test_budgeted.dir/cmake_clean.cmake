file(REMOVE_RECURSE
  "CMakeFiles/test_budgeted.dir/test_budgeted.cpp.o"
  "CMakeFiles/test_budgeted.dir/test_budgeted.cpp.o.d"
  "test_budgeted"
  "test_budgeted.pdb"
  "test_budgeted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_budgeted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
