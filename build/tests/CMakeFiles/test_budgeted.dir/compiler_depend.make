# Empty compiler generated dependencies file for test_budgeted.
# This may be replaced when dependencies are built.
