file(REMOVE_RECURSE
  "CMakeFiles/test_amplitude_amplification.dir/test_amplitude_amplification.cpp.o"
  "CMakeFiles/test_amplitude_amplification.dir/test_amplitude_amplification.cpp.o.d"
  "test_amplitude_amplification"
  "test_amplitude_amplification.pdb"
  "test_amplitude_amplification[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amplitude_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
