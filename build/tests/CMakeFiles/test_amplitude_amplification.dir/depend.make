# Empty dependencies file for test_amplitude_amplification.
# This may be replaced when dependencies are built.
