# Empty compiler generated dependencies file for test_random_circuits.
# This may be replaced when dependencies are built.
