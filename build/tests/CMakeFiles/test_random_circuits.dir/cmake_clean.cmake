file(REMOVE_RECURSE
  "CMakeFiles/test_random_circuits.dir/test_random_circuits.cpp.o"
  "CMakeFiles/test_random_circuits.dir/test_random_circuits.cpp.o.d"
  "test_random_circuits"
  "test_random_circuits.pdb"
  "test_random_circuits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
