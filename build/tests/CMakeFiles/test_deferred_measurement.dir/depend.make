# Empty dependencies file for test_deferred_measurement.
# This may be replaced when dependencies are built.
