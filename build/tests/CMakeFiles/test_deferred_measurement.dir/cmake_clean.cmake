file(REMOVE_RECURSE
  "CMakeFiles/test_deferred_measurement.dir/test_deferred_measurement.cpp.o"
  "CMakeFiles/test_deferred_measurement.dir/test_deferred_measurement.cpp.o.d"
  "test_deferred_measurement"
  "test_deferred_measurement.pdb"
  "test_deferred_measurement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deferred_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
