file(REMOVE_RECURSE
  "CMakeFiles/test_machine_oracle.dir/test_machine_oracle.cpp.o"
  "CMakeFiles/test_machine_oracle.dir/test_machine_oracle.cpp.o.d"
  "test_machine_oracle"
  "test_machine_oracle.pdb"
  "test_machine_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
