# Empty compiler generated dependencies file for test_parallel_full.
# This may be replaced when dependencies are built.
