file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_full.dir/test_parallel_full.cpp.o"
  "CMakeFiles/test_parallel_full.dir/test_parallel_full.cpp.o.d"
  "test_parallel_full"
  "test_parallel_full.pdb"
  "test_parallel_full[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
