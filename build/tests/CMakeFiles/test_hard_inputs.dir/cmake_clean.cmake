file(REMOVE_RECURSE
  "CMakeFiles/test_hard_inputs.dir/test_hard_inputs.cpp.o"
  "CMakeFiles/test_hard_inputs.dir/test_hard_inputs.cpp.o.d"
  "test_hard_inputs"
  "test_hard_inputs.pdb"
  "test_hard_inputs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hard_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
