# Empty dependencies file for test_hard_inputs.
# This may be replaced when dependencies are built.
