file(REMOVE_RECURSE
  "CMakeFiles/test_unknown_m.dir/test_unknown_m.cpp.o"
  "CMakeFiles/test_unknown_m.dir/test_unknown_m.cpp.o.d"
  "test_unknown_m"
  "test_unknown_m.pdb"
  "test_unknown_m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unknown_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
