# Empty compiler generated dependencies file for test_unknown_m.
# This may be replaced when dependencies are built.
