file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchical.dir/test_hierarchical.cpp.o"
  "CMakeFiles/test_hierarchical.dir/test_hierarchical.cpp.o.d"
  "test_hierarchical"
  "test_hierarchical.pdb"
  "test_hierarchical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
