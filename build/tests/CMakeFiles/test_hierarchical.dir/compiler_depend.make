# Empty compiler generated dependencies file for test_hierarchical.
# This may be replaced when dependencies are built.
