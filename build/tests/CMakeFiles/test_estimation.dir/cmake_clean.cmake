file(REMOVE_RECURSE
  "CMakeFiles/test_estimation.dir/test_estimation.cpp.o"
  "CMakeFiles/test_estimation.dir/test_estimation.cpp.o.d"
  "test_estimation"
  "test_estimation.pdb"
  "test_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
