# Empty compiler generated dependencies file for test_estimation.
# This may be replaced when dependencies are built.
