# Empty compiler generated dependencies file for test_communication.
# This may be replaced when dependencies are built.
