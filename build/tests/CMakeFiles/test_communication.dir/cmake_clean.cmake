file(REMOVE_RECURSE
  "CMakeFiles/test_communication.dir/test_communication.cpp.o"
  "CMakeFiles/test_communication.dir/test_communication.cpp.o.d"
  "test_communication"
  "test_communication.pdb"
  "test_communication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
