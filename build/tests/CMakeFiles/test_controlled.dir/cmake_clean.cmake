file(REMOVE_RECURSE
  "CMakeFiles/test_controlled.dir/test_controlled.cpp.o"
  "CMakeFiles/test_controlled.dir/test_controlled.cpp.o.d"
  "test_controlled"
  "test_controlled.pdb"
  "test_controlled[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
