# Empty dependencies file for test_controlled.
# This may be replaced when dependencies are built.
