# Empty dependencies file for test_classical.
# This may be replaced when dependencies are built.
