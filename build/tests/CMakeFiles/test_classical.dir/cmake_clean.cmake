file(REMOVE_RECURSE
  "CMakeFiles/test_classical.dir/test_classical.cpp.o"
  "CMakeFiles/test_classical.dir/test_classical.cpp.o.d"
  "test_classical"
  "test_classical.pdb"
  "test_classical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
