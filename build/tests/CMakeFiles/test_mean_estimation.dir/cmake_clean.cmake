file(REMOVE_RECURSE
  "CMakeFiles/test_mean_estimation.dir/test_mean_estimation.cpp.o"
  "CMakeFiles/test_mean_estimation.dir/test_mean_estimation.cpp.o.d"
  "test_mean_estimation"
  "test_mean_estimation.pdb"
  "test_mean_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mean_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
