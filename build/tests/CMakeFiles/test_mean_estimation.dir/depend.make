# Empty dependencies file for test_mean_estimation.
# This may be replaced when dependencies are built.
