# Empty dependencies file for test_distributing_operator.
# This may be replaced when dependencies are built.
