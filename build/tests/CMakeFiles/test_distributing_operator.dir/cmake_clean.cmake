file(REMOVE_RECURSE
  "CMakeFiles/test_distributing_operator.dir/test_distributing_operator.cpp.o"
  "CMakeFiles/test_distributing_operator.dir/test_distributing_operator.cpp.o.d"
  "test_distributing_operator"
  "test_distributing_operator.pdb"
  "test_distributing_operator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributing_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
