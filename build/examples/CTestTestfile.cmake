# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "--universe" "16" "--total" "24")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_federated]=] "/root/repo/build/examples/federated_frequency" "--universe" "64" "--records" "48" "--samples" "16")
set_tests_properties([=[example_federated]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_inventory]=] "/root/repo/build/examples/dynamic_inventory" "--skus" "32" "--initial" "48" "--bursts" "3" "--moves" "12")
set_tests_properties([=[example_inventory]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_lowerbound]=] "/root/repo/build/examples/lowerbound_explorer" "--universe" "32" "--samples" "6")
set_tests_properties([=[example_lowerbound]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_counting]=] "/root/repo/build/examples/quantum_counting" "--universe" "64" "--total" "24" "--rounds" "6" "--shots" "32")
set_tests_properties([=[example_counting]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli]=] "/root/repo/build/examples/dqs_cli")
set_tests_properties([=[example_cli]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_advisor]=] "/root/repo/build/examples/architecture_advisor" "--machines" "4" "--trajectories" "12")
set_tests_properties([=[example_advisor]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_drift]=] "/root/repo/build/examples/drift_monitor" "--rounds" "4" "--shots" "300")
set_tests_properties([=[example_drift]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
