# Empty dependencies file for quantum_counting.
# This may be replaced when dependencies are built.
