file(REMOVE_RECURSE
  "CMakeFiles/quantum_counting.dir/quantum_counting.cpp.o"
  "CMakeFiles/quantum_counting.dir/quantum_counting.cpp.o.d"
  "quantum_counting"
  "quantum_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
