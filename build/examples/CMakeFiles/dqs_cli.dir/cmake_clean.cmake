file(REMOVE_RECURSE
  "CMakeFiles/dqs_cli.dir/dqs_cli.cpp.o"
  "CMakeFiles/dqs_cli.dir/dqs_cli.cpp.o.d"
  "dqs_cli"
  "dqs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
