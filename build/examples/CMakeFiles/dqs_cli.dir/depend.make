# Empty dependencies file for dqs_cli.
# This may be replaced when dependencies are built.
