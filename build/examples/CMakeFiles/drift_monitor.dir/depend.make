# Empty dependencies file for drift_monitor.
# This may be replaced when dependencies are built.
