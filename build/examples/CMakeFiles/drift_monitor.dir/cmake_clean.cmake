file(REMOVE_RECURSE
  "CMakeFiles/drift_monitor.dir/drift_monitor.cpp.o"
  "CMakeFiles/drift_monitor.dir/drift_monitor.cpp.o.d"
  "drift_monitor"
  "drift_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
