# Empty compiler generated dependencies file for dynamic_inventory.
# This may be replaced when dependencies are built.
