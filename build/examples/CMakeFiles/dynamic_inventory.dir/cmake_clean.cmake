file(REMOVE_RECURSE
  "CMakeFiles/dynamic_inventory.dir/dynamic_inventory.cpp.o"
  "CMakeFiles/dynamic_inventory.dir/dynamic_inventory.cpp.o.d"
  "dynamic_inventory"
  "dynamic_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
