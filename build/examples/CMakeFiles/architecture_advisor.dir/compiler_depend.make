# Empty compiler generated dependencies file for architecture_advisor.
# This may be replaced when dependencies are built.
