file(REMOVE_RECURSE
  "CMakeFiles/architecture_advisor.dir/architecture_advisor.cpp.o"
  "CMakeFiles/architecture_advisor.dir/architecture_advisor.cpp.o.d"
  "architecture_advisor"
  "architecture_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
