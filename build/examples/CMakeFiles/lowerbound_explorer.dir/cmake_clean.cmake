file(REMOVE_RECURSE
  "CMakeFiles/lowerbound_explorer.dir/lowerbound_explorer.cpp.o"
  "CMakeFiles/lowerbound_explorer.dir/lowerbound_explorer.cpp.o.d"
  "lowerbound_explorer"
  "lowerbound_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowerbound_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
