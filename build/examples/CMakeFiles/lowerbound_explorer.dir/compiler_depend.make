# Empty compiler generated dependencies file for lowerbound_explorer.
# This may be replaced when dependencies are built.
