# Empty compiler generated dependencies file for federated_frequency.
# This may be replaced when dependencies are built.
