file(REMOVE_RECURSE
  "CMakeFiles/federated_frequency.dir/federated_frequency.cpp.o"
  "CMakeFiles/federated_frequency.dir/federated_frequency.cpp.o.d"
  "federated_frequency"
  "federated_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
