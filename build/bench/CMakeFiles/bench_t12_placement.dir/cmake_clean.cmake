file(REMOVE_RECURSE
  "CMakeFiles/bench_t12_placement.dir/bench_t12_placement.cpp.o"
  "CMakeFiles/bench_t12_placement.dir/bench_t12_placement.cpp.o.d"
  "bench_t12_placement"
  "bench_t12_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t12_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
