# Empty dependencies file for bench_t12_placement.
# This may be replaced when dependencies are built.
