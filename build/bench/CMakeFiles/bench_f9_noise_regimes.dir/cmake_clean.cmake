file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_noise_regimes.dir/bench_f9_noise_regimes.cpp.o"
  "CMakeFiles/bench_f9_noise_regimes.dir/bench_f9_noise_regimes.cpp.o.d"
  "bench_f9_noise_regimes"
  "bench_f9_noise_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_noise_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
