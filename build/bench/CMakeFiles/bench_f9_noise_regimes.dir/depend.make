# Empty dependencies file for bench_f9_noise_regimes.
# This may be replaced when dependencies are built.
