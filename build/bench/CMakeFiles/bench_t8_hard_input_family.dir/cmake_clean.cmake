file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_hard_input_family.dir/bench_t8_hard_input_family.cpp.o"
  "CMakeFiles/bench_t8_hard_input_family.dir/bench_t8_hard_input_family.cpp.o.d"
  "bench_t8_hard_input_family"
  "bench_t8_hard_input_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_hard_input_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
