# Empty dependencies file for bench_t8_hard_input_family.
# This may be replaced when dependencies are built.
