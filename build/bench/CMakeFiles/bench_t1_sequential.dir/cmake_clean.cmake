file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_sequential.dir/bench_t1_sequential.cpp.o"
  "CMakeFiles/bench_t1_sequential.dir/bench_t1_sequential.cpp.o.d"
  "bench_t1_sequential"
  "bench_t1_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
