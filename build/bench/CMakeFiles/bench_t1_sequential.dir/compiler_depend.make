# Empty compiler generated dependencies file for bench_t1_sequential.
# This may be replaced when dependencies are built.
