# Empty dependencies file for bench_f6_noise.
# This may be replaced when dependencies are built.
