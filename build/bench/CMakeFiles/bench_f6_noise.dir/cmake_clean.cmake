file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_noise.dir/bench_f6_noise.cpp.o"
  "CMakeFiles/bench_f6_noise.dir/bench_f6_noise.cpp.o.d"
  "bench_f6_noise"
  "bench_f6_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
