file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_m_knowledge.dir/bench_f10_m_knowledge.cpp.o"
  "CMakeFiles/bench_f10_m_knowledge.dir/bench_f10_m_knowledge.cpp.o.d"
  "bench_f10_m_knowledge"
  "bench_f10_m_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_m_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
