# Empty dependencies file for bench_f10_m_knowledge.
# This may be replaced when dependencies are built.
