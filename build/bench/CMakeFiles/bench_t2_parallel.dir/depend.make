# Empty dependencies file for bench_t2_parallel.
# This may be replaced when dependencies are built.
