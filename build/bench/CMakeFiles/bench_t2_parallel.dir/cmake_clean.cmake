file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_parallel.dir/bench_t2_parallel.cpp.o"
  "CMakeFiles/bench_t2_parallel.dir/bench_t2_parallel.cpp.o.d"
  "bench_t2_parallel"
  "bench_t2_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
