# Empty compiler generated dependencies file for bench_f4_aa_trajectory.
# This may be replaced when dependencies are built.
