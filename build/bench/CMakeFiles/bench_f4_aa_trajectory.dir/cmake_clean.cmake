file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_aa_trajectory.dir/bench_f4_aa_trajectory.cpp.o"
  "CMakeFiles/bench_f4_aa_trajectory.dir/bench_f4_aa_trajectory.cpp.o.d"
  "bench_f4_aa_trajectory"
  "bench_f4_aa_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_aa_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
