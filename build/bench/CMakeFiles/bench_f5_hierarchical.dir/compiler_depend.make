# Empty compiler generated dependencies file for bench_f5_hierarchical.
# This may be replaced when dependencies are built.
