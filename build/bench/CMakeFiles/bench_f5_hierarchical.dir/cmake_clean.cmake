file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_hierarchical.dir/bench_f5_hierarchical.cpp.o"
  "CMakeFiles/bench_f5_hierarchical.dir/bench_f5_hierarchical.cpp.o.d"
  "bench_f5_hierarchical"
  "bench_f5_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
