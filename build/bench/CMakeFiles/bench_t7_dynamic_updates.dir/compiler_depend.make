# Empty compiler generated dependencies file for bench_t7_dynamic_updates.
# This may be replaced when dependencies are built.
