file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_dynamic_updates.dir/bench_t7_dynamic_updates.cpp.o"
  "CMakeFiles/bench_t7_dynamic_updates.dir/bench_t7_dynamic_updates.cpp.o.d"
  "bench_t7_dynamic_updates"
  "bench_t7_dynamic_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_dynamic_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
