file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_scaling_N.dir/bench_f1_scaling_N.cpp.o"
  "CMakeFiles/bench_f1_scaling_N.dir/bench_f1_scaling_N.cpp.o.d"
  "bench_f1_scaling_N"
  "bench_f1_scaling_N.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_scaling_N.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
