# Empty compiler generated dependencies file for bench_f1_scaling_N.
# This may be replaced when dependencies are built.
