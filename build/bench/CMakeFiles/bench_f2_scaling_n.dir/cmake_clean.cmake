file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_scaling_n.dir/bench_f2_scaling_n.cpp.o"
  "CMakeFiles/bench_f2_scaling_n.dir/bench_f2_scaling_n.cpp.o.d"
  "bench_f2_scaling_n"
  "bench_f2_scaling_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_scaling_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
