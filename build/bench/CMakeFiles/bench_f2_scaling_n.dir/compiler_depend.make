# Empty compiler generated dependencies file for bench_f2_scaling_n.
# This may be replaced when dependencies are built.
