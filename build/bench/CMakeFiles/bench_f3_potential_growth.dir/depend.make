# Empty dependencies file for bench_f3_potential_growth.
# This may be replaced when dependencies are built.
