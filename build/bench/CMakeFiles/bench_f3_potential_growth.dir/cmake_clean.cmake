file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_potential_growth.dir/bench_f3_potential_growth.cpp.o"
  "CMakeFiles/bench_f3_potential_growth.dir/bench_f3_potential_growth.cpp.o.d"
  "bench_f3_potential_growth"
  "bench_f3_potential_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_potential_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
