file(REMOVE_RECURSE
  "CMakeFiles/bench_b0_qsim_micro.dir/bench_b0_qsim_micro.cpp.o"
  "CMakeFiles/bench_b0_qsim_micro.dir/bench_b0_qsim_micro.cpp.o.d"
  "bench_b0_qsim_micro"
  "bench_b0_qsim_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b0_qsim_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
