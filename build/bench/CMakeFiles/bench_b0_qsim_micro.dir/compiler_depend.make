# Empty compiler generated dependencies file for bench_b0_qsim_micro.
# This may be replaced when dependencies are built.
