# Empty dependencies file for bench_t13_unknown_m.
# This may be replaced when dependencies are built.
