file(REMOVE_RECURSE
  "CMakeFiles/bench_t13_unknown_m.dir/bench_t13_unknown_m.cpp.o"
  "CMakeFiles/bench_t13_unknown_m.dir/bench_t13_unknown_m.cpp.o.d"
  "bench_t13_unknown_m"
  "bench_t13_unknown_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t13_unknown_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
