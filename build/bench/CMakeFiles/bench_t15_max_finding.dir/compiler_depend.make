# Empty compiler generated dependencies file for bench_t15_max_finding.
# This may be replaced when dependencies are built.
