file(REMOVE_RECURSE
  "CMakeFiles/bench_t15_max_finding.dir/bench_t15_max_finding.cpp.o"
  "CMakeFiles/bench_t15_max_finding.dir/bench_t15_max_finding.cpp.o.d"
  "bench_t15_max_finding"
  "bench_t15_max_finding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t15_max_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
