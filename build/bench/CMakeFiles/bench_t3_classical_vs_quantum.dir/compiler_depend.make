# Empty compiler generated dependencies file for bench_t3_classical_vs_quantum.
# This may be replaced when dependencies are built.
