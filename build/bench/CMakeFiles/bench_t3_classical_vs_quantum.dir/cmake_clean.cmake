file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_classical_vs_quantum.dir/bench_t3_classical_vs_quantum.cpp.o"
  "CMakeFiles/bench_t3_classical_vs_quantum.dir/bench_t3_classical_vs_quantum.cpp.o.d"
  "bench_t3_classical_vs_quantum"
  "bench_t3_classical_vs_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_classical_vs_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
