# Empty dependencies file for bench_t6_distributing_op.
# This may be replaced when dependencies are built.
