file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_distributing_op.dir/bench_t6_distributing_op.cpp.o"
  "CMakeFiles/bench_t6_distributing_op.dir/bench_t6_distributing_op.cpp.o.d"
  "bench_t6_distributing_op"
  "bench_t6_distributing_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_distributing_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
