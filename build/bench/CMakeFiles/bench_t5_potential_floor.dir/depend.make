# Empty dependencies file for bench_t5_potential_floor.
# This may be replaced when dependencies are built.
