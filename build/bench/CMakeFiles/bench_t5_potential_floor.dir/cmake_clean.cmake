file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_potential_floor.dir/bench_t5_potential_floor.cpp.o"
  "CMakeFiles/bench_t5_potential_floor.dir/bench_t5_potential_floor.cpp.o.d"
  "bench_t5_potential_floor"
  "bench_t5_potential_floor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_potential_floor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
