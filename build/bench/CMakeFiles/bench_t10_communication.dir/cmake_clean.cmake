file(REMOVE_RECURSE
  "CMakeFiles/bench_t10_communication.dir/bench_t10_communication.cpp.o"
  "CMakeFiles/bench_t10_communication.dir/bench_t10_communication.cpp.o.d"
  "bench_t10_communication"
  "bench_t10_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t10_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
