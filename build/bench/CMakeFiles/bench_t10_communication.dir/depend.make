# Empty dependencies file for bench_t10_communication.
# This may be replaced when dependencies are built.
