# Empty compiler generated dependencies file for bench_f7_fidelity_frontier.
# This may be replaced when dependencies are built.
