file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_fidelity_frontier.dir/bench_f7_fidelity_frontier.cpp.o"
  "CMakeFiles/bench_f7_fidelity_frontier.dir/bench_f7_fidelity_frontier.cpp.o.d"
  "bench_f7_fidelity_frontier"
  "bench_f7_fidelity_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_fidelity_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
