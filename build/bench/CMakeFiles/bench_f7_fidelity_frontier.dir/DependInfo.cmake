
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f7_fidelity_frontier.cpp" "bench/CMakeFiles/bench_f7_fidelity_frontier.dir/bench_f7_fidelity_frontier.cpp.o" "gcc" "bench/CMakeFiles/bench_f7_fidelity_frontier.dir/bench_f7_fidelity_frontier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dqs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/dqs_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/lowerbound/CMakeFiles/dqs_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/dqs_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/distdb/CMakeFiles/dqs_distdb.dir/DependInfo.cmake"
  "/root/repo/build/src/qsim/CMakeFiles/dqs_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
