# Empty dependencies file for bench_f8_fidelity_ceiling.
# This may be replaced when dependencies are built.
