file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_fidelity_ceiling.dir/bench_f8_fidelity_ceiling.cpp.o"
  "CMakeFiles/bench_f8_fidelity_ceiling.dir/bench_f8_fidelity_ceiling.cpp.o.d"
  "bench_f8_fidelity_ceiling"
  "bench_f8_fidelity_ceiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_fidelity_ceiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
