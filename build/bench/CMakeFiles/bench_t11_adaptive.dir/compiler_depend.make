# Empty compiler generated dependencies file for bench_t11_adaptive.
# This may be replaced when dependencies are built.
