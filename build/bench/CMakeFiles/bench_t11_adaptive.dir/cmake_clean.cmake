file(REMOVE_RECURSE
  "CMakeFiles/bench_t11_adaptive.dir/bench_t11_adaptive.cpp.o"
  "CMakeFiles/bench_t11_adaptive.dir/bench_t11_adaptive.cpp.o.d"
  "bench_t11_adaptive"
  "bench_t11_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t11_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
