# Empty dependencies file for bench_t4_lower_bound_crossover.
# This may be replaced when dependencies are built.
