file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_lower_bound_crossover.dir/bench_t4_lower_bound_crossover.cpp.o"
  "CMakeFiles/bench_t4_lower_bound_crossover.dir/bench_t4_lower_bound_crossover.cpp.o.d"
  "bench_t4_lower_bound_crossover"
  "bench_t4_lower_bound_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_lower_bound_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
