# Empty compiler generated dependencies file for bench_t9_quantum_counting.
# This may be replaced when dependencies are built.
