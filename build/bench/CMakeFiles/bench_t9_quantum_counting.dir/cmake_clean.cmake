file(REMOVE_RECURSE
  "CMakeFiles/bench_t9_quantum_counting.dir/bench_t9_quantum_counting.cpp.o"
  "CMakeFiles/bench_t9_quantum_counting.dir/bench_t9_quantum_counting.cpp.o.d"
  "bench_t9_quantum_counting"
  "bench_t9_quantum_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t9_quantum_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
