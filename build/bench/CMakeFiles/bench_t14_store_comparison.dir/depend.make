# Empty dependencies file for bench_t14_store_comparison.
# This may be replaced when dependencies are built.
