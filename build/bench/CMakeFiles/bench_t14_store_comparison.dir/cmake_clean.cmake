file(REMOVE_RECURSE
  "CMakeFiles/bench_t14_store_comparison.dir/bench_t14_store_comparison.cpp.o"
  "CMakeFiles/bench_t14_store_comparison.dir/bench_t14_store_comparison.cpp.o.d"
  "bench_t14_store_comparison"
  "bench_t14_store_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t14_store_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
