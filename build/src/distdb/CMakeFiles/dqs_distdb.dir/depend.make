# Empty dependencies file for dqs_distdb.
# This may be replaced when dependencies are built.
