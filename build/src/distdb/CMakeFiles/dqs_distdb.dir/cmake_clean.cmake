file(REMOVE_RECURSE
  "CMakeFiles/dqs_distdb.dir/communication.cpp.o"
  "CMakeFiles/dqs_distdb.dir/communication.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/dataset.cpp.o"
  "CMakeFiles/dqs_distdb.dir/dataset.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/distributed_database.cpp.o"
  "CMakeFiles/dqs_distdb.dir/distributed_database.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/machine.cpp.o"
  "CMakeFiles/dqs_distdb.dir/machine.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/serialize.cpp.o"
  "CMakeFiles/dqs_distdb.dir/serialize.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/transcript.cpp.o"
  "CMakeFiles/dqs_distdb.dir/transcript.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/transport.cpp.o"
  "CMakeFiles/dqs_distdb.dir/transport.cpp.o.d"
  "CMakeFiles/dqs_distdb.dir/workload.cpp.o"
  "CMakeFiles/dqs_distdb.dir/workload.cpp.o.d"
  "libdqs_distdb.a"
  "libdqs_distdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_distdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
