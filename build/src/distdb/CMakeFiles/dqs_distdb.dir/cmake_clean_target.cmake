file(REMOVE_RECURSE
  "libdqs_distdb.a"
)
