
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distdb/communication.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/communication.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/communication.cpp.o.d"
  "/root/repo/src/distdb/dataset.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/dataset.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/dataset.cpp.o.d"
  "/root/repo/src/distdb/distributed_database.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/distributed_database.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/distributed_database.cpp.o.d"
  "/root/repo/src/distdb/machine.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/machine.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/machine.cpp.o.d"
  "/root/repo/src/distdb/serialize.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/serialize.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/serialize.cpp.o.d"
  "/root/repo/src/distdb/transcript.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/transcript.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/transcript.cpp.o.d"
  "/root/repo/src/distdb/transport.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/transport.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/transport.cpp.o.d"
  "/root/repo/src/distdb/workload.cpp" "src/distdb/CMakeFiles/dqs_distdb.dir/workload.cpp.o" "gcc" "src/distdb/CMakeFiles/dqs_distdb.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qsim/CMakeFiles/dqs_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
