file(REMOVE_RECURSE
  "CMakeFiles/dqs_common.dir/cli.cpp.o"
  "CMakeFiles/dqs_common.dir/cli.cpp.o.d"
  "CMakeFiles/dqs_common.dir/rng.cpp.o"
  "CMakeFiles/dqs_common.dir/rng.cpp.o.d"
  "CMakeFiles/dqs_common.dir/stats.cpp.o"
  "CMakeFiles/dqs_common.dir/stats.cpp.o.d"
  "CMakeFiles/dqs_common.dir/table.cpp.o"
  "CMakeFiles/dqs_common.dir/table.cpp.o.d"
  "libdqs_common.a"
  "libdqs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
