file(REMOVE_RECURSE
  "libdqs_common.a"
)
