# Empty compiler generated dependencies file for dqs_common.
# This may be replaced when dependencies are built.
