
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/index_erasure.cpp" "src/apps/CMakeFiles/dqs_apps.dir/index_erasure.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/index_erasure.cpp.o.d"
  "/root/repo/src/apps/max_finding.cpp" "src/apps/CMakeFiles/dqs_apps.dir/max_finding.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/max_finding.cpp.o.d"
  "/root/repo/src/apps/mean_estimation.cpp" "src/apps/CMakeFiles/dqs_apps.dir/mean_estimation.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/mean_estimation.cpp.o.d"
  "/root/repo/src/apps/sample_server.cpp" "src/apps/CMakeFiles/dqs_apps.dir/sample_server.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/sample_server.cpp.o.d"
  "/root/repo/src/apps/store_comparison.cpp" "src/apps/CMakeFiles/dqs_apps.dir/store_comparison.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/store_comparison.cpp.o.d"
  "/root/repo/src/apps/stream_window.cpp" "src/apps/CMakeFiles/dqs_apps.dir/stream_window.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/stream_window.cpp.o.d"
  "/root/repo/src/apps/subset_sampling.cpp" "src/apps/CMakeFiles/dqs_apps.dir/subset_sampling.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/subset_sampling.cpp.o.d"
  "/root/repo/src/apps/weighted_sampling.cpp" "src/apps/CMakeFiles/dqs_apps.dir/weighted_sampling.cpp.o" "gcc" "src/apps/CMakeFiles/dqs_apps.dir/weighted_sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estimation/CMakeFiles/dqs_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/dqs_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/distdb/CMakeFiles/dqs_distdb.dir/DependInfo.cmake"
  "/root/repo/build/src/qsim/CMakeFiles/dqs_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
