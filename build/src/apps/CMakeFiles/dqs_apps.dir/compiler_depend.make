# Empty compiler generated dependencies file for dqs_apps.
# This may be replaced when dependencies are built.
