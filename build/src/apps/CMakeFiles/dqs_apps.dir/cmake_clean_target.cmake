file(REMOVE_RECURSE
  "libdqs_apps.a"
)
