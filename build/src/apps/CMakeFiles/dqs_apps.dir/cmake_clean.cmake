file(REMOVE_RECURSE
  "CMakeFiles/dqs_apps.dir/index_erasure.cpp.o"
  "CMakeFiles/dqs_apps.dir/index_erasure.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/max_finding.cpp.o"
  "CMakeFiles/dqs_apps.dir/max_finding.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/mean_estimation.cpp.o"
  "CMakeFiles/dqs_apps.dir/mean_estimation.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/sample_server.cpp.o"
  "CMakeFiles/dqs_apps.dir/sample_server.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/store_comparison.cpp.o"
  "CMakeFiles/dqs_apps.dir/store_comparison.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/stream_window.cpp.o"
  "CMakeFiles/dqs_apps.dir/stream_window.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/subset_sampling.cpp.o"
  "CMakeFiles/dqs_apps.dir/subset_sampling.cpp.o.d"
  "CMakeFiles/dqs_apps.dir/weighted_sampling.cpp.o"
  "CMakeFiles/dqs_apps.dir/weighted_sampling.cpp.o.d"
  "libdqs_apps.a"
  "libdqs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
