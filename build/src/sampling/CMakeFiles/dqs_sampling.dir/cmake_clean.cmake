file(REMOVE_RECURSE
  "CMakeFiles/dqs_sampling.dir/amplitude_amplification.cpp.o"
  "CMakeFiles/dqs_sampling.dir/amplitude_amplification.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/backend.cpp.o"
  "CMakeFiles/dqs_sampling.dir/backend.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/circuit.cpp.o"
  "CMakeFiles/dqs_sampling.dir/circuit.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/classical.cpp.o"
  "CMakeFiles/dqs_sampling.dir/classical.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/fixed_point.cpp.o"
  "CMakeFiles/dqs_sampling.dir/fixed_point.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/hierarchical.cpp.o"
  "CMakeFiles/dqs_sampling.dir/hierarchical.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/ideal.cpp.o"
  "CMakeFiles/dqs_sampling.dir/ideal.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/noisy_sampler.cpp.o"
  "CMakeFiles/dqs_sampling.dir/noisy_sampler.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/parallel_full.cpp.o"
  "CMakeFiles/dqs_sampling.dir/parallel_full.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/samplers.cpp.o"
  "CMakeFiles/dqs_sampling.dir/samplers.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/schedule.cpp.o"
  "CMakeFiles/dqs_sampling.dir/schedule.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/unknown_m.cpp.o"
  "CMakeFiles/dqs_sampling.dir/unknown_m.cpp.o.d"
  "CMakeFiles/dqs_sampling.dir/verify.cpp.o"
  "CMakeFiles/dqs_sampling.dir/verify.cpp.o.d"
  "libdqs_sampling.a"
  "libdqs_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
