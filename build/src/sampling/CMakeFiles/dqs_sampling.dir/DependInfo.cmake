
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/amplitude_amplification.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/amplitude_amplification.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/amplitude_amplification.cpp.o.d"
  "/root/repo/src/sampling/backend.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/backend.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/backend.cpp.o.d"
  "/root/repo/src/sampling/circuit.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/circuit.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/circuit.cpp.o.d"
  "/root/repo/src/sampling/classical.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/classical.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/classical.cpp.o.d"
  "/root/repo/src/sampling/fixed_point.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/fixed_point.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/fixed_point.cpp.o.d"
  "/root/repo/src/sampling/hierarchical.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/hierarchical.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/hierarchical.cpp.o.d"
  "/root/repo/src/sampling/ideal.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/ideal.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/ideal.cpp.o.d"
  "/root/repo/src/sampling/noisy_sampler.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/noisy_sampler.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/noisy_sampler.cpp.o.d"
  "/root/repo/src/sampling/parallel_full.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/parallel_full.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/parallel_full.cpp.o.d"
  "/root/repo/src/sampling/samplers.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/samplers.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/samplers.cpp.o.d"
  "/root/repo/src/sampling/schedule.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/schedule.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/schedule.cpp.o.d"
  "/root/repo/src/sampling/unknown_m.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/unknown_m.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/unknown_m.cpp.o.d"
  "/root/repo/src/sampling/verify.cpp" "src/sampling/CMakeFiles/dqs_sampling.dir/verify.cpp.o" "gcc" "src/sampling/CMakeFiles/dqs_sampling.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/distdb/CMakeFiles/dqs_distdb.dir/DependInfo.cmake"
  "/root/repo/build/src/qsim/CMakeFiles/dqs_qsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
