file(REMOVE_RECURSE
  "libdqs_sampling.a"
)
