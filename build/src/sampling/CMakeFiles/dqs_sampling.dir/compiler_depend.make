# Empty compiler generated dependencies file for dqs_sampling.
# This may be replaced when dependencies are built.
