file(REMOVE_RECURSE
  "libdqs_lowerbound.a"
)
