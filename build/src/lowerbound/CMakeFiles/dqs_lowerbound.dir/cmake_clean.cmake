file(REMOVE_RECURSE
  "CMakeFiles/dqs_lowerbound.dir/deferred_measurement.cpp.o"
  "CMakeFiles/dqs_lowerbound.dir/deferred_measurement.cpp.o.d"
  "CMakeFiles/dqs_lowerbound.dir/hard_inputs.cpp.o"
  "CMakeFiles/dqs_lowerbound.dir/hard_inputs.cpp.o.d"
  "CMakeFiles/dqs_lowerbound.dir/lockstep.cpp.o"
  "CMakeFiles/dqs_lowerbound.dir/lockstep.cpp.o.d"
  "CMakeFiles/dqs_lowerbound.dir/potential.cpp.o"
  "CMakeFiles/dqs_lowerbound.dir/potential.cpp.o.d"
  "libdqs_lowerbound.a"
  "libdqs_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
