# Empty compiler generated dependencies file for dqs_lowerbound.
# This may be replaced when dependencies are built.
