file(REMOVE_RECURSE
  "CMakeFiles/dqs_qsim.dir/controlled.cpp.o"
  "CMakeFiles/dqs_qsim.dir/controlled.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/density.cpp.o"
  "CMakeFiles/dqs_qsim.dir/density.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/density_evolution.cpp.o"
  "CMakeFiles/dqs_qsim.dir/density_evolution.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/gates.cpp.o"
  "CMakeFiles/dqs_qsim.dir/gates.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/linalg.cpp.o"
  "CMakeFiles/dqs_qsim.dir/linalg.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/measure.cpp.o"
  "CMakeFiles/dqs_qsim.dir/measure.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/noise.cpp.o"
  "CMakeFiles/dqs_qsim.dir/noise.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/operator_builder.cpp.o"
  "CMakeFiles/dqs_qsim.dir/operator_builder.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/register_layout.cpp.o"
  "CMakeFiles/dqs_qsim.dir/register_layout.cpp.o.d"
  "CMakeFiles/dqs_qsim.dir/state_vector.cpp.o"
  "CMakeFiles/dqs_qsim.dir/state_vector.cpp.o.d"
  "libdqs_qsim.a"
  "libdqs_qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
