
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsim/controlled.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/controlled.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/controlled.cpp.o.d"
  "/root/repo/src/qsim/density.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/density.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/density.cpp.o.d"
  "/root/repo/src/qsim/density_evolution.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/density_evolution.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/density_evolution.cpp.o.d"
  "/root/repo/src/qsim/gates.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/gates.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/gates.cpp.o.d"
  "/root/repo/src/qsim/linalg.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/linalg.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/linalg.cpp.o.d"
  "/root/repo/src/qsim/measure.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/measure.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/measure.cpp.o.d"
  "/root/repo/src/qsim/noise.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/noise.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/noise.cpp.o.d"
  "/root/repo/src/qsim/operator_builder.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/operator_builder.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/operator_builder.cpp.o.d"
  "/root/repo/src/qsim/register_layout.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/register_layout.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/register_layout.cpp.o.d"
  "/root/repo/src/qsim/state_vector.cpp" "src/qsim/CMakeFiles/dqs_qsim.dir/state_vector.cpp.o" "gcc" "src/qsim/CMakeFiles/dqs_qsim.dir/state_vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dqs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
