file(REMOVE_RECURSE
  "libdqs_qsim.a"
)
