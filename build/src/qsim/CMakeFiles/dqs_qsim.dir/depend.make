# Empty dependencies file for dqs_qsim.
# This may be replaced when dependencies are built.
