file(REMOVE_RECURSE
  "CMakeFiles/dqs_estimation.dir/adaptive.cpp.o"
  "CMakeFiles/dqs_estimation.dir/adaptive.cpp.o.d"
  "CMakeFiles/dqs_estimation.dir/amplitude_estimation.cpp.o"
  "CMakeFiles/dqs_estimation.dir/amplitude_estimation.cpp.o.d"
  "CMakeFiles/dqs_estimation.dir/iqae.cpp.o"
  "CMakeFiles/dqs_estimation.dir/iqae.cpp.o.d"
  "CMakeFiles/dqs_estimation.dir/qpe_counting.cpp.o"
  "CMakeFiles/dqs_estimation.dir/qpe_counting.cpp.o.d"
  "libdqs_estimation.a"
  "libdqs_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqs_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
