file(REMOVE_RECURSE
  "libdqs_estimation.a"
)
