# Empty compiler generated dependencies file for dqs_estimation.
# This may be replaced when dependencies are built.
