// Boundary-value sweeps across the whole stack: the smallest legal
// universes, capacities and machine counts, saturation (M = νN), single
// elements, and degenerate mixes thereof.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "sampling/hierarchical.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

struct EdgeCase {
  std::size_t universe;
  std::vector<std::vector<std::uint64_t>> machine_counts;
  std::uint64_t nu;
  const char* label;
};

class EdgeSweep : public ::testing::TestWithParam<EdgeCase> {};

DistributedDatabase build(const EdgeCase& c) {
  std::vector<Dataset> datasets;
  for (const auto& counts : c.machine_counts)
    datasets.push_back(Dataset::from_counts(counts));
  return DistributedDatabase(std::move(datasets), c.nu);
}

TEST_P(EdgeSweep, BothSamplersExact) {
  const auto db = build(GetParam());
  const auto seq = run_sequential_sampler(db);
  EXPECT_NEAR(seq.fidelity, 1.0, 1e-9) << GetParam().label;
  const auto par = run_parallel_sampler(db);
  EXPECT_NEAR(par.fidelity, 1.0, 1e-9) << GetParam().label;
}

TEST_P(EdgeSweep, QueryAccountingExact) {
  const auto db = build(GetParam());
  const auto seq = run_sequential_sampler(db);
  EXPECT_EQ(seq.stats.total_sequential(),
            predicted_sequential_queries(seq.plan, db.num_machines()));
}

TEST_P(EdgeSweep, HierarchicalAgreesAtBothEndpoints) {
  const auto db = build(GetParam());
  const std::size_t n = db.num_machines();
  const auto all_groups = run_hierarchical_sampler(
      db, contiguous_partition(n, n));
  const auto one_group =
      run_hierarchical_sampler(db, contiguous_partition(n, 1));
  EXPECT_NEAR(all_groups.fidelity, 1.0, 1e-9);
  EXPECT_NEAR(one_group.fidelity, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, EdgeSweep,
    ::testing::Values(
        // N = 1: the whole universe is one element.
        EdgeCase{1, {{3}}, 4, "single-element universe"},
        EdgeCase{1, {{1}, {2}}, 3, "single element, two machines"},
        // ν = 1: counts are 0/1 only.
        EdgeCase{4, {{1, 0, 1, 0}}, 1, "nu=1 bitmap store"},
        EdgeCase{4, {{1, 0, 0, 0}, {0, 0, 0, 1}}, 1, "nu=1, disjoint"},
        // M = νN: saturated database, a = 1.
        EdgeCase{3, {{2, 2, 2}}, 2, "saturated"},
        EdgeCase{2, {{1, 1}, {1, 1}}, 2, "saturated two machines"},
        // M = 1: one record in a big universe.
        EdgeCase{32, {{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                       0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
                 1, "single record"},
        // Highly unbalanced machines.
        EdgeCase{8,
                 {{4, 4, 4, 4, 0, 0, 0, 0},
                  {0, 0, 0, 0, 0, 0, 0, 1},
                  {0, 0, 0, 0, 0, 0, 0, 0}},
                 4, "unbalanced with empty machine"},
        // One machine only (centralized special case).
        EdgeCase{6, {{1, 2, 3, 0, 1, 0}}, 7, "centralized"}));

TEST(EdgeCases, MaximallySkewedDistribution) {
  // One heavy hitter at capacity next to singletons.
  std::vector<Dataset> datasets = {Dataset::from_counts({16, 1, 1, 1})};
  const DistributedDatabase db(std::move(datasets), 16);
  const auto result = run_sequential_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  const auto amps = result.output_amplitudes();
  EXPECT_NEAR(std::norm(amps[0]), 16.0 / 19.0, 1e-9);
}

TEST(EdgeCases, ManyMachinesFewElements) {
  std::vector<Dataset> datasets(24, Dataset(4));
  datasets[7].insert(1, 1);
  datasets[19].insert(3, 1);
  const DistributedDatabase db(std::move(datasets), 2);
  const auto result = run_sequential_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  // 24 machines each queried twice per D.
  EXPECT_EQ(result.stats.sequential_per_machine.size(), 24u);
  for (const auto q : result.stats.sequential_per_machine)
    EXPECT_EQ(q, 2 * result.plan.d_applications());
}

TEST(EdgeCases, NuJustAboveMinimum) {
  // ν exactly at the joint maximum vs one above: both legal, both exact,
  // the latter needs at least as many queries.
  std::vector<Dataset> a = {Dataset::from_counts({3, 1, 0, 2})};
  std::vector<Dataset> b = a;
  const DistributedDatabase tight(std::move(a), 3);
  const DistributedDatabase slack(std::move(b), 4);
  const auto tight_result = run_sequential_sampler(tight);
  const auto slack_result = run_sequential_sampler(slack);
  EXPECT_NEAR(tight_result.fidelity, 1.0, 1e-9);
  EXPECT_NEAR(slack_result.fidelity, 1.0, 1e-9);
  EXPECT_GE(slack_result.stats.total_sequential(),
            tight_result.stats.total_sequential());
}

TEST(EdgeCases, LargeSparseInstanceStaysExactAndFast) {
  // N = 4096 with 8 records — hundreds of iterations, still exact.
  std::vector<Dataset> datasets = {Dataset(4096), Dataset(4096)};
  for (std::size_t i = 0; i < 8; ++i) datasets[i % 2].insert(i * 512, 1);
  const DistributedDatabase db(std::move(datasets), 1);
  const auto result = run_sequential_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-8);
  EXPECT_GT(result.plan.full_iterations, 15u);
}

}  // namespace
}  // namespace qs
