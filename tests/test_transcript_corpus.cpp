// Corrupted-transcript corpus: parse_transcript_checked must reject every
// malformed wire transcript with a structured error naming the line,
// column, token and reason — and the downstream consumers (transport
// validation, ledger replay, the static verifier) must reject transcripts
// that parse fine but describe a broken protocol run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "distdb/transcript.hpp"
#include "distdb/transport.hpp"
#include "sampling/schedule.hpp"

namespace qs {
namespace {

struct ParseCase {
  std::string text;
  std::size_t line;
  std::size_t column;
  std::string token;
  std::string reason_fragment;
};

// The malformed-token corpus. Each entry pins the exact error location so
// a parser regression cannot silently drift the diagnostics.
const std::vector<ParseCase>& parse_corpus() {
  static const std::vector<ParseCase> corpus = {
      {"OX", 1, 1, "OX", "non-digit"},
      {"O", 1, 1, "O", "names no machine"},
      {"O†", 1, 1, "O†", "names no machine"},
      {"Q3", 1, 1, "Q3", "unknown token"},
      {"P3", 1, 1, "P3", "parallel round is spelled P*"},
      {"P**", 1, 1, "P**", "parallel round is spelled P*"},
      {"P*x", 1, 1, "P*x", "parallel round is spelled P*"},
      {"O1x", 1, 1, "O1x", "non-digit 'x' at offset 2"},
      {"O99999999999999999999", 1, 1, "O99999999999999999999", "overflows"},
      {"†", 1, 1, "†", "unknown token"},
      {"O1††", 1, 1, "O1††", "non-digit"},
      {"-O1", 1, 1, "-O1", "unknown token"},
      {"O0 OX", 1, 4, "OX", "non-digit"},
      {"O0 O1\nO2 BAD", 2, 4, "BAD", "unknown token"},
      {"O3\n\n  P*†\n oops", 4, 2, "oops", "unknown token"},
      {"O1†x", 1, 1, "O1†x", "non-digit"},
  };
  return corpus;
}

TEST(TranscriptCorpus, MalformedTokensReportLineColumnAndReason) {
  for (const auto& c : parse_corpus()) {
    const auto result = parse_transcript_checked(c.text);
    ASSERT_FALSE(result.ok()) << "should reject: " << c.text;
    EXPECT_EQ(result.error->line, c.line) << c.text;
    EXPECT_EQ(result.error->column, c.column) << c.text;
    EXPECT_EQ(result.error->token, c.token) << c.text;
    EXPECT_NE(result.error->reason.find(c.reason_fragment), std::string::npos)
        << "reason '" << result.error->reason << "' for '" << c.text
        << "' should mention '" << c.reason_fragment << "'";
  }
}

TEST(TranscriptCorpus, ThrowingParserCarriesTheStructuredRendering) {
  for (const auto& c : parse_corpus()) {
    try {
      (void)parse_transcript(c.text);
      FAIL() << "should throw: " << c.text;
    } catch (const ContractViolation& violation) {
      const std::string what = violation.what();
      EXPECT_NE(what.find("line " + std::to_string(c.line)),
                std::string::npos)
          << what;
      EXPECT_NE(what.find(c.reason_fragment), std::string::npos) << what;
    }
  }
}

TEST(TranscriptCorpus, ErrorRenderingNamesEverything) {
  const auto result = parse_transcript_checked("O0\nP* OX†");
  ASSERT_FALSE(result.ok());
  const auto rendered = result.error->to_string();
  EXPECT_NE(rendered.find("line 2"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("column 4"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("OX†"), std::string::npos) << rendered;
}

TEST(TranscriptCorpus, EventsBeforeTheErrorAreRetained) {
  const auto result = parse_transcript_checked("O0 P*† BAD O1");
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.transcript.size(), 2u);
  EXPECT_EQ(result.transcript.events()[0].kind, QueryKind::kSequential);
  EXPECT_EQ(result.transcript.events()[1].kind, QueryKind::kParallelRound);
  EXPECT_TRUE(result.transcript.events()[1].adjoint);
}

TEST(TranscriptCorpus, WellFormedVariantsParse) {
  // Compiled-schedule round trip in both models.
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const PublicParams params{64, 3, 4, 24};
    const auto schedule = compile_schedule(params, mode);
    const auto result = parse_transcript_checked(schedule.to_string());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.transcript, schedule);
  }
  // Legacy parallel spelling, messy whitespace, multi-line, empty input.
  EXPECT_TRUE(parse_transcript_checked("P P†").ok());
  EXPECT_TRUE(parse_transcript_checked("\n  O3 \t P*† \r\n O12†\n").ok());
  EXPECT_TRUE(parse_transcript_checked("").ok());
  EXPECT_EQ(parse_transcript_checked("").transcript.size(), 0u);
  const auto big = parse_transcript_checked("O1844674407370955161");
  ASSERT_TRUE(big.ok());  // 19 digits still fits the index type
  EXPECT_EQ(big.transcript.events()[0].machine, 1844674407370955161u);
}

// --- transcripts that PARSE but describe a corrupt protocol run ---

Transcript well_formed(const std::string& text) {
  auto result = parse_transcript_checked(text);
  EXPECT_TRUE(result.ok());
  return result.transcript;
}

TEST(TranscriptCorpus, OutOfRangeMachineRejectedDownstream) {
  const auto t = well_formed("O0 O7 O1");
  EXPECT_THROW((void)stats_of(t, 4), ContractViolation);
  const auto violation = TransportSession::validate_schedule(t, 4);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("event 1"), std::string::npos) << *violation;
  EXPECT_NE(violation->find("machine 7"), std::string::npos) << *violation;
}

TEST(TranscriptCorpus, VerifierFlagsProtocolCorruptions) {
  const PublicParams params{64, 3, 4, 24};
  const auto schedule = compile_schedule(params, QueryMode::kSequential);
  ASSERT_TRUE(analysis::verify_transcript(schedule, params,
                                          QueryMode::kSequential)
                  .clean());

  // Five distinct corruptions of a certified schedule, each caught.
  std::vector<Transcript> corrupted;
  {  // truncated: last event missing (budget/nesting break)
    Transcript t;
    for (std::size_t i = 0; i + 1 < schedule.size(); ++i) {
      const auto& e = schedule.events()[i];
      if (e.kind == QueryKind::kSequential) {
        t.record_sequential(e.machine, e.adjoint);
      } else {
        t.record_parallel_round(e.adjoint);
      }
    }
    corrupted.push_back(t);
  }
  {  // duplicated first event (budget/load-balance break)
    Transcript t = schedule;
    const auto& e = schedule.events().front();
    t.record_sequential(e.machine, e.adjoint);
    corrupted.push_back(t);
  }
  {  // adjoint flag flipped on the first event (nesting break)
    Transcript t;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const auto& e = schedule.events()[i];
      t.record_sequential(e.machine, i == 0 ? !e.adjoint : e.adjoint);
    }
    corrupted.push_back(t);
  }
  {  // all traffic redirected to machine 0 (load-balance break)
    Transcript t;
    for (const auto& e : schedule.events()) {
      t.record_sequential(0, e.adjoint);
    }
    corrupted.push_back(t);
  }
  {  // a foreign parallel round spliced in (wrong model)
    Transcript t = schedule;
    t.record_parallel_round(false);
    corrupted.push_back(t);
  }
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    const auto report = analysis::verify_transcript(
        corrupted[i], params, QueryMode::kSequential);
    EXPECT_FALSE(report.clean()) << "corruption " << i << " not caught";
  }
}

}  // namespace
}  // namespace qs

// NOTE on corpus size: 16 malformed-token cases above plus the
// out-of-range transcript and five protocol corruptions = 22 distinct
// corrupted transcripts exercised.
