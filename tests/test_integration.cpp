// Cross-module integration scenarios: full pipelines a downstream user
// would run, combining workloads, samplers, measurement, dynamic updates,
// density-matrix fidelity (Lemma B.1's view) and the lower-bound harness.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "lowerbound/potential.hpp"
#include "qsim/density.hpp"
#include "qsim/measure.hpp"
#include "sampling/classical.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(Integration, ShardedStorePipeline) {
  // A range-partitioned store: build, sample, measure, compare.
  auto datasets = workload::disjoint_partition(64, 8, 3);
  DistributedDatabase db(std::move(datasets), 3);
  const auto result = run_parallel_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);

  Rng rng(1);
  const auto hist =
      histogram_register(result.state, result.registers.elem, rng, 50000);
  EXPECT_LT(total_variation(normalize_histogram(hist),
                            db.target_distribution()),
            0.02);
}

TEST(Integration, ReplicatedStoreSamplesLikeSingleCopy) {
  // Full replication changes M and ν but not the sampled distribution.
  auto replicated = workload::replicated(16, 4, 8, 2);
  const auto nu_rep = min_capacity(replicated);
  DistributedDatabase db_rep(std::move(replicated), nu_rep);

  auto single = workload::replicated(16, 1, 8, 2);
  const auto nu_single = min_capacity(single);
  DistributedDatabase db_single(std::move(single), nu_single);

  const auto p_rep = db_rep.target_distribution();
  const auto p_single = db_single.target_distribution();
  EXPECT_LT(total_variation(p_rep, p_single), 1e-12);

  const auto r = run_sequential_sampler(db_rep);
  EXPECT_NEAR(r.fidelity, 1.0, 1e-9);
}

TEST(Integration, StreamingUpdatesKeepSamplerExact) {
  // A live database: random inserts and deletes interleaved with sampling.
  Rng rng(5);
  auto datasets = workload::uniform_random(16, 3, 30, rng);
  const auto nu = min_capacity(datasets) + 4;
  DistributedDatabase db(std::move(datasets), nu);

  for (int round = 0; round < 5; ++round) {
    // Mutate: a few random updates that respect capacity.
    for (int u = 0; u < 6; ++u) {
      const auto j = static_cast<std::size_t>(rng.uniform_below(3));
      const auto i = static_cast<std::size_t>(rng.uniform_below(16));
      if (rng.bernoulli(0.5) && db.total_count(i) < db.nu() &&
          db.machine(j).data().count(i) < db.machine(j).capacity()) {
        db.insert(j, i);
      } else if (db.machine(j).data().count(i) > 0) {
        db.erase(j, i);
      }
    }
    if (db.total() == 0) continue;
    const auto result = run_sequential_sampler(db);
    EXPECT_NEAR(result.fidelity, 1.0, 1e-9) << "round " << round;
  }
}

TEST(Integration, ReducedDensityFidelityMatchesLemmaB1View) {
  // Lemma B.1 evaluates F(ρ, ψ) with ρ the element register's reduced
  // state. For the exact sampler the reduced state is pure and the
  // fidelity is 1; check both the full-state and reduced-state paths.
  Rng rng(7);
  auto datasets = workload::zipf(8, 2, 24, 1.0, rng);
  const auto nu = min_capacity(datasets) + 1;
  DistributedDatabase db(std::move(datasets), nu);
  const auto result = run_sequential_sampler(db);

  const auto rho = partial_trace(result.state, {result.registers.elem});
  const auto target = db.target_amplitudes();
  EXPECT_NEAR(fidelity_with_pure(rho, target), 1.0, 1e-9);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

TEST(Integration, TruncatedRunHasImperfectReducedFidelity) {
  // Stop the amplification early (plain AA count only) and confirm the
  // Lemma B.1 fidelity drops below 1 — the quantity the lower bound reasons
  // about is genuinely sensitive to under-rotation.
  // NON-uniform counts matter here: with uniform counts the "bad" branch
  // |ψ⊥⟩ has the same element-register distribution as |ψ⟩ and the reduced
  // fidelity stays 1 even when under-rotated.
  std::vector<std::uint64_t> counts(32, 1);
  for (std::size_t i = 0; i < 32; i += 2) counts[i] = 3;
  std::vector<Dataset> datasets = {Dataset::from_counts(counts)};
  DistributedDatabase db(std::move(datasets), 16);  // a = 64/(16·32) = 1/8

  SingleStateBackend backend(db, StatePrep::kHouseholder);
  AAPlan truncated = plan_zero_error(1.0 / 8.0);
  truncated.needs_final = false;  // drop the exact final correction
  run_sampling_circuit(backend, QueryMode::kSequential, truncated);

  const auto rho = partial_trace(backend.state(),
                                 {backend.registers().elem});
  const double f = fidelity_with_pure(rho, db.target_amplitudes());
  EXPECT_LT(f, 1.0 - 1e-6);
  EXPECT_GT(f, 0.5);  // but still well amplified
}

TEST(Integration, QuantumBeatsClassicalOnSparseData) {
  // The motivating regime: large universe, sparse data. Compare total
  // oracle/probe counts for producing a sampling-capable artifact.
  std::vector<Dataset> datasets = {
      Dataset::from_counts([&] {
        std::vector<std::uint64_t> c(512, 0);
        for (std::size_t i = 0; i < 8; ++i) c[i * 64] = 2;
        return c;
      }())};
  DistributedDatabase db(std::move(datasets), 2);  // M=16, N=512, ν=2

  const auto quantum = run_sequential_sampler(db);
  const auto classical = classical_full_scan(db);
  EXPECT_NEAR(quantum.fidelity, 1.0, 1e-9);
  EXPECT_LT(quantum.stats.total_sequential(), classical.queries / 2);
}

TEST(Integration, LowerBoundHarnessOnRealWorkload) {
  // The potential machinery also runs on non-canonical inputs: a uniform
  // workload where machine k holds a dominant share.
  Rng rng(11);
  std::vector<Dataset> base = workload::uniform_random(24, 3, 6, rng);
  // Boost machine 1 so the hard-input condition has a chance.
  for (std::size_t i = 0; i < 4; ++i) base[1].insert(i, 2);

  PotentialOptions options;
  options.family_samples = 6;
  const auto nu = min_capacity(base) + 1;
  const auto result = measure_potential(base, 1, nu, options, rng);
  EXPECT_NEAR(result.mean_final_fidelity, 1.0, 1e-9);
  for (std::size_t t = 0; t < result.d_t.size(); ++t)
    EXPECT_LE(result.d_t[t], result.ceiling(t + 1) + 1e-9);
}

TEST(Integration, SequentialParallelAndCentralizedAgreeEverywhere) {
  Rng rng(13);
  for (int trial = 0; trial < 3; ++trial) {
    auto datasets = workload::uniform_random(16, 4, 20 + 5 * trial, rng);
    const auto nu = min_capacity(datasets) + trial;
    DistributedDatabase db(std::move(datasets), nu);
    const auto seq = run_sequential_sampler(db);
    const auto par = run_parallel_sampler(db);
    const auto central = run_centralized_sampler(db);
    EXPECT_NEAR(pure_fidelity(seq.state, par.state), 1.0, 1e-9);
    EXPECT_NEAR(seq.fidelity, 1.0, 1e-9);
    EXPECT_NEAR(central.fidelity, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace qs
