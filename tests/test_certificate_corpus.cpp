// Malformed-input corpus for the certificate parsers
// (src/analysis/abstint/certificate.hpp, src/analysis/tv/certificate.hpp).
//
// parse_certificate_checked / parse_tv_certificate_checked must turn every
// malformed document into ONE structured CertificateParseError naming the
// exact JSON path — mirroring parse_transcript_checked — and the throwing
// wrappers must raise qs::ContractViolation carrying that message. The
// corpus perturbs a genuine emitted document one field at a time, so the
// expected paths stay honest against the real wire format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/abstint/certificate.hpp"
#include "analysis/tv/certificate.hpp"
#include "common/require.hpp"

namespace qs::analysis {
namespace {

const PublicParams kPoint{32, 4, 3, 24};

std::string good_cert_json() {
  static const std::string json =
      to_json(certify_compiled(kPoint, QueryMode::kSequential));
  return json;
}

std::string good_tv_json() {
  tv::TvOptions options;
  options.obliviousness_trials = 2;
  static const std::string json = tv::to_json(
      tv::certify_tv(kPoint, QueryMode::kSequential, options));
  return json;
}

/// The good document with `needle` replaced once by `replacement`.
std::string mutate(std::string doc, const std::string& needle,
                   const std::string& replacement) {
  const auto at = doc.find(needle);
  QS_REQUIRE(at != std::string::npos,
             "corpus needle not found in the emitted document: " + needle);
  return doc.replace(at, needle.size(), replacement);
}

struct CorpusCase {
  std::string name;
  std::string document;
  std::string expected_path;
};

std::vector<CorpusCase> base_corpus() {
  const std::string good = good_cert_json();
  return {
      {"not-json", "this is not { json", "$"},
      {"truncated", good.substr(0, good.size() / 2), "$"},
      {"document-is-an-array", "[1, 2, 3]", "$"},
      {"empty-object", "{}", "$.schema"},
      {"schema-wrong-type", mutate(good, "\"dqs-cert-v1\"", "17"),
       "$.schema"},
      {"schema-unknown-tag",
       mutate(good, "\"dqs-cert-v1\"", "\"dqs-cert-v2\""), "$.schema"},
      {"params-missing", mutate(good, "\"params\"", "\"parameters\""),
       "$.params"},
      {"params-not-object",
       mutate(good, "\"params\": {\"universe\": 32, \"machines\": 4, "
                    "\"nu\": 3, \"total\": 24}",
              "\"params\": []"),
       "$.params"},
      {"universe-wrong-type", mutate(good, "\"universe\": 32",
                                     "\"universe\": \"32\""),
       "$.params.universe"},
      {"machines-negative", mutate(good, "\"machines\": 4",
                                   "\"machines\": -4"),
       "$.params.machines"},
      {"nu-not-integer", mutate(good, "\"nu\": 3", "\"nu\": 3.5"),
       "$.params.nu"},
      {"mode-unknown", mutate(good, "\"mode\": \"sequential\"",
                              "\"mode\": \"simultaneous\""),
       "$.mode"},
      {"cost-d-missing", mutate(good, "\"d\":", "\"dd\":"), "$.cost.d"},
      {"forward-array-wrong-type",
       mutate(good, "\"forward_per_machine\": [",
              "\"forward_per_machine\": [true,"),
       "$.cost.forward_per_machine[0]"},
      {"forward-not-array", mutate(good, "\"forward_per_machine\": [",
                                   "\"forward_per_machine\": 9, \"x\": ["),
       "$.cost.forward_per_machine"},
      {"matches-closed-form-wrong-type",
       mutate(good, "\"matches_closed_form\": ",
              "\"matches_closed_form\": \"yes\", \"mcf\": "),
       "$.cost.matches_closed_form"},
      {"amplitude-a-wrong-type", mutate(good, "\"a\":", "\"a\": null, \"b\":"),
       "$.amplitude.a"},
      {"derivation-wrong-type",
       mutate(good, "\"derivation\": \"", "\"derivation\": 3, \"x\": \""),
       "$.amplitude.derivation"},
      {"support-bound-missing", mutate(good, "\"bound\":", "\"bonud\":"),
       "$.support.bound"},
      {"recovery-present-wrong-type",
       mutate(good, "\"recovery\": {\"present\": false}",
              "\"recovery\": {\"present\": 0}"),
       "$.recovery.present"},
      {"diagnostics-not-array", mutate(good, "\"diagnostics\": []",
                                       "\"diagnostics\": {}"),
       "$.diagnostics"},
  };
}

std::vector<CorpusCase> tv_corpus() {
  const std::string good = good_tv_json();
  return {
      {"tv-schema-is-base-tag",
       mutate(good, "\"dqs-tv-v1\"", "\"dqs-cert-v1\""), "$.schema"},
      {"tv-section-missing", mutate(good, "\"tv\":", "\"tvx\":"), "$.tv"},
      {"tv-lowerings-wrong-type",
       mutate(good, "\"lowerings\":", "\"lowerings\": \"many\", \"x\":"),
       "$.tv.lowerings"},
      {"tv-proofs-not-array",
       mutate(good, "\"proofs\": [", "\"proofs\": 3, \"x\": ["),
       "$.tv.proofs"},
      {"tv-proof-rule-missing",
       mutate(good, "{\"rule\":", "{\"ruel\":"), "$.tv.proofs[0].rule"},
      {"taint-section-missing", mutate(good, "\"taint\":", "\"tainted\":"),
       "$.taint"},
      {"taint-content-ops-wrong-type",
       mutate(good, "\"content_ops\": 0", "\"content_ops\": false"),
       "$.taint.content_ops"},
      {"cross-check-unknown-value",
       mutate(good, "\"dynamic_cross_check\": \"agree\"",
              "\"dynamic_cross_check\": \"maybe\""),
       "$.taint.dynamic_cross_check"},
  };
}

TEST(CertificateCorpus, GoodDocumentRoundTripsThroughBothParsers) {
  const Certificate cert = certify_compiled(kPoint, QueryMode::kSequential);
  const auto checked = parse_certificate_checked(to_json(cert));
  ASSERT_TRUE(checked.ok()) << checked.error->to_string();
  EXPECT_TRUE(checked.certificate == cert);
  EXPECT_TRUE(parse_certificate(to_json(cert)) == cert);
}

TEST(CertificateCorpus, EveryMalformedDocumentNamesItsField) {
  for (const auto& c : base_corpus()) {
    SCOPED_TRACE(c.name);
    const auto result = parse_certificate_checked(c.document);
    ASSERT_FALSE(result.ok()) << "accepted a malformed document";
    EXPECT_EQ(result.error->path, c.expected_path)
        << result.error->to_string();
    EXPECT_FALSE(result.error->reason.empty());
    // The rendered error carries the path, mirroring
    // TranscriptParseError::to_string().
    EXPECT_NE(result.error->to_string().find(c.expected_path),
              std::string::npos);
  }
}

TEST(CertificateCorpus, ThrowingParserCarriesTheStructuredMessage) {
  for (const auto& c : base_corpus()) {
    SCOPED_TRACE(c.name);
    try {
      (void)parse_certificate(c.document);
      FAIL() << "parse_certificate accepted a malformed document";
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find(c.expected_path),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CertificateCorpus, FirstFailureWinsWhenSeveralFieldsAreBroken) {
  // Breaking params AND mode must report params — the parse is ordered and
  // the context records only the first mismatch.
  const std::string doc =
      mutate(mutate(good_cert_json(), "\"universe\": 32",
                    "\"universe\": \"x\""),
             "\"mode\": \"sequential\"", "\"mode\": \"simultaneous\"");
  const auto result = parse_certificate_checked(doc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->path, "$.params.universe");
}

TEST(TvCertificateCorpus, GoodDocumentRoundTrips) {
  const auto parsed = tv::parse_tv_certificate_checked(good_tv_json());
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();
  EXPECT_EQ(parsed.certificate.schema, "dqs-tv-v1");
  EXPECT_EQ(parsed.certificate.base.schema, "dqs-cert-v1");
  EXPECT_EQ(tv::to_json(parsed.certificate), good_tv_json());
}

TEST(TvCertificateCorpus, EveryMalformedDocumentNamesItsField) {
  for (const auto& c : tv_corpus()) {
    SCOPED_TRACE(c.name);
    const auto result = tv::parse_tv_certificate_checked(c.document);
    ASSERT_FALSE(result.ok()) << "accepted a malformed document";
    EXPECT_EQ(result.error->path, c.expected_path)
        << result.error->to_string();
    EXPECT_THROW((void)tv::parse_tv_certificate(c.document),
                 ContractViolation);
  }
}

TEST(TvCertificateCorpus, BaseParserRejectsTvDocuments) {
  // A dqs-tv-v1 document is NOT a dqs-cert-v1 document: the document-level
  // schema tag differs, and the base parser must say so rather than
  // silently reading the shared body.
  const auto result = parse_certificate_checked(good_tv_json());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->path, "$.schema");
}

}  // namespace
}  // namespace qs::analysis
