// Differential grid pinning the sparse StateBackend (qsim/state_backend)
// to the dense statevector it substitutes for at big N.
//
// Contract (state_backend.hpp, docs/PERF.md): kernels that only relabel
// basis states — permutation tables (forward and inverse replay) and value
// shifts — move amplitudes without arithmetic, so the sparse backend must
// match the dense one to 0 ULP (EXPECT_EQ on raw complex values).
// Arithmetic kernels (diagonal, fiber-dense, Householder) reuse the same
// open-coded complex products but fold in sorted-entry order, so they are
// pinned at 1e-12. The grid randomizes layouts × registers × operator
// structures, covers fusion outputs and the full AA trajectory, and runs
// the chaos-grid recovery seam on the sparse backend; results are
// deterministic across runs, thread counts and build flavours because
// every sparse reduction is a serial fold in sorted-index order.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "faults/retry.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/gates.hpp"
#include "qsim/measure.hpp"
#include "qsim/state_backend.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"

namespace qs {
namespace {

struct GridCase {
  RegisterLayout layout;
  std::vector<RegisterId> regs;
};

GridCase random_layout(Rng& rng, std::size_t index) {
  static const std::size_t dims[] = {2, 3, 4, 5, 8};
  GridCase grid;
  const std::size_t num_regs = 2 + index % 3;
  for (std::size_t r = 0; r < num_regs; ++r) {
    const std::size_t d =
        (r == 0) ? 2 : dims[rng.uniform_below(std::size(dims))];
    grid.regs.push_back(grid.layout.add("r" + std::to_string(r), d));
  }
  return grid;
}

/// A dense random state plus its sparse twin. `support` < 1.0 zeroes a
/// random fraction of amplitudes first, so the grid also exercises states
/// whose nonzero structure changes under each kernel.
struct TwinStates {
  StateVector dense;
  StateVector sparse;
};

TwinStates random_twins(const RegisterLayout& layout, Rng& rng,
                        double support = 1.0) {
  StateVector dense(layout);
  std::vector<cplx> amps(layout.total_dim());
  double norm2 = 0.0;
  for (auto& a : amps) {
    if (support < 1.0 && rng.uniform01() > support) {
      a = cplx{0.0, 0.0};
      continue;
    }
    a = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm2 += std::norm(a);
  }
  if (norm2 == 0.0) {
    amps[0] = cplx{1.0, 0.0};
    norm2 = 1.0;
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& a : amps) a *= inv;
  dense.set_amplitudes(std::move(amps));
  StateVector sparse = dense;
  sparse.sparsify();
  return TwinStates{std::move(dense), std::move(sparse)};
}

void expect_zero_ulp(const StateVector& dense, const StateVector& sparse,
                     const char* what) {
  ASSERT_EQ(dense.dim(), sparse.dim());
  for (std::size_t i = 0; i < dense.dim(); ++i) {
    EXPECT_EQ(dense.amplitude(i).real(), sparse.amplitude(i).real())
        << what << " index " << i;
    EXPECT_EQ(dense.amplitude(i).imag(), sparse.amplitude(i).imag())
        << what << " index " << i;
  }
}

void expect_close(const StateVector& dense, const StateVector& sparse,
                  double tol, const char* what) {
  ASSERT_EQ(dense.dim(), sparse.dim());
  for (std::size_t i = 0; i < dense.dim(); ++i) {
    EXPECT_NEAR(dense.amplitude(i).real(), sparse.amplitude(i).real(), tol)
        << what << " index " << i;
    EXPECT_NEAR(dense.amplitude(i).imag(), sparse.amplitude(i).imag(), tol)
        << what << " index " << i;
  }
}

// ------------------------------------------- differential grid, all 4 kinds

TEST(SparseDifferential, PermutationMatchesDenseExactly) {
  Rng rng(101);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    const std::size_t dim = grid.layout.total_dim();
    const std::size_t offset = rng.uniform_below(dim);
    const bool flip = rng.uniform_below(2) != 0;
    const auto op =
        CompiledOp::permutation(grid.layout, [dim, offset, flip](std::size_t x) {
          const std::size_t rotated = (x + offset) % dim;
          return flip ? dim - 1 - rotated : rotated;
        });
    // Full support and partial support (the sparse path rewrites indices
    // through the FORWARD table; the dense path gathers through the
    // inverse table — both must land on the same bits).
    for (const double support : {1.0, 0.4}) {
      auto twins = random_twins(grid.layout, rng, support);
      op.apply_to(twins.dense);
      op.apply_to(twins.sparse);
      expect_zero_ulp(twins.dense, twins.sparse, "permutation");
    }
  }
}

TEST(SparseDifferential, ValueShiftMatchesDenseExactly) {
  Rng rng(202);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    if (grid.regs.size() < 2) continue;
    const auto target = grid.regs[1];
    const auto cond = grid.regs[0];
    std::vector<std::size_t> shifts(grid.layout.dim(cond));
    for (auto& s : shifts) s = rng.uniform_below(grid.layout.dim(target) + 3);
    const auto op = CompiledOp::value_shift(grid.layout, target, cond, shifts);
    auto twins = random_twins(grid.layout, rng, 0.6);
    op.apply_to(twins.dense);
    op.apply_to(twins.sparse);
    expect_zero_ulp(twins.dense, twins.sparse, "value shift");
  }
}

TEST(SparseDifferential, ControlledValueShiftMatchesDenseExactly) {
  Rng rng(2021);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    auto grid = GridCase{};
    const auto flag = grid.layout.add("flag", 2);
    const auto cond = grid.layout.add("cond", 3 + trial % 3);
    const auto target = grid.layout.add("target", 4 + trial % 4);
    grid.regs = {flag, cond, target};
    std::vector<std::size_t> shifts(grid.layout.dim(cond));
    for (auto& s : shifts) s = rng.uniform_below(grid.layout.dim(target));
    const auto op = CompiledOp::controlled_value_shift(grid.layout, target,
                                                       cond, flag, shifts);
    auto twins = random_twins(grid.layout, rng, 0.7);
    op.apply_to(twins.dense);
    op.apply_to(twins.sparse);
    expect_zero_ulp(twins.dense, twins.sparse, "controlled value shift");
  }
}

TEST(SparseDifferential, DiagonalMatchesDenseWithinTolerance) {
  Rng rng(303);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    std::vector<double> angles(grid.layout.total_dim());
    for (auto& a : angles) a = rng.uniform(-3.0, 3.0);
    const auto op =
        CompiledOp::diagonal(grid.layout, [&angles](std::size_t x) {
          return cplx{std::cos(angles[x]), std::sin(angles[x])};
        });
    auto twins = random_twins(grid.layout, rng);
    op.apply_to(twins.dense);
    op.apply_to(twins.sparse);
    expect_close(twins.dense, twins.sparse, 1e-12, "diagonal");
  }
}

TEST(SparseDifferential, FiberDenseMatchesDenseWithinTolerance) {
  Rng rng(404);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    // Random unitaries per conditioning digit of the LAST register, applied
    // to the first (qubit) target — the 𝒰 shape of Eq. (6).
    const auto target = grid.regs[0];
    const auto cond = grid.regs.back();
    if (cond.value == target.value) continue;
    std::vector<Matrix> mats;
    for (std::size_t c = 0; c < grid.layout.dim(cond); ++c)
      mats.push_back(rotation_matrix(rng.uniform(-3.0, 3.0)));
    const auto& layout = grid.layout;
    const auto op = CompiledOp::fiber_dense(
        layout, target, [&](std::size_t fiber_base) -> const Matrix* {
          return &mats[layout.digit(fiber_base, cond)];
        });
    auto twins = random_twins(grid.layout, rng, 0.8);
    op.apply_to(twins.dense);
    op.apply_to(twins.sparse);
    expect_close(twins.dense, twins.sparse, 1e-12, "fiber dense");
  }
}

// ------------------------------------------------------------------ fusion

TEST(SparseDifferential, FusedProgramsMatchDense) {
  Rng rng(505);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto grid = random_layout(rng, trial);
    if (grid.regs.size() < 2) continue;
    const auto target = grid.regs[1];
    const auto cond = grid.regs[0];
    const std::size_t dim = grid.layout.total_dim();

    // shift ∘ shift and permutation ∘ permutation fuse to single tables;
    // the fused output must replay identically on both backends.
    std::vector<std::size_t> s1(grid.layout.dim(cond)), s2(s1.size());
    for (auto& s : s1) s = rng.uniform_below(grid.layout.dim(target));
    for (auto& s : s2) s = rng.uniform_below(grid.layout.dim(target));
    CompiledProgram shifts;
    shifts.push(CompiledOp::value_shift(grid.layout, target, cond, s1));
    shifts.push(CompiledOp::value_shift(grid.layout, target, cond, s2));
    EXPECT_GE(shifts.fuse(), 1u);
    auto twins = random_twins(grid.layout, rng, 0.5);
    shifts.apply_to(twins.dense);
    shifts.apply_to(twins.sparse);
    expect_zero_ulp(twins.dense, twins.sparse, "fused shifts");

    const std::size_t offset = 1 + rng.uniform_below(dim - 1);
    CompiledProgram perms;
    perms.push(CompiledOp::permutation(
        grid.layout, [dim, offset](std::size_t x) { return (x + offset) % dim; }));
    perms.push(CompiledOp::permutation(
        grid.layout, [dim](std::size_t x) { return dim - 1 - x; }));
    EXPECT_GE(perms.fuse(), 1u);
    auto ptwins = random_twins(grid.layout, rng, 0.5);
    perms.apply_to(ptwins.dense);
    perms.apply_to(ptwins.sparse);
    expect_zero_ulp(ptwins.dense, ptwins.sparse, "fused permutations");

    // diagonal ∘ diagonal multiplies factors at fuse time — arithmetic, so
    // the fused replay is pinned at the 1e-12 contract.
    CompiledProgram diags;
    for (int k = 0; k < 2; ++k) {
      const double base = rng.uniform(-2.0, 2.0);
      diags.push(CompiledOp::diagonal(grid.layout, [base](std::size_t x) {
        const double a = base + 0.1 * static_cast<double>(x % 7);
        return cplx{std::cos(a), std::sin(a)};
      }));
    }
    EXPECT_GE(diags.fuse(), 1u);
    auto dtwins = random_twins(grid.layout, rng);
    diags.apply_to(dtwins.dense);
    diags.apply_to(dtwins.sparse);
    expect_close(dtwins.dense, dtwins.sparse, 1e-12, "fused diagonals");
  }
}

// ----------------------------------------------- inverse-table / period ops

TEST(SparseDifferential, InverseTableReplayMatchesForwardReplay) {
  Rng rng(606);
  const auto grid = random_layout(rng, 1);
  const std::size_t dim = grid.layout.total_dim();
  const auto op = CompiledOp::permutation(
      grid.layout, [dim](std::size_t x) { return (x * 3 + 5) % dim; });
  // The compiled op stores both tables; replay the dense state through each
  // kernel directly — pure data movement, so bit-identical.
  auto twins = random_twins(grid.layout, rng);
  auto forward = twins.dense;
  forward.apply_permutation_table(op.permutation_table());
  twins.dense.apply_permutation_inverse_table(op.permutation_inverse_table());
  expect_zero_ulp(forward, twins.dense, "inverse-table replay");
  op.apply_to(twins.sparse);
  expect_zero_ulp(forward, twins.sparse, "sparse forward replay");
}

TEST(SparseDifferential, PeriodCompressedFiberTableMatchesOnBothBackends) {
  // Fiber count 17·512 = 8704 > the 4096-entry guess window, with the
  // selector periodic in the elem digit: the fiber index enumerates elem
  // fastest, so the matrix index (elem digit mod 8) has minimal period 8 —
  // the compiler must find it, and BOTH replay paths must agree with the
  // uncompressed semantics.
  RegisterLayout layout;
  const auto count = layout.add("count", 17);
  const auto elem = layout.add("elem", 512);
  const auto flag = layout.add("flag", 2);
  (void)count;
  std::vector<Matrix> mats;
  Rng mat_rng(707);
  for (std::size_t c = 0; c < 8; ++c)
    mats.push_back(rotation_matrix(mat_rng.uniform(-3.0, 3.0)));
  const auto op = CompiledOp::fiber_dense(
      layout, flag, [&](std::size_t fiber_base) -> const Matrix* {
        return &mats[layout.digit(fiber_base, elem) % mats.size()];
      });
  ASSERT_EQ(op.kind(), CompiledOp::Kind::kFiberDense);
  EXPECT_EQ(op.fiber_period(), 8u);

  Rng rng(708);
  auto twins = random_twins(layout, rng, 0.01);
  auto naive = twins.dense;
  naive.apply_conditioned_unitary(
      flag, [&](std::size_t fiber_base) -> const Matrix* {
        return &mats[layout.digit(fiber_base, elem) % mats.size()];
      });
  op.apply_to(twins.dense);
  op.apply_to(twins.sparse);
  expect_close(naive, twins.dense, 1e-12, "compressed vs naive (dense)");
  expect_close(naive, twins.sparse, 1e-12, "compressed vs naive (sparse)");
}

TEST(SparseDifferential, NonPeriodicBigFiberTableFallsBackToFullTable) {
  RegisterLayout layout;
  const auto elem = layout.add("elem", 8704);
  const auto flag = layout.add("flag", 2);
  std::vector<Matrix> mats;
  Rng mat_rng(808);
  for (std::size_t c = 0; c < 3; ++c)
    mats.push_back(rotation_matrix(mat_rng.uniform(-3.0, 3.0)));
  // (f*f) % 3 is not periodic with any period dividing 8704, so the
  // compiler must detect the failed guess mid-stream and keep the full
  // table; semantics are unchanged either way.
  const auto op = CompiledOp::fiber_dense(
      layout, flag, [&](std::size_t fiber_base) -> const Matrix* {
        const std::size_t f = layout.digit(fiber_base, elem);
        return &mats[(f * f) % mats.size()];
      });
  EXPECT_EQ(op.fiber_period(), 0u);

  Rng rng(809);
  auto twins = random_twins(layout, rng, 0.005);
  auto naive = twins.dense;
  naive.apply_conditioned_unitary(
      flag, [&](std::size_t fiber_base) -> const Matrix* {
        const std::size_t f = layout.digit(fiber_base, elem);
        return &mats[(f * f) % mats.size()];
      });
  op.apply_to(twins.dense);
  op.apply_to(twins.sparse);
  expect_close(naive, twins.dense, 1e-12, "fallback table (dense)");
  expect_close(naive, twins.sparse, 1e-12, "fallback table (sparse)");
}

// --------------------------------------------------------- full AA sampler

TEST(SparseSampler, SequentialTrajectoryMatchesDense) {
  Rng rng(11);
  auto datasets = workload::uniform_random(16, 3, 12, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);

  SamplerOptions dense_options;
  dense_options.record_trajectory = true;
  const auto dense = run_sequential_sampler(db, dense_options);

  SamplerOptions sparse_options;
  sparse_options.record_trajectory = true;
  sparse_options.backend = StateBackendConfig::sparse();
  const auto sparse = run_sequential_sampler(db, sparse_options);

  EXPECT_TRUE(sparse.state.is_sparse());
  EXPECT_NEAR(dense.fidelity, sparse.fidelity, 1e-12);
  EXPECT_GT(sparse.fidelity, 1.0 - 1e-9);
  ASSERT_EQ(dense.trajectory.size(), sparse.trajectory.size());
  for (std::size_t i = 0; i < dense.trajectory.size(); ++i)
    EXPECT_NEAR(dense.trajectory[i], sparse.trajectory[i], 1e-12) << i;
  expect_close(dense.state, sparse.state, 1e-12, "sequential AA");
  EXPECT_TRUE(dense.stats == sparse.stats);

  // The AA trajectory never leaves the (elem, count ∈ {0, c_i}, flag)
  // slice: peak support must stay well under the full dimension.
  EXPECT_LE(sparse.state.sparse_peak_amplitudes(),
            4 * db.universe());
  EXPECT_LT(sparse.state.sparse_peak_amplitudes(),
            sparse.state.dim() / 2);
}

TEST(SparseSampler, ParallelSamplerMatchesDense) {
  Rng rng(12);
  auto datasets = workload::uniform_random(12, 2, 10, rng);
  const auto nu = min_capacity(datasets) + 2;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto dense = run_parallel_sampler(db, {});
  SamplerOptions sparse_options;
  sparse_options.backend = StateBackendConfig::sparse();
  const auto sparse = run_parallel_sampler(db, sparse_options);
  EXPECT_NEAR(dense.fidelity, sparse.fidelity, 1e-12);
  expect_close(dense.state, sparse.state, 1e-12, "parallel AA");
}

TEST(SparseSampler, RepeatedSparseRunsAreBitIdentical) {
  Rng rng(13);
  auto datasets = workload::uniform_random(16, 3, 12, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  SamplerOptions options;
  options.backend = StateBackendConfig::sparse();
  const auto a = run_sequential_sampler(db, options);
  const auto b = run_sequential_sampler(db, options);
  // Determinism by construction: sorted-order serial folds, no dependence
  // on thread count or scheduling.
  ASSERT_EQ(a.state.sparse_indices().size(), b.state.sparse_indices().size());
  for (std::size_t k = 0; k < a.state.sparse_indices().size(); ++k) {
    EXPECT_EQ(a.state.sparse_indices()[k], b.state.sparse_indices()[k]);
    EXPECT_EQ(a.state.sparse_values()[k], b.state.sparse_values()[k]);
  }
  EXPECT_EQ(a.fidelity, b.fidelity);
}

TEST(SparseSampler, MeasurementDrawsMatchDense) {
  Rng rng(14);
  auto datasets = workload::uniform_random(12, 2, 8, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  const auto dense = run_sequential_sampler(db, {});
  SamplerOptions options;
  options.backend = StateBackendConfig::sparse();
  const auto sparse = run_sequential_sampler(db, options);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng dense_rng(seed), sparse_rng(seed);
    EXPECT_EQ(measure_basis_state(dense.state, dense_rng),
              measure_basis_state(sparse.state, sparse_rng))
        << "seed " << seed;
    Rng dr(seed), sr(seed);
    EXPECT_EQ(measure_register(dense.state, dense.registers.elem, dr),
              measure_register(sparse.state, sparse.registers.elem, sr))
        << "seed " << seed;
  }
}

// -------------------------------------------------------- chaos-grid seam

TEST(SparseSampler, ChaosGridRecoveryRunsOnSparseBackend) {
  Rng rng(15);
  auto datasets = workload::uniform_random(16, 3, 12, rng);
  const auto nu = min_capacity(datasets) + 2;
  const DistributedDatabase db(std::move(datasets), nu);

  SamplerOptions options;
  options.backend = StateBackendConfig::sparse();
  const auto fault_free = run_sequential_sampler(db, options);

  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  for (const std::uint64_t plan_seed : {1, 2, 3}) {
    const FaultPlan plan = FaultPlan::random(
        plan_seed, schedule.events().size(), db.num_machines());
    const auto run = run_sampler_with_faults(db, QueryMode::kSequential, plan,
                                             RetryPolicy{}, options);
    ASSERT_TRUE(run.ok()) << run.recovery.failure;
    EXPECT_TRUE(run.result->state.is_sparse());
    // Recovery replays a reordered but equivalent schedule; on the sparse
    // backend the result must still be bit-identical to the fault-free
    // sparse run (relabel kernels are exact; arithmetic kernels execute
    // the same multiplications in the same per-entry order).
    expect_zero_ulp(fault_free.state, run.result->state, "chaos recovery");
    EXPECT_EQ(fault_free.fidelity, run.result->fidelity);
  }
}

// ------------------------------------------------------ backend mechanics

TEST(SparseBackend, DensifySparsifyRoundTripIsExact) {
  Rng rng(16);
  const auto grid = random_layout(rng, 2);
  auto twins = random_twins(grid.layout, rng, 0.3);
  auto round_trip = twins.sparse;
  EXPECT_TRUE(round_trip.is_sparse());
  round_trip.densify();
  EXPECT_FALSE(round_trip.is_sparse());
  expect_zero_ulp(twins.dense, round_trip, "densify");
  round_trip.sparsify();
  EXPECT_TRUE(round_trip.is_sparse());
  expect_zero_ulp(twins.dense, round_trip, "re-sparsify");
  EXPECT_EQ(round_trip.backend_kind(), StateBackendKind::kSparse);
  EXPECT_LT(round_trip.stored_amplitudes(), round_trip.dim());
}

TEST(SparseBackend, BudgetExhaustionRaisesTypedErrorNotOom) {
  // A Householder reflection densifies every touched fiber; with a budget
  // of 4 the support growth must surface as SparseStateError — carrying
  // the exact required/budget pair — BEFORE any O(dim) allocation.
  RegisterLayout layout;
  const auto elem = layout.add("elem", 64);
  layout.add("flag", 2);
  StateVector state(layout, StateBackendConfig::sparse(/*amplitude_budget=*/4));
  EXPECT_EQ(state.sparse_amplitude_budget(), 4u);
  const auto v = uniform_prep_householder_vector(64);
  try {
    state.apply_householder(elem, v);
    FAIL() << "budget exhaustion must throw";
  } catch (const SparseStateError& error) {
    EXPECT_GT(error.required(), error.budget());
    EXPECT_EQ(error.budget(), 4u);
    EXPECT_NE(std::string(error.what()).find("budget"), std::string::npos)
        << error.what();
  }
}

TEST(SparseBackend, SamplerBudgetExhaustionIsTypedToo) {
  Rng rng(17);
  auto datasets = workload::uniform_random(16, 2, 10, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  SamplerOptions options;
  options.backend = StateBackendConfig::sparse(/*amplitude_budget=*/3);
  EXPECT_THROW((void)run_sequential_sampler(db, options), SparseStateError);
}

TEST(SparseBackend, DenseOnlyAccessorsRaiseTypedErrors) {
  RegisterLayout layout;
  layout.add("r", 8);
  StateVector sparse(layout, StateBackendConfig::sparse());
  EXPECT_THROW((void)sparse.amplitudes(), SparseStateError);
  EXPECT_THROW((void)sparse.mutable_amplitudes(), SparseStateError);
  EXPECT_THROW(sparse.set_amplitudes(std::vector<cplx>(8)), SparseStateError);

  StateVector dense(layout);
  EXPECT_THROW(dense.set_sparse_amplitudes({0}, {cplx{1.0, 0.0}}),
               SparseStateError);
}

TEST(SparseBackend, SetSparseAmplitudesBuildsSortedSupport) {
  RegisterLayout layout;
  layout.add("r", 16);
  StateVector state(layout, StateBackendConfig::sparse());
  // Unsorted input with an exact zero: sorted on ingest, zero dropped.
  state.set_sparse_amplitudes({9, 2, 5}, {cplx{0.5, 0.0}, cplx{0.0, 0.0},
                                          cplx{0.0, -0.5}});
  ASSERT_EQ(state.stored_amplitudes(), 2u);
  EXPECT_EQ(state.sparse_indices()[0], 5u);
  EXPECT_EQ(state.sparse_indices()[1], 9u);
  EXPECT_EQ(state.amplitude(9), (cplx{0.5, 0.0}));
  EXPECT_EQ(state.amplitude(2), (cplx{0.0, 0.0}));
}

TEST(SparseBackend, TargetFullStateSparseMatchesDense) {
  Rng rng(18);
  auto datasets = workload::uniform_random(16, 3, 12, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  const auto dense = target_full_state(db);
  const auto sparse = target_full_state(db, StateBackendConfig::sparse());
  EXPECT_TRUE(sparse.is_sparse());
  expect_zero_ulp(dense, sparse, "target state");
  // Cross-backend observables agree too.
  EXPECT_NEAR(std::abs(dense.inner_product(sparse)), 1.0, 1e-12);
  EXPECT_NEAR(dense.distance_squared(sparse), 0.0, 1e-12);
}

}  // namespace
}  // namespace qs
