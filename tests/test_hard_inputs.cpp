// Tests for the hard-input machinery of Section 5.2: Definition 5.4's
// condition, the σ-induced relocation of Definition 5.5, and Lemma 5.6's
// |𝒯| = C(N, m_k) counting claim (verified by exhaustive enumeration).
#include "lowerbound/hard_inputs.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/require.hpp"
#include "common/stats.hpp"

namespace qs {
namespace {

TEST(HardInputCheck, CanonicalInputSatisfiesWithAlphaOne) {
  const auto base = make_canonical_hard_input(16, 3, 1, 4, 2);
  const auto check = check_hard_input(base, 1, /*kappa_k=*/2, /*nu=*/2,
                                      /*alpha=*/0.9, /*beta=*/0.9);
  EXPECT_TRUE(check.satisfied) << check.violation;
  EXPECT_NEAR(check.alpha, 1.0, 1e-15);  // M_k = M
  EXPECT_NEAR(check.beta, 1.0, 1e-15);   // M_k/m_k = κ_k
}

TEST(HardInputCheck, DetectsLowAlpha) {
  std::vector<Dataset> datasets = {Dataset::from_counts({4, 4, 0, 0}),
                                   Dataset::from_counts({0, 0, 1, 0})};
  const auto check = check_hard_input(datasets, 1, 1, 5, 0.5, 0.5);
  EXPECT_FALSE(check.satisfied);
  EXPECT_EQ(check.violation, "M_k < α·M");
}

TEST(HardInputCheck, DetectsLowBeta) {
  // M_k/m_k = 1 but κ_k = 4 → β = 0.25 < 0.5.
  std::vector<Dataset> datasets = {Dataset::from_counts({1, 1, 1, 1})};
  const auto check = check_hard_input(datasets, 0, 4, 5, 0.5, 0.5);
  EXPECT_FALSE(check.satisfied);
  EXPECT_EQ(check.violation, "M_k/m_k < β·κ_k");
}

TEST(HardInputCheck, DetectsCapacityCollision) {
  // Relocating machine 1's element onto machine 0's heavy element would
  // exceed ν: max_other(3) + max_k(2) > ν(4).
  std::vector<Dataset> datasets = {Dataset::from_counts({3, 0, 0, 0}),
                                   Dataset::from_counts({0, 2, 2, 2})};
  const auto check = check_hard_input(datasets, 1, 2, 4, 0.5, 0.5);
  EXPECT_FALSE(check.satisfied);
  EXPECT_EQ(check.violation, "max_{i,j≠k} c_ij + max_i c_ik > ν");
}

TEST(HardInputCheck, EmptyMachineRejected) {
  std::vector<Dataset> datasets = {Dataset(4), Dataset::from_counts({1, 0, 0,
                                                                     0})};
  EXPECT_FALSE(check_hard_input(datasets, 0, 1, 2, 0.1, 0.1).satisfied);
}

TEST(ApplySigma, RelocatesMultiplicitiesOrderPreservingly) {
  std::vector<Dataset> base = {Dataset::from_counts({0, 0, 0, 0, 0, 0}),
                               Dataset::from_counts({3, 1, 2, 0, 0, 0})};
  const std::vector<std::size_t> image = {1, 4, 5};
  const auto relocated = apply_sigma(base, 1, image);
  EXPECT_EQ(relocated[0], base[0]);  // other machines untouched
  EXPECT_EQ(relocated[1].count(1), 3u);  // support[0]=0 → image[0]=1
  EXPECT_EQ(relocated[1].count(4), 1u);  // support[1]=1 → image[1]=4
  EXPECT_EQ(relocated[1].count(5), 2u);  // support[2]=2 → image[2]=5
  EXPECT_EQ(relocated[1].total(), base[1].total());
  EXPECT_EQ(relocated[1].support_size(), base[1].support_size());
}

TEST(ApplySigma, IdentityImageIsIdentity) {
  std::vector<Dataset> base = {Dataset::from_counts({2, 0, 1, 0})};
  const std::vector<std::size_t> image = {0, 2};
  EXPECT_EQ(apply_sigma(base, 0, image), base);
}

TEST(ApplySigma, RejectsUnsortedOrWrongSizeImages) {
  std::vector<Dataset> base = {Dataset::from_counts({1, 1, 0, 0})};
  const std::vector<std::size_t> unsorted = {2, 1};
  EXPECT_THROW(apply_sigma(base, 0, unsorted), ContractViolation);
  const std::vector<std::size_t> duplicated = {1, 1};
  EXPECT_THROW(apply_sigma(base, 0, duplicated), ContractViolation);
  const std::vector<std::size_t> short_image = {1};
  EXPECT_THROW(apply_sigma(base, 0, short_image), ContractViolation);
}

TEST(EnumerateImages, CountMatchesLemma56) {
  // Lemma 5.6: |𝒯| = C(N, m_k). Enumeration must produce exactly that many
  // distinct images.
  for (const std::size_t universe : {4u, 6u, 8u}) {
    for (std::size_t m = 0; m <= universe; ++m) {
      const auto images = enumerate_images(universe, m);
      EXPECT_EQ(images.size(), binomial(universe, m).value())
          << "N=" << universe << " m=" << m;
      const std::set<std::vector<std::size_t>> distinct(images.begin(),
                                                        images.end());
      EXPECT_EQ(distinct.size(), images.size());
    }
  }
}

TEST(EnumerateImages, FamilyMembersAreDistinctDatabases) {
  // The distinctness claim inside Lemma 5.6: different images give
  // different relocated datasets.
  std::vector<Dataset> base = {Dataset::from_counts({2, 1, 0, 0, 0})};
  const auto images = enumerate_images(5, 2);
  std::set<std::vector<std::uint64_t>> seen;
  for (const auto& image : images) {
    const auto relocated = apply_sigma(base, 0, image);
    seen.insert(relocated[0].counts());
  }
  EXPECT_EQ(seen.size(), images.size());
}

TEST(SampleImage, UniformOverTheFamily) {
  Rng rng(17);
  std::map<std::vector<std::size_t>, int> hist;
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) ++hist[sample_image(5, 2, rng)];
  EXPECT_EQ(hist.size(), 10u);  // C(5,2)
  for (const auto& [image, count] : hist)
    EXPECT_NEAR(count / static_cast<double>(draws), 0.1, 0.015);
}

TEST(SampleImage, AlwaysValidForApplySigma) {
  Rng rng(19);
  std::vector<Dataset> base = {Dataset::from_counts({1, 2, 3, 0, 0, 0, 0,
                                                     0})};
  for (int i = 0; i < 200; ++i) {
    const auto image = sample_image(8, 3, rng);
    EXPECT_NO_THROW(apply_sigma(base, 0, image));
  }
}

}  // namespace
}  // namespace qs
