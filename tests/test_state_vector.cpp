// Tests for the statevector kernels (qsim/state_vector.hpp): every kernel
// is validated against a dense-matrix reference on small layouts.
#include "qsim/state_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/gates.hpp"
#include "qsim/operator_builder.hpp"

namespace qs {
namespace {

RegisterLayout two_reg_layout(std::size_t a, std::size_t b) {
  RegisterLayout layout;
  layout.add("a", a);
  layout.add("b", b);
  return layout;
}

void randomize(StateVector& state, Rng& rng) {
  state.set_amplitudes(random_state(state.dim(), rng));
}

TEST(StateVector, StartsInBasisState) {
  const auto layout = two_reg_layout(3, 4);
  StateVector s(layout, 5);
  EXPECT_EQ(s.amplitude(5), cplx(1.0, 0.0));
  EXPECT_NEAR(s.norm(), 1.0, 1e-15);
  double total = 0.0;
  for (std::size_t i = 0; i < s.dim(); ++i) total += std::norm(s.amplitude(i));
  EXPECT_NEAR(total, 1.0, 1e-15);
}

TEST(StateVector, ResetAndSetAmplitudes) {
  StateVector s(two_reg_layout(2, 2), 3);
  s.reset(1);
  EXPECT_EQ(s.amplitude(1), cplx(1.0, 0.0));
  EXPECT_EQ(s.amplitude(3), cplx(0.0, 0.0));
  EXPECT_THROW(s.set_amplitudes({1.0, 0.0}), ContractViolation);
}

TEST(StateVector, ApplyUnitaryOnLowRegisterMatchesKron) {
  Rng rng(3);
  const auto layout = two_reg_layout(3, 4);
  StateVector s(layout);
  randomize(s, rng);
  const auto input = std::vector<cplx>(s.amplitudes().begin(),
                                       s.amplitudes().end());
  const auto u = random_unitary(4, rng);
  s.apply_unitary(layout.find("b"), u);
  // Reference: (I3 ⊗ U) acting on the flat vector.
  const auto full = kron(Matrix::identity(3), u);
  const auto expected = full.apply(input);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitude(i) - expected[i]), 0.0, 1e-12);
}

TEST(StateVector, ApplyUnitaryOnHighRegisterMatchesKron) {
  Rng rng(5);
  const auto layout = two_reg_layout(3, 4);
  StateVector s(layout);
  randomize(s, rng);
  const auto input = std::vector<cplx>(s.amplitudes().begin(),
                                       s.amplitudes().end());
  const auto u = random_unitary(3, rng);
  s.apply_unitary(layout.find("a"), u);
  const auto expected = kron(u, Matrix::identity(4)).apply(input);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitude(i) - expected[i]), 0.0, 1e-12);
}

TEST(StateVector, ApplyUnitaryMiddleRegisterOfThree) {
  Rng rng(7);
  RegisterLayout layout;
  layout.add("a", 2);
  const auto mid = layout.add("m", 3);
  layout.add("c", 2);
  StateVector s(layout);
  randomize(s, rng);
  const auto input = std::vector<cplx>(s.amplitudes().begin(),
                                       s.amplitudes().end());
  const auto u = random_unitary(3, rng);
  s.apply_unitary(mid, u);
  const auto expected =
      kron(kron(Matrix::identity(2), u), Matrix::identity(2)).apply(input);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitude(i) - expected[i]), 0.0, 1e-12);
}

TEST(StateVector, UnitaryPreservesNorm) {
  Rng rng(11);
  const auto layout = two_reg_layout(5, 3);
  StateVector s(layout);
  randomize(s, rng);
  s.apply_unitary(layout.find("a"), random_unitary(5, rng));
  s.apply_unitary(layout.find("b"), random_unitary(3, rng));
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(StateVector, ConditionedUnitarySelectsPerFiber) {
  // Rotate flag by angle depending on the other register's digit.
  RegisterLayout layout;
  const auto c = layout.add("c", 3);
  const auto f = layout.add("f", 2);
  std::vector<Matrix> rots = {rotation_matrix(0.0), rotation_matrix(0.5),
                              rotation_matrix(1.0)};
  StateVector s(layout);
  // Uniform over c, flag=0.
  std::vector<cplx> amps(layout.total_dim(), 0.0);
  for (std::size_t v = 0; v < 3; ++v) amps[v * 2] = 1.0 / std::sqrt(3.0);
  s.set_amplitudes(amps);
  s.apply_conditioned_unitary(f, [&](std::size_t base) {
    return &rots[layout.digit(base, c)];
  });
  for (std::size_t v = 0; v < 3; ++v) {
    const double angle = 0.5 * static_cast<double>(v);
    EXPECT_NEAR(std::abs(s.amplitude(v * 2) -
                         cplx(std::cos(angle) / std::sqrt(3.0), 0.0)),
                0.0, 1e-12);
    EXPECT_NEAR(std::abs(s.amplitude(v * 2 + 1) -
                         cplx(std::sin(angle) / std::sqrt(3.0), 0.0)),
                0.0, 1e-12);
  }
}

TEST(StateVector, ConditionedUnitaryNullMeansIdentity) {
  Rng rng(13);
  const auto layout = two_reg_layout(3, 2);
  StateVector s(layout);
  randomize(s, rng);
  const auto before = std::vector<cplx>(s.amplitudes().begin(),
                                        s.amplitudes().end());
  s.apply_conditioned_unitary(layout.find("b"),
                              [](std::size_t) { return nullptr; });
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(s.amplitude(i), before[i]);
}

TEST(StateVector, PermutationRelabelsBasisStates) {
  const auto layout = two_reg_layout(2, 3);
  StateVector s(layout, 2);  // |0,2⟩
  // Cyclic shift of the whole index space.
  s.apply_permutation([&](std::size_t x) { return (x + 1) % 6; });
  EXPECT_EQ(s.amplitude(3), cplx(1.0, 0.0));
}

TEST(StateVector, NonBijectivePermutationIsRejected) {
  // The compiled lowering certifies bijectivity in EVERY build (one-time,
  // at compile); the naive kernel's per-query scan is a debug-only assert
  // since the scratch-buffer rework (docs/PERF.md).
  StateVector s(two_reg_layout(2, 2));
  EXPECT_THROW(CompiledOp::permutation(s.layout(),
                                       [](std::size_t) { return 0u; }),
               ContractViolation);
#ifndef NDEBUG
  EXPECT_THROW(s.apply_permutation([](std::size_t) { return 0u; }),
               ContractViolation);
#endif
}

TEST(StateVector, ValueShiftMatchesOracleSemantics) {
  // |i⟩|s⟩ → |i⟩|s + shift(i) mod 4⟩ — Eq. (1) shape.
  RegisterLayout layout;
  const auto elem = layout.add("elem", 3);
  const auto count = layout.add("count", 4);
  const std::vector<std::size_t> shifts = {0, 2, 3};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t v = 0; v < 4; ++v) {
      StateVector s(layout, i * 4 + v);
      s.apply_value_shift(count, elem, shifts);
      const std::size_t expected = i * 4 + (v + shifts[i]) % 4;
      EXPECT_EQ(s.amplitude(expected), cplx(1.0, 0.0))
          << "i=" << i << " v=" << v;
    }
  }
}

TEST(StateVector, ValueShiftInverseComposesToIdentity) {
  Rng rng(17);
  RegisterLayout layout;
  const auto elem = layout.add("elem", 4);
  const auto count = layout.add("count", 5);
  StateVector s(layout);
  randomize(s, rng);
  const auto before = std::vector<cplx>(s.amplitudes().begin(),
                                        s.amplitudes().end());
  const std::vector<std::size_t> fwd = {1, 2, 3, 4};
  std::vector<std::size_t> bwd;
  for (const auto f : fwd) bwd.push_back((5 - f) % 5);
  s.apply_value_shift(count, elem, fwd);
  s.apply_value_shift(count, elem, bwd);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitude(i) - before[i]), 0.0, 1e-15);
}

TEST(StateVector, ControlledValueShiftHonoursFlag) {
  RegisterLayout layout;
  const auto elem = layout.add("elem", 2);
  const auto count = layout.add("count", 3);
  const auto flag = layout.add("flag", 2);
  const std::vector<std::size_t> shifts = {1, 2};
  // flag = 0: no action.
  {
    std::vector<std::size_t> digits = {1, 0, 0};
    StateVector s(layout, layout.index_of(digits));
    s.apply_controlled_value_shift(count, elem, flag, shifts);
    EXPECT_EQ(s.amplitude(layout.index_of(digits)), cplx(1.0, 0.0));
  }
  // flag = 1: shift applies.
  {
    std::vector<std::size_t> digits = {1, 0, 1};
    StateVector s(layout, layout.index_of(digits));
    s.apply_controlled_value_shift(count, elem, flag, shifts);
    std::vector<std::size_t> expected = {1, 2, 1};
    EXPECT_EQ(s.amplitude(layout.index_of(expected)), cplx(1.0, 0.0));
  }
}

TEST(StateVector, DiagonalAppliesPerIndexPhase) {
  Rng rng(19);
  const auto layout = two_reg_layout(2, 2);
  StateVector s(layout);
  randomize(s, rng);
  const auto before = std::vector<cplx>(s.amplitudes().begin(),
                                        s.amplitudes().end());
  s.apply_diagonal([](std::size_t x) {
    return x == 2 ? cplx(0.0, 1.0) : cplx(1.0, 0.0);
  });
  for (std::size_t i = 0; i < 4; ++i) {
    const cplx expected = i == 2 ? cplx(0.0, 1.0) * before[2] : before[i];
    EXPECT_NEAR(std::abs(s.amplitude(i) - expected), 0.0, 1e-15);
  }
}

TEST(StateVector, PhaseOnRegisterValueTouchesAllMatchingStates) {
  const auto layout = two_reg_layout(2, 3);
  StateVector s(layout);
  std::vector<cplx> amps(6, 1.0 / std::sqrt(6.0));
  s.set_amplitudes(amps);
  s.apply_phase_on_register_value(layout.find("b"), 1, cplx(-1.0, 0.0));
  for (std::size_t i = 0; i < 6; ++i) {
    const double sign = (i % 3 == 1) ? -1.0 : 1.0;
    EXPECT_NEAR(std::abs(s.amplitude(i) - cplx(sign / std::sqrt(6.0), 0.0)),
                0.0, 1e-15);
  }
}

TEST(StateVector, HouseholderMatchesDenseMatrix) {
  Rng rng(23);
  const auto layout = two_reg_layout(5, 3);
  StateVector s(layout);
  randomize(s, rng);
  const auto input = std::vector<cplx>(s.amplitudes().begin(),
                                       s.amplitudes().end());
  const auto v = uniform_prep_householder_vector(5);
  s.apply_householder(layout.find("a"), v);
  const auto expected =
      kron(householder_matrix(v), Matrix::identity(3)).apply(input);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(std::abs(s.amplitude(i) - expected[i]), 0.0, 1e-12);
}

TEST(StateVector, HouseholderPreparesUniformFromZero) {
  RegisterLayout layout;
  const auto r = layout.add("r", 8);
  StateVector s(layout);
  s.apply_householder(r, uniform_prep_householder_vector(8));
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(s.amplitude(i) - cplx(1.0 / std::sqrt(8.0), 0.0)),
                0.0, 1e-12);
}

TEST(StateVector, InnerProductAndDistance) {
  RegisterLayout layout;
  layout.add("r", 4);
  StateVector a(layout, 0), b(layout, 1);
  EXPECT_EQ(a.inner_product(b), cplx(0.0, 0.0));
  EXPECT_NEAR(a.distance_squared(b), 2.0, 1e-15);
  EXPECT_NEAR(a.distance_squared(a), 0.0, 1e-15);
  EXPECT_EQ(a.inner_product(a), cplx(1.0, 0.0));
}

TEST(StateVector, DistanceSquaredExpansionIdentity) {
  // ‖a − b‖² = 2 − 2 Re⟨a|b⟩ for unit vectors.
  Rng rng(29);
  RegisterLayout layout;
  layout.add("r", 9);
  StateVector a(layout), b(layout);
  randomize(a, rng);
  randomize(b, rng);
  const double lhs = a.distance_squared(b);
  const double rhs = 2.0 - 2.0 * a.inner_product(b).real();
  EXPECT_NEAR(lhs, rhs, 1e-12);
}

TEST(StateVector, MarginalSumsToOneAndMatchesManual) {
  Rng rng(31);
  const auto layout = two_reg_layout(3, 4);
  StateVector s(layout);
  randomize(s, rng);
  const auto pa = s.marginal(layout.find("a"));
  const auto pb = s.marginal(layout.find("b"));
  double total_a = 0.0, total_b = 0.0;
  for (const auto p : pa) total_a += p;
  for (const auto p : pb) total_b += p;
  EXPECT_NEAR(total_a, 1.0, 1e-12);
  EXPECT_NEAR(total_b, 1.0, 1e-12);
  // Manual marginal of register a.
  for (std::size_t v = 0; v < 3; ++v) {
    double manual = 0.0;
    for (std::size_t w = 0; w < 4; ++w)
      manual += std::norm(s.amplitude(v * 4 + w));
    EXPECT_NEAR(pa[v], manual, 1e-12);
    EXPECT_NEAR(s.probability_of(layout.find("a"), v), manual, 1e-12);
  }
}

TEST(StateVector, GlobalPhaseKeepsProbabilities) {
  Rng rng(37);
  RegisterLayout layout;
  const auto r = layout.add("r", 5);
  StateVector s(layout);
  randomize(s, rng);
  const auto before = s.marginal(r);
  s.apply_global_phase(cplx(std::cos(1.1), std::sin(1.1)));
  const auto after = s.marginal(r);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(before[i], after[i], 1e-14);
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(StateVector, NormalizeRescales) {
  RegisterLayout layout;
  layout.add("r", 2);
  StateVector s(layout);
  s.set_amplitudes({cplx(3.0, 0.0), cplx(4.0, 0.0)});
  s.normalize();
  EXPECT_NEAR(s.norm(), 1.0, 1e-15);
  EXPECT_NEAR(s.amplitude(0).real(), 0.6, 1e-15);
}

TEST(OperatorBuilder, RecoversDenseUnitary) {
  Rng rng(41);
  RegisterLayout layout;
  const auto r = layout.add("r", 4);
  const auto u = random_unitary(4, rng);
  const auto recovered = operator_of_circuit(
      layout, [&](StateVector& s) { s.apply_unitary(r, u); });
  EXPECT_NEAR(Matrix::max_abs_diff(recovered, u), 0.0, 1e-12);
}

TEST(OperatorBuilder, CircuitCompositionOrder) {
  RegisterLayout layout;
  const auto r = layout.add("r", 3);
  const auto s1 = shift_matrix(3, 1);
  const auto recovered = operator_of_circuit(layout, [&](StateVector& s) {
    s.apply_unitary(r, s1);
    s.apply_unitary(r, s1);
  });
  EXPECT_NEAR(Matrix::max_abs_diff(recovered, shift_matrix(3, 2)), 0.0, 1e-12);
}

}  // namespace
}  // namespace qs
