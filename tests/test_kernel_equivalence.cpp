// Differential grid pinning the compiled-operator layer (qsim/compiled_op)
// to the naive std::function kernels it replaces.
//
// Contract (docs/PERF.md): lowering and fusing permutations and value
// shifts moves amplitudes WITHOUT arithmetic, so those paths must match the
// naive kernels to 0 ULP (EXPECT_EQ on raw complex values). Diagonal and
// fiber-dense paths may reassociate scalar products (diagonal fusion
// multiplies factors at fuse time), so they get a 1e-12 tolerance. The grid
// randomizes layouts × registers × operator structures and runs identically
// in serial, OpenMP and sanitizer builds — parallel_for and the
// deterministic reductions guarantee the same arithmetic everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/gates.hpp"
#include "qsim/state_vector.hpp"

namespace qs {
namespace {

struct GridCase {
  RegisterLayout layout;
  std::vector<RegisterId> regs;
};

/// Random mixed-radix layouts: 2–4 registers with dims drawn from small
/// values (always at least one qubit so controlled shifts are exercisable).
GridCase random_layout(Rng& rng, std::size_t index) {
  static const std::size_t dims[] = {2, 3, 4, 5, 8};
  GridCase grid;
  const std::size_t num_regs = 2 + index % 3;
  for (std::size_t r = 0; r < num_regs; ++r) {
    const std::size_t d =
        (r == 0) ? 2 : dims[rng.uniform_below(std::size(dims))];
    grid.regs.push_back(grid.layout.add("r" + std::to_string(r), d));
  }
  return grid;
}

StateVector random_state(const RegisterLayout& layout, Rng& rng) {
  StateVector state(layout);
  std::vector<cplx> amps(layout.total_dim());
  double norm2 = 0.0;
  for (auto& a : amps) {
    a = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm2 += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm2);
  for (auto& a : amps) a *= inv;
  state.set_amplitudes(std::move(amps));
  return state;
}

void expect_zero_ulp(const StateVector& a, const StateVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_EQ(a.amplitude(i).real(), b.amplitude(i).real()) << "index " << i;
    EXPECT_EQ(a.amplitude(i).imag(), b.amplitude(i).imag()) << "index " << i;
  }
}

void expect_close(const StateVector& a, const StateVector& b, double tol) {
  ASSERT_EQ(a.dim(), b.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    EXPECT_NEAR(a.amplitude(i).real(), b.amplitude(i).real(), tol)
        << "index " << i;
    EXPECT_NEAR(a.amplitude(i).imag(), b.amplitude(i).imag(), tol)
        << "index " << i;
  }
}

/// A random bijection built from register-structured moves (digit rotations
/// composed with a whole-index rotation) so it stresses non-trivial tables.
std::function<std::size_t(std::size_t)> random_permutation_map(
    const RegisterLayout& layout, Rng& rng) {
  const std::size_t dim = layout.total_dim();
  const std::size_t offset = rng.uniform_below(dim);
  const std::size_t stride_flip = rng.uniform_below(2);
  return [dim, offset, stride_flip](std::size_t x) {
    const std::size_t rotated = (x + offset) % dim;
    return stride_flip != 0 ? dim - 1 - rotated : rotated;
  };
}

TEST(KernelEquivalence, PermutationCompiledMatchesNaiveExactly) {
  Rng rng(1234);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    const auto map = random_permutation_map(grid.layout, rng);
    auto naive = random_state(grid.layout, rng);
    auto compiled_state = naive;
    naive.apply_permutation(map);
    const auto op = CompiledOp::permutation(grid.layout, map);
    op.apply_to(compiled_state);
    expect_zero_ulp(naive, compiled_state);
  }
}

TEST(KernelEquivalence, ValueShiftCompiledMatchesNaiveExactly) {
  Rng rng(2345);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    if (grid.regs.size() < 2) continue;
    const auto target = grid.regs[1];
    const auto cond = grid.regs[0];
    std::vector<std::size_t> shifts(grid.layout.dim(cond));
    for (auto& s : shifts) s = rng.uniform_below(grid.layout.dim(target) + 3);
    auto naive = random_state(grid.layout, rng);
    auto compiled_state = naive;
    auto lowered_state = naive;
    naive.apply_value_shift(target, cond, shifts);
    const auto op =
        CompiledOp::value_shift(grid.layout, target, cond, shifts);
    op.apply_to(compiled_state);
    expect_zero_ulp(naive, compiled_state);
    // Lowering the shift to an explicit permutation table is also exact.
    op.lowered_to_permutation().apply_to(lowered_state);
    expect_zero_ulp(naive, lowered_state);
  }
}

TEST(KernelEquivalence, ControlledValueShiftCompiledMatchesNaiveExactly) {
  Rng rng(3456);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    auto grid = random_layout(rng, trial);
    if (grid.regs.size() < 3) {
      grid.regs.push_back(grid.layout.add("extra", 3));
    }
    const auto flag = grid.regs[0];  // always a qubit by construction
    const auto cond = grid.regs[1];
    const auto target = grid.regs[2];
    std::vector<std::size_t> shifts(grid.layout.dim(cond));
    for (auto& s : shifts) s = rng.uniform_below(grid.layout.dim(target) + 2);
    auto naive = random_state(grid.layout, rng);
    auto compiled_state = naive;
    auto lowered_state = naive;
    naive.apply_controlled_value_shift(target, cond, flag, shifts);
    const auto op = CompiledOp::controlled_value_shift(grid.layout, target,
                                                       cond, flag, shifts);
    op.apply_to(compiled_state);
    expect_zero_ulp(naive, compiled_state);
    op.lowered_to_permutation().apply_to(lowered_state);
    expect_zero_ulp(naive, lowered_state);
  }
}

TEST(KernelEquivalence, DiagonalCompiledMatchesNaive) {
  Rng rng(4567);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const auto phase = [theta](std::size_t x) {
      const double angle = theta * static_cast<double>(x % 7);
      return cplx{std::cos(angle), std::sin(angle)};
    };
    auto naive = random_state(grid.layout, rng);
    auto compiled_state = naive;
    naive.apply_diagonal(phase);
    CompiledOp::diagonal(grid.layout, phase).apply_to(compiled_state);
    // Identical per-amplitude arithmetic: compile stores phase(x) verbatim
    // and the replay multiplies exactly like the naive kernel.
    expect_zero_ulp(naive, compiled_state);
  }
}

TEST(KernelEquivalence, FiberDenseCompiledMatchesNaive) {
  Rng rng(5678);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const auto grid = random_layout(rng, trial);
    // Condition the target's matrix on the remaining digits via a small
    // bank of rotations (d=2 exercises the unrolled path on reg 0; larger
    // target dims exercise the generic path).
    const auto target =
        grid.regs[trial % 2 == 0 ? 0 : grid.regs.size() - 1];
    const std::size_t d = grid.layout.dim(target);
    std::vector<Matrix> bank;
    for (std::size_t k = 0; k < 5; ++k) {
      Matrix u = Matrix::identity(d);
      const double g = 0.3 * static_cast<double>(k + 1);
      u(0, 0) = cplx{std::cos(g), 0.0};
      u(0, d - 1) = cplx{-std::sin(g), 0.0};
      u(d - 1, 0) = cplx{std::sin(g), 0.0};
      u(d - 1, d - 1) = cplx{std::cos(g), 0.0};
      bank.push_back(std::move(u));
    }
    const auto& layout = grid.layout;
    const auto selector = [&](std::size_t fiber_base) -> const Matrix* {
      if (fiber_base % 3 == 0) return nullptr;  // identity fibers too
      return &bank[fiber_base % bank.size()];
    };
    auto naive = random_state(grid.layout, rng);
    auto compiled_state = naive;
    naive.apply_conditioned_unitary(target, selector);
    CompiledOp::fiber_dense(layout, target, selector)
        .apply_to(compiled_state);
    expect_close(naive, compiled_state, 1e-12);
  }
}

TEST(KernelEquivalence, FusedPermutationsMatchSequentialExactly) {
  Rng rng(6789);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto grid = random_layout(rng, trial);
    const auto map1 = random_permutation_map(grid.layout, rng);
    const auto map2 = random_permutation_map(grid.layout, rng);
    auto sequential = random_state(grid.layout, rng);
    auto fused_state = sequential;
    CompiledProgram program;
    program.push(CompiledOp::permutation(grid.layout, map1));
    program.push(CompiledOp::permutation(grid.layout, map2));
    program.apply_to(sequential);
    EXPECT_EQ(program.size(), 2u);
    const std::size_t merges = program.fuse();
    EXPECT_EQ(merges, 1u);
    EXPECT_EQ(program.size(), 1u);
    program.apply_to(fused_state);
    expect_zero_ulp(sequential, fused_state);
  }
}

TEST(KernelEquivalence, FusedDiagonalsMatchSequentialClosely) {
  Rng rng(7890);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto grid = random_layout(rng, trial);
    const auto phase_of = [&rng](double scale) {
      return [scale](std::size_t x) {
        const double angle = scale * static_cast<double>(x % 11);
        return cplx{std::cos(angle), std::sin(angle)};
      };
    };
    const auto p1 = phase_of(rng.uniform(0.0, 1.0));
    const auto p2 = phase_of(rng.uniform(0.0, 1.0));
    auto sequential = random_state(grid.layout, rng);
    auto fused_state = sequential;
    CompiledProgram program;
    program.push(CompiledOp::diagonal(grid.layout, p1));
    program.push(CompiledOp::diagonal(grid.layout, p2));
    program.apply_to(sequential);
    ASSERT_EQ(program.fuse(), 1u);
    program.apply_to(fused_state);
    // amp·(f1·f2) vs (amp·f1)·f2 — associativity-only error.
    expect_close(sequential, fused_state, 1e-12);
  }
}

TEST(KernelEquivalence, FusedValueShiftsMatchSequentialExactly) {
  Rng rng(8901);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const auto grid = random_layout(rng, trial);
    if (grid.regs.size() < 2) continue;
    const auto target = grid.regs[1];
    const auto cond = grid.regs[0];
    const std::size_t d_cond = grid.layout.dim(cond);
    std::vector<std::size_t> s1(d_cond), s2(d_cond);
    for (auto& s : s1) s = rng.uniform_below(grid.layout.dim(target));
    for (auto& s : s2) s = rng.uniform_below(grid.layout.dim(target));
    auto sequential = random_state(grid.layout, rng);
    auto fused_state = sequential;
    CompiledProgram program;
    program.push(CompiledOp::value_shift(grid.layout, target, cond, s1));
    program.push(CompiledOp::value_shift(grid.layout, target, cond, s2));
    program.apply_to(sequential);
    ASSERT_EQ(program.fuse(), 1u);
    program.apply_to(fused_state);
    expect_zero_ulp(sequential, fused_state);
  }
}

TEST(KernelEquivalence, MixedProgramOnlyFusesCompatibleNeighbours) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  const auto b = layout.add("b", 3);
  const std::vector<std::size_t> ones(layout.dim(a), 1);
  CompiledProgram program;
  program.push(CompiledOp::value_shift(layout, b, a, ones));
  program.push(CompiledOp::diagonal(
      layout, [](std::size_t) { return cplx{1.0, 0.0}; }));
  program.push(CompiledOp::diagonal(
      layout, [](std::size_t x) { return cplx{x % 2 ? 1.0 : -1.0, 0.0}; }));
  program.push(CompiledOp::value_shift(layout, b, a, ones));
  ASSERT_EQ(program.fuse(), 1u);  // only the diagonal pair merges
  ASSERT_EQ(program.size(), 3u);
  EXPECT_EQ(program.ops()[0].kind(), CompiledOp::Kind::kValueShift);
  EXPECT_EQ(program.ops()[1].kind(), CompiledOp::Kind::kDiagonal);
  EXPECT_EQ(program.ops()[2].kind(), CompiledOp::Kind::kValueShift);
}

TEST(KernelEquivalence, DeterministicReductionsAreThreadCountInvariant) {
  // The reductions' arithmetic shape depends only on n (fixed blocks +
  // fixed pairwise tree), so norm/inner_product/marginal must return
  // BIT-identical values however the loop is scheduled. We can't re-launch
  // with another OMP_NUM_THREADS here, but we can pin the values against a
  // direct single-threaded evaluation of the same block/tree shape.
  Rng rng(9012);
  RegisterLayout layout;
  const auto r0 = layout.add("r0", 4);
  layout.add("r1", 1 << 10);  // 4096 amplitudes: exercises multiple blocks
  auto state = random_state(layout, rng);
  const auto other = random_state(layout, rng);

  const double norm1 = state.norm();
  const cplx ip1 = state.inner_product(other);
  const double d1 = state.distance_squared(other);
  const auto m1 = state.marginal(r0);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(norm1, state.norm());
    EXPECT_EQ(ip1, state.inner_product(other));
    EXPECT_EQ(d1, state.distance_squared(other));
    const auto m2 = state.marginal(r0);
    ASSERT_EQ(m1.size(), m2.size());
    for (std::size_t j = 0; j < m1.size(); ++j) EXPECT_EQ(m1[j], m2[j]);
  }
  double total = 0.0;
  for (const double p : m1) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace qs
