// Tests for subset/membership sampling and the sliding-window stream
// sampler (src/apps).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/stream_window.hpp"
#include "apps/subset_sampling.hpp"
#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

DistributedDatabase subset_db() {
  std::vector<Dataset> datasets = {Dataset(32), Dataset(32)};
  for (std::size_t i = 0; i < 12; ++i) datasets[i % 2].insert(i, 1 + i % 2);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(SubsetSampling, RestrictsToSelectedKeysExactly) {
  const auto db = subset_db();
  const auto selector = [](std::size_t i) { return i % 3 == 0; };
  // Public Z: selected mass.
  double z = 0.0;
  for (std::size_t i = 0; i < 32; ++i)
    if (selector(i)) z += static_cast<double>(db.total_count(i));
  Rng rng(3);
  const auto result =
      run_subset_sampler(db, selector, QueryMode::kSequential, z,
                         exponential_schedule(3, 8), rng);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);

  const auto& layout = result.state.layout();
  std::vector<std::size_t> digits(3, 0);
  for (std::size_t i = 0; i < 32; ++i) {
    digits[result.registers.elem.value] = i;
    const double mass =
        std::norm(result.state.amplitude(layout.index_of(digits)));
    if (selector(i)) {
      EXPECT_NEAR(mass, static_cast<double>(db.total_count(i)) / z, 1e-9);
    } else {
      EXPECT_NEAR(mass, 0.0, 1e-9);
    }
  }
}

TEST(SubsetSampling, EmptySelectorRejected) {
  const auto db = subset_db();
  Rng rng(5);
  EXPECT_THROW(run_subset_sampler(
                   db, [](std::size_t) { return false; },
                   QueryMode::kSequential, 1.0, exponential_schedule(2, 4),
                   rng),
               ContractViolation);
}

TEST(Membership, PresentKeyIsFoundWithFullMass) {
  const auto db = subset_db();
  Rng rng(7);
  const auto result = distributed_membership(db, 4, QueryMode::kSequential,
                                             exponential_schedule(8, 48),
                                             rng);
  EXPECT_TRUE(result.present);
  EXPECT_GT(result.mass, 0.9);
}

TEST(Membership, AbsentKeyReportsAbsent) {
  const auto db = subset_db();
  Rng rng(9);
  const auto result = distributed_membership(db, 30, QueryMode::kSequential,
                                             exponential_schedule(6, 32),
                                             rng);
  EXPECT_FALSE(result.present);
  EXPECT_LT(result.mass, 0.5);
}

TEST(StreamWindow, PopulationTracksWindow) {
  StreamWindowSampler stream(16, 2, /*window=*/3, /*nu=*/8);
  stream.ingest(0, 1);
  stream.ingest(1, 2);
  EXPECT_EQ(stream.window_population(), 2u);
  stream.tick();  // t=1
  stream.ingest(0, 3);
  stream.tick();  // t=2
  stream.tick();  // t=3: the two t=0 events expire
  EXPECT_EQ(stream.window_population(), 1u);
  EXPECT_EQ(stream.database().total_count(1), 0u);
  EXPECT_EQ(stream.database().total_count(3), 1u);
  stream.tick();  // t=4: the t=1 event expires
  EXPECT_EQ(stream.window_population(), 0u);
}

TEST(StreamWindow, SamplesExactlyFromTheLiveWindow) {
  StreamWindowSampler stream(16, 3, 2, 8);
  Rng rng(11);
  // Two ticks of traffic.
  for (int e = 0; e < 6; ++e) stream.ingest(e % 3, e % 4);
  stream.tick();
  for (int e = 0; e < 4; ++e) stream.ingest(e % 3, 4 + e % 2);
  const auto result = stream.sample();
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  // The target of the sample is the LIVE database's distribution.
  const auto p = stream.database().target_distribution();
  const auto amps = result.output_amplitudes();
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_NEAR(std::norm(amps[i]), p[i], 1e-9);
}

TEST(StreamWindow, ExpiredKeysLeaveTheSample) {
  StreamWindowSampler stream(8, 1, 1, 4);
  stream.ingest(0, 7);
  stream.tick();          // key 7 expires
  stream.ingest(0, 2);
  const auto result = stream.sample();
  const auto amps = result.output_amplitudes();
  EXPECT_NEAR(std::norm(amps[7]), 0.0, 1e-12);
  EXPECT_NEAR(std::norm(amps[2]), 1.0, 1e-9);
}

TEST(StreamWindow, EmptyWindowCannotBeSampled) {
  StreamWindowSampler stream(8, 1, 1, 4);
  EXPECT_THROW(stream.sample(), ContractViolation);
}

TEST(StreamWindow, SampleKeyFollowsWindowFrequencies) {
  StreamWindowSampler stream(4, 2, 10, 16);
  // Window content: key 0 x6, key 1 x2.
  for (int e = 0; e < 6; ++e) stream.ingest(e % 2, 0);
  for (int e = 0; e < 2; ++e) stream.ingest(e % 2, 1);
  Rng rng(13);
  int zeros = 0;
  const int draws = 400;
  for (int d = 0; d < draws; ++d) zeros += (stream.sample_key(rng) == 0);
  EXPECT_NEAR(zeros / static_cast<double>(draws), 0.75, 0.08);
}

}  // namespace
}  // namespace qs
