// Tests for the distributed database aggregate (Section 3 model).
#include "distdb/distributed_database.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"

namespace qs {
namespace {

std::vector<Dataset> three_machines() {
  return {Dataset::from_counts({2, 0, 1, 0}),
          Dataset::from_counts({0, 3, 1, 0}),
          Dataset::from_counts({1, 0, 0, 0})};
}

TEST(DistributedDatabase, Aggregates) {
  DistributedDatabase db(three_machines(), 5);
  EXPECT_EQ(db.num_machines(), 3u);
  EXPECT_EQ(db.universe(), 4u);
  EXPECT_EQ(db.nu(), 5u);
  EXPECT_EQ(db.total(), 8u);
  EXPECT_EQ(db.total_count(0), 3u);
  EXPECT_EQ(db.total_count(1), 3u);
  EXPECT_EQ(db.total_count(2), 2u);
  EXPECT_EQ(db.total_count(3), 0u);
  EXPECT_EQ(db.joint_counts(), (std::vector<std::uint64_t>{3, 3, 2, 0}));
}

TEST(DistributedDatabase, TargetDistributionAndAmplitudes) {
  DistributedDatabase db(three_machines(), 5);
  const auto p = db.target_distribution();
  EXPECT_NEAR(p[0], 3.0 / 8.0, 1e-15);
  EXPECT_NEAR(p[3], 0.0, 1e-15);
  double total = 0.0;
  for (const auto pi : p) total += pi;
  EXPECT_NEAR(total, 1.0, 1e-15);
  const auto amps = db.target_amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i)
    EXPECT_NEAR(std::norm(amps[i]), p[i], 1e-15);
}

TEST(DistributedDatabase, CapacityValidation) {
  // Joint count of element 1 is 3; ν = 2 is illegal.
  EXPECT_THROW(DistributedDatabase(three_machines(), 2), ContractViolation);
  // ν = 3 is the minimum legal.
  EXPECT_EQ(min_capacity(three_machines()), 3u);
  EXPECT_NO_THROW(DistributedDatabase(three_machines(), 3));
}

TEST(DistributedDatabase, PerMachineCapacities) {
  // κ_j must dominate local multiplicities and respect κ_j ≤ ν.
  EXPECT_THROW(DistributedDatabase(three_machines(), 5, {2, 2, 1}),
               ContractViolation);  // machine 1 holds a multiplicity 3
  EXPECT_THROW(DistributedDatabase(three_machines(), 5, {2, 6, 1}),
               ContractViolation);  // κ > ν
  DistributedDatabase db(three_machines(), 5, {2, 3, 1});
  EXPECT_EQ(db.machine(0).capacity(), 2u);
  EXPECT_EQ(db.machine(1).capacity(), 3u);
}

TEST(DistributedDatabase, DynamicUpdatesRouteAndValidate) {
  DistributedDatabase db(three_machines(), 3);
  // Element 1 already has joint count 3 == ν: one more violates ν.
  EXPECT_THROW(db.insert(0, 1), ContractViolation);
  db.erase(1, 1);
  EXPECT_EQ(db.total_count(1), 2u);
  db.insert(0, 1);
  EXPECT_EQ(db.total_count(1), 3u);
}

TEST(DistributedDatabase, StatsAggregationAndReset) {
  DistributedDatabase db(three_machines(), 5);
  RegisterLayout layout;
  const auto elem = layout.add("elem", 4);
  const auto count = layout.add("count", 6);
  StateVector state(layout);
  db.machine(0).apply_oracle(state, elem, count, false);
  db.machine(0).apply_oracle(state, elem, count, true);
  db.machine(2).apply_oracle(state, elem, count, false);
  db.count_parallel_round();
  const auto stats = db.stats();
  EXPECT_EQ(stats.sequential_per_machine,
            (std::vector<std::uint64_t>{2, 0, 1}));
  EXPECT_EQ(stats.parallel_rounds, 1u);
  EXPECT_EQ(stats.total_sequential(), 3u);
  EXPECT_EQ(stats.total_machine_invocations(), 3u + 3u);
  db.reset_stats();
  EXPECT_EQ(db.stats().total_sequential(), 0u);
  EXPECT_EQ(db.stats().parallel_rounds, 0u);
}

TEST(DistributedDatabase, RejectsHeterogeneousUniverses) {
  std::vector<Dataset> bad = {Dataset(4), Dataset(5)};
  EXPECT_THROW(DistributedDatabase(std::move(bad), 2), ContractViolation);
}

TEST(DistributedDatabase, EmptyDatabaseHasNoTargetDistribution) {
  std::vector<Dataset> empty = {Dataset(4), Dataset(4)};
  DistributedDatabase db(std::move(empty), 1);
  EXPECT_EQ(db.total(), 0u);
  EXPECT_THROW(db.target_distribution(), ContractViolation);
}

TEST(QueryStats, EqualityAndTotals) {
  QueryStats a{{1, 2}, 3};
  QueryStats b{{1, 2}, 3};
  QueryStats c{{1, 2}, 4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.total_sequential(), 3u);
  EXPECT_EQ(a.total_machine_invocations(), 3u + 3u * 2u);
}

}  // namespace
}  // namespace qs
