// Tests for the hierarchical query architecture (sampling/hierarchical.hpp)
// — Section 6's quantum-network direction: group-parallel, cross-group
// sequential, interpolating between Theorems 4.3 and 4.5.
#include "sampling/hierarchical.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "sampling/noisy_sampler.hpp"

namespace qs {
namespace {

DistributedDatabase test_db(std::size_t machines, std::uint64_t seed = 5) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(32, machines, 40, rng);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(Partition, ContiguousCoversAndBalances) {
  const auto p = contiguous_partition(10, 3);
  ASSERT_EQ(p.num_groups(), 3u);
  EXPECT_NO_THROW(p.validate(10));
  std::size_t total = 0;
  for (const auto& g : p.groups) {
    EXPECT_GE(g.size(), 3u);
    EXPECT_LE(g.size(), 4u);
    total += g.size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(Partition, EndpointShapes) {
  const auto singletons = contiguous_partition(5, 5);
  for (const auto& g : singletons.groups) EXPECT_EQ(g.size(), 1u);
  const auto one = contiguous_partition(5, 1);
  EXPECT_EQ(one.groups[0].size(), 5u);
}

TEST(Partition, ValidationCatchesBadPartitions) {
  Partition missing;
  missing.groups = {{0, 1}};  // machine 2 uncovered
  EXPECT_THROW(missing.validate(3), ContractViolation);

  Partition duplicated;
  duplicated.groups = {{0, 1}, {1, 2}};
  EXPECT_THROW(duplicated.validate(3), ContractViolation);

  Partition empty_group;
  empty_group.groups = {{0, 1, 2}, {}};
  EXPECT_THROW(empty_group.validate(3), ContractViolation);

  Partition out_of_range;
  out_of_range.groups = {{0, 3}};
  EXPECT_THROW(out_of_range.validate(2), ContractViolation);

  EXPECT_THROW(contiguous_partition(4, 5), ContractViolation);
  EXPECT_THROW(contiguous_partition(4, 0), ContractViolation);
}

TEST(Hierarchical, RoundsPerDFormula) {
  Partition p;
  p.groups = {{0}, {1, 2}, {3}, {4, 5, 6}};
  // 2 + 4 + 2 + 4 = 12.
  EXPECT_EQ(hierarchical_rounds_per_d(p), 12u);
}

TEST(Hierarchical, ExactForEveryGroupCount) {
  const auto db = test_db(8);
  for (const std::size_t groups : {1u, 2u, 3u, 4u, 8u}) {
    const auto partition = contiguous_partition(8, groups);
    const auto result = run_hierarchical_sampler(db, partition);
    EXPECT_NEAR(result.fidelity, 1.0, 1e-9) << "groups=" << groups;
    EXPECT_EQ(result.group_rounds,
              hierarchical_rounds_per_d(partition) *
                  result.plan.d_applications());
  }
}

TEST(Hierarchical, MatchesSequentialAtSingletonPartition) {
  const auto db = test_db(4);
  const auto hier =
      run_hierarchical_sampler(db, contiguous_partition(4, 4));
  const auto seq = run_sequential_sampler(db);
  EXPECT_NEAR(pure_fidelity(hier.state, seq.state), 1.0, 1e-10);
  // Singleton groups: 2n rounds per D = the sequential query count.
  EXPECT_EQ(hier.group_rounds, seq.stats.total_sequential());
}

TEST(Hierarchical, MatchesParallelAtOneGroup) {
  const auto db = test_db(4);
  const auto hier = run_hierarchical_sampler(db, contiguous_partition(4, 1));
  const auto par = run_parallel_sampler(db);
  EXPECT_NEAR(pure_fidelity(hier.state, par.state), 1.0, 1e-10);
  EXPECT_EQ(hier.group_rounds, par.stats.parallel_rounds);
}

TEST(Hierarchical, CostInterpolatesMonotonically) {
  const auto db = test_db(16);
  std::uint64_t previous = 0;
  for (const std::size_t groups : {1u, 2u, 4u, 8u, 16u}) {
    const auto result =
        run_hierarchical_sampler(db, contiguous_partition(16, groups));
    EXPECT_GE(result.group_rounds, previous) << "groups=" << groups;
    previous = result.group_rounds;
  }
}

TEST(Hierarchical, NonContiguousPartitionWorks) {
  const auto db = test_db(6);
  Partition p;
  p.groups = {{5, 0}, {2, 4}, {1, 3}};
  const auto result = run_hierarchical_sampler(db, p);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

TEST(Hierarchical, QftPrepAgrees) {
  const auto db = test_db(4);
  const auto result = run_hierarchical_sampler(
      db, contiguous_partition(4, 2), StatePrep::kQft);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

TEST(Hierarchical, EmptyDatabaseRejected) {
  std::vector<Dataset> datasets = {Dataset(8), Dataset(8)};
  const DistributedDatabase db(std::move(datasets), 1);
  EXPECT_THROW(run_hierarchical_sampler(db, contiguous_partition(2, 2)),
               ContractViolation);
}

TEST(HierarchicalNoise, NoiselessTrajectoriesAreExact) {
  const auto db = test_db(6);
  Rng rng(31);
  const auto result = run_noisy_hierarchical_sampler(
      db, contiguous_partition(6, 3), NoiseModel{}, 3, rng);
  EXPECT_NEAR(result.mean_fidelity, 1.0, 1e-9);
  EXPECT_NEAR(result.stddev_fidelity, 0.0, 1e-12);
}

TEST(HierarchicalNoise, PerRoundNoiseOrdersByGroupCount) {
  // More groups => more rounds => lower fidelity under per-round noise.
  const auto db = test_db(8);
  NoiseModel noise;
  noise.dephasing_per_round = 0.01;
  Rng rng1(37), rng2(38);
  const auto few = run_noisy_hierarchical_sampler(
      db, contiguous_partition(8, 1), noise, 48, rng1);
  const auto many = run_noisy_hierarchical_sampler(
      db, contiguous_partition(8, 8), noise, 48, rng2);
  EXPECT_GT(few.mean_fidelity, many.mean_fidelity);
  EXPECT_LT(few.group_rounds, many.group_rounds);
}

TEST(HierarchicalNoise, MatchesFlatSamplersAtTheEndpoints) {
  // Under the same per-round rate, g=n behaves like the sequential noisy
  // sampler and g=1 like the parallel one (within sampling error).
  const auto db = test_db(6);
  NoiseModel noise;
  noise.dephasing_per_round = 0.02;
  Rng r1(41), r2(42), r3(43), r4(44);
  const auto hier_seq = run_noisy_hierarchical_sampler(
      db, contiguous_partition(6, 6), noise, 64, r1);
  const auto flat_seq =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 64, r2);
  const auto hier_par = run_noisy_hierarchical_sampler(
      db, contiguous_partition(6, 1), noise, 64, r3);
  const auto flat_par =
      run_noisy_sampler(db, QueryMode::kParallel, noise, 64, r4);
  EXPECT_NEAR(hier_seq.mean_fidelity, flat_seq.mean_fidelity, 0.12);
  EXPECT_NEAR(hier_par.mean_fidelity, flat_par.mean_fidelity, 0.12);
}

}  // namespace
}  // namespace qs
