// Operator-level tests for the distributing operator D (Eq. 5) and its
// sequential-oracle realisation (Lemmas 4.1 / 4.2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/operator_builder.hpp"
#include "sampling/circuit.hpp"
#include "sampling/ideal.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

DistributedDatabase random_db(std::size_t universe, std::size_t machines,
                              std::uint64_t total, Rng& rng,
                              std::uint64_t extra_capacity = 0) {
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + extra_capacity;
  return DistributedDatabase(std::move(datasets), nu);
}

/// Dense matrix of the ideal D on the [elem, count, flag] layout.
Matrix ideal_d_matrix(const DistributedDatabase& db, bool adjoint) {
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  return operator_of_circuit(regs.layout, [&](StateVector& s) {
    apply_ideal_distributing(s, db, regs.elem, regs.flag, adjoint);
  });
}

TEST(DistributingOperator, IdealDIsUnitary) {
  Rng rng(3);
  const auto db = random_db(4, 2, 10, rng, 1);
  const auto d = ideal_d_matrix(db, false);
  EXPECT_NEAR(d.unitarity_defect(), 0.0, 1e-12);
  // Lemma 4.1: D extends Eq. (5) to a unitary.
  const auto d_adj = ideal_d_matrix(db, true);
  EXPECT_NEAR(Matrix::max_abs_diff(d_adj, d.adjoint()), 0.0, 1e-12);
}

TEST(DistributingOperator, IdealDActionOnDefiningSubspace) {
  // D |i, 0⟩ = √(c_i/ν)|i,0⟩ + √((ν−c_i)/ν)|i,1⟩ (Eq. 5) — check every
  // defining column literally.
  Rng rng(5);
  const auto db = random_db(5, 3, 12, rng, 2);
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  const double nu = static_cast<double>(db.nu());
  for (std::size_t i = 0; i < db.universe(); ++i) {
    const std::vector<std::size_t> in = {i, 0, 0};
    StateVector s(regs.layout, regs.layout.index_of(in));
    apply_ideal_distributing(s, db, regs.elem, regs.flag, false);
    const double ci = static_cast<double>(db.total_count(i));
    const std::vector<std::size_t> keep = {i, 0, 0};
    const std::vector<std::size_t> leak = {i, 0, 1};
    EXPECT_NEAR(std::abs(s.amplitude(regs.layout.index_of(keep)) -
                         cplx(std::sqrt(ci / nu), 0.0)),
                0.0, 1e-12);
    EXPECT_NEAR(std::abs(s.amplitude(regs.layout.index_of(leak)) -
                         cplx(std::sqrt((nu - ci) / nu), 0.0)),
                0.0, 1e-12);
  }
}

TEST(DistributingOperator, SequentialOracleDMatchesIdealOnCountZero) {
  // Lemma 4.2: the 2n-query circuit equals D. The unitary extensions agree
  // on the count = 0 subspace (where the whole algorithm lives).
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const auto db = random_db(4, 3, 8 + trial, rng, 1 + trial % 2);
    const auto regs = make_coordinator_layout(db.universe(), db.nu());
    for (const bool adjoint : {false, true}) {
      for (std::size_t i = 0; i < db.universe(); ++i) {
        for (std::size_t b = 0; b < 2; ++b) {
          const std::vector<std::size_t> digits = {i, 0, b};
          // Oracle-built D via the backend.
          SingleStateBackend backend(db, StatePrep::kHouseholder);
          backend.state().reset(regs.layout.index_of(digits));
          apply_distributing_operator(backend, QueryMode::kSequential,
                                      adjoint);
          // Ideal D.
          StateVector ideal(regs.layout, regs.layout.index_of(digits));
          apply_ideal_distributing(ideal, db, regs.elem, regs.flag, adjoint);
          EXPECT_NEAR(backend.state().distance_squared(ideal), 0.0, 1e-20)
              << "trial=" << trial << " i=" << i << " b=" << b
              << " adjoint=" << adjoint;
        }
      }
    }
  }
}

TEST(DistributingOperator, SequentialDCostsExactly2nQueries) {
  Rng rng(11);
  for (const std::size_t n : {1u, 2u, 4u, 7u}) {
    const auto db = random_db(4, n, 12, rng, 1);
    db.reset_stats();
    SingleStateBackend backend(db, StatePrep::kHouseholder);
    apply_distributing_operator(backend, QueryMode::kSequential, false);
    EXPECT_EQ(db.stats().total_sequential(), 2 * n);
    // Each machine queried exactly twice (once forward, once adjoint).
    for (const auto q : db.stats().sequential_per_machine) EXPECT_EQ(q, 2u);
    EXPECT_EQ(db.stats().parallel_rounds, 0u);
  }
}

TEST(DistributingOperator, ParallelDCostsExactly4Rounds) {
  Rng rng(13);
  const auto db = random_db(4, 5, 12, rng, 1);
  db.reset_stats();
  SingleStateBackend backend(db, StatePrep::kHouseholder);
  apply_distributing_operator(backend, QueryMode::kParallel, false);
  EXPECT_EQ(db.stats().parallel_rounds, 4u);
  EXPECT_EQ(db.stats().total_sequential(), 0u);
}

TEST(DistributingOperator, ParallelAndSequentialDAgreeOnStates) {
  Rng rng(17);
  const auto db = random_db(6, 3, 15, rng, 2);
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  for (const bool adjoint : {false, true}) {
    SingleStateBackend seq(db, StatePrep::kHouseholder);
    SingleStateBackend par(db, StatePrep::kHouseholder);
    // Same random-ish superposition on the count=0 slice for both.
    std::vector<cplx> amps(regs.layout.total_dim(), 0.0);
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < db.universe(); ++i) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::vector<std::size_t> digits = {i, 0, b};
        const cplx v(std::sin(1.0 + double(i) + b), std::cos(double(i) - b));
        amps[regs.layout.index_of(digits)] = v;
        norm_sq += std::norm(v);
      }
    }
    for (auto& v : amps) v /= std::sqrt(norm_sq);
    seq.state().set_amplitudes(amps);
    par.state().set_amplitudes(amps);
    apply_distributing_operator(seq, QueryMode::kSequential, adjoint);
    apply_distributing_operator(par, QueryMode::kParallel, adjoint);
    EXPECT_NEAR(seq.state().distance_squared(par.state()), 0.0, 1e-20);
  }
}

TEST(DistributingOperator, DFollowedByAdjointIsIdentity) {
  Rng rng(19);
  const auto db = random_db(5, 2, 9, rng, 1);
  SingleStateBackend backend(db, StatePrep::kHouseholder);
  backend.prep_uniform(false);  // put something nontrivial in the state
  const StateVector before = backend.state();
  apply_distributing_operator(backend, QueryMode::kSequential, false);
  apply_distributing_operator(backend, QueryMode::kSequential, true);
  EXPECT_NEAR(backend.state().distance_squared(before), 0.0, 1e-20);
}

TEST(DistributingOperator, PreparationIdentityOfEq7) {
  // D |π, 0, 0⟩ = √(M/νN) |ψ, 0, 0⟩ + √(1 − M/νN) |ψ⊥, ·, 1⟩ — verify the
  // good-component amplitude and that the flag=0 slice is ∝ target.
  Rng rng(23);
  const auto db = random_db(8, 3, 20, rng, 2);
  SingleStateBackend backend(db, StatePrep::kHouseholder);
  backend.prep_uniform(false);
  apply_distributing_operator(backend, QueryMode::kSequential, false);
  const double a = static_cast<double>(db.total()) /
                   (static_cast<double>(db.nu()) *
                    static_cast<double>(db.universe()));
  const auto target = target_full_state(db);
  const auto overlap = target.inner_product(backend.state());
  EXPECT_NEAR(std::abs(overlap), std::sqrt(a), 1e-12);
  // Good-flag probability equals a.
  const auto regs = backend.registers();
  EXPECT_NEAR(backend.state().probability_of(regs.flag, 0), a, 1e-12);
}

}  // namespace
}  // namespace qs
