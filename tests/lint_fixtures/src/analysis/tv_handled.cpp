// Control: the fixture tree's tv-handled-kinds span. Lists kPermutation so
// bad_op_registry.cpp's kPermutation entry is satisfied while its
// kUnprovenKind entry is flagged — proving tv-exhaustiveness matches
// per-kind, not per-file.
namespace fixture {

inline int handled_kinds() {
  // dqs-lint: tv-handled-kinds-begin
  //   kPermutation
  // dqs-lint: tv-handled-kinds-end
  return 1;
}

}  // namespace fixture
