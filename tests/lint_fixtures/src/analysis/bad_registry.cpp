// Fixture: a pass registry with one id no mutation fixture covers.
#include <string>
#include <vector>

namespace fixture {

const std::vector<std::string>& pass_names() {
  // dqs-lint: pass-registry-begin
  static const std::vector<std::string> names = {
      "covered-domain",  // appears in the sibling mutations.cpp — clean
      "orphan-domain",   // no fixture kills it — must be flagged
  };
  // dqs-lint: pass-registry-end
  return names;
}

}  // namespace fixture
