// Control: the mutation-fixture catalog the kill-matrix-completeness rule
// searches. Covers the first registry id only; the orphan one in
// bad_registry.cpp must be flagged.
#include <string>

namespace fixture {

std::string catalog_entry() { return "covered-domain"; }

}  // namespace fixture
