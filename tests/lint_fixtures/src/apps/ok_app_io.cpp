// Fixture (negative control): src/apps may write to stdio — this file must
// NOT be flagged by no-iostream-in-lib.
#include <iostream>

void fixture_ok_app_io() { std::cout << "apps may print\n"; }
