// Fixture: violates no-relative-include — reaches across modules with a
// "../" path instead of a "module/file.hpp" include rooted at src/.
#include "../qsim/bad_guard.hpp"

int fixture_bad_relative() { return qs_fixture::bad_guard(); }
