// Fixture: bare blocking syscalls in a file that does OS-level I/O.
// Every one of these must route through the EINTR/deadline wrappers in
// src/distdb/ipc/io.hpp (ipc-discipline).
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstddef>

namespace qs {

long drain_socket(int fd, char* buf, std::size_t n) {
  // VIOLATION: bare read() returns early on EINTR and tears the frame.
  return read(fd, buf, n);
}

long push_bytes(int fd, const char* buf, std::size_t n) {
  // VIOLATION: global-scope send() with no deadline budget.
  return ::send(fd, buf, n, 0);
}

int reap_child(int pid) {
  int status = 0;
  // VIOLATION: bare waitpid() — EINTR here leaks a zombie.
  waitpid(pid, &status, 0);
  return status;
}

// Negative controls: member calls and namespaced helpers with the same
// token names are NOT the libc symbols and must not be flagged.
struct Peer {
  long send(const char*, std::size_t) { return 0; }
};

namespace io {
inline long read_full(int, char*, std::size_t) { return 0; }
}  // namespace io

long ok_wrapped(Peer& peer, const char* buf, std::size_t n) {
  long total = peer.send(buf, n);
  total += io::read_full(0, nullptr, 0);
  return total;
}

}  // namespace qs
