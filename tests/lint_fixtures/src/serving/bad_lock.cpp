// Fixture: schedule execution under a live lock guard — must trip
// lock-discipline. The serving layer's coalescing protocol releases the
// service mutex for the WHOLE schedule execution (the builder re-locks
// only to publish); holding it here serialises every coalesced client and
// can deadlock against the update path (docs/SERVING.md).
#include <mutex>

namespace qs::serving {

void bad_build_under_lock(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  run_sequential_sampler(db, options);  // violation: guard is live
  session.send_sequential(0);           // violation: Transport under lock
}

void ok_builder_protocol(std::mutex& mu) {
  std::unique_lock<std::mutex> lock(mu);
  lock.unlock();
  run_sequential_sampler(db, options);  // clean: explicitly disarmed
  lock.lock();                          // re-arm to publish
}

void ok_after_scope(std::mutex& mu) {
  {
    std::lock_guard<std::mutex> lock(mu);
  }
  run_sampler_with_faults(db, plan);  // clean: guard retired with its scope
}

}  // namespace qs::serving
