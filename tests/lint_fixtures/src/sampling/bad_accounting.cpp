// Fixture: violates query-accounting — invokes a Machine oracle without
// the query-accounting types in scope (no query_stats.hpp or
// distributed_database.hpp include here or in a paired header).
class Machine;
class StateVector;

void fixture_unaccounted_query(const Machine& m, StateVector& s);

template <class M, class S>
void fixture_bad_accounting(M& machine, S& state) {
  machine.apply_oracle(state, 0, 1, false);
}
