// Fixture: violates rng-discipline — standard-library RNG outside
// src/common/rng.*.
#include <random>

int fixture_bad_rng() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}
