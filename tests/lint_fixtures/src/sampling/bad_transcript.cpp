// Fixture: violates transcript-discipline — appends transcript events
// outside the sanctioned sampling backends, forging oracle-log evidence.
#include "distdb/transcript.hpp"

qs::Transcript fixture_bad_transcript() {
  qs::Transcript t;
  t.record_sequential(0, false);
  t.record_parallel_round(true);
  return t;
}
