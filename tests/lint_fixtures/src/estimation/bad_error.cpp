// Fixture: library code failing outside the typed error taxonomy.
#include <cstdlib>
#include <stdexcept>

namespace qs {

void bad_throw(int x) {
  if (x < 0) throw std::runtime_error("negative");  // untyped throw
}

void bad_abort(int x) {
  if (x > 9) std::abort();  // kills the process under the recovery seams
}

}  // namespace qs
