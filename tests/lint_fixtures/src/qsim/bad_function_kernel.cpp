// Fixture: violates no-std-function-in-kernels — per-amplitude indirect
// dispatch in statevector kernel code instead of a compiled operator.
#include <complex>
#include <cstddef>
#include <functional>

void fixture_bad_function_kernel(
    std::complex<double>* amps, std::size_t n,
    const std::function<std::complex<double>(std::size_t)>& phase) {
  for (std::size_t i = 0; i < n; ++i) {
    amps[i] *= phase(i);
  }
}
