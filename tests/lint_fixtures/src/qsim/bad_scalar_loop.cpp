// Fixture: per-amplitude block loop with no DQS_PRAGMA_SIMD annotation
// and no allow comment — the simd-discipline rule must flag it. The
// annotated twin below it and the allowed reduction must NOT be flagged.
#include <cstddef>

#define DQS_PRAGMA_SIMD

namespace fixture {

void scale(double* amps, std::size_t begin, std::size_t end, double k) {
  for (std::size_t i = begin; i < end; ++i) amps[i] *= k;
}

void scale_annotated(double* amps, std::size_t begin, std::size_t end,
                     double k) {
  DQS_PRAGMA_SIMD
  for (std::size_t i = begin; i < end; ++i) amps[i] *= k;
}

double sum_allowed(const double* amps, std::size_t begin, std::size_t end) {
  double acc = 0.0;
  // dqs-lint: allow(simd-discipline) deterministic reduction: the fixed
  // left-fold order must not be reassociated.
  for (std::size_t i = begin; i < end; ++i) acc += amps[i];
  return acc;
}

}  // namespace fixture
