// Fixture: an op-kind registry containing a kind the symbolic translation-
// validation engine does not handle. tv-exhaustiveness must flag
// kUnprovenKind (the fixture tv-handled-kinds span in
// src/analysis/tv_handled.cpp lists only kPermutation).
#include <cstdint>

namespace fixture {

enum class Kind : std::uint8_t {
  // dqs-lint: op-kind-registry-begin
  kPermutation,
  kUnprovenKind,
  // dqs-lint: op-kind-registry-end
};

inline Kind identity(Kind k) { return k; }

}  // namespace fixture
