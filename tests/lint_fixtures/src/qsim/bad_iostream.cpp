// Fixture: violates no-iostream-in-lib — stdio write from library code.
#include <iostream>

void fixture_bad_iostream(double amplitude) {
  std::cout << "amplitude = " << amplitude << "\n";
}
