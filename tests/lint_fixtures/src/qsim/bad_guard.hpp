// Fixture: violates header-guard — no #pragma once / include guard.

namespace qs_fixture {
inline int bad_guard() { return 1; }
}  // namespace qs_fixture
