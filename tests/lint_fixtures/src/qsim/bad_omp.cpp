// Fixture: violates omp-confinement — a worksharing pragma outside
// src/qsim/parallel.hpp.
#include <cstddef>

void fixture_bad_omp(double* data, std::size_t n) {
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    data[i] *= 2.0;
  }
}
