// Fixture: raw wall-clock timing in library code — must trip
// timing-discipline. Library timing goes through telemetry::Span /
// telemetry::monotonic_ns (src/telemetry/trace.hpp), never raw
// std::chrono, so the disabled-telemetry overhead gate covers every timer
// the library can start.
#include <chrono>

namespace qs {

double elapsed_seconds() {
  const auto start = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace qs
