// Fixture (negative control): a fully clean header — guarded, no stdio,
// no RNG, module-rooted includes only. Tokens that LOOK like violations
// appear below only in comments and string literals, which the linter
// must ignore:  #pragma omp parallel for  /  std::mt19937  /  std::cout.
#pragma once

#include <string>

namespace qs_fixture {

inline std::string clean() {
  return "not real code: #include \"../x.hpp\" and rand() and printf(";
}

}  // namespace qs_fixture
