// Fixture (negative control): a documented suppression silences a rule.
// The marker below stands in for a justified exception; the self-test
// asserts it is honoured.
#include <random>  // dqs-lint: allow(rng-discipline)

int fixture_ok_suppressed() {
  // Seeding material for a fixture-only scenario, deliberately exempted.
  std::random_device rd;  // dqs-lint: allow(rng-discipline)
  return static_cast<int>(rd());
}
