// Tests for quantum counting via maximum-likelihood amplitude estimation
// (src/estimation) — the subroutine that justifies the paper's "M is
// public" assumption.
#include "estimation/amplitude_estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

DistributedDatabase controlled(std::size_t universe, std::size_t machines,
                               std::size_t support,
                               std::uint64_t multiplicity, std::uint64_t nu) {
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < support; ++i)
    datasets[i % machines].insert(i, multiplicity);
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(Schedules, ExponentialShape) {
  const auto s = exponential_schedule(5, 10);
  EXPECT_EQ(s.powers, (std::vector<std::size_t>{0, 1, 2, 4, 8}));
  EXPECT_EQ(s.shots_per_power, 10u);
  EXPECT_EQ(exponential_schedule(1, 3).powers,
            (std::vector<std::size_t>{0}));
  EXPECT_THROW(exponential_schedule(0, 1), ContractViolation);
}

TEST(Schedules, LinearShape) {
  const auto s = linear_schedule(4, 5);
  EXPECT_EQ(s.powers, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(MleCore, LikelihoodPeaksAtTrueTheta) {
  // Perfect (expectation-valued) records must be maximised at the truth.
  const double theta = 0.3;
  std::vector<ShotRecord> records;
  for (const std::size_t power : {0u, 1u, 2u, 4u, 8u}) {
    const double p = std::pow(std::sin((2.0 * power + 1.0) * theta), 2.0);
    records.push_back(
        {power, static_cast<std::uint64_t>(std::llround(p * 1000000)),
         1000000});
  }
  const double theta_hat = ae_maximum_likelihood(records);
  EXPECT_NEAR(theta_hat, theta, 1e-4);
}

TEST(MleCore, HandlesExtremeAngles) {
  // θ near 0 (empty database) and π/2 (full database).
  for (const double theta : {0.0, std::numbers::pi / 2.0}) {
    std::vector<ShotRecord> records;
    for (const std::size_t power : {0u, 1u, 2u}) {
      const double p = std::pow(std::sin((2.0 * power + 1.0) * theta), 2.0);
      records.push_back(
          {power, static_cast<std::uint64_t>(std::llround(p * 10000)),
           10000});
    }
    EXPECT_NEAR(ae_maximum_likelihood(records), theta, 1e-3);
  }
}

TEST(Estimate, RecoversGoodAmplitude) {
  const auto db = controlled(64, 2, 16, 2, 4);  // a = 32/256 = 0.125
  Rng rng(3);
  const auto estimate = estimate_good_amplitude(
      db, QueryMode::kSequential, exponential_schedule(6, 64), rng);
  EXPECT_NEAR(estimate.a_hat, 0.125, 0.01);
  EXPECT_GT(estimate.oracle_cost, 0u);
  EXPECT_EQ(estimate.total_shots, 6u * 64u);
}

TEST(Estimate, ParallelModeAgreesAndCostsFewerOracles) {
  const auto db = controlled(64, 4, 16, 2, 4);
  Rng rng1(5), rng2(5);
  const auto schedule = exponential_schedule(5, 48);
  const auto seq =
      estimate_good_amplitude(db, QueryMode::kSequential, schedule, rng1);
  const auto par =
      estimate_good_amplitude(db, QueryMode::kParallel, schedule, rng2);
  EXPECT_NEAR(seq.a_hat, par.a_hat, 0.03);
  EXPECT_EQ(seq.d_applications, par.d_applications);
  // Per D: 2n=8 sequential queries vs 4 parallel rounds.
  EXPECT_EQ(seq.oracle_cost, 2 * par.oracle_cost);
}

TEST(Estimate, TotalCountEstimation) {
  const auto db = controlled(128, 3, 24, 3, 6);  // M = 72
  Rng rng(7);
  const auto estimate = estimate_total_count(
      db, QueryMode::kSequential, exponential_schedule(7, 64), rng);
  EXPECT_NEAR(estimate.m_hat, 72.0, 5.0);
}

TEST(Estimate, DetectsEmptyDatabase) {
  std::vector<Dataset> datasets = {Dataset(32), Dataset(32)};
  const DistributedDatabase db(std::move(datasets), 2);
  Rng rng(9);
  const auto estimate = estimate_total_count(
      db, QueryMode::kSequential, exponential_schedule(4, 32), rng);
  EXPECT_NEAR(estimate.m_hat, 0.0, 1.0);
}

TEST(Estimate, FullDatabase) {
  // Every c_i = ν → a = 1.
  const auto db = controlled(16, 2, 16, 3, 3);
  Rng rng(11);
  const auto estimate = estimate_good_amplitude(
      db, QueryMode::kSequential, exponential_schedule(4, 32), rng);
  EXPECT_NEAR(estimate.a_hat, 1.0, 0.01);
}

TEST(Estimate, PerMachineCounts) {
  std::vector<Dataset> datasets = {Dataset(64), Dataset(64)};
  for (std::size_t i = 0; i < 8; ++i) datasets[0].insert(i, 2);   // M_0 = 16
  for (std::size_t i = 8; i < 12; ++i) datasets[1].insert(i, 1);  // M_1 = 4
  const DistributedDatabase db(std::move(datasets), 4, {2, 1});
  Rng rng(13);
  const auto schedule = exponential_schedule(7, 64);
  const auto m0 = estimate_machine_count(db, 0, schedule, rng);
  const auto m1 = estimate_machine_count(db, 1, schedule, rng);
  EXPECT_NEAR(m0.m_hat, 16.0, 2.0);
  EXPECT_NEAR(m1.m_hat, 4.0, 1.0);
}

TEST(Estimate, PrecisionImprovesWithDeeperSchedules) {
  // Heisenberg-style: deeper exponential schedules sharpen the estimate.
  const auto db = controlled(256, 2, 16, 1, 4);  // a = 16/1024
  const double truth = 16.0 / 1024.0;
  double shallow_err = 0.0, deep_err = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng1(100 + seed), rng2(200 + seed);
    shallow_err += std::abs(
        estimate_good_amplitude(db, QueryMode::kParallel,
                                exponential_schedule(2, 24), rng1)
            .a_hat -
        truth);
    deep_err += std::abs(
        estimate_good_amplitude(db, QueryMode::kParallel,
                                exponential_schedule(8, 24), rng2)
            .a_hat -
        truth);
  }
  EXPECT_LT(deep_err, shallow_err);
}

TEST(ClassicalEstimate, ConvergesWithProbes) {
  const auto db = controlled(64, 4, 32, 2, 4);  // M = 64
  Rng rng(17);
  const auto rough = classical_count_estimate(db, 200, rng);
  const auto fine = classical_count_estimate(db, 50000, rng);
  EXPECT_EQ(rough.probes, 200u);
  EXPECT_NEAR(fine.m_hat, 64.0, 8.0);
}

TEST(ClassicalEstimate, RejectsZeroProbes) {
  const auto db = controlled(8, 1, 4, 1, 1);
  Rng rng(19);
  EXPECT_THROW(classical_count_estimate(db, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace qs
