// Tests for the static protocol analyzer (src/analysis): IR lifting, the
// five checker passes, the mutation fixtures, and the verifier drivers.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/mutations.hpp"
#include "analysis/param_grid.hpp"
#include "analysis/passes.hpp"
#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs::analysis {
namespace {

const PublicParams kParams{32, 4, 3, 24};

bool has_pass(const std::vector<Diagnostic>& diagnostics,
              const std::string& pass) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.pass == pass; });
}

// --- IR lifting ------------------------------------------------------------

TEST(ProtocolIr, TranscriptLiftLowersEachEventToThreeMicroOps) {
  const auto transcript = compile_schedule(kParams, QueryMode::kSequential);
  const auto program =
      lift_transcript(transcript, kParams, QueryMode::kSequential);
  EXPECT_EQ(program.num_events, transcript.size());
  EXPECT_EQ(program.ops.size(), transcript.size() * 3);
  EXPECT_FALSE(program.has_local_unitaries);
  // Micro-op triples carry their source event index in order.
  for (std::size_t e = 0; e < transcript.size(); ++e) {
    for (std::size_t k = 0; k < 3; ++k)
      EXPECT_EQ(program.ops[3 * e + k].event, e);
  }
}

TEST(ProtocolIr, CompiledLiftSeesLocalUnitaries) {
  const auto program = lift_compiled(kParams, QueryMode::kSequential);
  EXPECT_TRUE(program.has_local_unitaries);
  EXPECT_EQ(program.num_events,
            compiled_schedule_length(kParams, QueryMode::kSequential));
  bool saw_u = false;
  bool saw_f = false;
  for (const auto& op : program.ops) {
    if (op.kind != OpKind::kLocalUnitary) continue;
    saw_u |= op.label == "U";
    saw_f |= op.label == "F";
  }
  EXPECT_TRUE(saw_u);
  EXPECT_TRUE(saw_f);
}

TEST(ProtocolIr, DiagnosticRendersMachineReadably) {
  const Diagnostic d{"adjoint-nesting", 7, "boom", "do not boom"};
  const auto s = to_string(d);
  EXPECT_NE(s.find("[adjoint-nesting]"), std::string::npos);
  EXPECT_NE(s.find("event 7"), std::string::npos);
  EXPECT_NE(s.find("fix:"), std::string::npos);
}

// --- passes on real schedules ----------------------------------------------

TEST(Passes, CompiledSchedulesAreCleanOnTheFullGrid) {
  for (const auto& params : standard_grid()) {
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto program = lift_compiled(params, mode);
      EXPECT_TRUE(check_adjoint_nesting(program).empty());
      EXPECT_TRUE(check_ownership(program).empty());
      EXPECT_TRUE(check_query_budget(program).empty());
      EXPECT_TRUE(check_load_balance(program).empty());
    }
  }
}

TEST(Passes, RealRunTranscriptsVerifyCleanInBothModes) {
  Rng rng(17);
  auto datasets = workload::uniform_random(16, 3, 20, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  const auto params = public_params_of(db);

  for (const bool parallel : {false, true}) {
    Transcript transcript;
    SamplerOptions options;
    options.transcript = &transcript;
    db.reset_stats();
    if (parallel) {
      run_parallel_sampler(db, options);
    } else {
      run_sequential_sampler(db, options);
    }
    const auto stats = db.stats();
    const auto report = verify_transcript(
        transcript, params,
        parallel ? QueryMode::kParallel : QueryMode::kSequential, &stats);
    EXPECT_TRUE(report.clean()) << report.render();
  }
}

TEST(Passes, NestingFlagsUnmatchedForwardQuery) {
  auto program = lift_compiled(kParams, QueryMode::kSequential);
  // Remove the last adjoint oracle micro-op.
  for (auto it = program.ops.rbegin(); it != program.ops.rend(); ++it) {
    if (it->kind == OpKind::kOracle && it->adjoint) {
      program.ops.erase(std::next(it).base());
      break;
    }
  }
  EXPECT_TRUE(has_pass(check_adjoint_nesting(program), "adjoint-nesting"));
}

TEST(Passes, NestingFlagsRotationOutsideTheBlock) {
  auto program = lift_compiled(kParams, QueryMode::kSequential);
  // Move the first 𝒰 marker to the front, outside its C…C† block.
  const auto is_u = [](const ProtocolOp& op) {
    return op.kind == OpKind::kLocalUnitary && op.label == "U";
  };
  const auto it = std::find_if(program.ops.begin(), program.ops.end(), is_u);
  ASSERT_NE(it, program.ops.end());
  const ProtocolOp u = *it;
  program.ops.erase(it);
  program.ops.insert(program.ops.begin(), u);
  EXPECT_TRUE(has_pass(check_adjoint_nesting(program), "adjoint-nesting"));
}

TEST(Passes, OwnershipFlagsQueryWithoutTheRegisters) {
  auto program = lift_compiled(kParams, QueryMode::kSequential);
  for (auto& op : program.ops) {
    if (op.kind == OpKind::kOracle) {
      op.machine = (op.machine + 1) % kParams.machines;
      break;
    }
  }
  const auto diagnostics = check_ownership(program);
  ASSERT_TRUE(has_pass(diagnostics, "ownership"));
  EXPECT_NE(diagnostics.front().fix_hint.find("Transport"),
            std::string::npos);
}

TEST(Passes, OwnershipFlagsNonQuiescentTermination) {
  auto program = lift_compiled(kParams, QueryMode::kSequential);
  while (!program.ops.empty() &&
         program.ops.back().kind != OpKind::kRecv) {
    program.ops.pop_back();
  }
  ASSERT_FALSE(program.ops.empty());
  program.ops.pop_back();  // drop the final receive: bundle never returns
  EXPECT_TRUE(has_pass(check_ownership(program), "ownership"));
}

TEST(Passes, BudgetMatchesTheoremClosedForms) {
  // d·2n sequential queries and d·4 parallel rounds across the grid is
  // asserted by CompiledSchedulesAreCleanOnTheFullGrid; here check the
  // pass actually counts: a duplicated event pair must be flagged.
  auto program = lift_compiled(kParams, QueryMode::kSequential);
  // The compiled lift opens with local unitaries (state prep F); the first
  // query triple starts at the first kSend micro-op.
  const auto send_it = std::find_if(
      program.ops.begin(), program.ops.end(),
      [](const ProtocolOp& op) { return op.kind == OpKind::kSend; });
  ASSERT_NE(send_it, program.ops.end());
  const auto first_triple = std::vector<ProtocolOp>(send_it, send_it + 3);
  ASSERT_EQ(first_triple[1].kind, OpKind::kOracle);
  program.ops.insert(program.ops.end(), first_triple.begin(),
                     first_triple.end());
  EXPECT_TRUE(has_pass(check_query_budget(program), "query-budget"));
}

TEST(Passes, BudgetReportsInconsistentPublicParameters) {
  const ProtocolProgram program{
      {8, 2, 2, 17}, QueryMode::kSequential, {}, 0, false};
  EXPECT_TRUE(has_pass(check_query_budget(program), "query-budget"));
}

TEST(Passes, LoadBalanceFlagsSkewedHistogram) {
  const auto transcript = compile_schedule(kParams, QueryMode::kSequential);
  // Re-route one matched pair: machine 0 loses two queries, machine 1
  // gains them; nesting and totals stay legal.
  const auto& spec = mutation_catalog();
  const auto it =
      std::find_if(spec.begin(), spec.end(), [](const MutationSpec& m) {
        return m.name == "overweight-machine";
      });
  ASSERT_NE(it, spec.end());
  const auto mutant = it->mutate_transcript(transcript);
  const auto program =
      lift_transcript(mutant, kParams, QueryMode::kSequential);
  EXPECT_TRUE(check_adjoint_nesting(program).empty());
  EXPECT_TRUE(check_query_budget(program).empty());
  EXPECT_TRUE(has_pass(check_load_balance(program), "load-balance"));
}

// --- obliviousness certification -------------------------------------------

TEST(Obliviousness, PerturbedDatabasesPreservePublicParams) {
  Rng rng(5);
  for (const auto& params : {kParams, PublicParams{16, 2, 1, 16},
                             PublicParams{8, 3, 2, 1}}) {
    const auto db = perturbed_database(params, rng);
    EXPECT_EQ(public_params_of(db), params);
  }
}

TEST(Obliviousness, CertifiesRealSchedules) {
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const auto diagnostics = certify_obliviousness(kParams, mode, 3, 99);
    EXPECT_TRUE(diagnostics.empty());
  }
}

TEST(Obliviousness, TaintAuditSeesRealOracleReads) {
  // The audit's instrument must be live: a REAL sampler run reads dataset
  // contents through the oracles, while schedule compilation reads none.
  Rng rng(23);
  auto datasets = workload::uniform_random(8, 2, 8, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);

  db.reset_content_reads();
  (void)compile_schedule(db, QueryMode::kSequential);
  EXPECT_EQ(db.content_reads(), 0u);

  run_sequential_sampler(db);
  EXPECT_GT(db.content_reads(), 0u);
}

TEST(Obliviousness, RecordedTranscriptMustMatchCompiledSchedule) {
  auto transcript = compile_schedule(kParams, QueryMode::kSequential);
  const auto& spec = mutation_catalog();
  const auto it =
      std::find_if(spec.begin(), spec.end(), [](const MutationSpec& m) {
        return m.name == "reordered-schedule";
      });
  ASSERT_NE(it, spec.end());
  const auto mutant = it->mutate_transcript(transcript);
  const auto report =
      verify_transcript(mutant, kParams, QueryMode::kSequential);
  EXPECT_TRUE(has_pass(report.diagnostics, "obliviousness"));
  // …and nothing structural: the reordering is the only corruption.
  EXPECT_FALSE(has_pass(report.diagnostics, "adjoint-nesting"));
  EXPECT_FALSE(has_pass(report.diagnostics, "query-budget"));
  EXPECT_FALSE(has_pass(report.diagnostics, "load-balance"));
}

// --- mutation fixtures ------------------------------------------------------

TEST(Mutations, EveryFixtureIsFlaggedByItsExpectedPass) {
  for (const auto& spec : mutation_catalog()) {
    EXPECT_TRUE(mutation_flagged(spec, kParams)) << spec.name;
  }
}

TEST(Mutations, CatalogCoversAllFivePasses) {
  std::vector<std::string> covered;
  for (const auto& spec : mutation_catalog())
    covered.push_back(spec.expected_pass);
  for (const auto& pass : pass_names()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), pass),
              covered.end())
        << "no mutation fixture exercises pass " << pass;
  }
}

TEST(Mutations, FlaggedAcrossParameterSweep) {
  for (const auto& params :
       {PublicParams{16, 2, 2, 8}, PublicParams{64, 5, 4, 100}}) {
    for (const auto& spec : mutation_catalog()) {
      EXPECT_TRUE(mutation_flagged(spec, params))
          << spec.name << " at N=" << params.universe;
    }
  }
}

// --- verifier drivers -------------------------------------------------------

TEST(Verifier, CompiledVerifyIsCleanAndRendersEmpty) {
  const auto report = verify_compiled(kParams, QueryMode::kParallel);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.render(), "");
}

TEST(Verifier, StatsLedgerCrossCheckFlagsDoubleCharging) {
  const auto transcript = compile_schedule(kParams, QueryMode::kSequential);
  auto stats = stats_of(transcript, kParams.machines);
  ++stats.sequential_per_machine[0];  // ledger says one more than recorded
  const auto report = verify_transcript(transcript, kParams,
                                        QueryMode::kSequential, &stats);
  EXPECT_TRUE(has_pass(report.diagnostics, "query-budget"));
}

}  // namespace
}  // namespace qs::analysis
