// Tests for the classical baselines (sampling/classical.hpp) — the query
// costs the introduction's nN argument and the rejection-sampling analysis
// predict.
#include "sampling/classical.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "qsim/measure.hpp"

namespace qs {
namespace {

DistributedDatabase make_db(std::size_t universe, std::size_t machines,
                            std::uint64_t total, std::uint64_t seed,
                            std::uint64_t extra_nu = 0) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + extra_nu;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(ClassicalFullScan, LearnsExactCountsWithExactlyNnQueries) {
  const auto db = make_db(32, 4, 60, 1);
  const auto result = classical_full_scan(db);
  EXPECT_EQ(result.queries, 32u * 4u);
  EXPECT_EQ(result.counts, db.joint_counts());
}

TEST(ClassicalEarlyStop, NeverExceedsFullScanAndIsCorrect) {
  const auto db = make_db(32, 4, 60, 2);
  const auto result = classical_early_stop_scan(db);
  EXPECT_LE(result.queries, 32u * 4u);
  EXPECT_EQ(result.counts, db.joint_counts());
}

TEST(ClassicalEarlyStop, StopsEarlyWhenMassIsConcentratedAtTheFront) {
  // All mass on element 0 → the scan stops after the first column.
  std::vector<Dataset> datasets = {Dataset::from_counts({5, 0, 0, 0, 0, 0, 0,
                                                         0})};
  const DistributedDatabase db(std::move(datasets), 5);
  const auto result = classical_early_stop_scan(db);
  EXPECT_EQ(result.queries, 1u);
}

TEST(ClassicalEarlyStop, WorstCaseIsStillNn) {
  // All mass on the LAST element: every cell must be probed.
  std::vector<Dataset> a = {Dataset::from_counts({0, 0, 0, 3}),
                            Dataset::from_counts({0, 0, 0, 2})};
  const DistributedDatabase db(std::move(a), 5);
  const auto result = classical_early_stop_scan(db);
  EXPECT_EQ(result.queries, 4u * 2u);
}

TEST(ClassicalRejection, ProducesExactDistribution) {
  const auto db = make_db(8, 2, 100, 3);
  Rng rng(4);
  const auto result = classical_rejection_sampling(db, 100000, rng);
  std::vector<std::uint64_t> hist(db.universe(), 0);
  for (const auto s : result.samples) ++hist[s];
  const auto empirical = normalize_histogram(hist);
  EXPECT_LT(total_variation(empirical, db.target_distribution()), 0.01);
}

TEST(ClassicalRejection, ExpectedQueriesMatchTheory) {
  // E[queries per sample] = n·νN/M.
  const auto db = make_db(32, 3, 48, 5, 2);
  const double n = static_cast<double>(db.num_machines());
  const double expected_per_sample =
      n * static_cast<double>(db.nu()) * static_cast<double>(db.universe()) /
      static_cast<double>(db.total());
  Rng rng(6);
  const std::size_t samples = 4000;
  const auto result = classical_rejection_sampling(db, samples, rng);
  const double measured =
      static_cast<double>(result.queries) / static_cast<double>(samples);
  EXPECT_NEAR(measured, expected_per_sample, 0.15 * expected_per_sample);
}

TEST(ClassicalRejection, QuadraticallyWorseThanQuantumShape) {
  // The headline comparison: classical per-sample cost ~ n·νN/M vs quantum
  // n·√(νN/M) — the ratio must grow like √(νN/M).
  const auto db = make_db(256, 2, 32, 7);
  Rng rng(8);
  const auto classical = classical_rejection_sampling(db, 500, rng);
  const double per_sample =
      static_cast<double>(classical.queries) / 500.0;
  const double ratio = static_cast<double>(db.nu()) * 256.0 /
                       static_cast<double>(db.total());
  // classical per-sample ≈ n · ratio; quantum ≈ (π/2) n √ratio.
  EXPECT_NEAR(per_sample, 2.0 * ratio, 0.3 * 2.0 * ratio);
  EXPECT_GT(per_sample, 2.0 * std::sqrt(ratio));
}

TEST(ClassicalRejection, EmptyDatabaseRejected) {
  std::vector<Dataset> datasets = {Dataset(4)};
  const DistributedDatabase db(std::move(datasets), 1);
  Rng rng(9);
  EXPECT_THROW(classical_rejection_sampling(db, 1, rng), ContractViolation);
}

}  // namespace
}  // namespace qs
