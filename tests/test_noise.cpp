// Tests for the noise channels (qsim/noise.hpp) and the noisy sampler
// (sampling/noisy_sampler.hpp): trajectory unravelling is certified against
// the exact channel action, and the fault-tolerance story is checked —
// fidelity decays with noise, and the round-efficient parallel model decays
// slower than the sequential one.
#include "qsim/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "qsim/density.hpp"
#include "qsim/gates.hpp"
#include "sampling/noisy_sampler.hpp"

namespace qs {
namespace {

TEST(Weyl, OperatorsActCorrectlyOnBasisStates) {
  RegisterLayout layout;
  const auto r = layout.add("r", 4);
  // X^1: |2⟩ → |3⟩.
  StateVector s(layout, 2);
  apply_weyl(s, r, 1, 0);
  EXPECT_EQ(s.amplitude(3), cplx(1.0, 0.0));
  // Z^1: |2⟩ → ω²|2⟩ with ω = i for d=4.
  StateVector z(layout, 2);
  apply_weyl(z, r, 0, 1);
  EXPECT_NEAR(std::abs(z.amplitude(2) - cplx(-1.0, 0.0)), 0.0, 1e-12);
}

TEST(Weyl, PreservesNorm) {
  Rng rng(3);
  RegisterLayout layout;
  const auto r = layout.add("r", 5);
  layout.add("other", 3);
  StateVector s(layout);
  s.set_amplitudes(random_state(15, rng));
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = 0; b < 5; ++b) {
      apply_weyl(s, r, a, b);
      EXPECT_NEAR(s.norm(), 1.0, 1e-12);
    }
  }
}

TEST(Weyl, OutOfRangeExponentsRejected) {
  RegisterLayout layout;
  const auto r = layout.add("r", 3);
  StateVector s(layout);
  EXPECT_THROW(apply_weyl(s, r, 3, 0), ContractViolation);
  EXPECT_THROW(apply_weyl(s, r, 0, 3), ContractViolation);
}

TEST(ExactChannels, DephasingKillsOffDiagonals) {
  Matrix rho(2, 2);
  rho(0, 0) = 0.5;
  rho(1, 1) = 0.5;
  rho(0, 1) = 0.5;
  rho(1, 0) = 0.5;
  const auto out = dephasing_exact(rho, 0.4);
  EXPECT_NEAR(out(0, 0).real(), 0.5, 1e-15);
  EXPECT_NEAR(out(0, 1).real(), 0.3, 1e-15);
  // Full dephasing: diagonal only.
  const auto dead = dephasing_exact(rho, 1.0);
  EXPECT_NEAR(std::abs(dead(0, 1)), 0.0, 1e-15);
}

TEST(ExactChannels, DepolarizingMixesTowardIdentity) {
  Matrix rho(4, 4);
  rho(0, 0) = 1.0;  // pure |0⟩
  const auto out = depolarizing_exact(rho, 0.8);
  EXPECT_NEAR(out(0, 0).real(), 0.2 + 0.8 / 4.0, 1e-15);
  EXPECT_NEAR(out(1, 1).real(), 0.8 / 4.0, 1e-15);
  EXPECT_NEAR(out.trace().real(), 1.0, 1e-15);
}

TEST(Trajectories, DephasingAverageMatchesExactChannel) {
  // Average the trajectory channel over many runs on a fixed pure state and
  // compare the resulting density matrix with the exact channel action.
  Rng rng(7);
  RegisterLayout layout;
  const auto r = layout.add("r", 3);
  const auto input = random_state(3, rng);
  Matrix rho_in(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      rho_in(i, j) = input[i] * std::conj(input[j]);

  const double p = 0.5;
  Matrix averaged(3, 3);
  const int runs = 40000;
  for (int run = 0; run < runs; ++run) {
    StateVector s(layout);
    s.set_amplitudes(input);
    apply_dephasing_trajectory(s, r, p, rng);
    const auto rho = partial_trace(s, {r});
    averaged = averaged + rho;
  }
  averaged *= cplx(1.0 / runs, 0.0);
  const auto exact = dephasing_exact(rho_in, p);
  EXPECT_LT(Matrix::max_abs_diff(averaged, exact), 0.02);
}

TEST(Trajectories, DepolarizingAverageMatchesExactChannel) {
  Rng rng(11);
  RegisterLayout layout;
  const auto r = layout.add("r", 2);
  const auto input = random_state(2, rng);
  Matrix rho_in(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      rho_in(i, j) = input[i] * std::conj(input[j]);

  const double p = 0.6;
  Matrix averaged(2, 2);
  const int runs = 40000;
  for (int run = 0; run < runs; ++run) {
    StateVector s(layout);
    s.set_amplitudes(input);
    apply_depolarizing_trajectory(s, r, p, rng);
    averaged = averaged + partial_trace(s, {r});
  }
  averaged *= cplx(1.0 / runs, 0.0);
  const auto exact = depolarizing_exact(rho_in, p);
  EXPECT_LT(Matrix::max_abs_diff(averaged, exact), 0.02);
}

DistributedDatabase noisy_test_db(std::size_t machines) {
  Rng rng(13);
  auto datasets = workload::uniform_random(32, machines, 24, rng);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(NoisySampler, NoiselessModelReproducesExactSampler) {
  const auto db = noisy_test_db(3);
  Rng rng(17);
  const auto result = run_noisy_sampler(db, QueryMode::kSequential,
                                        NoiseModel{}, 3, rng);
  EXPECT_NEAR(result.mean_fidelity, 1.0, 1e-9);
  EXPECT_NEAR(result.stddev_fidelity, 0.0, 1e-12);
}

TEST(NoisySampler, FidelityDecaysWithDephasingRate) {
  const auto db = noisy_test_db(3);
  double previous = 1.01;
  for (const double p : {0.001, 0.01, 0.05}) {
    Rng rng(19);
    NoiseModel noise;
    noise.dephasing_per_round = p;
    const auto result =
        run_noisy_sampler(db, QueryMode::kSequential, noise, 40, rng);
    EXPECT_LT(result.mean_fidelity, previous);
    previous = result.mean_fidelity;
  }
}

TEST(NoisySampler, ParallelModelIsMoreNoiseRobust) {
  // Same instance, same per-round noise: the parallel sampler has ~n times
  // fewer noisy rounds, so its mean fidelity must be higher.
  const auto db = noisy_test_db(6);
  NoiseModel noise;
  noise.dephasing_per_round = 0.02;
  Rng rng1(23), rng2(23);
  const auto seq =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 60, rng1);
  const auto par =
      run_noisy_sampler(db, QueryMode::kParallel, noise, 60, rng2);
  EXPECT_GT(seq.noisy_rounds_per_trajectory,
            2 * par.noisy_rounds_per_trajectory);
  EXPECT_GT(par.mean_fidelity, seq.mean_fidelity + 0.05);
}

TEST(NoisySampler, OracleFaultsDegradeFidelity) {
  const auto db = noisy_test_db(2);
  NoiseModel noise;
  noise.oracle_fault_rate = 0.05;
  Rng rng(29);
  const auto result =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 40, rng);
  EXPECT_LT(result.mean_fidelity, 0.999);
  EXPECT_GT(result.mean_fidelity, 0.05);
}

TEST(NoisySampler, DepolarizingFlagNoiseDegrades) {
  const auto db = noisy_test_db(2);
  NoiseModel noise;
  noise.depolarizing_per_round = 0.05;
  Rng rng(31);
  const auto result =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 40, rng);
  EXPECT_LT(result.mean_fidelity, 0.999);
}

TEST(NoisySampler, RejectsZeroTrajectories) {
  const auto db = noisy_test_db(2);
  Rng rng(37);
  EXPECT_THROW(
      run_noisy_sampler(db, QueryMode::kSequential, NoiseModel{}, 0, rng),
      ContractViolation);
}

TEST(ExactChannels, DephasingComposesAsASemigroup) {
  // Λ_p1 ∘ Λ_p2 = Λ_{1-(1-p1)(1-p2)} — the survival probabilities of the
  // off-diagonals multiply.
  Rng rng(41);
  const auto v = random_state(3, rng);
  Matrix rho(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) rho(i, j) = v[i] * std::conj(v[j]);
  const double p1 = 0.3, p2 = 0.45;
  const auto sequential_channels = dephasing_exact(dephasing_exact(rho, p2), p1);
  const auto fused = dephasing_exact(rho, 1.0 - (1.0 - p1) * (1.0 - p2));
  EXPECT_NEAR(Matrix::max_abs_diff(sequential_channels, fused), 0.0, 1e-12);
}

TEST(ExactChannels, DepolarizingFixedPointIsMaximallyMixed) {
  Matrix mixed(4, 4);
  for (std::size_t i = 0; i < 4; ++i) mixed(i, i) = 0.25;
  const auto out = depolarizing_exact(mixed, 0.7);
  EXPECT_NEAR(Matrix::max_abs_diff(out, mixed), 0.0, 1e-15);
}

}  // namespace
}  // namespace qs
