// Tests for the transport protocol session (distdb/transport.hpp) and the
// sampling server (apps/sample_server.hpp).
#include <gtest/gtest.h>

#include "apps/sample_server.hpp"
#include "common/require.hpp"
#include "distdb/transport.hpp"
#include "distdb/workload.hpp"
#include "sampling/schedule.hpp"

namespace qs {
namespace {

TEST(Transport, SequentialHandshakeDiscipline) {
  TransportSession session(3);
  EXPECT_TRUE(session.quiescent());
  session.send_sequential(1);
  EXPECT_FALSE(session.quiescent());
  // Double send / wrong receiver / collective during flight all rejected.
  EXPECT_THROW(session.send_sequential(2), ContractViolation);
  EXPECT_THROW(session.receive_sequential(0), ContractViolation);
  EXPECT_THROW(session.begin_parallel_round(), ContractViolation);
  session.receive_sequential(1);
  EXPECT_TRUE(session.quiescent());
  EXPECT_EQ(session.completed_sequential(), 1u);
}

TEST(Transport, CollectiveRoundDiscipline) {
  TransportSession session(4);
  session.begin_parallel_round();
  EXPECT_THROW(session.begin_parallel_round(), ContractViolation);
  EXPECT_THROW(session.send_sequential(0), ContractViolation);
  session.end_parallel_round();
  EXPECT_EQ(session.completed_rounds(), 1u);
  EXPECT_THROW(session.end_parallel_round(), ContractViolation);
}

TEST(Transport, ReceiveWithoutSendRejected) {
  TransportSession session(2);
  EXPECT_THROW(session.receive_sequential(0), ContractViolation);
  EXPECT_THROW(TransportSession(0), ContractViolation);
}

TEST(Transport, CompiledSchedulesAreProtocolClean) {
  // Every schedule this library emits must be physically executable.
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    for (const std::uint64_t total : {2u, 16u, 48u}) {
      const PublicParams params{64, 4, 4, total};
      const auto schedule = compile_schedule(params, mode);
      const auto violation =
          TransportSession::validate_schedule(schedule, 4);
      EXPECT_FALSE(violation.has_value())
          << violation.value_or("") << " (M=" << total << ")";
    }
  }
}

TEST(Transport, CorruptedScheduleIsCaught) {
  Transcript bad;
  bad.record_sequential(7, false);  // machine index out of range for n=4
  const auto violation = TransportSession::validate_schedule(bad, 4);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("event 0"), std::string::npos);
}

/// Run `op`, which must throw, and hand back its diagnostic.
template <typename Op>
std::string violation_message(Op&& op) {
  try {
    op();
  } catch (const ContractViolation& violation) {
    return violation.what();
  }
  ADD_FAILURE() << "expected a ContractViolation";
  return "";
}

void expect_contains(const std::string& message, const std::string& needle) {
  EXPECT_NE(message.find(needle), std::string::npos)
      << "diagnostic '" << message << "' should contain '" << needle << "'";
}

// Every violation branch of the session, one by one: each diagnostic must
// name the machines involved and the op index where the protocol broke.
TEST(Transport, SendOutOfRangeNamesMachineAndBound) {
  TransportSession session(3);
  const auto msg =
      violation_message([&] { session.send_sequential(7); });
  expect_contains(msg, "send to machine 7");
  expect_contains(msg, "(op 0)");
  expect_contains(msg, "out of range (n=3)");
}

TEST(Transport, SendDuringRoundNamesOp) {
  TransportSession session(3);
  session.begin_parallel_round();
  const auto msg =
      violation_message([&] { session.send_sequential(1); });
  expect_contains(msg, "send to machine 1");
  expect_contains(msg, "(op 1)");
  expect_contains(msg, "collective round is open");
}

TEST(Transport, DoubleSendNamesBothMachines) {
  TransportSession session(3);
  session.send_sequential(1);
  const auto msg =
      violation_message([&] { session.send_sequential(2); });
  expect_contains(msg, "send to machine 2");
  expect_contains(msg, "(op 1)");
  expect_contains(msg, "already in flight to machine 1");
}

TEST(Transport, ReceiveWithoutTransferNamesOp) {
  TransportSession session(3);
  const auto msg =
      violation_message([&] { session.receive_sequential(0); });
  expect_contains(msg, "receive from machine 0");
  expect_contains(msg, "(op 0)");
  expect_contains(msg, "no sequential transfer in flight");
}

TEST(Transport, WrongReceiverNamesBothMachines) {
  TransportSession session(3);
  session.send_sequential(1);
  const auto msg =
      violation_message([&] { session.receive_sequential(2); });
  expect_contains(msg, "receive from machine 2");
  expect_contains(msg, "(op 1)");
  expect_contains(msg, "in flight to machine 1");
}

TEST(Transport, DoubleBeginNamesOp) {
  TransportSession session(2);
  session.begin_parallel_round();
  const auto msg =
      violation_message([&] { session.begin_parallel_round(); });
  expect_contains(msg, "begin collective round (op 1)");
  expect_contains(msg, "already open");
}

TEST(Transport, BeginDuringFlightNamesMachine) {
  TransportSession session(2);
  session.send_sequential(0);
  const auto msg =
      violation_message([&] { session.begin_parallel_round(); });
  expect_contains(msg, "begin collective round (op 1)");
  expect_contains(msg, "registers in flight to machine 0");
}

TEST(Transport, EndWithoutRoundNamesOp) {
  TransportSession session(2);
  const auto msg =
      violation_message([&] { session.end_parallel_round(); });
  expect_contains(msg, "end collective round (op 0)");
  expect_contains(msg, "no collective round to close");
}

TEST(Transport, OpCounterAdvancesPerOperation) {
  TransportSession session(3);
  EXPECT_EQ(session.ops(), 0u);
  session.send_sequential(2);
  session.receive_sequential(2);
  EXPECT_EQ(session.ops(), 2u);
  session.begin_parallel_round();
  session.end_parallel_round();
  EXPECT_EQ(session.ops(), 4u);
  // Failed operations do not advance the op counter.
  EXPECT_THROW(session.end_parallel_round(), ContractViolation);
  EXPECT_EQ(session.ops(), 4u);
}

SampleServer make_server(QueryMode mode = QueryMode::kSequential) {
  Rng rng(3);
  auto datasets = workload::uniform_random(32, 3, 24, rng);
  const auto nu = min_capacity(datasets) + 4;
  return SampleServer(DistributedDatabase(std::move(datasets), nu), mode);
}

TEST(SampleServer, CachesUntilDataChanges) {
  auto server = make_server();
  const auto& first = server.state();
  EXPECT_NEAR(first.fidelity, 1.0, 1e-9);
  EXPECT_EQ(server.preparations(), 1u);
  // Re-reading the state costs nothing.
  (void)server.state();
  EXPECT_EQ(server.preparations(), 1u);
  // An update invalidates.
  server.insert(0, 5);
  EXPECT_FALSE(server.cache_valid());
  (void)server.state();
  EXPECT_EQ(server.preparations(), 2u);
}

TEST(SampleServer, DrawsConsumeTheState) {
  auto server = make_server();
  Rng rng(7);
  const auto cost_before = server.total_query_cost();
  (void)server.draw(rng);
  (void)server.draw(rng);
  EXPECT_EQ(server.preparations(), 2u);  // one preparation per draw
  EXPECT_GT(server.total_query_cost(), cost_before);
}

TEST(SampleServer, DrawsFollowTheLiveDistribution) {
  // Concentrate everything on one element and confirm draws see it.
  std::vector<Dataset> datasets = {Dataset(8)};
  datasets[0].insert(3, 4);
  SampleServer server(DistributedDatabase(std::move(datasets), 4),
                      QueryMode::kParallel);
  Rng rng(11);
  for (int d = 0; d < 5; ++d) EXPECT_EQ(server.draw(rng), 3u);
  // Shift the mass and draws follow.
  for (int c = 0; c < 4; ++c) server.erase(0, 3);
  server.insert(0, 6);
  for (int d = 0; d < 5; ++d) EXPECT_EQ(server.draw(rng), 6u);
}

TEST(SampleServer, EmptyStoreThrowsOnAccess) {
  std::vector<Dataset> datasets = {Dataset(8)};
  SampleServer server(DistributedDatabase(std::move(datasets), 2),
                      QueryMode::kSequential);
  Rng rng(13);
  EXPECT_THROW(server.draw(rng), ContractViolation);
}

}  // namespace
}  // namespace qs
