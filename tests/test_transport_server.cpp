// Tests for the transport protocol session (distdb/transport.hpp) and the
// sampling server (apps/sample_server.hpp).
#include <gtest/gtest.h>

#include "apps/sample_server.hpp"
#include "common/require.hpp"
#include "distdb/transport.hpp"
#include "distdb/workload.hpp"
#include "sampling/schedule.hpp"

namespace qs {
namespace {

TEST(Transport, SequentialHandshakeDiscipline) {
  TransportSession session(3);
  EXPECT_TRUE(session.quiescent());
  session.send_sequential(1);
  EXPECT_FALSE(session.quiescent());
  // Double send / wrong receiver / collective during flight all rejected.
  EXPECT_THROW(session.send_sequential(2), ContractViolation);
  EXPECT_THROW(session.receive_sequential(0), ContractViolation);
  EXPECT_THROW(session.begin_parallel_round(), ContractViolation);
  session.receive_sequential(1);
  EXPECT_TRUE(session.quiescent());
  EXPECT_EQ(session.completed_sequential(), 1u);
}

TEST(Transport, CollectiveRoundDiscipline) {
  TransportSession session(4);
  session.begin_parallel_round();
  EXPECT_THROW(session.begin_parallel_round(), ContractViolation);
  EXPECT_THROW(session.send_sequential(0), ContractViolation);
  session.end_parallel_round();
  EXPECT_EQ(session.completed_rounds(), 1u);
  EXPECT_THROW(session.end_parallel_round(), ContractViolation);
}

TEST(Transport, ReceiveWithoutSendRejected) {
  TransportSession session(2);
  EXPECT_THROW(session.receive_sequential(0), ContractViolation);
  EXPECT_THROW(TransportSession(0), ContractViolation);
}

TEST(Transport, CompiledSchedulesAreProtocolClean) {
  // Every schedule this library emits must be physically executable.
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    for (const std::uint64_t total : {2u, 16u, 48u}) {
      const PublicParams params{64, 4, 4, total};
      const auto schedule = compile_schedule(params, mode);
      const auto violation =
          TransportSession::validate_schedule(schedule, 4);
      EXPECT_FALSE(violation.has_value())
          << violation.value_or("") << " (M=" << total << ")";
    }
  }
}

TEST(Transport, CorruptedScheduleIsCaught) {
  Transcript bad;
  bad.record_sequential(7, false);  // machine index out of range for n=4
  const auto violation = TransportSession::validate_schedule(bad, 4);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->find("event 0"), std::string::npos);
}

SampleServer make_server(QueryMode mode = QueryMode::kSequential) {
  Rng rng(3);
  auto datasets = workload::uniform_random(32, 3, 24, rng);
  const auto nu = min_capacity(datasets) + 4;
  return SampleServer(DistributedDatabase(std::move(datasets), nu), mode);
}

TEST(SampleServer, CachesUntilDataChanges) {
  auto server = make_server();
  const auto& first = server.state();
  EXPECT_NEAR(first.fidelity, 1.0, 1e-9);
  EXPECT_EQ(server.preparations(), 1u);
  // Re-reading the state costs nothing.
  (void)server.state();
  EXPECT_EQ(server.preparations(), 1u);
  // An update invalidates.
  server.insert(0, 5);
  EXPECT_FALSE(server.cache_valid());
  (void)server.state();
  EXPECT_EQ(server.preparations(), 2u);
}

TEST(SampleServer, DrawsConsumeTheState) {
  auto server = make_server();
  Rng rng(7);
  const auto cost_before = server.total_query_cost();
  (void)server.draw(rng);
  (void)server.draw(rng);
  EXPECT_EQ(server.preparations(), 2u);  // one preparation per draw
  EXPECT_GT(server.total_query_cost(), cost_before);
}

TEST(SampleServer, DrawsFollowTheLiveDistribution) {
  // Concentrate everything on one element and confirm draws see it.
  std::vector<Dataset> datasets = {Dataset(8)};
  datasets[0].insert(3, 4);
  SampleServer server(DistributedDatabase(std::move(datasets), 4),
                      QueryMode::kParallel);
  Rng rng(11);
  for (int d = 0; d < 5; ++d) EXPECT_EQ(server.draw(rng), 3u);
  // Shift the mass and draws follow.
  for (int c = 0; c < 4; ++c) server.erase(0, 3);
  server.insert(0, 6);
  for (int d = 0; d < 5; ++d) EXPECT_EQ(server.draw(rng), 6u);
}

TEST(SampleServer, EmptyStoreThrowsOnAccess) {
  std::vector<Dataset> datasets = {Dataset(8)};
  SampleServer server(DistributedDatabase(std::move(datasets), 2),
                      QueryMode::kSequential);
  Rng rng(13);
  EXPECT_THROW(server.draw(rng), ContractViolation);
}

}  // namespace
}  // namespace qs
