// Differential tests for the abstract interpreter (src/analysis/abstint):
// every fact a dqs-cert-v1 certificate states is checked against an
// EXECUTED run — the statically derived query counts must equal the run's
// QueryStats ledger exactly, the derived success probability must match the
// measured fidelity to 1e-9, and the support bound must dominate the dense
// simulator's observed support — plus the certificate JSON round-trip, the
// a = 1 degenerate corner, and the fault-recovery certificate grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/abstint/certificate.hpp"
#include "analysis/abstint/engine.hpp"
#include "analysis/abstint/recovered.hpp"
#include "analysis/mutations.hpp"
#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"

namespace qs::analysis {
namespace {

/// Count of nonzero amplitudes — what the support domain bounds.
std::uint64_t observed_support(const StateVector& state) {
  std::uint64_t support = 0;
  for (const auto& amp : state.amplitudes()) {
    if (amp != cplx{0.0, 0.0}) ++support;
  }
  return support;
}

DistributedDatabase make_db(std::uint64_t universe, std::uint64_t machines,
                            std::uint64_t total, std::uint64_t seed) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets);
  return DistributedDatabase(std::move(datasets), nu);
}

// --- differential grid: certificates vs executed runs ----------------------

struct GridCase {
  std::uint64_t universe;
  std::uint64_t machines;
  std::uint64_t total;
  std::uint64_t seed;
};

class AbstintDifferential
    : public ::testing::TestWithParam<std::tuple<GridCase, QueryMode>> {};

TEST_P(AbstintDifferential, CertificateMatchesExecutedRun) {
  const auto& [c, mode] = GetParam();
  const DistributedDatabase db = make_db(c.universe, c.machines, c.total,
                                         c.seed);
  const PublicParams params = public_params_of(db);

  const Certificate cert = certify_compiled(params, mode);
  ASSERT_TRUE(cert.clean()) << to_json(cert);

  Transcript transcript;
  SamplerOptions options;
  options.transcript = &transcript;
  const SamplerResult run = mode == QueryMode::kSequential
                                ? run_sequential_sampler(db, options)
                                : run_parallel_sampler(db, options);

  // Cost domain: the static per-op ledger equals the executed one EXACTLY.
  EXPECT_TRUE(to_query_stats(cert.cost) == run.stats);
  EXPECT_TRUE(cert.cost.matches_closed_form);
  EXPECT_EQ(cert.cost.d, static_cast<std::uint64_t>(
                             run.plan.d_applications()));

  // Amplitude domain: the replayed 2×2 walk predicts the measured fidelity.
  EXPECT_NEAR(cert.amplitude.success_probability, run.fidelity, 1e-9);
  EXPECT_TRUE(cert.amplitude.zero_error);
  EXPECT_EQ(cert.amplitude.derivation, "op-stream");

  // Support domain: the bound dominates the dense simulator's support.
  EXPECT_EQ(cert.support.dimension, run.state.dim());
  EXPECT_LE(observed_support(run.state), cert.support.bound);

  // The recorded transcript certifies to the same primary facts via the
  // closed-form derivation route.
  const Certificate replay = certify_transcript(transcript, params, mode);
  EXPECT_TRUE(replay.clean()) << to_json(replay);
  EXPECT_EQ(replay.amplitude.derivation, "closed-form");
  EXPECT_TRUE(primary_facts_equal(cert, replay));
  EXPECT_FALSE(replay.recovery.present);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbstintDifferential,
    ::testing::Combine(::testing::Values(GridCase{32, 4, 24, 11},
                                         GridCase{32, 2, 20, 12},
                                         GridCase{16, 3, 12, 13},
                                         GridCase{64, 5, 40, 14}),
                       ::testing::Values(QueryMode::kSequential,
                                         QueryMode::kParallel)));

// --- support trace ---------------------------------------------------------

TEST(AbstintSupport, TraceIsMonotoneAndEndsAtTheBound) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const auto program = lift_compiled(params, mode);
    const auto trace = support_trace(program);
    ASSERT_EQ(trace.size(), program.ops.size());
    const auto result = interpret(program);
    std::uint64_t previous = 1;
    for (const auto bound : trace) {
      EXPECT_GE(bound, previous);  // no op shrinks the support bound
      EXPECT_LE(bound, result.support.dimension);
      previous = bound;
    }
    EXPECT_EQ(trace.back(), result.support.bound);
  }
}

TEST(AbstintSupport, TransferFunctionPreservesPermutationsAndDiagonals) {
  const PublicParams params{32, 4, 3, 24};
  const std::uint64_t dim = 32 * 4 * 2;
  const ProtocolOp oracle{OpKind::kOracle, 1, false, "", 0};
  const ProtocolOp send{OpKind::kSend, 1, false, "", 0};
  const ProtocolOp phase{OpKind::kLocalUnitary, 0, false, "S_chi", kNoEvent};
  EXPECT_EQ(support_after(7, oracle, params.universe, dim), 7u);
  EXPECT_EQ(support_after(7, send, params.universe, dim), 7u);
  EXPECT_EQ(support_after(7, phase, params.universe, dim), 7u);
  const ProtocolOp f{OpKind::kLocalUnitary, 0, false, "F", kNoEvent};
  const ProtocolOp u{OpKind::kLocalUnitary, 0, false, "U", kNoEvent};
  EXPECT_EQ(support_after(1, f, params.universe, dim), 32u);
  EXPECT_EQ(support_after(3, u, params.universe, dim), 6u);
  // Growth saturates at the full dimension.
  EXPECT_EQ(support_after(dim, f, params.universe, dim), dim);
}

// --- certificate JSON round-trip -------------------------------------------

TEST(AbstintCertificate, JsonRoundTripIsExact) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const Certificate cert = certify_compiled(params, mode);
    const Certificate back = parse_certificate(to_json(cert));
    EXPECT_TRUE(back == cert);
  }
}

TEST(AbstintCertificate, RecoveredJsonRoundTripKeepsRetryFacts) {
  const PublicParams params{32, 4, 3, 24};
  const auto schedule = compile_schedule(params, QueryMode::kSequential);
  auto recovered = identity_recovery(schedule, params.machines);
  recovered.backoff_events = 5;
  const Certificate cert =
      certify_recovered(recovered, params, QueryMode::kSequential);
  EXPECT_TRUE(cert.recovery.present);
  const Certificate back = parse_certificate(to_json(cert));
  EXPECT_TRUE(back == cert);
  EXPECT_EQ(back.recovery.backoff_events, 5u);
}

TEST(AbstintCertificate, ParserRejectsForeignSchemas) {
  EXPECT_THROW(parse_certificate("{\"schema\": \"not-a-cert\"}"),
               ContractViolation);
}

TEST(AbstintCertificate, DirtyProgramYieldsDirtyCertificate) {
  // Invalid parameters (M > νN) must surface as diagnostics, not throw.
  const PublicParams bad{8, 2, 1, 100};
  const Certificate cert = certify_compiled(bad, QueryMode::kSequential);
  EXPECT_FALSE(cert.clean());
}

// --- the a = 1 degenerate corner (aggregate vs per-op reconciliation) ------

TEST(AbstintCorner, FullCapacityScheduleCertifiesOneApplication) {
  // c_i = ν for every i ⇒ a = 1: the plan is already exact, d = 1, and the
  // aggregate compiled_schedule_length must agree with the per-op cost
  // domain on BOTH modes (this is the off-by-one corner the per-op ledger
  // cross-checks).
  const PublicParams params{4, 2, 3, 12};  // M = νN exactly
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const Certificate cert = certify_compiled(params, mode);
    EXPECT_TRUE(cert.clean()) << to_json(cert);
    EXPECT_EQ(cert.cost.d, 1u);
    EXPECT_TRUE(cert.amplitude.already_exact);
    EXPECT_EQ(cert.amplitude.iterations, 0u);
    EXPECT_EQ(cert.amplitude.success_probability, 1.0);
    const auto aggregate = compiled_schedule_length(params, mode);
    if (mode == QueryMode::kSequential) {
      EXPECT_EQ(cert.cost.sequential_total, aggregate);
      EXPECT_EQ(aggregate, 2 * params.machines);
    } else {
      EXPECT_EQ(cert.cost.parallel_rounds, aggregate);
      EXPECT_EQ(aggregate, 4u);
    }
  }
}

TEST(AbstintCorner, FullCapacityCertificateMatchesExecutedRun) {
  std::vector<Dataset> datasets = {
      Dataset::from_counts({2, 2, 2, 2}),
      Dataset::from_counts({1, 1, 1, 1}),
  };
  DistributedDatabase db(std::move(datasets), 3);
  const PublicParams params = public_params_of(db);
  const Certificate cert = certify_compiled(params, QueryMode::kSequential);
  Transcript transcript;
  SamplerOptions options;
  options.transcript = &transcript;
  const auto run = run_sequential_sampler(db, options);
  ASSERT_TRUE(run.plan.already_exact);
  EXPECT_TRUE(cert.amplitude.already_exact);
  EXPECT_TRUE(to_query_stats(cert.cost) == run.stats);
  EXPECT_NEAR(cert.amplitude.success_probability, run.fidelity, 1e-9);
  EXPECT_LE(observed_support(run.state), cert.support.bound);
  EXPECT_EQ(transcript.size(), compiled_schedule_length(
                                   params, QueryMode::kSequential));
}

// --- fault-recovery certificates (the dqs_chaos grid, lifted) --------------

TEST(AbstintRecovery, ChaosGridCertificatesMatchFaultFreePrimaryFacts) {
  const RetryPolicy policy;
  for (const std::uint64_t machines : {2, 3, 5}) {
    Rng rng(100 + machines);
    auto datasets = workload::uniform_random(32, machines, 20, rng);
    const auto nu = min_capacity(datasets);
    const DistributedDatabase db(std::move(datasets), nu);
    const PublicParams params = public_params_of(db);
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      // Fault-free baseline certificate from the recorded transcript.
      Transcript t0;
      SamplerOptions options;
      options.transcript = &t0;
      const SamplerResult r0 = mode == QueryMode::kSequential
                                   ? run_sequential_sampler(db, options)
                                   : run_parallel_sampler(db, options);
      const Certificate base = certify_transcript(t0, params, mode);
      ASSERT_TRUE(base.clean()) << to_json(base);

      const auto events = compiled_schedule_length(params, mode);
      for (const std::uint64_t plan_seed : {1, 2, 3}) {
        const FaultPlan plan =
            FaultPlan::random(plan_seed, events, machines);
        const FaultedRun run =
            run_sampler_with_faults(db, mode, plan, policy);
        ASSERT_TRUE(run.ok()) << run.recovery.failure;

        const RecoveredSchedule recovered =
            to_recovered_schedule(run.recovery);
        const Certificate cert = certify_recovered(recovered, params, mode);
        EXPECT_TRUE(cert.clean()) << to_json(cert);

        // Primary facts are EXACTLY the fault-free ones; the retry cost is
        // ledgered separately under `recovery`.
        EXPECT_TRUE(primary_facts_equal(base, cert));
        EXPECT_TRUE(to_query_stats(cert.cost) == run.result->stats);
        EXPECT_NEAR(cert.amplitude.success_probability,
                    run.result->fidelity, 1e-9);
        EXPECT_TRUE(cert.recovery.present);
        EXPECT_TRUE(cert.recovery.retry == run.recovery.ledger.recovery);
        EXPECT_EQ(cert.recovery.failed_attempts,
                  run.recovery.ledger.failed_attempts);

        // Certificates of recovered schedules survive the JSON round-trip.
        EXPECT_TRUE(parse_certificate(to_json(cert)) == cert);
      }
    }
  }
}

TEST(AbstintRecovery, IdentityRecoveryCertifiesWithEmptyRetryLedger) {
  const PublicParams params{32, 4, 3, 24};
  const auto schedule = compile_schedule(params, QueryMode::kParallel);
  const auto recovered = identity_recovery(schedule, params.machines);
  const Certificate cert =
      certify_recovered(recovered, params, QueryMode::kParallel);
  EXPECT_TRUE(cert.clean()) << to_json(cert);
  EXPECT_TRUE(cert.recovery.present);
  EXPECT_EQ(cert.recovery.retry.total_machine_invocations(), 0u);
  EXPECT_EQ(cert.recovery.reissued_attempts, 0u);
  EXPECT_EQ(cert.recovery.displaced_events, 0u);
}

// --- kill-matrix completeness ----------------------------------------------

TEST(AbstintKillMatrix, EveryDomainHasAFixtureThatKillsIt) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto& domain : domain_names()) {
    bool covered = false;
    for (const auto& spec : mutation_catalog()) {
      if (spec.expected_pass != domain) continue;
      covered = true;
      EXPECT_TRUE(mutation_flagged(spec, params))
          << spec.name << " failed to kill " << domain;
    }
    EXPECT_TRUE(covered) << "no mutation fixture kills domain " << domain;
  }
}

TEST(AbstintKillMatrix, DomainFixturesAreInvisibleToStructuralPasses) {
  // The new fixtures must be caught by their domain and ONLY their domain —
  // otherwise the domain adds no analysis power over the structural passes.
  const PublicParams params{32, 4, 3, 24};
  for (const auto& spec : mutation_catalog()) {
    if (std::find(domain_names().begin(), domain_names().end(),
                  spec.expected_pass) == domain_names().end()) {
      continue;
    }
    for (const auto& d : run_mutation(spec, params)) {
      EXPECT_EQ(d.pass, spec.expected_pass)
          << spec.name << " leaked into pass " << d.pass;
    }
  }
}

}  // namespace
}  // namespace qs::analysis
