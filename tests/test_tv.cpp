// Translation validation and static obliviousness (src/analysis/tv).
//
// Three layers of evidence:
//   1. the symbolic validator itself is killed by miscompiled operators
//      (drifted diagonals, transposed tables, forbidden fusions) and
//      accepts the genuine pipeline bit for bit;
//   2. every grid point carries a clean dqs-tv-v1 certificate whose static
//      taint verdict AGREES with the dynamic perturbed-recompilation pass
//      on the full standard grid — the differential proof that static
//      obliviousness can replace the 3×-recompilation;
//   3. fault-recovered schedules keep their certificates: recovery planning
//      never consults the database, so obliviousness survives statically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/abstint/engine.hpp"
#include "analysis/mutations.hpp"
#include "analysis/param_grid.hpp"
#include "analysis/passes.hpp"
#include "analysis/tv/certificate.hpp"
#include "analysis/tv/engine.hpp"
#include "analysis/tv/harness.hpp"
#include "analysis/tv/symbolic.hpp"
#include "analysis/verifier.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "qsim/compiled_op.hpp"
#include "sampling/backend.hpp"
#include "sampling/schedule.hpp"

namespace qs::analysis::tv {
namespace {

bool has_pass(const std::vector<Diagnostic>& diagnostics,
              const std::string& pass) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.pass == pass; });
}

// --- the symbolic validator accepts the truth and kills miscompiles --------

TEST(TvValidator, AcceptsTheGenuinePermutation) {
  RegisterLayout layout;
  layout.add("elem", 8);
  const CompiledOp op = CompiledOp::permutation(
      layout, [](std::size_t x) { return (x + 3) % 8; });
  TvValidator validator;
  validator.check_permutation(op, [](std::size_t x) { return (x + 3) % 8; });
  EXPECT_TRUE(validator.facts().all_ok());
  EXPECT_EQ(validator.facts().lowerings, 1u);
  EXPECT_TRUE(validator.diagnostics().empty());
  ASSERT_EQ(validator.facts().proofs.size(), 1u);
  EXPECT_TRUE(validator.facts().proofs.front().exact);
  EXPECT_EQ(validator.facts().proofs.front().max_error, 0.0);
}

TEST(TvValidator, RefutesATransposedTable) {
  RegisterLayout layout;
  layout.add("elem", 8);
  const CompiledOp op = CompiledOp::permutation(
      layout, [](std::size_t x) { return (x + 1) % 8; });
  TvValidator validator;
  validator.check_permutation(op, [](std::size_t x) {
    if (x == 6) return std::size_t{0};
    if (x == 7) return std::size_t{7};
    return (x + 1) % 8;
  });
  EXPECT_EQ(validator.facts().failed, 1u);
  EXPECT_TRUE(has_pass(validator.diagnostics(), "translation-validation"));
}

TEST(TvValidator, DiagonalBudgetSeparatesRoundingFromMiscompiles) {
  RegisterLayout layout;
  layout.add("flag", 2);
  const auto phase = [](std::size_t x) {
    return x == 1 ? cplx{0.0, 1.0} : cplx{1.0, 0.0};
  };
  const CompiledOp op = CompiledOp::diagonal(layout, phase);

  TvValidator inside;
  inside.check_diagonal(op, [&](std::size_t x) {
    return phase(x) + cplx{1e-14, 0.0};  // below the 1e-12 budget
  });
  EXPECT_EQ(inside.facts().failed, 0u);
  EXPECT_GT(inside.facts().max_error, 0.0);

  TvValidator outside;
  outside.check_diagonal(op, [&](std::size_t x) {
    return phase(x) + cplx{1e-9, 0.0};  // a real drift
  });
  EXPECT_EQ(outside.facts().failed, 1u);
  EXPECT_TRUE(has_pass(outside.diagnostics(), "translation-validation"));
}

TEST(TvValidator, ValueShiftSpecIsReducedModuloTargetDim) {
  RegisterLayout layout;
  const RegisterId count = layout.add("count", 4);
  const RegisterId elem = layout.add("elem", 3);
  const std::vector<std::size_t> raw = {5, 0, 9};  // 5 % 4 = 1, 9 % 4 = 1
  const CompiledOp op = CompiledOp::value_shift(layout, count, elem, raw);
  TvValidator validator;
  validator.check_value_shift(op, raw);
  EXPECT_TRUE(validator.facts().all_ok());
}

TEST(TvValidator, ReloweringMustMatchTheAffineRelabelling) {
  RegisterLayout layout;
  const RegisterId count = layout.add("count", 4);
  const RegisterId elem = layout.add("elem", 3);
  const std::vector<std::size_t> shifts = {1, 2, 3};
  const CompiledOp shift = CompiledOp::value_shift(layout, count, elem,
                                                   shifts);

  TvValidator good;
  good.check_lowered(shift, shift.lowered_to_permutation());
  EXPECT_TRUE(good.facts().all_ok());

  TvValidator bad;
  bad.check_lowered(shift, CompiledOp::permutation(
                               layout, [](std::size_t x) { return x; }));
  EXPECT_EQ(bad.facts().failed, 1u);
}

TEST(TvValidator, FiberDenseMustNeverFuse) {
  RegisterLayout layout;
  const RegisterId flag = layout.add("flag", 2);
  layout.add("count", 3);
  const Matrix x_gate = Matrix::from_rows(
      2, 2, {cplx{0, 0}, cplx{1, 0}, cplx{1, 0}, cplx{0, 0}});
  const CompiledOp op = CompiledOp::fiber_dense(
      layout, flag, [&](std::size_t) { return &x_gate; });
  TvValidator validator;
  validator.check_fused(op, op, op);
  EXPECT_EQ(validator.facts().failed, 1u);
  EXPECT_EQ(validator.facts().fusions, 1u);
  EXPECT_TRUE(has_pass(validator.diagnostics(), "translation-validation"));
}

// --- the recorder proves real pipelines as they compile --------------------

TEST(TvRecorder, ValidatesTheProductionBackendCompilation) {
  Rng rng(42);
  auto datasets = workload::uniform_random(16, 3, 12, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);

  TvValidator validator;
  {
    TvRecorder recorder(validator);
    const SingleStateBackend backend(db, StatePrep::kHouseholder);
    (void)backend;
  }
  EXPECT_GT(validator.facts().lowerings, 0u);
  EXPECT_EQ(validator.facts().failed, 0u) << [&] {
    std::string all;
    for (const auto& d : validator.diagnostics()) all += to_string(d) + "\n";
    return all;
  }();
}

TEST(TvRecorder, ScopesNestAndDisarm) {
  RegisterLayout layout;
  layout.add("q", 2);
  TvValidator outer;
  {
    TvRecorder outer_scope(outer);
    TvValidator inner;
    {
      TvRecorder inner_scope(inner);
      (void)CompiledOp::diagonal(
          layout, [](std::size_t) { return cplx{1.0, 0.0}; });
    }
    EXPECT_EQ(inner.facts().lowerings, 1u);
    EXPECT_EQ(outer.facts().lowerings, 0u);
    (void)CompiledOp::diagonal(
        layout, [](std::size_t) { return cplx{1.0, 0.0}; });
  }
  EXPECT_EQ(outer.facts().lowerings, 1u);
  // Disarmed: compiling outside any scope validates nothing.
  (void)CompiledOp::diagonal(layout,
                             [](std::size_t) { return cplx{1.0, 0.0}; });
  EXPECT_EQ(outer.facts().lowerings, 1u);
}

TEST(TvHarness, CoversEveryKindAndEveryFusionRule) {
  const PublicParams params{32, 4, 3, 24};
  const TvRun run = run_translation_validation(params,
                                               QueryMode::kSequential);
  EXPECT_TRUE(run.facts.all_ok());
  EXPECT_TRUE(run.diagnostics.empty());
  EXPECT_GE(run.facts.fusions, 3u);  // diag, shift and permutation fusion

  std::vector<std::string> rules;
  for (const auto& proof : run.facts.proofs) rules.push_back(proof.rule);
  for (const char* required :
       {"lower-permutation", "lower-diagonal", "lower-fiber-dense",
        "lower-value-shift", "lower-to-permutation", "fuse-permutation",
        "fuse-diagonal", "fuse-value-shift"}) {
    EXPECT_TRUE(std::find(rules.begin(), rules.end(), required) !=
                rules.end())
        << "no proof obligation discharged for rule " << required;
  }
  for (const auto& proof : run.facts.proofs) {
    if (proof.exact) {
      EXPECT_EQ(proof.max_error, 0.0) << proof.rule;
    }
  }
}

TEST(TvHarness, RejectsInvalidParameters) {
  EXPECT_THROW(run_translation_validation(PublicParams{0, 2, 2, 4},
                                          QueryMode::kSequential),
               ContractViolation);
  EXPECT_THROW(run_translation_validation(PublicParams{8, 2, 2, 0},
                                          QueryMode::kSequential),
               ContractViolation);
}

// --- the taint domain: static obliviousness --------------------------------

TEST(Taint, LiftedSchedulesAreFunctionsOfPublicKnowledge) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const auto program = lift_compiled(params, mode);
    const TaintFacts facts = taint_of(program);
    EXPECT_TRUE(facts.oblivious_statically_proven);
    EXPECT_EQ(facts.content_ops, 0u);
    EXPECT_EQ(facts.public_ops, program.ops.size());
    EXPECT_EQ(facts.max_taint, 0u);
  }
}

TEST(Taint, ContentInfluenceBreaksTheProofAndIsDiagnosed) {
  const PublicParams params{32, 4, 3, 24};
  auto program = lift_compiled(params, QueryMode::kSequential);
  ASSERT_FALSE(program.ops.empty());
  program.ops[2].taint = TaintLabel::kContent;

  const TaintFacts facts = taint_of(program);
  EXPECT_FALSE(facts.oblivious_statically_proven);
  EXPECT_EQ(facts.content_ops, 1u);
  EXPECT_EQ(facts.max_taint, 1u);

  const auto result = interpret(program);
  EXPECT_TRUE(has_pass(result.diagnostics, "taint-domain"));
  EXPECT_TRUE(result.taint == facts);
}

TEST(Taint, StaticVerdictAgreesWithDynamicPassOnTheFullGrid) {
  for (const auto& params : standard_grid()) {
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const bool statically = taint_of(lift_compiled(params, mode))
                                  .oblivious_statically_proven;
      const bool dynamically =
          certify_obliviousness(params, mode, 2, 0x5eed).empty();
      EXPECT_EQ(statically, dynamically)
          << "verdicts diverge at N=" << params.universe
          << " n=" << params.machines << " nu=" << params.nu
          << " M=" << params.total;
    }
  }
}

TEST(Taint, VerifyOptionsStaticProofSkipsTheDynamicPassCleanly) {
  const PublicParams params{32, 4, 3, 24};
  VerifyOptions with_static;
  with_static.static_obliviousness_proof = true;
  VerifyOptions with_tv;
  with_tv.translation_validation = true;
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    EXPECT_TRUE(verify_compiled(params, mode, with_static).clean());
    EXPECT_TRUE(verify_compiled(params, mode, with_tv).clean());
  }
}

// --- dqs-tv-v1 certificates ------------------------------------------------

TEST(TvCertificate, GridSubsampleIsCleanAgreesAndRoundTrips) {
  TvOptions options;
  options.obliviousness_trials = 2;
  for (const PublicParams& params :
       {PublicParams{32, 4, 3, 24}, PublicParams{8, 2, 2, 6},
        PublicParams{16, 3, 2, 10}}) {
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const TvCertificate cert = certify_tv(params, mode, options);
      EXPECT_TRUE(cert.clean()) << to_json(cert);
      EXPECT_EQ(cert.dynamic_cross_check, "agree");
      EXPECT_TRUE(cert.taint.oblivious_statically_proven);
      EXPECT_GT(cert.tv.lowerings, 0u);
      EXPECT_GE(cert.tv.fusions, 3u);
      EXPECT_TRUE(cert.tv.all_ok());

      const std::string json = to_json(cert);
      const TvCertificateParseResult parsed =
          parse_tv_certificate_checked(json);
      ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();
      EXPECT_TRUE(parsed.certificate == cert);
      EXPECT_TRUE(parse_tv_certificate(json) == cert);
    }
  }
}

TEST(TvCertificate, SkippingTheCrossCheckIsRecorded) {
  TvOptions options;
  options.obliviousness_trials = 0;
  const TvCertificate cert =
      certify_tv(PublicParams{8, 2, 2, 6}, QueryMode::kSequential, options);
  EXPECT_EQ(cert.dynamic_cross_check, "skipped");
  EXPECT_TRUE(cert.clean()) << to_json(cert);
}

// --- chaos grid: recovery keeps the certificate ----------------------------

TEST(TvCertificate, RecoveredSchedulesStayObliviousStatically) {
  const RetryPolicy policy;
  for (const std::uint64_t machines : {2, 3}) {
    Rng rng(100 + machines);
    auto datasets = workload::uniform_random(32, machines, 20, rng);
    const auto nu = min_capacity(datasets);
    const DistributedDatabase db(std::move(datasets), nu);
    const PublicParams params = public_params_of(db);
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      const auto events = compiled_schedule_length(params, mode);
      for (const std::uint64_t plan_seed : {1, 2}) {
        const FaultPlan plan =
            FaultPlan::random(plan_seed, events, machines);
        const FaultedRun run =
            run_sampler_with_faults(db, mode, plan, policy);
        ASSERT_TRUE(run.ok()) << run.recovery.failure;

        const RecoveredSchedule recovered =
            to_recovered_schedule(run.recovery);
        const TvCertificate cert =
            certify_tv_recovered(recovered, params, mode);
        EXPECT_TRUE(cert.clean()) << to_json(cert);
        EXPECT_TRUE(cert.taint.oblivious_statically_proven);
        EXPECT_EQ(cert.dynamic_cross_check, "skipped");
        EXPECT_TRUE(cert.base.recovery.present);
        EXPECT_TRUE(cert.tv.all_ok());
        EXPECT_TRUE(parse_tv_certificate(to_json(cert)) == cert);
      }
    }
  }
}

// --- kill matrix -----------------------------------------------------------

TEST(TvKillMatrix, EveryTvPassHasAFixtureThatKillsIt) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto& pass : tv_pass_names()) {
    bool covered = false;
    for (const auto& spec : mutation_catalog()) {
      if (spec.expected_pass != pass) continue;
      covered = true;
      EXPECT_TRUE(mutation_flagged(spec, params))
          << spec.name << " failed to kill " << pass;
    }
    EXPECT_TRUE(covered) << "no mutation fixture kills pass " << pass;
  }
}

TEST(TvKillMatrix, TvFixturesAreInvisibleToEveryOtherChecker) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto& spec : mutation_catalog()) {
    if (std::find(tv_pass_names().begin(), tv_pass_names().end(),
                  spec.expected_pass) == tv_pass_names().end()) {
      continue;
    }
    for (const auto& d : run_mutation(spec, params)) {
      EXPECT_EQ(d.pass, spec.expected_pass)
          << spec.name << " leaked into pass " << d.pass;
    }
  }
}

TEST(TvKillMatrix, TaintFixtureIsKilledOnlyByTheTaintDomain) {
  const PublicParams params{32, 4, 3, 24};
  for (const auto& spec : mutation_catalog()) {
    if (spec.name != "content-routed-query") continue;
    EXPECT_TRUE(mutation_flagged(spec, params));
    for (const auto& d : run_mutation(spec, params)) {
      EXPECT_EQ(d.pass, "taint-domain") << spec.name;
    }
    return;
  }
  FAIL() << "content-routed-query fixture missing from the catalog";
}

}  // namespace
}  // namespace qs::analysis::tv
