// Random-circuit differential testing of the simulator: arbitrary
// sequences of kernel operations on small layouts are checked against the
// dense matrix composition of the same sequence — if any kernel's
// fiber/stride arithmetic is wrong anywhere in layout-space, a random
// program finds it.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "qsim/gates.hpp"
#include "qsim/operator_builder.hpp"
#include "qsim/state_vector.hpp"

namespace qs {
namespace {

struct Program {
  std::vector<std::function<void(StateVector&)>> ops;
  std::vector<Matrix> dense;  // full-dimension matrix of each op
};

/// Build a random program of `length` ops over the layout, together with
/// each op's dense matrix (constructed independently via kron/identity).
Program random_program(const RegisterLayout& layout,
                       const std::vector<RegisterId>& regs,
                       const std::vector<std::size_t>& dims,
                       std::size_t length, Rng& rng) {
  Program program;
  const std::size_t total = layout.total_dim();

  const auto embed_single = [&](std::size_t target, const Matrix& u) {
    // I ⊗ ... ⊗ U ⊗ ... ⊗ I with registers in layout order.
    Matrix full = Matrix::identity(1);
    for (std::size_t r = 0; r < dims.size(); ++r) {
      full = kron(full, r == target ? u : Matrix::identity(dims[r]));
    }
    return full;
  };

  for (std::size_t step = 0; step < length; ++step) {
    const auto kind = rng.uniform_below(5);
    const auto target = static_cast<std::size_t>(
        rng.uniform_below(regs.size()));
    const std::size_t d = dims[target];
    switch (kind) {
      case 0: {  // dense unitary on one register
        const auto u = random_unitary(d, rng);
        program.ops.push_back([=, &layout](StateVector& s) {
          s.apply_unitary(regs[target], u);
        });
        program.dense.push_back(embed_single(target, u));
        break;
      }
      case 1: {  // householder reflection
        const auto v = random_state(d, rng);
        program.ops.push_back(
            [=](StateVector& s) { s.apply_householder(regs[target], v); });
        program.dense.push_back(embed_single(target, householder_matrix(v)));
        break;
      }
      case 2: {  // phase on one register value
        const auto value = static_cast<std::size_t>(rng.uniform_below(d));
        const double angle = rng.uniform(0.0, 6.28);
        program.ops.push_back([=](StateVector& s) {
          s.apply_phase_on_register_value(regs[target], value,
                                          cplx{std::cos(angle),
                                               std::sin(angle)});
        });
        program.dense.push_back(
            embed_single(target, phase_matrix(d, value, angle)));
        break;
      }
      case 3: {  // conditioned value shift (oracle shape)
        std::size_t cond = target;
        while (cond == target) {
          cond = static_cast<std::size_t>(rng.uniform_below(regs.size()));
        }
        std::vector<std::size_t> shifts(dims[cond]);
        for (auto& sft : shifts)
          sft = static_cast<std::size_t>(rng.uniform_below(d));
        program.ops.push_back([=](StateVector& s) {
          s.apply_value_shift(regs[target], regs[cond], shifts);
        });
        // Dense form via permutation of basis states.
        Matrix m(total, total);
        for (std::size_t x = 0; x < total; ++x) {
          const std::size_t c = layout.digit(x, regs[cond]);
          const std::size_t t = layout.digit(x, regs[target]);
          const std::size_t y =
              layout.with_digit(x, regs[target], (t + shifts[c]) % d);
          m(y, x) = 1.0;
        }
        program.dense.push_back(std::move(m));
        break;
      }
      default: {  // global phase
        const double angle = rng.uniform(0.0, 6.28);
        program.ops.push_back([=](StateVector& s) {
          s.apply_global_phase(cplx{std::cos(angle), std::sin(angle)});
        });
        Matrix m = Matrix::identity(total);
        m *= cplx{std::cos(angle), std::sin(angle)};
        program.dense.push_back(std::move(m));
        break;
      }
    }
  }
  return program;
}

class RandomCircuitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitSweep, KernelsMatchDenseComposition) {
  Rng rng(GetParam());
  // Random small layout: 2–3 registers of dims 2–4.
  RegisterLayout layout;
  std::vector<RegisterId> regs;
  std::vector<std::size_t> dims;
  const std::size_t register_count = 2 + rng.uniform_below(2);
  for (std::size_t r = 0; r < register_count; ++r) {
    const std::size_t d = 2 + rng.uniform_below(3);
    regs.push_back(layout.add("r" + std::to_string(r), d));
    dims.push_back(d);
  }

  const auto program = random_program(layout, regs, dims, 8, rng);

  // Apply kernels to a random state.
  StateVector via_kernels(layout);
  via_kernels.set_amplitudes(random_state(layout.total_dim(), rng));
  const auto input = std::vector<cplx>(via_kernels.amplitudes().begin(),
                                       via_kernels.amplitudes().end());
  for (const auto& op : program.ops) op(via_kernels);

  // Compose the dense matrices and apply to the same input.
  Matrix composite = Matrix::identity(layout.total_dim());
  for (const auto& dense : program.dense) composite = dense * composite;
  const auto expected = composite.apply(input);

  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(std::abs(via_kernels.amplitude(i) - expected[i]), 0.0,
                1e-10)
        << "amplitude " << i;
  }
  // And the program is unitary end to end.
  EXPECT_NEAR(via_kernels.norm(), 1.0, 1e-10);
}

TEST_P(RandomCircuitSweep, OperatorBuilderMatchesDenseComposition) {
  Rng rng(GetParam() + 10000);
  RegisterLayout layout;
  std::vector<RegisterId> regs;
  std::vector<std::size_t> dims;
  for (std::size_t r = 0; r < 2; ++r) {
    const std::size_t d = 2 + rng.uniform_below(2);
    regs.push_back(layout.add("r" + std::to_string(r), d));
    dims.push_back(d);
  }
  const auto program = random_program(layout, regs, dims, 5, rng);

  const auto recovered = operator_of_circuit(layout, [&](StateVector& s) {
    for (const auto& op : program.ops) op(s);
  });
  Matrix composite = Matrix::identity(layout.total_dim());
  for (const auto& dense : program.dense) composite = dense * composite;
  EXPECT_NEAR(Matrix::max_abs_diff(recovered, composite), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace qs
