// Tests for the unknown-M (BBHT) sampler (sampling/unknown_m.hpp).
#include "sampling/unknown_m.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

DistributedDatabase sparse_db(std::size_t universe, std::size_t machines,
                              std::size_t support, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Dataset> datasets(machines, Dataset(universe));
  const auto elements = rng.sample_without_replacement(universe, support);
  for (const auto e : elements) {
    datasets[rng.uniform_below(machines)].insert(e, 1 + rng.uniform_below(2));
  }
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(UnknownM, SucceedsWithExactOutputState) {
  const auto db = sparse_db(64, 3, 8, 3);
  Rng rng(5);
  const auto result = run_unknown_m_sampler(db, QueryMode::kSequential, rng);
  // Collapse onto the flag-0 branch yields EXACTLY |ψ, 0, 0⟩.
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  EXPECT_GE(result.attempts, 1u);
}

TEST(UnknownM, ParallelModeWorksToo) {
  const auto db = sparse_db(64, 4, 8, 7);
  Rng rng(9);
  const auto result = run_unknown_m_sampler(db, QueryMode::kParallel, rng);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  EXPECT_GT(result.stats.parallel_rounds, 0u);
  EXPECT_EQ(result.stats.total_sequential(), 0u);
}

TEST(UnknownM, ExpectedCostTracksSqrtRatioWithoutKnowingM) {
  // Average cost over seeds must scale like √(νN/M) even though the
  // algorithm never reads M. Compare two instances with a 16x ratio in
  // νN/M: cost ratio should be around 4 (very loose tolerance — the BBHT
  // schedule is randomized).
  const auto small = sparse_db(128, 2, 32, 11);   // νN/M moderate
  const auto large = sparse_db(2048, 2, 32, 13);  // 16x the universe
  Accumulator cost_small, cost_large;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng1(100 + seed), rng2(200 + seed);
    cost_small.add(static_cast<double>(
        run_unknown_m_sampler(small, QueryMode::kSequential, rng1)
            .stats.total_sequential()));
    cost_large.add(static_cast<double>(
        run_unknown_m_sampler(large, QueryMode::kSequential, rng2)
            .stats.total_sequential()));
  }
  const double ratio = cost_large.mean() / cost_small.mean();
  const double predicted =
      std::sqrt((double(large.nu()) * 2048.0 / double(large.total())) /
                (double(small.nu()) * 128.0 / double(small.total())));
  EXPECT_GT(ratio, 0.3 * predicted);
  EXPECT_LT(ratio, 3.0 * predicted);
}

TEST(UnknownM, CostComparableToKnownMSampler) {
  const auto db = sparse_db(256, 2, 16, 17);
  const auto known = run_sequential_sampler(db);
  Accumulator unknown_cost;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(300 + seed);
    unknown_cost.add(static_cast<double>(
        run_unknown_m_sampler(db, QueryMode::kSequential, rng)
            .stats.total_sequential()));
  }
  // Within an order of magnitude of the known-M cost (BBHT constant).
  const double known_cost =
      static_cast<double>(known.stats.total_sequential());
  EXPECT_LT(unknown_cost.mean(), 10.0 * known_cost);
  EXPECT_GT(unknown_cost.mean(), 0.1 * known_cost);
}

TEST(UnknownM, DeterministicGivenSeed) {
  const auto db = sparse_db(64, 2, 8, 19);
  Rng rng1(42), rng2(42);
  const auto a = run_unknown_m_sampler(db, QueryMode::kSequential, rng1);
  const auto b = run_unknown_m_sampler(db, QueryMode::kSequential, rng2);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(UnknownM, EmptyDatabaseEventuallyThrows) {
  std::vector<Dataset> datasets = {Dataset(16)};
  const DistributedDatabase db(std::move(datasets), 1);
  Rng rng(21);
  EXPECT_THROW(
      run_unknown_m_sampler(db, QueryMode::kSequential, rng,
                            StatePrep::kHouseholder, /*max_attempts=*/10),
      ContractViolation);
}

TEST(UnknownM, FullDatabaseSucceedsFirstAttempt) {
  // a = 1: preparation alone lands on the target; the first measurement
  // must succeed with j = 0.
  std::vector<Dataset> datasets = {
      Dataset::from_counts({2, 2, 2, 2})};
  const DistributedDatabase db(std::move(datasets), 2);
  Rng rng(23);
  const auto result = run_unknown_m_sampler(db, QueryMode::kSequential, rng);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-12);
}

}  // namespace
}  // namespace qs
