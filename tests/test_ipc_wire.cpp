// dqs-wire-v1 malformed-frame corpus (distdb/ipc/wire.hpp).
//
// Every adversarial buffer here — truncated, oversized, bit-flipped,
// wrong-version, wrong-type, bad-checksum — must come back from
// parse_frame_checked / the payload decoders as a structured
// WireError{offset, field, reason}: no crash, no exception, no partially
// decoded frame. The corpus is the binary counterpart of the transcript
// parser corpus (tests/test_transcript_corpus.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "distdb/ipc/wire.hpp"

namespace qs::ipc {
namespace {

std::vector<std::uint8_t> ping_frame() {
  return encode_frame(FrameType::kPing, 2, 7, {});
}

std::vector<std::uint8_t> hello_frame() {
  HelloPayload hello;
  hello.universe = 16;
  hello.counts = {{1, 2}, {5, 1}, {9, 3}};
  const auto payload = encode_hello(hello);
  return encode_frame(FrameType::kHello, 0, 1, payload);
}

/// One corpus entry: a mutated buffer plus the field the parser must blame.
struct Malformed {
  const char* name;
  std::vector<std::uint8_t> bytes;
  const char* field;
};

std::vector<Malformed> malformed_corpus() {
  std::vector<Malformed> corpus;
  const auto ping = ping_frame();
  const auto hello = hello_frame();

  // --- truncation, header-side -------------------------------------------
  corpus.push_back({"empty buffer", {}, "magic"});
  corpus.push_back(
      {"one byte", {ping.begin(), ping.begin() + 1}, "magic"});
  corpus.push_back(
      {"magic only", {ping.begin(), ping.begin() + 4}, "version"});
  corpus.push_back(
      {"through version", {ping.begin(), ping.begin() + 6}, "type"});
  corpus.push_back(
      {"through type", {ping.begin(), ping.begin() + 8}, "header"});
  corpus.push_back({"header minus one byte",
                    {ping.begin(), ping.begin() + (kHeaderSize - 1)},
                    "header"});

  // --- bad header fields --------------------------------------------------
  auto bad = ping;
  bad[0] ^= 0xFF;
  corpus.push_back({"magic bit-flipped", bad, "magic"});
  bad = ping;
  bad[0] = bad[1] = bad[2] = bad[3] = 0;
  corpus.push_back({"magic zeroed", bad, "magic"});
  bad = ping;
  bad[4] = 0;
  bad[5] = 0;
  corpus.push_back({"version 0", bad, "version"});
  bad = ping;
  bad[4] = 2;
  corpus.push_back({"version from the future", bad, "version"});
  bad = ping;
  bad[4] = 0xFF;
  bad[5] = 0xFF;
  corpus.push_back({"version 0xffff", bad, "version"});
  bad = ping;
  bad[6] = 0;
  bad[7] = 0;
  corpus.push_back({"frame type 0", bad, "type"});
  bad = ping;
  bad[6] = 14;
  corpus.push_back({"frame type one past kError", bad, "type"});
  bad = ping;
  bad[6] = 0xFF;
  bad[7] = 0xFF;
  corpus.push_back({"frame type 0xffff", bad, "type"});

  // --- payload length lies ------------------------------------------------
  bad = ping;
  bad[12] = 0xFF;
  bad[13] = 0xFF;
  bad[14] = 0xFF;
  bad[15] = 0xFF;
  corpus.push_back({"payload_len 4 GiB", bad, "payload_len"});
  bad = ping;
  // One byte past the cap: (256 MiB + 1).
  const std::uint32_t oversize = kMaxPayload + 1;
  std::memcpy(bad.data() + 12, &oversize, sizeof oversize);
  corpus.push_back({"payload_len one past the cap", bad, "payload_len"});
  bad = ping;
  bad[12] = 8;  // promises 8 payload bytes, buffer has 0
  corpus.push_back({"payload promised but absent", bad, "payload"});
  bad = hello;
  bad.resize(bad.size() - 1);
  corpus.push_back({"payload truncated by one byte", bad, "payload"});
  bad = hello;
  bad.resize(kHeaderSize + 3);
  corpus.push_back({"payload cut mid-field", bad, "payload"});
  bad = hello;
  bad.push_back(0xAB);
  corpus.push_back({"one trailing byte", bad, "payload"});
  bad = hello;
  bad.insert(bad.end(), 64, 0);
  corpus.push_back({"sixty-four trailing bytes", bad, "payload"});

  // --- checksum: torn and corrupted frames -------------------------------
  bad = ping;
  bad[24] ^= 0xFF;  // the armed-fault kCorruptChecksum byte, exactly
  corpus.push_back({"checksum bit-flipped", bad, "checksum"});
  bad = ping;
  bad[8] ^= 0x01;  // machine field changed under a stale checksum
  corpus.push_back({"machine flipped under the crc", bad, "checksum"});
  bad = ping;
  bad[16] ^= 0x01;  // seq changed under a stale checksum
  corpus.push_back({"seq flipped under the crc", bad, "checksum"});
  bad = hello;
  bad[kHeaderSize] ^= 0x40;  // payload bit rot
  corpus.push_back({"payload bit-flipped under the crc", bad, "checksum"});
  bad = hello;
  bad[bad.size() - 1] ^= 0x80;
  corpus.push_back({"last payload byte flipped", bad, "checksum"});
  return corpus;
}

TEST(WireCorpus, EveryMalformedFrameYieldsAStructuredError) {
  const auto corpus = malformed_corpus();
  ASSERT_GE(corpus.size(), 25u);
  for (const auto& entry : corpus) {
    SCOPED_TRACE(entry.name);
    const FrameParseResult result = parse_frame_checked(entry.bytes);
    EXPECT_FALSE(result.ok());
    ASSERT_TRUE(result.error.has_value());
    EXPECT_EQ(result.error->field, entry.field);
    EXPECT_FALSE(result.error->reason.empty());
    // The error self-describes: offset and field render into the message.
    EXPECT_NE(result.error->to_string().find(entry.field), std::string::npos);
  }
}

TEST(WireCorpus, ErrorsPinpointTheOffendingOffset) {
  auto bad = ping_frame();
  bad[4] = 9;  // version
  auto result = parse_frame_checked(bad);
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->offset, 4u);

  bad = ping_frame();
  bad[24] ^= 0xFF;  // checksum field starts at byte 24
  result = parse_frame_checked(bad);
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->offset, 24u);
}

// ------------------------------------------------------------- happy paths

TEST(WireFrame, Crc32KnownAnswer) {
  // The canonical IEEE 802.3 check value: crc32("123456789") = 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(digits), 0xCBF43926u);
  // Chained == one-shot, the property the frame codec leans on.
  const auto head = std::span(digits, 4);
  const auto tail = std::span(digits + 4, 5);
  EXPECT_EQ(crc32(tail, crc32(head)), 0xCBF43926u);
}

TEST(WireFrame, WellFormedFrameRoundTrips) {
  const auto bytes = hello_frame();
  const FrameParseResult result = parse_frame_checked(bytes);
  ASSERT_TRUE(result.ok()) << result.error->to_string();
  EXPECT_EQ(result.frame->header.type, FrameType::kHello);
  EXPECT_EQ(result.frame->header.machine, 0u);
  EXPECT_EQ(result.frame->header.seq, 1u);

  HelloPayload hello;
  ASSERT_FALSE(decode_hello(result.frame->payload, hello).has_value());
  EXPECT_EQ(hello.universe, 16u);
  ASSERT_EQ(hello.counts.size(), 3u);
  EXPECT_EQ(hello.counts[1], (std::pair<std::uint64_t, std::uint64_t>{5, 1}));
}

TEST(WireFrame, EmptyPayloadFrameRoundTrips) {
  const auto bytes = ping_frame();
  const FrameParseResult result = parse_frame_checked(bytes);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.frame->payload.empty());
  EXPECT_EQ(result.frame->header.payload_len, 0u);
}

TEST(WirePayloads, OracleRoundTripsBitExactly) {
  OraclePayload oracle;
  oracle.adjoint = 1;
  oracle.elem_reg = 0;
  oracle.count_reg = 1;
  oracle.dims = {4, 3};
  oracle.amplitudes.resize(12);
  for (std::size_t i = 0; i < oracle.amplitudes.size(); ++i) {
    oracle.amplitudes[i] = cplx{0.125 * static_cast<double>(i), -1.0 / 3.0};
  }
  const auto payload = encode_oracle(oracle);
  OraclePayload decoded;
  ASSERT_FALSE(decode_oracle(payload, decoded).has_value());
  EXPECT_EQ(decoded.adjoint, 1);
  EXPECT_EQ(decoded.dims, oracle.dims);
  ASSERT_EQ(decoded.amplitudes.size(), oracle.amplitudes.size());
  for (std::size_t i = 0; i < decoded.amplitudes.size(); ++i) {
    // Bit-exact: raw IEEE-754 doubles over the wire, not text.
    EXPECT_EQ(decoded.amplitudes[i], oracle.amplitudes[i]);
  }
}

TEST(WirePayloads, OracleDecoderRejectsAdversarialShapes) {
  OraclePayload oracle;
  oracle.adjoint = 0;
  oracle.elem_reg = 0;
  oracle.count_reg = 1;
  oracle.dims = {2, 2};
  oracle.amplitudes.resize(4);
  const auto good = encode_oracle(oracle);
  OraclePayload out;

  // Truncated amplitude block.
  auto bad = good;
  bad.resize(bad.size() - 8);
  auto err = decode_oracle(bad, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "amplitudes");

  // Adjoint flag out of range.
  bad = good;
  bad[0] = 2;
  err = decode_oracle(bad, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "adjoint");

  // elem == count register.
  bad = good;
  std::uint32_t reg = 1;
  std::memcpy(bad.data() + 1, &reg, sizeof reg);  // elem_reg := count_reg
  err = decode_oracle(bad, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "registers");

  // A dimension of zero.
  bad = good;
  for (int i = 0; i < 8; ++i) bad[13 + i] = 0;  // first dim u64 := 0
  err = decode_oracle(bad, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "dims");

  // Amplitude count disagreeing with the dims product.
  bad = good;
  bad[29] = 5;  // amps u64 at offset 13 + 2*8 = 29; 4 → 5
  err = decode_oracle(bad, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "amplitudes");
}

TEST(WirePayloads, HelloDecoderBoundsTheSparseCounts) {
  HelloPayload hello;
  hello.universe = 4;
  hello.counts = {{0, 1}, {3, 2}};
  const auto good = encode_hello(hello);
  HelloPayload out;
  ASSERT_FALSE(decode_hello(good, out).has_value());

  // More entries than the universe could hold.
  HelloPayload absurd;
  absurd.universe = 1;
  absurd.counts = {{0, 1}};
  auto bytes = encode_hello(absurd);
  bytes[8] = 9;  // entries u64 := 9 > universe 1
  auto err = decode_hello(bytes, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "counts");

  // Element outside the universe.
  HelloPayload outside;
  outside.universe = 4;
  outside.counts = {{3, 1}};
  bytes = encode_hello(outside);
  bytes[16] = 7;  // elem u64 := 7 >= universe 4
  err = decode_hello(bytes, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "counts");
}

TEST(WirePayloads, AmplitudeAndUpdateDecodersRejectSizeLies) {
  std::vector<cplx> amps(3, cplx{1.0, 0.0});
  const auto good = encode_amplitudes(amps);
  std::vector<cplx> out;
  ASSERT_FALSE(decode_amplitudes(good, out).has_value());
  EXPECT_EQ(out.size(), 3u);

  auto bad = good;
  bad.resize(bad.size() - 1);  // no longer a whole number of doubles
  auto err = decode_amplitudes(bad, out);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "amplitudes");

  UpdatePayload update;
  update.element = 9;
  update.delta = -1;
  const auto upd = encode_update(update);
  UpdatePayload udec;
  ASSERT_FALSE(decode_update(upd, udec).has_value());
  EXPECT_EQ(udec.element, 9u);
  EXPECT_EQ(udec.delta, -1);

  auto utrunc = upd;
  utrunc.resize(12);
  err = decode_update(utrunc, udec);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "update");

  auto utrail = upd;
  utrail.push_back(0);
  err = decode_update(utrail, udec);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "update");
}

TEST(WirePayloads, ErrorPayloadCarriesCodeAndMessage) {
  ErrorPayload error;
  error.code = 42;
  error.message = "machine 3 refused the oracle";
  const auto payload = encode_error(error);
  ErrorPayload decoded;
  ASSERT_FALSE(decode_error(payload, decoded).has_value());
  EXPECT_EQ(decoded.code, 42u);
  EXPECT_EQ(decoded.message, error.message);

  const std::vector<std::uint8_t> torn = {1, 2};  // less than the u32 code
  auto err = decode_error(torn, decoded);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "error");
}

}  // namespace
}  // namespace qs::ipc
