// Tests for the telemetry subsystem (src/telemetry): registry semantics,
// the disabled fast path, span tracing, and both exporters round-tripped
// through the in-repo JSON parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/require.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs::telemetry {
namespace {

/// Every test starts from a known state: metrics on, tracing off, all
/// values zeroed. Individual tests flip what they need.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    set_tracing_enabled(false);
    registry().reset();
    tracer().clear();
    tracer().set_capacity(Tracer::kDefaultCapacity);
  }
  void TearDown() override { set_enabled(false); }
};

TEST_F(TelemetryTest, CounterAccumulatesAndResets) {
  auto& c = counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, SameNameReturnsSameInstrument) {
  auto& a = counter("test.same");
  auto& b = counter("test.same");
  EXPECT_EQ(&a, &b);
  auto& g1 = gauge("test.same");  // separate namespace per kind
  auto& g2 = gauge("test.same");
  EXPECT_EQ(&g1, &g2);
  auto& h1 = histogram("test.same");
  auto& h2 = histogram("test.same");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(TelemetryTest, DisabledMetricsDropIncrements) {
  auto& c = counter("test.disabled");
  auto& h = histogram("test.disabled.ns");
  set_metrics_enabled(false);
  c.add(7);
  h.record(100);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  set_metrics_enabled(true);
  c.add(7);
  h.record(100);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(TelemetryTest, HistogramTracksLog2BucketsAndExtrema) {
  auto& h = histogram("test.hist");
  h.record(0);    // bit_width(0) == 0 → bucket 0
  h.record(1);    // bucket 1
  h.record(7);    // bucket 3
  h.record(8);    // bucket 4
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST_F(TelemetryTest, SnapshotCarriesAllKinds) {
  counter("test.snap.counter").add(3);
  gauge("test.snap.gauge").set(-5);
  histogram("test.snap.hist").record(9);
  std::map<std::string, MetricSample::Kind> seen;
  for (const auto& sample : registry().snapshot())
    seen.emplace(sample.name, sample.kind);
  EXPECT_EQ(seen.at("test.snap.counter"), MetricSample::Kind::kCounter);
  EXPECT_EQ(seen.at("test.snap.gauge"), MetricSample::Kind::kGauge);
  EXPECT_EQ(seen.at("test.snap.hist"), MetricSample::Kind::kHistogram);
}

TEST_F(TelemetryTest, SpanInactiveWhenNothingEnabled) {
  set_metrics_enabled(false);
  auto& h = histogram("test.span.ns");
  {
    Span span("test.span", &h);
    EXPECT_FALSE(span.active());
    span.tag("k", 1);
  }
  EXPECT_EQ(tracer().size(), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(TelemetryTest, SpanFeedsHistogramWithoutTracing) {
  auto& h = histogram("test.span.timed.ns");
  {
    Span span("test.span.timed", &h);
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(tracer().size(), 0u);  // tracing still off
}

TEST_F(TelemetryTest, SpanRecordsTagsAndDuration) {
  set_tracing_enabled(true);
  {
    Span span("test.span.traced");
    span.tag("alpha", 1);
    span.tag("beta", -2);
  }
  const auto events = tracer().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.span.traced");
  ASSERT_EQ(events[0].num_tags, 2u);
  EXPECT_STREQ(events[0].tags[0].key, "alpha");
  EXPECT_EQ(events[0].tags[0].value, 1);
  EXPECT_EQ(events[0].tags[1].value, -2);
}

TEST_F(TelemetryTest, TracerDropsBeyondCapacityAndCounts) {
  set_tracing_enabled(true);
  tracer().set_capacity(3);
  const auto dropped_before = counter("telemetry.trace.dropped").value();
  for (int i = 0; i < 5; ++i) {
    Span span("test.drop");
  }
  EXPECT_EQ(tracer().size(), 3u);
  EXPECT_EQ(counter("telemetry.trace.dropped").value(), dropped_before + 2);
}

TEST_F(TelemetryTest, ThreadIdsAreDenseAndDistinct) {
  set_tracing_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([] { Span span("test.thread"); });
  for (auto& t : threads) t.join();
  std::vector<std::uint32_t> tids;
  for (const auto& ev : tracer().events()) tids.push_back(ev.tid);
  ASSERT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "thread ids must be distinct";
}

// --- exporter round trips -------------------------------------------------

TEST_F(TelemetryTest, ChromeTraceRoundTripsThroughJsonParser) {
  set_tracing_enabled(true);
  {
    Span outer("test.outer");
    outer.tag("event", 7);
    Span inner("test.inner");
  }
  { Span later("test.later"); }

  std::ostringstream os;
  write_chrome_trace(os);
  const auto doc = json::parse(os.str());

  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, json::Value::Type::kArray);
  // events[0] is the process_name metadata record; the rest are spans.
  EXPECT_EQ(events.at(std::size_t{0}).at("ph").as_string(), "M");
  ASSERT_EQ(events.array.size(), 4u);

  std::map<std::uint32_t, double> last_end;
  std::vector<std::string> names;
  for (std::size_t i = 1; i < events.array.size(); ++i) {
    const auto& ev = events.at(i);
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_EQ(ev.at("cat").as_string(), "dqs");
    names.push_back(ev.at("name").as_string());
    const double ts = ev.at("ts").as_number();
    const double dur = ev.at("dur").as_number();
    EXPECT_GE(dur, 0.0);
    const auto tid = static_cast<std::uint32_t>(ev.at("tid").as_number());
    // Spans are recorded at FINISH, so end timestamps are monotone per
    // thread in buffer order (start order is not, for nested spans).
    const auto it = last_end.find(tid);
    if (it != last_end.end()) {
      EXPECT_GE(ts + dur, it->second);
    }
    last_end[tid] = ts + dur;
  }
  // Nested: inner finishes before outer, so buffer order is inner first.
  EXPECT_EQ(names,
            (std::vector<std::string>{"test.inner", "test.outer",
                                      "test.later"}));
  // Tags travel in args.
  EXPECT_EQ(events.at(std::size_t{2}).at("args").at("event").as_number(),
            7.0);
}

TEST_F(TelemetryTest, MetricsJsonlRoundTripsThroughJsonParser) {
  counter("test.jsonl.counter").add(12);
  gauge("test.jsonl.gauge").set(-3);
  histogram("test.jsonl.hist").record(5);

  std::ostringstream os;
  write_metrics_jsonl(os);

  std::map<std::string, json::Value> by_name;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    auto doc = json::parse(line);
    EXPECT_EQ(doc.at("schema").as_string(), "dqs-metrics-v1");
    std::string name = doc.at("name").as_string();
    by_name.emplace(std::move(name), std::move(doc));
  }
  const auto& c = by_name.at("test.jsonl.counter");
  EXPECT_EQ(c.at("kind").as_string(), "counter");
  EXPECT_EQ(c.at("value").as_number(), 12.0);
  const auto& g = by_name.at("test.jsonl.gauge");
  EXPECT_EQ(g.at("kind").as_string(), "gauge");
  EXPECT_EQ(g.at("value").as_number(), -3.0);
  const auto& h = by_name.at("test.jsonl.hist");
  EXPECT_EQ(h.at("kind").as_string(), "histogram");
  EXPECT_EQ(h.at("count").as_number(), 1.0);
  EXPECT_EQ(h.at("min").as_number(), 5.0);
  EXPECT_EQ(h.at("max").as_number(), 5.0);
}

TEST_F(TelemetryTest, JsonEscapeHandlesControlAndQuotes) {
  const auto escaped = json_escape("a\"b\\c\nd\te");
  const auto doc = json::parse("\"" + escaped + "\"");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\nd\te");
}

TEST_F(TelemetryTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), ContractViolation);
  EXPECT_THROW(json::parse("[1,]"), ContractViolation);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), ContractViolation);
  EXPECT_THROW(json::parse("nul"), ContractViolation);
}

TEST_F(TelemetryTest, ConcurrentCountingIsExact) {
  auto& c = counter("test.concurrent");
  auto& h = histogram("test.concurrent.ns");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kPerThread - 1));
}

}  // namespace
}  // namespace qs::telemetry
