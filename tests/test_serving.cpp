// Tests for the dqs-serve layer (src/serving/): typed jobs over a bounded
// priority queue and a worker pool, request coalescing (exactly one
// rebuild per dataset version, no matter how many concurrent clients),
// per-job RNG determinism against a serial SampleServer replay, typed
// admission-control rejections (never a silent drop), drain-on-shutdown,
// verifier-clean preparation transcripts, the chaos grid equivalence with
// the serial server under per-job fault plans, and the SampleServer
// single-thread ownership guard the serving layer exists to replace.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/verifier.hpp"
#include "apps/sample_server.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"
#include "sampling/schedule.hpp"
#include "serving/service.hpp"

namespace qs {
namespace {

using serving::JobOutcome;
using serving::JobPriority;
using serving::JobRequest;
using serving::JobTicket;
using serving::RejectReason;
using serving::SampleService;
using serving::ServiceOptions;

DistributedDatabase make_db(std::uint64_t machines = 3,
                            std::uint64_t seed = 5) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(16, machines, 12, rng);
  const auto nu = min_capacity(datasets) + 2;
  return DistributedDatabase(std::move(datasets), nu);
}

// ------------------------------------------------------------ determinism

TEST(Serving, CoalescedBatchMatchesSerialReplay) {
  constexpr std::size_t kJobs = 8;
  ServiceOptions options;
  options.workers = 4;
  SampleService service(make_db(), options);

  std::vector<JobTicket> tickets;
  for (std::size_t i = 0; i < kJobs; ++i) {
    JobRequest request;
    request.client_seed = 100 + i;
    request.num_samples = 3;
    tickets.push_back(service.submit(std::move(request)));
  }
  std::vector<JobOutcome> outcomes;
  for (const auto& ticket : tickets) outcomes.push_back(ticket.wait());

  // The whole batch shares ONE preparation of the unchanged version...
  EXPECT_EQ(service.preparations(), 1u);
  EXPECT_EQ(service.stats().rebuilds, 1u);

  // ...yet every job's samples are bit-identical to a serial SampleServer
  // replay seeded by the same (client seed, job id) stream — including the
  // serial server's re-preparation per draw, which rebuilds the SAME
  // deterministic state the service measured from its shared snapshot.
  SampleServer replay(make_db(), QueryMode::kSequential);
  for (std::size_t i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << to_string(outcomes[i].rejection->reason);
    const auto& result = *outcomes[i].result;
    EXPECT_EQ(result.job_id, i + 1);  // submit order assigns ids
    Rng rng = rng_for_stream(100 + i, result.job_id);
    for (std::size_t k = 0; k < 3; ++k) {
      ASSERT_EQ(result.samples[k], replay.draw(rng))
          << "job " << result.job_id << " draw " << k;
    }
    EXPECT_EQ(result.health, ServerHealth::kHealthy);
    EXPECT_EQ(result.fallback_draws, 0u);
  }
}

TEST(Serving, ExactlyOneRebuildPerVersionUnderConcurrentClients) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kJobsPerClient = 2;
  ServiceOptions options;
  options.workers = 8;
  SampleService service(make_db(), options);

  // Real concurrency: submissions race from kClients threads while the
  // pool serves. However they interleave, the unchanged version must be
  // prepared exactly once and everyone else must coalesce onto it.
  std::vector<std::thread> clients;
  std::vector<JobTicket> tickets(kClients * kJobsPerClient);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t k = 0; k < kJobsPerClient; ++k) {
        JobRequest request;
        request.client_seed = c;
        tickets[c * kJobsPerClient + k] = service.submit(std::move(request));
      }
    });
  }
  for (auto& client : clients) client.join();
  for (const auto& ticket : tickets) ASSERT_TRUE(ticket.wait().ok());

  const auto stats = service.stats();
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.coalesce_misses, 1u);
  EXPECT_EQ(stats.coalesce_hits, kClients * kJobsPerClient - 1);
  EXPECT_EQ(stats.completed, kClients * kJobsPerClient);
  EXPECT_EQ(service.preparations(), 1u);

  // An update moves the version; the NEXT batch rebuilds exactly once more.
  service.insert(0, 3);
  std::vector<JobTicket> second;
  for (std::size_t i = 0; i < 4; ++i) second.push_back(service.submit({}));
  for (const auto& ticket : second) ASSERT_TRUE(ticket.wait().ok());
  EXPECT_EQ(service.preparations(), 2u);
  EXPECT_EQ(service.stats().invalidations, 1u);
}

// ------------------------------------------------- admission control

TEST(Serving, FullQueueRejectsWithTypedReason) {
  ServiceOptions options;
  options.workers = 0;  // nothing drains: admission behavior is exact
  options.queue_capacity = 2;
  SampleService service(make_db(), options);

  const JobTicket first = service.submit({});
  const JobTicket second = service.submit({});
  const JobTicket third = service.submit({});
  EXPECT_FALSE(first.done());
  EXPECT_FALSE(second.done());
  ASSERT_TRUE(third.done());  // resolved at admission, not dropped
  EXPECT_EQ(third.wait().rejection->reason, RejectReason::kQueueFull);

  EXPECT_TRUE(service.pump_one());
  EXPECT_TRUE(service.pump_one());
  EXPECT_FALSE(service.pump_one());
  EXPECT_TRUE(first.wait().ok());
  EXPECT_TRUE(second.wait().ok());

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.shed, 1u);
}

TEST(Serving, HighPriorityDisplacesQueuedLowPriority) {
  ServiceOptions options;
  options.workers = 0;
  options.queue_capacity = 1;
  SampleService service(make_db(), options);

  JobRequest low;
  low.priority = JobPriority::kLow;
  const JobTicket low_ticket = service.submit(std::move(low));
  EXPECT_FALSE(low_ticket.done());

  JobRequest high;
  high.priority = JobPriority::kHigh;
  const JobTicket high_ticket = service.submit(std::move(high));

  // The low job was evicted — and TOLD so.
  ASSERT_TRUE(low_ticket.done());
  EXPECT_EQ(low_ticket.wait().rejection->reason, RejectReason::kDisplaced);

  EXPECT_TRUE(service.pump_one());
  EXPECT_TRUE(high_ticket.wait().ok());

  // Equal priority never displaces: a second normal job just bounces.
  const JobTicket a = service.submit({});
  const JobTicket b = service.submit({});
  ASSERT_TRUE(b.done());
  EXPECT_EQ(b.wait().rejection->reason, RejectReason::kQueueFull);
  EXPECT_TRUE(service.pump_one());
  EXPECT_TRUE(a.wait().ok());
}

TEST(Serving, DegradedHealthShedsLowPriorityJobs) {
  ServiceOptions options;
  options.workers = 0;
  SampleService service(make_db(), options);

  // A recoverable fault degrades health (the preparation needed recovery).
  JobRequest faulted;
  faulted.faults = FaultPlan({FaultEvent{1, FaultKind::kOracleTransient, 0, 0}});
  const JobOutcome outcome = service.run(std::move(faulted));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.result->health, ServerHealth::kDegraded);
  EXPECT_EQ(service.health(), ServerHealth::kDegraded);
  EXPECT_EQ(outcome.result->recovery.injected_faults, 1u);

  // Load shedding: low-priority jobs are refused AT ADMISSION while
  // degraded; normal traffic keeps flowing (off the coalesced state).
  JobRequest low;
  low.priority = JobPriority::kLow;
  const JobTicket shed = service.submit(std::move(low));
  ASSERT_TRUE(shed.done());
  EXPECT_EQ(shed.wait().rejection->reason, RejectReason::kShedLowPriority);
  EXPECT_TRUE(service.run({}).ok());
  EXPECT_EQ(service.stats().shed, 1u);

  // Recovery: clearing the fault memory restores low-priority admission.
  service.clear_faults();
  EXPECT_EQ(service.health(), ServerHealth::kHealthy);
  JobRequest low_again;
  low_again.priority = JobPriority::kLow;
  EXPECT_TRUE(service.run(std::move(low_again)).ok());
}

TEST(Serving, ExpiredDeadlineIsATypedRejection) {
  ServiceOptions options;
  options.workers = 0;
  SampleService service(make_db(), options);

  JobRequest urgent;
  urgent.deadline_ns = 0;  // any queue wait at all exceeds the budget
  const JobTicket ticket = service.submit(std::move(urgent));
  EXPECT_FALSE(ticket.done());
  EXPECT_TRUE(service.pump_one());
  ASSERT_TRUE(ticket.done());
  EXPECT_EQ(ticket.wait().rejection->reason, RejectReason::kDeadlineExpired);
  EXPECT_EQ(service.stats().expired, 1u);

  // A deadline the job meets does not reject it.
  JobRequest relaxed;
  relaxed.deadline_ns = ~std::uint64_t{0} >> 1;
  EXPECT_TRUE(service.run(std::move(relaxed)).ok());
}

TEST(Serving, EmptyStoreIsATypedRejection) {
  std::vector<Dataset> datasets;
  datasets.emplace_back(8);
  ServiceOptions options;
  options.workers = 0;
  SampleService service(DistributedDatabase(std::move(datasets), 1), options);
  const JobOutcome outcome = service.run({});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.rejection->reason, RejectReason::kEmptyStore);
}

// ------------------------------------------------------------- shutdown

TEST(Serving, ShutdownDrainsEveryAdmittedJob) {
  ServiceOptions options;
  options.workers = 2;
  SampleService service(make_db(), options);

  std::vector<JobTicket> tickets;
  for (std::size_t i = 0; i < 12; ++i) {
    JobRequest request;
    request.client_seed = i;
    tickets.push_back(service.submit(std::move(request)));
  }
  service.shutdown();

  // Every admitted job was SERVED before the pool wound down.
  for (const auto& ticket : tickets) EXPECT_TRUE(ticket.wait().ok());
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected);

  // Submission after shutdown resolves immediately, typed.
  const JobTicket late = service.submit({});
  ASSERT_TRUE(late.done());
  EXPECT_EQ(late.wait().rejection->reason, RejectReason::kShuttingDown);

  service.shutdown();  // idempotent
}

TEST(Serving, ShutdownWithoutWorkersResolvesQueuedJobsTyped) {
  ServiceOptions options;
  options.workers = 0;
  SampleService service(make_db(), options);
  const JobTicket a = service.submit({});
  const JobTicket b = service.submit({});
  service.shutdown();
  // No worker ever existed; the queued jobs still get an ANSWER.
  EXPECT_EQ(a.wait().rejection->reason, RejectReason::kShuttingDown);
  EXPECT_EQ(b.wait().rejection->reason, RejectReason::kShuttingDown);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected);
}

// ------------------------------------------------------------ transcripts

TEST(Serving, PreparationTranscriptsStayVerifierClean) {
  ServiceOptions options;
  options.workers = 2;
  options.record_transcripts = true;
  SampleService service(make_db(), options);
  auto replica = make_db();  // tracks the public params per version

  for (std::size_t i = 0; i < 3; ++i) {
    JobRequest request;
    request.client_seed = i;
    ASSERT_TRUE(service.run(std::move(request)).ok());
  }
  const PublicParams params_v1 = public_params_of(replica);
  service.insert(0, 3);
  replica.insert(0, 3);
  ASSERT_TRUE(service.run({}).ok());
  const PublicParams params_v2 = public_params_of(replica);
  service.shutdown();

  const auto transcripts = service.transcripts();
  ASSERT_EQ(transcripts.size(), 2u);  // one per version, coalesced batch
  const auto report_v1 = analysis::verify_transcript(
      transcripts[0], params_v1, QueryMode::kSequential);
  EXPECT_TRUE(report_v1.clean()) << report_v1.render();
  const auto report_v2 = analysis::verify_transcript(
      transcripts[1], params_v2, QueryMode::kSequential);
  EXPECT_TRUE(report_v2.clean()) << report_v2.render();
}

// ----------------------------------------------------- chaos equivalence

TEST(Serving, FaultedJobsMatchSerialServerAcrossChaosGrid) {
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    for (const std::size_t machines : {2u, 3u}) {
      for (const std::uint64_t plan_seed : {1u, 2u, 3u}) {
        SCOPED_TRACE(std::string("mode=") +
                     (mode == QueryMode::kSequential ? "seq" : "par") +
                     " n=" + std::to_string(machines) +
                     " seed=" + std::to_string(plan_seed));
        const auto plan = FaultPlan::random(plan_seed, 40, machines);

        SampleServer serial(make_db(machines, 9), mode);
        serial.arm_faults(plan);
        Rng serial_rng = rng_for_stream(77, 1);
        const std::size_t serial_sample = serial.draw(serial_rng);

        ServiceOptions options;
        options.workers = 2;
        options.mode = mode;
        SampleService service(make_db(machines, 9), options);
        JobRequest request;
        request.client_seed = 77;
        request.faults = plan;
        const JobOutcome outcome = service.run(std::move(request));

        ASSERT_TRUE(outcome.ok());
        EXPECT_EQ(outcome.result->samples[0], serial_sample);
        EXPECT_EQ(outcome.result->health, serial.health());
        EXPECT_EQ(outcome.result->recovery, serial.recovery_ledger());
        EXPECT_EQ(service.recovery_ledger(), serial.recovery_ledger());
        EXPECT_EQ(service.health(), serial.health());
      }
    }
  }
}

TEST(Serving, DoomedPlanFallsBackExactlyLikeTheSerialServer) {
  const FaultPlan doom({FaultEvent{0, FaultKind::kMachineCrash, 0, 1000000}});
  RetryPolicy policy;
  policy.max_wait_events = 16;

  SampleServer serial(make_db(1, 9), QueryMode::kSequential);
  serial.arm_faults(doom, policy);
  Rng serial_rng = rng_for_stream(5, 1);
  const std::size_t s0 = serial.draw(serial_rng);
  const std::size_t s1 = serial.draw(serial_rng);
  ASSERT_EQ(serial.health(), ServerHealth::kFallback);

  ServiceOptions options;
  options.workers = 2;
  SampleService service(make_db(1, 9), options);
  JobRequest request;
  request.client_seed = 5;
  request.num_samples = 2;
  request.faults = doom;
  request.retry = policy;
  const JobOutcome outcome = service.run(std::move(request));

  // Classical fallback serves the SAME samples at the SAME classical cost.
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.result->samples, (std::vector<std::size_t>{s0, s1}));
  EXPECT_EQ(outcome.result->health, ServerHealth::kFallback);
  EXPECT_EQ(outcome.result->fallback_draws, 2u);
  EXPECT_EQ(outcome.result->classical_queries, serial.classical_queries());
  EXPECT_EQ(service.health(), ServerHealth::kFallback);
  EXPECT_FALSE(service.last_failure().empty());
  EXPECT_EQ(service.preparations(), 0u);
  EXPECT_EQ(service.recovery_ledger(), serial.recovery_ledger());

  // The fallback is sticky across jobs, exactly like the serial server...
  Rng serial_rng2 = rng_for_stream(6, 2);
  const std::size_t s2 = serial.draw(serial_rng2);
  JobRequest second;
  second.client_seed = 6;
  const JobOutcome again = service.run(std::move(second));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.result->samples[0], s2);
  EXPECT_EQ(again.result->fallback_draws, 1u);

  // ...and clears the same way, restoring the quantum path.
  serial.disarm_faults();
  service.clear_faults();
  Rng serial_rng3 = rng_for_stream(7, 3);
  const std::size_t s3 = serial.draw(serial_rng3);
  JobRequest third;
  third.client_seed = 7;
  const JobOutcome healthy = service.run(std::move(third));
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.result->samples[0], s3);
  EXPECT_EQ(healthy.result->health, ServerHealth::kHealthy);
  EXPECT_EQ(service.preparations(), 1u);
}

// ------------------------------------- serial server ownership guard

TEST(SampleServerGuard, SecondThreadGetsATypedViolation) {
  SampleServer server(make_db(), QueryMode::kSequential);
  Rng rng(3);
  (void)server.draw(rng);  // pins the server to this thread

  std::atomic<bool> threw{false};
  std::thread other([&] {
    Rng thread_rng(4);
    try {
      (void)server.draw(thread_rng);
    } catch (const ContractViolation&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw) << "cross-thread draw() must be a typed violation";

  // An externally synchronised handoff re-pins to the new thread.
  server.rebind_owner_thread();
  std::atomic<bool> ok{false};
  std::thread next([&] {
    Rng thread_rng(5);
    (void)server.draw(thread_rng);
    ok = true;
  });
  next.join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace qs
