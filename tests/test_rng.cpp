// Tests for the deterministic RNG substrate (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>

#include "common/require.hpp"

namespace qs {
namespace {

TEST(SplitMix64, IsDeterministicAndAdvancesState) {
  std::uint64_t s1 = 123, s2 = 123;
  const auto a = splitmix64(s1);
  const auto b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), a);  // state advanced
}

TEST(Rng, SameSeedSameStream) {
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanAndVariance) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformBelowIsUnbiasedAcrossSmallRange) {
  Rng rng(13);
  const std::uint64_t bound = 7;
  std::vector<int> hist(bound, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++hist[rng.uniform_below(bound)];
  for (const auto h : hist) {
    EXPECT_NEAR(static_cast<double>(h), n / 7.0, 5.0 * std::sqrt(n / 7.0));
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(29);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> hist(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hist[rng.weighted_index(w)];
  EXPECT_EQ(hist[1], 0);
  EXPECT_NEAR(hist[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(hist[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(Rng, SampleWithoutReplacementShapeAndBounds) {
  Rng rng(31);
  for (std::size_t n : {1u, 5u, 20u, 100u}) {
    for (std::size_t k = 0; k <= std::min<std::size_t>(n, 10); ++k) {
      const auto s = rng.sample_without_replacement(n, k);
      EXPECT_EQ(s.size(), k);
      EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      const std::set<std::size_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);  // distinct
      for (const auto v : s) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(37);
  const auto s = rng.sample_without_replacement(8, 8);
  ASSERT_EQ(s.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleWithoutReplacementIsApproximatelyUniform) {
  // Every 2-subset of [0, 5) should appear with frequency ~1/10.
  Rng rng(41);
  std::map<std::pair<std::size_t, std::size_t>, int> hist;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto s = rng.sample_without_replacement(5, 2);
    ++hist[{s[0], s[1]}];
  }
  EXPECT_EQ(hist.size(), 10u);
  for (const auto& [key, count] : hist) {
    EXPECT_NEAR(count / static_cast<double>(n), 0.1, 0.01);
  }
}

TEST(Rng, SampleMoreThanRangeThrows) {
  Rng rng(43);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ContractViolation);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamDerivationIsDeterministic) {
  // The serving layer keys every job's RNG on (client seed, job id); the
  // same pair must reproduce the same stream bit for bit.
  Rng a = rng_for_stream(123, 7);
  Rng b = rng_for_stream(123, 7);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsWithDifferentIdsDecorrelate) {
  // Adjacent stream ids (consecutive job ids under one client seed) and
  // adjacent seeds sharing a stream id must land in unrelated regions.
  for (const auto [sa, ka, sb, kb] :
       {std::array<std::uint64_t, 4>{9, 1, 9, 2},
        std::array<std::uint64_t, 4>{9, 1, 10, 1},
        std::array<std::uint64_t, 4>{0, 0, 0, 1}}) {
    Rng a = rng_for_stream(sa, ka);
    Rng b = rng_for_stream(sb, kb);
    int equal = 0;
    for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
    EXPECT_LT(equal, 3) << sa << "/" << ka << " vs " << sb << "/" << kb;
  }
}

TEST(ZipfSampler, ProbabilitiesNormalised) {
  const ZipfSampler z(100, 1.2);
  double total = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) total += z.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, ProbabilitiesDecreasing) {
  const ZipfSampler z(50, 0.8);
  for (std::size_t i = 1; i < z.size(); ++i)
    EXPECT_LE(z.probability(i), z.probability(i - 1));
}

TEST(ZipfSampler, EmpiricalFrequenciesMatch) {
  const ZipfSampler z(10, 1.0);
  Rng rng(53);
  std::vector<int> hist(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[z.sample(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(hist[i] / static_cast<double>(n), z.probability(i), 0.01);
  }
}

TEST(ZipfSampler, ExponentZeroIsUniform) {
  const ZipfSampler z(8, 0.0);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(z.probability(i), 0.125, 1e-12);
}

class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, UniformBelowStaysInBound) {
  Rng rng(61 + GetParam());
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform_below(GetParam()),
                                           GetParam());
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 10, 255, 256, 1000,
                                           1u << 20, (1ull << 40) + 17));

}  // namespace
}  // namespace qs
