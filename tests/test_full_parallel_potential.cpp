// Cross-validation of the parallel-model potential (Lemma 5.10): the
// production lower-bound harness tracks D_t on the LOGICAL composite of
// Lemma 4.4; here we recompute the same distances on the FULL ancilla
// register layout for a tiny instance and confirm the two agree at the
// composite boundaries — the point where the paper's proof evaluates the
// potential. Also: OpenMP thread-count invariance of the kernels.
#include <gtest/gtest.h>

#include <cmath>

#if defined(DQS_HAVE_OPENMP)
#include <omp.h>
#endif

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "lowerbound/hard_inputs.hpp"
#include "lowerbound/lockstep.hpp"
#include "qsim/gates.hpp"
#include "sampling/parallel_full.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(FullParallelPotential, LogicalAndFullRegisterDistancesAgree) {
  // Tiny instance: N = 3, n = 2, ν = 2. Machine 0 is the distinguished
  // machine; compare ‖ψ^T − ψ̃‖² after each total-shift composite computed
  // (a) on the logical layout and (b) on the full ancilla layout.
  std::vector<Dataset> base = {Dataset::from_counts({2, 1, 0}),
                               Dataset::from_counts({0, 0, 1})};
  const DistributedDatabase db_true(base, 2);
  std::vector<Dataset> emptied = base;
  emptied[0] = Dataset(3);
  const DistributedDatabase db_empty(std::move(emptied), 2);

  // (a) logical: two SingleStateBackends via parallel_total_shift.
  SingleStateBackend logical_true(db_true, StatePrep::kHouseholder);
  SingleStateBackend logical_empty(db_empty, StatePrep::kHouseholder);
  logical_true.prep_uniform(false);
  logical_empty.prep_uniform(false);

  // (b) full: two ParallelFullCircuit states.
  const ParallelFullCircuit full_true(db_true);
  const ParallelFullCircuit full_empty(db_empty);
  auto state_true = full_true.make_state();
  auto state_empty = full_empty.make_state();
  const auto prep = uniform_prep_householder_vector(3);
  state_true.apply_householder(full_true.elem(), prep);
  state_empty.apply_householder(full_empty.elem(), prep);

  for (int step = 0; step < 4; ++step) {
    const bool adjoint = step % 2 == 1;
    logical_true.parallel_total_shift(adjoint);
    logical_empty.parallel_total_shift(adjoint);
    const double logical_d =
        logical_true.state().distance_squared(logical_empty.state());

    full_true.apply_total_shift(state_true, adjoint);
    full_empty.apply_total_shift(state_empty, adjoint);
    // Full layouts share the same shape (same N, ν, n), so distances are
    // directly comparable; ancillas are |0⟩ at composite boundaries.
    const double full_d = state_true.distance_squared(state_empty);

    EXPECT_NEAR(logical_d, full_d, 1e-12) << "composite " << step;
  }
}

TEST(FullParallelPotential, LemmaCeilingHoldsOnFullRegisters) {
  // Evaluate the Lemma 5.10 ceiling with the full-register states for the
  // family of a tiny hard input (exhaustive: C(3,1) = 3 members).
  const std::size_t universe = 3;
  std::vector<Dataset> base = {Dataset::from_counts({2, 0, 0}),
                               Dataset(universe)};
  const auto images = enumerate_images(universe, 1);
  ASSERT_EQ(images.size(), 3u);

  std::vector<Dataset> emptied = base;
  emptied[0] = Dataset(universe);
  const DistributedDatabase db_empty(std::move(emptied), 2);
  const ParallelFullCircuit full_empty(db_empty);

  // D_t after t = 1..4 composites, averaged over the family.
  std::vector<double> d_t(4, 0.0);
  for (const auto& image : images) {
    const auto datasets = apply_sigma(base, 0, image);
    const DistributedDatabase db_true(datasets, 2);
    const ParallelFullCircuit full_true(db_true);

    auto st = full_true.make_state();
    auto se = full_empty.make_state();
    const auto prep = uniform_prep_householder_vector(universe);
    st.apply_householder(full_true.elem(), prep);
    se.apply_householder(full_empty.elem(), prep);
    for (int step = 0; step < 4; ++step) {
      const bool adjoint = step % 2 == 1;
      full_true.apply_total_shift(st, adjoint);
      full_empty.apply_total_shift(se, adjoint);
      d_t[step] += st.distance_squared(se) / 3.0;
    }
  }
  // Ceiling 4 (m_k/N) t² with m_k = 1, N = 3; each composite = 2 rounds.
  for (int step = 0; step < 4; ++step) {
    const double t = 2.0 * (step + 1);
    EXPECT_LE(d_t[step], 4.0 * (1.0 / 3.0) * t * t + 1e-9);
  }
}

TEST(OpenMpInvariance, KernelsAgreeAcrossThreadCounts) {
#if defined(DQS_HAVE_OPENMP)
  // Same circuit under 1 and 4 threads must produce bit-comparable states
  // (each fiber is written by exactly one thread; no reductions race).
  Rng rng(3);
  auto datasets = workload::uniform_random(64, 3, 24, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);

  omp_set_num_threads(1);
  const auto single = run_sequential_sampler(db);
  omp_set_num_threads(4);
  const auto multi = run_sequential_sampler(db);
  omp_set_num_threads(1);

  EXPECT_NEAR(single.state.distance_squared(multi.state), 0.0, 1e-24);
  EXPECT_EQ(single.stats, multi.stats);
#else
  GTEST_SKIP() << "built without OpenMP";
#endif
}

}  // namespace
}  // namespace qs
