// Tests for database (de)serialization (distdb/serialize.hpp).
#include "distdb/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  Rng rng(3);
  auto datasets = workload::zipf(32, 3, 50, 1.1, rng);
  const auto nu = min_capacity(datasets) + 2;
  const DistributedDatabase original(std::move(datasets), nu);

  std::stringstream buffer;
  save_database(buffer, original);
  const auto loaded = load_database(buffer);

  EXPECT_EQ(loaded.universe(), original.universe());
  EXPECT_EQ(loaded.nu(), original.nu());
  EXPECT_EQ(loaded.num_machines(), original.num_machines());
  for (std::size_t j = 0; j < original.num_machines(); ++j)
    EXPECT_EQ(loaded.machine(j).data(), original.machine(j).data());
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  std::istringstream input(
      "# a comment\n"
      "dqsdb 1\n"
      "\n"
      "universe 8   # inline comment\n"
      "nu 3\n"
      "machine 0\n"
      "2 3\n"
      "machine 1\n"
      "# empty machine\n");
  const auto db = load_database(input);
  EXPECT_EQ(db.universe(), 8u);
  EXPECT_EQ(db.num_machines(), 2u);
  EXPECT_EQ(db.machine(0).data().count(2), 3u);
  EXPECT_EQ(db.machine(1).data().total(), 0u);
}

TEST(Serialize, MalformedInputsRejectedWithLineInfo) {
  const auto expect_fail = [](const std::string& text) {
    std::istringstream input(text);
    EXPECT_THROW(load_database(input), ContractViolation) << text;
  };
  expect_fail("");                                     // empty
  expect_fail("not-a-db 1\n");                         // bad magic
  expect_fail("dqsdb 2\nuniverse 4\nnu 1\nmachine 0\n");  // bad version
  expect_fail("dqsdb 1\nnu 1\nmachine 0\n");           // universe missing
  expect_fail("dqsdb 1\nuniverse 4\nmachine 0\n");     // nu missing
  expect_fail("dqsdb 1\nuniverse 4\nnu 1\n");          // no machines
  expect_fail("dqsdb 1\nuniverse 4\nnu 1\nmachine 1\n");  // index gap
  expect_fail("dqsdb 1\nuniverse 4\nnu 1\nmachine 0\n9 1\n");  // elem oob
  expect_fail("dqsdb 1\nuniverse 4\nnu 1\nmachine 0\n1 0\n");  // zero count
  expect_fail("dqsdb 1\nuniverse 4\nnu 1\n1 1\n");  // count before machine
  // Capacity violation surfaces through the database constructor.
  expect_fail("dqsdb 1\nuniverse 4\nnu 1\nmachine 0\n1 2\n");
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(5);
  auto datasets = workload::uniform_random(16, 2, 20, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase original(std::move(datasets), nu);
  const std::string path = "/tmp/dqs_serialize_test.db";
  save_database_file(path, original);
  const auto loaded = load_database_file(path);
  EXPECT_EQ(loaded.joint_counts(), original.joint_counts());
  EXPECT_THROW(load_database_file("/nonexistent/nowhere.db"),
               ContractViolation);
}

}  // namespace
}  // namespace qs
