// Tests for iterative amplitude estimation (estimation/iqae.hpp).
#include "estimation/iqae.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "estimation/amplitude_estimation.hpp"

namespace qs {
namespace {

DistributedDatabase controlled(std::size_t universe, std::size_t support,
                               std::uint64_t mult, std::uint64_t nu) {
  std::vector<Dataset> datasets(2, Dataset(universe));
  for (std::size_t i = 0; i < support; ++i) datasets[i % 2].insert(i, mult);
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(Iqae, ConvergesAndCoversTruth) {
  const auto db = controlled(64, 16, 2, 4);  // a = 32/256 = 0.125
  IqaeOptions options;
  options.epsilon = 0.004;
  int covered = 0, converged = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    Rng rng(500 + t);
    const auto result =
        iqae_estimate_good_amplitude(db, QueryMode::kParallel, options, rng);
    converged += result.converged;
    covered += (0.125 >= result.a_lo - 1e-9 && 0.125 <= result.a_hi + 1e-9);
    EXPECT_LE(result.a_hi - result.a_lo,
              2.5 * 2.0 * options.epsilon);  // interval near target width
  }
  EXPECT_EQ(converged, trials);
  // Nominal coverage 95%; allow one miss in 12.
  EXPECT_GE(covered, trials - 1);
}

TEST(Iqae, PrecisionKnobWorks) {
  const auto db = controlled(64, 8, 1, 2);  // a = 8/128
  Rng rng1(3), rng2(4);
  IqaeOptions loose;
  loose.epsilon = 0.02;
  IqaeOptions tight;
  tight.epsilon = 0.002;
  const auto coarse =
      iqae_estimate_good_amplitude(db, QueryMode::kParallel, loose, rng1);
  const auto fine =
      iqae_estimate_good_amplitude(db, QueryMode::kParallel, tight, rng2);
  EXPECT_LT(fine.a_hi - fine.a_lo, coarse.a_hi - coarse.a_lo);
  EXPECT_GT(fine.oracle_cost, coarse.oracle_cost);
}

TEST(Iqae, NearHeisenbergCostScaling) {
  // Cost should grow roughly like 1/ε (up to logs), far better than the
  // classical 1/ε².
  const auto db = controlled(64, 8, 1, 2);
  std::uint64_t cost_2e2 = 0, cost_2e3 = 0;
  {
    Rng rng(5);
    IqaeOptions options;
    options.epsilon = 0.02;
    cost_2e2 = iqae_estimate_good_amplitude(db, QueryMode::kParallel,
                                            options, rng)
                   .oracle_cost;
  }
  {
    Rng rng(6);
    IqaeOptions options;
    options.epsilon = 0.002;
    cost_2e3 = iqae_estimate_good_amplitude(db, QueryMode::kParallel,
                                            options, rng)
                   .oracle_cost;
  }
  const double ratio = double(cost_2e3) / double(cost_2e2);
  EXPECT_LT(ratio, 40.0);  // classical would need ~100x
  EXPECT_GT(ratio, 2.0);
}

TEST(Iqae, HandlesExtremeAmplitudes) {
  // Near-zero a.
  const auto sparse = controlled(256, 1, 1, 2);  // a = 1/512
  Rng rng1(7);
  IqaeOptions options;
  options.epsilon = 0.002;
  const auto low =
      iqae_estimate_good_amplitude(sparse, QueryMode::kParallel, options,
                                   rng1);
  EXPECT_LE(low.a_lo, 1.0 / 512.0 + 2e-3);
  EXPECT_LT(low.a_hat, 0.01);

  // Near-one a.
  const auto dense = controlled(8, 8, 2, 2);  // a = 1
  Rng rng2(8);
  const auto high = iqae_estimate_good_amplitude(dense, QueryMode::kParallel,
                                                 options, rng2);
  EXPECT_GT(high.a_hat, 0.98);
}

TEST(Iqae, CountingWrapperScalesInterval) {
  const auto db = controlled(64, 16, 2, 4);  // M = 32
  Rng rng(9);
  IqaeOptions options;
  options.epsilon = 0.004;
  const auto count =
      iqae_estimate_total_count(db, QueryMode::kParallel, options, rng);
  EXPECT_LE(count.m_lo, 32.0 + 1e-6);
  EXPECT_GE(count.m_hi, 32.0 - 1e-6);
  EXPECT_NEAR(count.m_hat, 32.0, 3.0);
}

TEST(Iqae, AgreesWithMlae) {
  const auto db = controlled(64, 12, 1, 2);
  Rng rng1(11), rng2(12);
  IqaeOptions options;
  options.epsilon = 0.005;
  const auto iqae =
      iqae_estimate_good_amplitude(db, QueryMode::kParallel, options, rng1);
  const auto mlae = estimate_good_amplitude(
      db, QueryMode::kParallel, exponential_schedule(7, 32), rng2);
  EXPECT_NEAR(iqae.a_hat, mlae.a_hat, 0.01);
}

TEST(Iqae, ValidatesOptions) {
  const auto db = controlled(8, 2, 1, 1);
  Rng rng(13);
  IqaeOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW(
      iqae_estimate_good_amplitude(db, QueryMode::kParallel, bad, rng),
      ContractViolation);
  bad.epsilon = 0.01;
  bad.alpha = 0.0;
  EXPECT_THROW(
      iqae_estimate_good_amplitude(db, QueryMode::kParallel, bad, rng),
      ContractViolation);
}

}  // namespace
}  // namespace qs
