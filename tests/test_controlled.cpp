// Tests for controlled circuit fragments and mid-circuit measurement
// (qsim/controlled.hpp).
#include "qsim/controlled.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "qsim/gates.hpp"
#include "qsim/operator_builder.hpp"

namespace qs {
namespace {

TEST(Controlled, MatchesDenseControlledUnitary) {
  // C-U on (control ⊗ target) vs the textbook block matrix.
  Rng rng(3);
  RegisterLayout layout;
  const auto control = layout.add("c", 2);
  const auto target = layout.add("t", 3);
  const auto u = random_unitary(3, rng);

  const auto circuit_op = operator_of_circuit(layout, [&](StateVector& s) {
    apply_controlled(s, control, 1,
                     [&](StateVector& slice) { slice.apply_unitary(target, u); });
  });

  Matrix expected(6, 6);
  for (std::size_t i = 0; i < 3; ++i) expected(i, i) = 1.0;  // control=0
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) expected(3 + i, 3 + j) = u(i, j);
  EXPECT_NEAR(Matrix::max_abs_diff(circuit_op, expected), 0.0, 1e-12);
}

TEST(Controlled, ControlOnValueZeroWorks) {
  RegisterLayout layout;
  const auto control = layout.add("c", 3);
  const auto target = layout.add("t", 2);
  // X on target when control == 0.
  StateVector s(layout, 0);  // |c=0, t=0⟩
  apply_controlled(s, control, 0, [&](StateVector& slice) {
    slice.apply_unitary(target, shift_matrix(2, 1));
  });
  EXPECT_EQ(s.amplitude(1), cplx(1.0, 0.0));  // |c=0, t=1⟩
  // control == 2 untouched.
  StateVector t(layout, 4);  // |c=2, t=0⟩
  apply_controlled(t, control, 0, [&](StateVector& slice) {
    slice.apply_unitary(target, shift_matrix(2, 1));
  });
  EXPECT_EQ(t.amplitude(4), cplx(1.0, 0.0));
}

TEST(Controlled, PredicateControlSelectsBitSubspaces) {
  // Control on "bit 1 of a dim-4 register": values 2 and 3 active.
  RegisterLayout layout;
  const auto control = layout.add("c", 4);
  const auto target = layout.add("t", 2);
  const auto op = operator_of_circuit(layout, [&](StateVector& s) {
    apply_controlled_if(
        s, control, [](std::size_t d) { return (d >> 1) & 1u; },
        [&](StateVector& slice) {
          slice.apply_unitary(target, shift_matrix(2, 1));
        });
  });
  // Basis: index = c*2 + t. c ∈ {0,1}: identity; c ∈ {2,3}: X.
  for (std::size_t c = 0; c < 4; ++c) {
    const bool active = (c >> 1) & 1u;
    for (std::size_t t = 0; t < 2; ++t) {
      const std::size_t in = c * 2 + t;
      const std::size_t out = c * 2 + (active ? 1 - t : t);
      EXPECT_NEAR(std::abs(op(out, in) - cplx(1.0, 0.0)), 0.0, 1e-12);
    }
  }
}

TEST(Controlled, PreservesNormOnSuperpositions) {
  Rng rng(7);
  RegisterLayout layout;
  const auto control = layout.add("c", 3);
  const auto target = layout.add("t", 4);
  StateVector s(layout);
  s.set_amplitudes(random_state(12, rng));
  const auto u = random_unitary(4, rng);
  apply_controlled(s, control, 2,
                   [&](StateVector& slice) { slice.apply_unitary(target, u); });
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(Controlled, PhaseKickbackProducesControlledPhase) {
  // A "global" phase inside the controlled scope is a physical phase on the
  // control — the kickback QPE relies on.
  RegisterLayout layout;
  const auto control = layout.add("c", 2);
  layout.add("t", 2);
  StateVector s(layout);
  // (|0⟩+|1⟩)/√2 on control, |0⟩ target.
  s.set_amplitudes({1.0 / std::sqrt(2.0), 0.0, 1.0 / std::sqrt(2.0), 0.0});
  apply_controlled(s, control, 1, [&](StateVector& slice) {
    slice.apply_global_phase(cplx{0.0, 1.0});  // i
  });
  EXPECT_NEAR(std::abs(s.amplitude(0) - cplx(1.0 / std::sqrt(2.0), 0.0)),
              0.0, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude(2) - cplx(0.0, 1.0 / std::sqrt(2.0))),
              0.0, 1e-12);
}

TEST(Project, NormalisesOntoOutcome) {
  RegisterLayout layout;
  const auto r = layout.add("r", 2);
  layout.add("other", 2);
  StateVector s(layout);
  // 0.8|0,0⟩ + 0.6|1,1⟩.
  s.set_amplitudes({0.8, 0.0, 0.0, 0.6});
  const double p = project_register(s, r, 1);
  EXPECT_NEAR(p, 0.36, 1e-12);
  EXPECT_NEAR(std::abs(s.amplitude(3) - cplx(1.0, 0.0)), 0.0, 1e-12);
  EXPECT_EQ(s.amplitude(0), cplx(0.0, 0.0));
  EXPECT_NEAR(s.norm(), 1.0, 1e-12);
}

TEST(Project, ZeroProbabilityOutcomeThrows) {
  RegisterLayout layout;
  const auto r = layout.add("r", 2);
  StateVector s(layout, 0);
  EXPECT_THROW(project_register(s, r, 1), ContractViolation);
}

TEST(MeasureAndCollapse, FrequenciesMatchBornRule) {
  RegisterLayout layout;
  const auto r = layout.add("r", 2);
  Rng rng(11);
  int ones = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    StateVector s(layout);
    s.set_amplitudes({std::sqrt(0.3), std::sqrt(0.7)});
    const auto outcome = measure_and_collapse(s, r, rng);
    ones += (outcome == 1);
    // Collapsed state is the outcome basis state.
    EXPECT_NEAR(std::abs(s.amplitude(outcome)), 1.0, 1e-12);
  }
  EXPECT_NEAR(ones / static_cast<double>(trials), 0.7, 0.02);
}

TEST(MeasureAndCollapse, EntangledRegisterCollapsesPartner) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  const auto b = layout.add("b", 2);
  Rng rng(13);
  for (int t = 0; t < 50; ++t) {
    StateVector s(layout);
    s.set_amplitudes({1.0 / std::sqrt(2.0), 0.0, 0.0, 1.0 / std::sqrt(2.0)});
    const auto outcome = measure_and_collapse(s, a, rng);
    // Perfect correlation: b must equal a.
    EXPECT_NEAR(s.probability_of(b, outcome), 1.0, 1e-12);
  }
}

}  // namespace
}  // namespace qs
