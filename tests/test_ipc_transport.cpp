// Supervisor / multi-process transport edge cases (distdb/ipc/,
// faults/ipc_chaos.hpp): parity with the in-process sampler, workers dying
// before the handshake, mid-parallel-round and adjoint-replay kills, the
// double-crash breaker, torn frames, dynamic updates over live sockets,
// and zombie-free shutdown.
//
// These tests REALLY fork: every supervisor here spawns one process per
// machine and signals them for real.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/ipc/supervisor.hpp"
#include "distdb/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/ipc_chaos.hpp"
#include "faults/recovery.hpp"
#include "qsim/state_vector.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"
#include "serving/service.hpp"

namespace qs {
namespace {

DistributedDatabase make_db(std::uint64_t machines = 3,
                            std::uint64_t seed = 5) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(16, machines, 12, rng);
  const auto nu = min_capacity(datasets) + 2;
  return DistributedDatabase(std::move(datasets), nu);
}

/// Fast deadlines: these tests SIGSTOP and SIGKILL children on purpose, and
/// the watchdog should notice quickly.
ipc::IpcOptions fast_options() {
  ipc::IpcOptions options;
  options.heartbeat_timeout_ms = 200;
  options.reply_timeout_ms = 2000;
  return options;
}

bool bit_identical(const StateVector& a, const StateVector& b) {
  const auto sa = a.amplitudes();
  const auto sb = b.amplitudes();
  if (sa.size() != sb.size()) return false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] != sb[i]) return false;
  }
  return true;
}

// ----------------------------------------------------------------- parity

TEST(IpcTransport, SequentialSamplerIsBitIdenticalOverSockets) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  const SamplerResult in_process = run_sequential_sampler(db);
  const SamplerResult over_ipc =
      run_ipc_sampler(db, QueryMode::kSequential, supervisor);
  EXPECT_TRUE(bit_identical(over_ipc.state, in_process.state));
  EXPECT_EQ(over_ipc.fidelity, in_process.fidelity);
  EXPECT_EQ(over_ipc.stats, in_process.stats);

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcTransport, ParallelSamplerIsBitIdenticalOverSockets) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  const SamplerResult in_process = run_parallel_sampler(db);
  const SamplerResult over_ipc =
      run_ipc_sampler(db, QueryMode::kParallel, supervisor);
  EXPECT_TRUE(bit_identical(over_ipc.state, in_process.state));
  EXPECT_EQ(over_ipc.stats, in_process.stats);

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

// ------------------------------------------------------- supervisor edges

TEST(IpcSupervisorEdges, WorkerDeadBeforeHandshakeIsAMachineCrash) {
  const auto db = make_db();
  auto options = fast_options();
  options.kill_before_handshake = true;  // every child dies pre-kHello
  ipc::IpcSupervisor supervisor(db, options);

  const auto failure = supervisor.start();
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(classify_peer_failure(failure->kind), FaultKind::kMachineCrash);

  // The hook off, every machine respawns and handshakes cleanly.
  supervisor.options().kill_before_handshake = false;
  for (std::size_t j = 0; j < supervisor.num_machines(); ++j) {
    EXPECT_FALSE(supervisor.peer_alive(j));
    ASSERT_FALSE(supervisor.respawn(j).has_value()) << "machine " << j;
    EXPECT_FALSE(supervisor.ping(j).has_value());
  }

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, KillMidParallelRoundRecoversBitIdentically) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  // Worker 1 is SIGKILLed as the second collective round lands; the
  // recovery planner waits out the down-window, the harness respawns it,
  // and the replay is exact.
  const FaultPlan plan(
      {FaultEvent{1, FaultKind::kProcessKill, 1, 2}});
  const FaultedRun run = run_ipc_sampler_with_faults(
      db, QueryMode::kParallel, plan, RetryPolicy{}, supervisor);
  ASSERT_TRUE(run.ok()) << run.recovery.failure;

  const SamplerResult baseline = run_parallel_sampler(db);
  EXPECT_TRUE(bit_identical(run.result->state, baseline.state));
  EXPECT_EQ(run.result->stats, baseline.stats);
  EXPECT_EQ(run.recovery.ledger.injected_crashes, 1u);

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, KillDuringAdjointReplayRecoversBitIdentically) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  // Target a primary event inside the adjoint (C†) half of the schedule:
  // the sequential schedule interleaves C and C† blocks, and the back half
  // of the event range replays adjoints. Order-fixed segments cannot
  // displace, so recovery must wait the crash out — and still be exact.
  const auto events =
      compiled_schedule_length(public_params_of(db), QueryMode::kSequential);
  ASSERT_GT(events, 4u);
  const FaultPlan plan(
      {FaultEvent{events - 2, FaultKind::kProcessKill, 0, 3}});
  const FaultedRun run = run_ipc_sampler_with_faults(
      db, QueryMode::kSequential, plan, RetryPolicy{}, supervisor);
  ASSERT_TRUE(run.ok()) << run.recovery.failure;

  const SamplerResult baseline = run_sequential_sampler(db);
  EXPECT_TRUE(bit_identical(run.result->state, baseline.state));
  EXPECT_EQ(run.result->stats, baseline.stats);

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, DoubleCrashOfOneMachineOpensTheBreaker) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  // Machine 0 is killed twice in quick succession; with a threshold of 2
  // the second run of consecutive failures must trip its breaker. The
  // SAME plan on the simulated transport must agree — breaker decisions
  // are part of the deterministic planner, not the transport.
  RetryPolicy policy;
  policy.breaker_threshold = 2;
  const FaultPlan plan({FaultEvent{0, FaultKind::kProcessKill, 0, 4},
                        FaultEvent{2, FaultKind::kProcessKill, 0, 4}});
  const FaultedRun run = run_ipc_sampler_with_faults(
      db, QueryMode::kSequential, plan, policy, supervisor);
  ASSERT_TRUE(run.ok()) << run.recovery.failure;
  EXPECT_GE(run.recovery.ledger.breaker_opens, 1u);
  EXPECT_EQ(run.recovery.ledger.injected_crashes, 2u);

  const FaultedRun simulated = run_sampler_with_faults(
      db, QueryMode::kSequential, plan, policy);
  ASSERT_TRUE(simulated.ok());
  EXPECT_EQ(run.recovery.ledger, simulated.recovery.ledger);
  EXPECT_TRUE(bit_identical(run.result->state, simulated.result->state));

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, TornFrameLeavesThePeerAliveAndClassifiesAsDrop) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  ASSERT_FALSE(
      supervisor.arm_fault(0, ipc::ArmedFaultMode::kCorruptChecksum)
          .has_value());
  const auto failure = supervisor.ping(0);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, ipc::PeerFailureKind::kTornFrame);
  EXPECT_EQ(classify_peer_failure(failure->kind), FaultKind::kDropBundle);

  // The stream stayed framed: the peer is alive and the next ping is clean.
  EXPECT_TRUE(supervisor.peer_alive(0));
  EXPECT_FALSE(supervisor.ping(0).has_value());

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, TruncateAndDieIsDetectedAndRespawnable) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  // The worker writes a partial frame and _exits mid-write: the read sees
  // a short stream, the watchdog reaps an exited child, and the peer is
  // respawnable.
  ASSERT_FALSE(
      supervisor.arm_fault(1, ipc::ArmedFaultMode::kTruncateAndDie)
          .has_value());
  const auto failure = supervisor.ping(1);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(classify_peer_failure(failure->kind), FaultKind::kMachineCrash);
  EXPECT_FALSE(supervisor.peer_alive(1));

  ASSERT_FALSE(supervisor.respawn(1).has_value());
  EXPECT_FALSE(supervisor.ping(1).has_value());

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, HungWorkerIsEscalatedByTheWatchdog) {
  const auto db = make_db();
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  supervisor.stop_peer(2);  // SIGSTOP: alive but wedged
  const auto failure = supervisor.ping(2);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, ipc::PeerFailureKind::kHung);
  EXPECT_EQ(classify_peer_failure(failure->kind), FaultKind::kMachineCrash);
  // The watchdog SIGKILLed and reaped it: not alive, not a zombie.
  EXPECT_FALSE(supervisor.peer_alive(2));
  EXPECT_EQ(supervisor.zombies(), 0u);

  ASSERT_FALSE(supervisor.respawn(2).has_value());
  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

TEST(IpcSupervisorEdges, RespawnBudgetExhaustionIsTyped) {
  const auto db = make_db();
  auto options = fast_options();
  options.max_respawns = 1;
  ipc::IpcSupervisor supervisor(db, options);
  ASSERT_FALSE(supervisor.start().has_value());

  supervisor.kill_peer(0);
  ASSERT_FALSE(supervisor.respawn(0).has_value());  // budget: 1 of 1
  supervisor.kill_peer(0);
  const auto failure = supervisor.respawn(0);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, ipc::PeerFailureKind::kSpawnFailed);

  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

// ----------------------------------------------------------- live updates

TEST(IpcUpdates, UpdateFramesKeepWorkerOraclesInStep) {
  // Two databases that differ by one insert; one supervisor per db, but the
  // first worker fleet is brought in step with kUpdate frames instead of a
  // respawn — its oracle must then match the second fleet's bit for bit.
  auto before = make_db(2, 9);
  auto after_db = make_db(2, 9);
  const std::uint64_t element = 3;
  after_db.insert(0, element);

  ipc::IpcSupervisor supervisor(before, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());
  ASSERT_FALSE(supervisor.update(0, element, +1).has_value());

  ipc::IpcSupervisor reference(after_db, fast_options());
  ASSERT_FALSE(reference.start().has_value());

  RegisterLayout layout;
  const RegisterId elem = layout.add("elem", before.universe());
  const RegisterId count = layout.add("count", before.nu() + 1);
  StateVector updated(layout);
  StateVector fresh(layout);
  ASSERT_FALSE(
      supervisor.oracle_roundtrip(0, false, updated, elem, count).has_value());
  ASSERT_FALSE(
      reference.oracle_roundtrip(0, false, fresh, elem, count).has_value());
  EXPECT_TRUE(bit_identical(updated, fresh));

  // Erase brings it back: the updated worker agrees with the ORIGINAL db.
  ASSERT_FALSE(supervisor.update(0, element, -1).has_value());
  Machine original(before.machine(0).data(), before.nu());
  StateVector reverted(layout);
  StateVector local(layout);
  ASSERT_FALSE(
      supervisor.oracle_roundtrip(0, false, reverted, elem, count).has_value());
  original.apply_oracle(local, elem, count, false);
  EXPECT_TRUE(bit_identical(reverted, local));

  supervisor.shutdown();
  reference.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
  EXPECT_EQ(reference.zombies(), 0u);
}

// ------------------------------------------------------- serving transport

TEST(IpcServing, ServiceOverIpcServesBitIdenticalSamples) {
  serving::ServiceOptions ipc_options;
  ipc_options.workers = 0;
  ipc_options.transport = ipc::TransportKind::kIpc;
  serving::SampleService over_ipc(make_db(2, 21), ipc_options);
  serving::ServiceOptions in_proc_options;
  in_proc_options.workers = 0;
  serving::SampleService in_proc(make_db(2, 21), in_proc_options);

  serving::JobRequest request;
  request.client_seed = 77;
  request.num_samples = 6;
  auto a = over_ipc.run(request);
  auto b = in_proc.run(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.result->samples, b.result->samples);
  EXPECT_EQ(a.result->prep_stats, b.result->prep_stats);
  EXPECT_EQ(over_ipc.active_transport(), ipc::TransportKind::kIpc);
  EXPECT_EQ(over_ipc.health(), ServerHealth::kHealthy);

  // Updates reach the live workers as kUpdate frames; the rebuilt
  // preparation still matches the in-process service draw for draw.
  over_ipc.insert(0, 3);
  in_proc.insert(0, 3);
  over_ipc.insert(1, 7);
  in_proc.insert(1, 7);
  over_ipc.erase(1, 7);
  in_proc.erase(1, 7);
  request.client_seed = 78;
  a = over_ipc.run(request);
  b = in_proc.run(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.result->samples, b.result->samples);

  over_ipc.shutdown();
  in_proc.shutdown();
}

TEST(IpcServing, TransportFailureDemotesToInProcessWithinTheSameJob) {
  serving::ServiceOptions options;
  options.workers = 0;
  options.transport = ipc::TransportKind::kIpc;
  // Every worker dies before its handshake: the IPC transport can never
  // come up, so the FIRST build must demote and still answer in-process.
  options.ipc.kill_before_handshake = true;
  serving::SampleService service(make_db(2, 22), options);

  serving::JobRequest request;
  request.client_seed = 5;
  request.num_samples = 4;
  const auto outcome = service.run(request);
  ASSERT_TRUE(outcome.ok()) << "demoted build should still serve";
  EXPECT_EQ(outcome.result->samples.size(), 4u);
  EXPECT_EQ(service.active_transport(), ipc::TransportKind::kInProcess);
  EXPECT_EQ(service.health(), ServerHealth::kDegraded);
  EXPECT_NE(service.last_failure().find("ipc transport demoted"),
            std::string::npos);

  // clear_faults() re-arms the ladder from the top.
  service.clear_faults();
  EXPECT_EQ(service.active_transport(), ipc::TransportKind::kIpc);
  EXPECT_EQ(service.health(), ServerHealth::kHealthy);
  service.shutdown();
}

// -------------------------------------------------------------- teardown

TEST(IpcShutdown, DrainsAndReapsEveryChildEvenAfterChaos) {
  const auto db = make_db(3, 11);
  ipc::IpcSupervisor supervisor(db, fast_options());
  ASSERT_FALSE(supervisor.start().has_value());

  std::vector<pid_t> pids;
  // Mixed fleet at shutdown: one healthy, one SIGKILLed-unreaped, one
  // SIGSTOPped. shutdown() must drain the healthy one and reap all three.
  supervisor.kill_peer(0);
  supervisor.stop_peer(1);
  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);

  // No child of ours is left at the process level either: waitpid(-1)
  // finds nothing to reap (ECHILD), i.e. no zombies survive the drain.
  int status = 0;
  errno = 0;
  const pid_t reaped = waitpid(-1, &status, WNOHANG);
  const int saved_errno = errno;
  EXPECT_TRUE(reaped == 0 || (reaped == -1 && saved_errno == ECHILD));

  // Idempotent.
  supervisor.shutdown();
  EXPECT_EQ(supervisor.zombies(), 0u);
}

}  // namespace
}  // namespace qs
