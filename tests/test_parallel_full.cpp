// Tests for the literal Lemma 4.4 circuit (sampling/parallel_full.hpp):
// the full-ancilla parallel-query realisation of D is validated against the
// ideal operator, and the production "total shift" shortcut is validated
// against the full circuit — closing the loop on the substitution DESIGN.md
// documents.
#include "sampling/parallel_full.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/gates.hpp"
#include "sampling/circuit.hpp"
#include "sampling/ideal.hpp"

namespace qs {
namespace {

DistributedDatabase tiny_db(std::uint64_t nu = 3) {
  // N = 3, n = 2, counts chosen so both machines matter.
  std::vector<Dataset> datasets = {Dataset::from_counts({1, 0, 2}),
                                   Dataset::from_counts({1, 1, 0})};
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(ParallelFull, TotalShiftComputesJointCountsOnBasisStates) {
  const auto db = tiny_db();
  const ParallelFullCircuit circuit(db);
  const auto& layout = circuit.layout();
  for (std::size_t i = 0; i < db.universe(); ++i) {
    for (std::size_t s = 0; s <= db.nu(); ++s) {
      auto state = circuit.make_state();
      std::size_t start = 0;
      start = layout.with_digit(start, circuit.elem(), i);
      start = layout.with_digit(start, circuit.count(), s);
      state.reset(start);
      circuit.apply_total_shift(state, /*adjoint=*/false);
      const std::size_t expected_count =
          (s + static_cast<std::size_t>(db.total_count(i))) %
          (static_cast<std::size_t>(db.nu()) + 1);
      const std::size_t expected =
          layout.with_digit(start, circuit.count(), expected_count);
      EXPECT_NEAR(std::abs(state.amplitude(expected) - cplx(1.0, 0.0)), 0.0,
                  1e-12)
          << "i=" << i << " s=" << s;
    }
  }
}

TEST(ParallelFull, TotalShiftRestoresAncillasToZero) {
  // After the composite, ALL ancilla registers must be |0⟩ again — the
  // whole point of the uncomputation in Lemma 4.4.
  const auto db = tiny_db();
  const ParallelFullCircuit circuit(db);
  auto state = circuit.make_state();
  // Superposition over elements.
  state.apply_householder(circuit.elem(),
                          uniform_prep_householder_vector(db.universe()));
  circuit.apply_total_shift(state, false);
  // Probability of any nonzero ancilla digit must vanish: total probability
  // mass on the (elem, count, flag) marginal must be 1 with everything else
  // at digit 0. Check via marginals of a few ancilla registers by name.
  const auto& layout = circuit.layout();
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    for (const std::string prefix : {"anc_elem", "anc_count", "anc_flag"}) {
      const auto reg = layout.find(prefix + std::to_string(j));
      EXPECT_NEAR(state.probability_of(reg, 0), 1.0, 1e-12)
          << prefix << j;
    }
  }
}

TEST(ParallelFull, TotalShiftAdjointInverts) {
  const auto db = tiny_db();
  const ParallelFullCircuit circuit(db);
  auto state = circuit.make_state();
  state.apply_householder(circuit.elem(),
                          uniform_prep_householder_vector(db.universe()));
  const StateVector before = state;
  circuit.apply_total_shift(state, false);
  circuit.apply_total_shift(state, true);
  EXPECT_NEAR(state.distance_squared(before), 0.0, 1e-20);
}

TEST(ParallelFull, DistributingMatchesIdealOnWorkingSubspace) {
  // Lemma 4.4's D ≡ ideal D on states with count = 0 and ancillas = 0.
  const auto db = tiny_db();
  const ParallelFullCircuit circuit(db);
  const auto& layout = circuit.layout();
  for (const bool adjoint : {false, true}) {
    for (std::size_t i = 0; i < db.universe(); ++i) {
      for (std::size_t b = 0; b < 2; ++b) {
        std::size_t start = 0;
        start = layout.with_digit(start, circuit.elem(), i);
        start = layout.with_digit(start, circuit.flag(), b);
        auto via_circuit = circuit.make_state();
        via_circuit.reset(start);
        circuit.apply_distributing(via_circuit, adjoint);

        auto via_ideal = circuit.make_state();
        via_ideal.reset(start);
        apply_ideal_distributing(via_ideal, db, circuit.elem(),
                                 circuit.flag(), adjoint);
        EXPECT_NEAR(via_circuit.distance_squared(via_ideal), 0.0, 1e-20)
            << "i=" << i << " b=" << b << " adjoint=" << adjoint;
      }
    }
  }
}

TEST(ParallelFull, DistributingCostsFourParallelRounds) {
  const auto db = tiny_db();
  const ParallelFullCircuit circuit(db);
  db.reset_stats();
  auto state = circuit.make_state();
  circuit.apply_distributing(state, false);
  EXPECT_EQ(db.stats().parallel_rounds, 4u);
  EXPECT_EQ(db.stats().total_sequential(), 0u);
}

TEST(ParallelFull, MatchesProductionLogicalShift) {
  // The production backend's parallel_total_shift must act on the logical
  // registers exactly like the full circuit's composite.
  const auto db = tiny_db();
  const ParallelFullCircuit circuit(db);
  const auto& layout = circuit.layout();

  SingleStateBackend backend(db, StatePrep::kHouseholder);
  backend.prep_uniform(false);
  backend.parallel_total_shift(false);

  auto full = circuit.make_state();
  full.apply_householder(circuit.elem(),
                         uniform_prep_householder_vector(db.universe()));
  circuit.apply_total_shift(full, false);

  // Compare the logical-register amplitudes (ancillas of `full` are |0⟩).
  const auto& logical_layout = backend.state().layout();
  for (std::size_t i = 0; i < db.universe(); ++i) {
    for (std::size_t s = 0; s <= db.nu(); ++s) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::vector<std::size_t> digits = {i, s, b};
        std::size_t full_index = 0;
        full_index = layout.with_digit(full_index, circuit.elem(), i);
        full_index = layout.with_digit(full_index, circuit.count(), s);
        full_index = layout.with_digit(full_index, circuit.flag(), b);
        EXPECT_NEAR(
            std::abs(backend.state().amplitude(
                         logical_layout.index_of(digits)) -
                     full.amplitude(full_index)),
            0.0, 1e-12);
      }
    }
  }
}

TEST(ParallelFull, RejectsOversizedInstances) {
  // N=8, ν=3, n=4 → (8·4·2)^4 · 64 ≫ the guard threshold.
  std::vector<Dataset> datasets(4, Dataset::from_counts({1, 1, 1, 1, 1, 1, 1,
                                                         1}));
  const DistributedDatabase db(std::move(datasets), 4);
  EXPECT_THROW(ParallelFullCircuit{db}, ContractViolation);
}

}  // namespace
}  // namespace qs
