// Tests for statistics helpers (common/stats.hpp).
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace qs {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, MatchesDirectComputation) {
  Accumulator acc;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  double sum = 0.0;
  for (const auto x : xs) {
    acc.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double ss = 0.0;
  for (const auto x : xs) ss += (x - mean) * (x - mean);
  EXPECT_NEAR(acc.mean(), mean, 1e-12);
  EXPECT_NEAR(acc.variance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 16.0);
}

TEST(Accumulator, NumericallyStableForLargeOffsets) {
  Accumulator acc;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) acc.add(offset + (i % 2));
  EXPECT_NEAR(acc.mean(), offset + 0.5, 1e-3);
  EXPECT_NEAR(acc.variance(), 0.25 * 1000 / 999.0, 1e-3);
}

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> xs = {0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (const auto x : xs) ys.push_back(2.5 * x - 1.0);
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyDataStillCloseWithLowerR2) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(3.0 * x + 1.0 + 0.5 * rng.normal());
  }
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.3);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {2.0}), ContractViolation);
  EXPECT_THROW(fit_line({1.0, 1.0}, {1.0, 2.0}), ContractViolation);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), ContractViolation);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(7.0 * std::pow(static_cast<double>(i), 0.5));
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 1e-10);          // exponent
  EXPECT_NEAR(std::exp(fit.intercept), 7.0, 1e-8);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  EXPECT_THROW(fit_power_law({1.0, 0.0}, {1.0, 1.0}), ContractViolation);
  EXPECT_THROW(fit_power_law({1.0, 2.0}, {1.0, -1.0}), ContractViolation);
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0).value(), 1u);
  EXPECT_EQ(binomial(5, 0).value(), 1u);
  EXPECT_EQ(binomial(5, 5).value(), 1u);
  EXPECT_EQ(binomial(5, 2).value(), 10u);
  EXPECT_EQ(binomial(10, 3).value(), 120u);
  EXPECT_EQ(binomial(52, 5).value(), 2598960u);
  EXPECT_EQ(binomial(3, 7).value(), 0u);  // k > n
}

TEST(Binomial, PascalIdentityHolds) {
  for (std::uint64_t n = 1; n <= 30; ++n) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k).value(),
                binomial(n - 1, k - 1).value() + binomial(n - 1, k).value())
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Binomial, OverflowReportsNullopt) {
  EXPECT_FALSE(binomial(200, 100).has_value());
  EXPECT_TRUE(binomial(62, 28).has_value());
}

TEST(LogBinomial, MatchesExactForModerateInputs) {
  for (std::uint64_t n = 1; n <= 40; ++n) {
    for (std::uint64_t k = 0; k <= n; k += 3) {
      const auto exact = binomial(n, k);
      ASSERT_TRUE(exact.has_value());
      EXPECT_NEAR(log_binomial(n, k),
                  std::log(static_cast<double>(exact.value())), 1e-9);
    }
  }
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_THROW(median({}), ContractViolation);
}

}  // namespace
}  // namespace qs
