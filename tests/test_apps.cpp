// Tests for the applications layer: distributed index erasure and weighted
// (rejection) sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "apps/index_erasure.hpp"
#include "apps/weighted_sampling.hpp"
#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

TEST(IndexErasure, InjectiveTableGivesUniformImageSuperposition) {
  // f : [6] → [32], injective.
  const std::vector<std::size_t> f = {3, 7, 11, 19, 23, 30};
  const auto result =
      distributed_index_erasure(f, 32, 2, QueryMode::kSequential);
  EXPECT_TRUE(result.injective);
  EXPECT_EQ(result.domain_size, 6u);
  EXPECT_NEAR(result.sampling.fidelity, 1.0, 1e-9);

  const auto amps = result.sampling.output_amplitudes();
  for (std::size_t i = 0; i < 32; ++i) {
    const bool in_image = std::find(f.begin(), f.end(), i) != f.end();
    EXPECT_NEAR(std::norm(amps[i]), in_image ? 1.0 / 6.0 : 0.0, 1e-9)
        << "image point " << i;
  }
}

TEST(IndexErasure, ParallelModeAgrees) {
  const std::vector<std::size_t> f = {1, 4, 9, 16, 25};
  const auto seq = distributed_index_erasure(f, 27, 3,
                                             QueryMode::kSequential);
  const auto par = distributed_index_erasure(f, 27, 3, QueryMode::kParallel);
  EXPECT_NEAR(pure_fidelity(seq.sampling.state, par.sampling.state), 1.0,
              1e-9);
}

TEST(IndexErasure, NonInjectiveTableWeightsByMultiplicity) {
  const std::vector<std::size_t> f = {2, 2, 2, 5};  // value 2 thrice
  const auto result =
      distributed_index_erasure(f, 8, 2, QueryMode::kSequential);
  EXPECT_FALSE(result.injective);
  const auto amps = result.sampling.output_amplitudes();
  EXPECT_NEAR(std::norm(amps[2]), 0.75, 1e-9);
  EXPECT_NEAR(std::norm(amps[5]), 0.25, 1e-9);
}

TEST(IndexErasure, ValidatesArguments) {
  const std::vector<std::size_t> f = {1, 2};
  EXPECT_THROW(distributed_index_erasure({}, 8, 1, QueryMode::kSequential),
               ContractViolation);
  EXPECT_THROW(distributed_index_erasure(f, 8, 3, QueryMode::kSequential),
               ContractViolation);
  const std::vector<std::size_t> oob = {9};
  EXPECT_THROW(distributed_index_erasure(oob, 8, 1, QueryMode::kSequential),
               ContractViolation);
}

DistributedDatabase weighted_test_db() {
  std::vector<Dataset> datasets = {Dataset(16), Dataset(16)};
  for (std::size_t i = 0; i < 8; ++i) datasets[i % 2].insert(i, 1 + i % 3);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(WeightedSampling, ExactWithKnownZ) {
  const auto db = weighted_test_db();
  std::vector<double> weights(16, 0.0);
  for (std::size_t i = 0; i < 16; ++i)
    weights[i] = 1.0 + static_cast<double>(i % 4);
  // True Z from the data (the "public Z" scenario).
  const auto counts = db.joint_counts();
  double z = 0.0;
  for (std::size_t i = 0; i < 16; ++i)
    z += static_cast<double>(counts[i]) * weights[i];

  Rng rng(3);
  const auto result =
      run_weighted_sampler(db, weights, QueryMode::kSequential, z,
                           exponential_schedule(3, 8), rng);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  EXPECT_EQ(result.estimation_cost, 0u);

  // Output amplitudes match √(c_i w_i / Z).
  const auto target = weighted_target_amplitudes(db, weights);
  const auto& layout = result.state.layout();
  std::vector<std::size_t> digits(3, 0);
  for (std::size_t i = 0; i < 16; ++i) {
    digits[result.registers.elem.value] = i;
    EXPECT_NEAR(std::norm(result.state.amplitude(layout.index_of(digits))),
                std::norm(target[i]), 1e-9);
  }
}

TEST(WeightedSampling, UniformWeightsReduceToPlainSampling) {
  const auto db = weighted_test_db();
  const std::vector<double> weights(16, 2.5);
  const double z = 2.5 * static_cast<double>(db.total());
  Rng rng(5);
  const auto weighted =
      run_weighted_sampler(db, weights, QueryMode::kSequential, z,
                           exponential_schedule(3, 8), rng);
  const auto plain = run_sequential_sampler(db);
  EXPECT_NEAR(pure_fidelity(weighted.state, plain.state), 1.0, 1e-9);
}

TEST(WeightedSampling, EstimatedZStillAchievesHighFidelity) {
  const auto db = weighted_test_db();
  std::vector<double> weights(16, 1.0);
  for (std::size_t i = 0; i < 8; ++i) weights[i] = 3.0;
  Rng rng(7);
  const auto result = run_weighted_sampler(
      db, weights, QueryMode::kSequential, std::nullopt,
      exponential_schedule(7, 64), rng);
  EXPECT_GT(result.estimation_cost, 0u);
  EXPECT_GT(result.fidelity, 0.95);
}

TEST(WeightedSampling, ZeroWeightExcludesElements) {
  const auto db = weighted_test_db();
  std::vector<double> weights(16, 0.0);
  weights[0] = 1.0;  // keep only element 0 (joint count > 0)
  const auto counts = db.joint_counts();
  ASSERT_GT(counts[0], 0u);
  const double z = static_cast<double>(counts[0]);
  Rng rng(9);
  const auto result =
      run_weighted_sampler(db, weights, QueryMode::kParallel, z,
                           exponential_schedule(3, 8), rng);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  const auto& layout = result.state.layout();
  std::vector<std::size_t> digits(3, 0);
  digits[result.registers.elem.value] = 0;
  EXPECT_NEAR(std::norm(result.state.amplitude(layout.index_of(digits))),
              1.0, 1e-9);
}

TEST(WeightedSampling, ValidatesWeights) {
  const auto db = weighted_test_db();
  Rng rng(11);
  const std::vector<double> wrong_size(8, 1.0);
  EXPECT_THROW(run_weighted_sampler(db, wrong_size, QueryMode::kSequential,
                                    1.0, exponential_schedule(2, 4), rng),
               ContractViolation);
  const std::vector<double> negative = [] {
    std::vector<double> w(16, 1.0);
    w[3] = -0.5;
    return w;
  }();
  EXPECT_THROW(weighted_target_amplitudes(db, negative), ContractViolation);
  const std::vector<double> zero(16, 0.0);
  EXPECT_THROW(run_weighted_sampler(db, zero, QueryMode::kSequential, 1.0,
                                    exponential_schedule(2, 4), rng),
               ContractViolation);
}

}  // namespace
}  // namespace qs
