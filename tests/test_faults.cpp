// Tests for the fault-injection and recovery subsystem (src/faults/): the
// seeded/scripted FaultPlan, the FaultyTransportSession attempt semantics,
// the circuit breaker, recovery planning (work-list displacement, adjoint
// mirroring, exhaustion), the recovered sampler run, the oracle-seam
// scoping, and the SampleServer's graceful degradation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "apps/sample_server.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "faults/fault_plan.hpp"
#include "faults/faulty_transport.hpp"
#include "faults/recovery.hpp"
#include "faults/retry.hpp"
#include "qsim/measure.hpp"
#include "sampling/fault_seam.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"

namespace qs {
namespace {

DistributedDatabase make_db(std::uint64_t machines = 3,
                            std::uint64_t seed = 5) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(16, machines, 12, rng);
  const auto nu = min_capacity(datasets) + 2;
  return DistributedDatabase(std::move(datasets), nu);
}

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, SeededPlansAreDeterministic) {
  const auto a = FaultPlan::random(7, 40, 3);
  const auto b = FaultPlan::random(7, 40, 3);
  EXPECT_EQ(a, b);
  const auto c = FaultPlan::random(8, 40, 3);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  for (const auto& e : a.events()) {
    EXPECT_LT(e.event, 40u);
    if (e.kind == FaultKind::kMachineCrash) {
      EXPECT_LT(e.machine, 3u);
    }
  }
}

TEST(FaultPlan, WireFormatRoundTrips) {
  const auto plan = FaultPlan::random(3, 64, 4);
  ASSERT_FALSE(plan.empty());
  const auto reparsed = parse_fault_plan(plan.to_string());
  EXPECT_EQ(plan, reparsed);
}

TEST(FaultPlan, ParserNamesTheOffendingLine) {
  const std::string bad =
      "# dqs-fault-plan-v1\ncrash event=2 machine=0 duration=3\nbogus "
      "event=1\n";
  try {
    (void)parse_fault_plan(bad);
    FAIL() << "should reject the unknown fault kind";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("line 3"),
              std::string::npos)
        << violation.what();
  }
  EXPECT_THROW((void)parse_fault_plan("drop event=x"), ContractViolation);
}

TEST(FaultPlan, CrashAndDelayNeedPositiveDurations) {
  EXPECT_THROW(
      FaultPlan({FaultEvent{0, FaultKind::kMachineCrash, 0, 0}}),
      ContractViolation);
  EXPECT_THROW(FaultPlan({FaultEvent{0, FaultKind::kDelay, 0, 0}}),
               ContractViolation);
  EXPECT_NO_THROW(FaultPlan({FaultEvent{0, FaultKind::kDropBundle, 0, 0}}));
}

// -------------------------------------------------- FaultyTransportSession

TEST(FaultyTransport, DropFailsOnceThenTheRetrySucceeds) {
  const FaultPlan plan({FaultEvent{1, FaultKind::kDropBundle, 0, 0}});
  FaultyTransportSession ft(2, plan);
  EXPECT_EQ(ft.attempt_sequential(0).result, AttemptResult::kOk);
  EXPECT_EQ(ft.attempt_sequential(1).result, AttemptResult::kDropped);
  EXPECT_EQ(ft.attempt_sequential(1).result, AttemptResult::kOk);
  EXPECT_EQ(ft.primary_events(), 2u);
  EXPECT_EQ(ft.injected(FaultKind::kDropBundle), 1u);
  EXPECT_TRUE(ft.session().quiescent());
}

TEST(FaultyTransport, CrashDownsOneMachineForItsDuration) {
  const FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, 1, 3}});
  FaultyTransportSession ft(2, plan);
  EXPECT_EQ(ft.attempt_sequential(1).result, AttemptResult::kMachineDown);
  EXPECT_FALSE(ft.machine_up(1));
  // The OTHER machine is unaffected while machine 1 is down.
  EXPECT_EQ(ft.attempt_sequential(0).result, AttemptResult::kOk);
  ft.wait(ft.up_at(1) - ft.clock());  // sleep until the restart
  EXPECT_TRUE(ft.machine_up(1));
  EXPECT_EQ(ft.attempt_sequential(1).result, AttemptResult::kOk);
  EXPECT_EQ(ft.injected_total(), 1u);
}

TEST(FaultyTransport, StragglerDelayLandsOnTheSuccessfulAttempt) {
  const FaultPlan plan({FaultEvent{0, FaultKind::kDelay, 0, 5}});
  FaultyTransportSession ft(2, plan);
  const auto attempt = ft.attempt_sequential(0);
  EXPECT_EQ(attempt.result, AttemptResult::kOk);
  EXPECT_EQ(attempt.delay, 5u);
  EXPECT_EQ(ft.clock(), 6u);  // 1 for the attempt + 5 straggler events
}

TEST(FaultyTransport, CollectiveRoundNeedsEveryMachine) {
  const FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, 2, 4}});
  FaultyTransportSession ft(3, plan);
  const auto attempt = ft.attempt_parallel_round();
  EXPECT_EQ(attempt.result, AttemptResult::kMachineDown);
  EXPECT_EQ(attempt.machine, 2u);  // the straggling site is named
  ft.wait(8);
  EXPECT_EQ(ft.attempt_parallel_round().result, AttemptResult::kOk);
  EXPECT_EQ(ft.session().completed_rounds(), 1u);
}

TEST(FaultyTransport, CrashOutOfRangeRejectedAtConstruction) {
  const FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, 5, 2}});
  EXPECT_THROW(FaultyTransportSession(2, plan), ContractViolation);
}

// ----------------------------------------------------------- CircuitBreaker

TEST(CircuitBreaker, OpensAfterThresholdAndProbesAfterCooldown) {
  RetryPolicy policy;
  policy.breaker_threshold = 2;
  policy.breaker_cooldown = 4;
  CircuitBreaker breaker(policy);
  EXPECT_TRUE(breaker.allows(0));
  EXPECT_FALSE(breaker.on_failure(0));  // 1st failure: still closed
  EXPECT_TRUE(breaker.on_failure(1));   // 2nd: OPENS
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allows(2));  // cooling down
  EXPECT_TRUE(breaker.allows(5));   // half-open probe allowed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.on_failure(5));  // failed probe reopens immediately
  EXPECT_FALSE(breaker.allows(6));
  EXPECT_TRUE(breaker.allows(9));
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------------------ plan_recovery

bool outcomes_equal(const RecoveryOutcome& a, const RecoveryOutcome& b) {
  if (a.ok != b.ok || !(a.ledger == b.ledger) ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    if (!(a.events[i].event == b.events[i].event) ||
        a.events[i].attempts != b.events[i].attempts ||
        a.events[i].waited != b.events[i].waited ||
        a.events[i].displaced != b.events[i].displaced) {
      return false;
    }
  }
  return true;
}

TEST(PlanRecovery, FaultFreePlanReproducesTheScheduleExactly) {
  const auto db = make_db();
  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  const auto outcome =
      plan_recovery(schedule, db.num_machines(), FaultPlan(), RetryPolicy{});
  ASSERT_TRUE(outcome.ok);
  ASSERT_EQ(outcome.events.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_TRUE(outcome.events[i].event == schedule.events()[i]);
    EXPECT_EQ(outcome.events[i].attempts, 1u);
    EXPECT_FALSE(outcome.events[i].displaced);
  }
  EXPECT_EQ(outcome.ledger.injected_faults, 0u);
  EXPECT_EQ(outcome.ledger.failed_attempts, 0u);
}

TEST(PlanRecovery, TransientFaultCostsOneRetryWithoutDisplacement) {
  const auto db = make_db();
  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  const FaultPlan plan({FaultEvent{2, FaultKind::kOracleTransient, 0, 0}});
  const auto outcome =
      plan_recovery(schedule, db.num_machines(), plan, RetryPolicy{});
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.ledger.injected_transients, 1u);
  EXPECT_EQ(outcome.ledger.failed_attempts, 1u);
  std::uint32_t total_attempts = 0;
  for (const auto& ev : outcome.events) {
    total_attempts += ev.attempts;
    EXPECT_FALSE(ev.displaced);
    EXPECT_TRUE(ev.event == schedule.events()[&ev - outcome.events.data()]);
  }
  EXPECT_EQ(total_attempts, schedule.size() + 1);
}

TEST(PlanRecovery, CrashDisplacesWithinTheBlockAndMirrorsTheAdjoint) {
  const auto db = make_db(3);
  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  // Crash the machine owning the FIRST slot right as it is attempted: the
  // work list runs the rest of the block first, then comes back.
  const auto first = schedule.events().front().machine;
  const FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, first, 2}});
  const auto outcome =
      plan_recovery(schedule, db.num_machines(), plan, RetryPolicy{});
  ASSERT_TRUE(outcome.ok);
  bool displaced = false;
  for (const auto& ev : outcome.events) displaced |= ev.displaced;
  EXPECT_TRUE(displaced);
  EXPECT_GE(outcome.ledger.deferrals, 1u);
  EXPECT_EQ(outcome.ledger.injected_crashes, 1u);
  // Same event multiset, and the recovered order still passes the full
  // structural verifier — in particular the LIFO adjoint-nesting pass,
  // which only holds if the C† block mirrors the displaced C order.
  Transcript recovered;
  for (const auto& ev : outcome.events) {
    ASSERT_EQ(ev.event.kind, QueryKind::kSequential);
    recovered.record_sequential(ev.event.machine, ev.event.adjoint);
  }
  const auto params = public_params_of(db);
  const auto report = analysis::verify_program(
      analysis::lift_transcript(recovered, params, QueryMode::kSequential));
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_TRUE(stats_of(recovered, db.num_machines()) ==
              stats_of(schedule, db.num_machines()));
}

TEST(PlanRecovery, IsAPureFunctionOfItsInputs) {
  const auto db = make_db(3);
  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  const auto plan = FaultPlan::random(11, schedule.size(), 3);
  const auto a =
      plan_recovery(schedule, db.num_machines(), plan, RetryPolicy{});
  const auto b =
      plan_recovery(schedule, db.num_machines(), plan, RetryPolicy{});
  ASSERT_TRUE(a.ok);
  EXPECT_TRUE(outcomes_equal(a, b));
}

TEST(PlanRecovery, UnsurvivableCrashExhaustsWithATypedFailure) {
  const auto db = make_db(2);
  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  const auto first = schedule.events().front().machine;
  const FaultPlan plan(
      {FaultEvent{0, FaultKind::kMachineCrash, first, 1000000}});
  RetryPolicy policy;
  policy.max_wait_events = 32;
  const auto outcome =
      plan_recovery(schedule, db.num_machines(), plan, policy);
  ASSERT_FALSE(outcome.ok);
  ASSERT_TRUE(outcome.failed_event.has_value());
  EXPECT_NE(outcome.failure.find("machine " + std::to_string(first)),
            std::string::npos)
      << outcome.failure;
  EXPECT_NE(outcome.failure.find("event"), std::string::npos);
  EXPECT_GT(outcome.ledger.breaker_opens, 0u);
}

// -------------------------------------------------- run_sampler_with_faults

TEST(FaultedRun, CrashRecoveryIsBitIdenticalToTheFaultFreeRun) {
  const auto db = make_db(3);
  Transcript t0;
  SamplerOptions base;
  base.transcript = &t0;
  const auto r0 = run_sequential_sampler(db, base);

  const auto schedule = compile_schedule(db, QueryMode::kSequential);
  const auto first = schedule.events().front().machine;
  const FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, first, 2},
                        FaultEvent{4, FaultKind::kOracleTransient, 0, 0}});
  Transcript t1;
  SamplerOptions faulted;
  faulted.transcript = &t1;
  const auto run = run_sampler_with_faults(db, QueryMode::kSequential, plan,
                                           RetryPolicy{}, faulted);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run.result->state.amplitudes().size(),
            r0.state.amplitudes().size());
  for (std::size_t i = 0; i < r0.state.amplitudes().size(); ++i) {
    EXPECT_EQ(run.result->state.amplitudes()[i], r0.state.amplitudes()[i])
        << "amplitude " << i << " not bit-identical";
  }
  EXPECT_EQ(run.result->fidelity, r0.fidelity);
  EXPECT_TRUE(run.result->stats == r0.stats);
  EXPECT_FALSE(t1 == t0);  // the crash really displaced the schedule
  EXPECT_EQ(run.recovery.ledger.injected_faults, plan.size());
}

TEST(FaultedRun, FailedRecoveryReturnsNoResult) {
  const auto db = make_db(2);
  const FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, 0, 1000000},
                        FaultEvent{0, FaultKind::kMachineCrash, 1, 1000000}});
  RetryPolicy policy;
  policy.max_wait_events = 16;
  const auto run = run_sampler_with_faults(db, QueryMode::kSequential, plan,
                                           policy, SamplerOptions{});
  EXPECT_FALSE(run.ok());
  EXPECT_FALSE(run.recovery.ok);
  EXPECT_FALSE(run.recovery.failure.empty());
}

// ------------------------------------------------------ oracle seam scoping

struct IdentityInterposer final : OracleInterposer {
  std::size_t on_sequential(std::size_t scheduled, bool) override {
    ++calls;
    return scheduled;
  }
  void on_parallel_round(bool) override { ++calls; }
  int calls = 0;
};

TEST(OracleSeam, ScopesInstallAndRestoreLikeAStack) {
  EXPECT_EQ(oracle_interposer(), nullptr);
  IdentityInterposer outer;
  {
    OracleInterposerScope outer_scope(outer);
    EXPECT_EQ(oracle_interposer(), &outer);
    IdentityInterposer inner;
    {
      OracleInterposerScope inner_scope(inner);
      EXPECT_EQ(oracle_interposer(), &inner);
    }
    EXPECT_EQ(oracle_interposer(), &outer);
  }
  EXPECT_EQ(oracle_interposer(), nullptr);
}

TEST(OracleSeam, PassThroughInterposerDoesNotChangeTheRun) {
  const auto db = make_db(3);
  const auto r0 = run_sequential_sampler(db);
  IdentityInterposer identity;
  OracleInterposerScope scope(identity);
  const auto r1 = run_sequential_sampler(db);
  EXPECT_GT(identity.calls, 0);
  for (std::size_t i = 0; i < r0.state.amplitudes().size(); ++i) {
    ASSERT_EQ(r1.state.amplitudes()[i], r0.state.amplitudes()[i]);
  }
}

// --------------------------------------------- SampleServer degradation

TEST(SampleServerFaults, RecoverableFaultsDegradeButStillServe) {
  auto db = make_db(3, 9);
  SampleServer server(std::move(db), QueryMode::kSequential);
  FaultPlan plan({FaultEvent{1, FaultKind::kOracleTransient, 0, 0}});
  server.arm_faults(plan);
  EXPECT_TRUE(server.faults_armed());
  Rng rng(21);
  (void)server.draw(rng);
  EXPECT_EQ(server.health(), ServerHealth::kDegraded);
  EXPECT_EQ(server.recovery_ledger().injected_faults, 1u);
  EXPECT_EQ(server.fallback_draws(), 0u);
  // Every rebuild faces the armed plan again; the ledger accumulates.
  (void)server.draw(rng);
  EXPECT_EQ(server.recovery_ledger().injected_faults, 2u);
  server.disarm_faults();
  EXPECT_EQ(server.health(), ServerHealth::kHealthy);
  (void)server.draw(rng);
  EXPECT_EQ(server.recovery_ledger().injected_faults, 2u);
}

TEST(SampleServerFaults, ExhaustedRetriesFallBackToTheClassicalSampler) {
  // Single machine, all mass on element 3 — the classical fallback must
  // keep serving the exact distribution.
  std::vector<Dataset> datasets = {Dataset(8)};
  datasets[0].insert(3, 4);
  SampleServer server(DistributedDatabase(std::move(datasets), 4),
                      QueryMode::kSequential);
  FaultPlan plan({FaultEvent{0, FaultKind::kMachineCrash, 0, 1000000}});
  RetryPolicy policy;
  policy.max_wait_events = 16;
  server.arm_faults(plan, policy);

  EXPECT_EQ(server.try_state(), nullptr);
  EXPECT_EQ(server.health(), ServerHealth::kFallback);
  EXPECT_FALSE(server.last_failure().empty());
  EXPECT_THROW((void)server.state(), ContractViolation);

  Rng rng(31);
  EXPECT_EQ(server.draw(rng), 3u);  // classical, still exact
  EXPECT_EQ(server.fallback_draws(), 1u);
  EXPECT_EQ(server.classical_queries(), 8u);  // n·N = 1·8 probes
  EXPECT_EQ(server.preparations(), 0u);       // no quantum state was built

  // The fallback is sticky: further draws do not re-attempt the doomed
  // preparation (the ledger stops moving) ...
  const auto injected = server.recovery_ledger().injected_faults;
  EXPECT_EQ(server.draw(rng), 3u);
  EXPECT_EQ(server.recovery_ledger().injected_faults, injected);
  EXPECT_EQ(server.fallback_draws(), 2u);

  // ... until the faults are disarmed, which restores the quantum path.
  server.disarm_faults();
  EXPECT_EQ(server.draw(rng), 3u);
  EXPECT_EQ(server.preparations(), 1u);
  EXPECT_EQ(server.fallback_draws(), 2u);
  EXPECT_EQ(server.health(), ServerHealth::kHealthy);
}

}  // namespace
}  // namespace qs
