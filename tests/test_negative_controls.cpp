// Negative controls — proof that the verification machinery has teeth.
//
// Each test builds a DELIBERATELY BROKEN variant of a core component (an
// off-by-one oracle, a wrong rotation, a skipped uncompute, a biased
// preparation) and asserts that the library's checks — fidelity, the
// statistical verifier, operator distances — actually CATCH it. If any of
// these ever passes, the surrounding test suite has lost its power.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/gates.hpp"
#include "sampling/ideal.hpp"
#include "sampling/samplers.hpp"
#include "sampling/verify.hpp"

namespace qs {
namespace {

DistributedDatabase control_db() {
  Rng rng(3);
  auto datasets = workload::uniform_random(16, 2, 14, rng);
  const auto nu = min_capacity(datasets) + 2;
  return DistributedDatabase(std::move(datasets), nu);
}

/// Run the sampler but corrupt D: the counter shift is off by one for
/// every element (an off-by-one counting oracle).
double fidelity_with_off_by_one_oracle(const DistributedDatabase& db) {
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  const AAPlan plan = plan_zero_error(
      double(db.total()) / (double(db.nu()) * double(db.universe())));

  StateVector state(regs.layout);
  const auto prep = uniform_prep_householder_vector(db.universe());
  const auto rot_fwd = make_u_rotations(db.nu(), false);
  const auto rot_adj = make_u_rotations(db.nu(), true);
  const std::size_t modulus = regs.layout.dim(regs.count);
  const auto joint = db.joint_counts();
  std::vector<std::size_t> bad_fwd(joint.size()), bad_bwd(joint.size());
  for (std::size_t i = 0; i < joint.size(); ++i) {
    bad_fwd[i] = (static_cast<std::size_t>(joint[i]) + 1) % modulus;  // BUG
    bad_bwd[i] = (modulus - bad_fwd[i]) % modulus;
  }
  const auto apply_bad_d = [&](bool adjoint) {
    state.apply_value_shift(regs.count, regs.elem, bad_fwd);
    const auto& rots = adjoint ? rot_adj : rot_fwd;
    state.apply_conditioned_unitary(
        regs.flag, [&](std::size_t base) -> const Matrix* {
          return &rots[regs.layout.digit(base, regs.count)];
        });
    state.apply_value_shift(regs.count, regs.elem, bad_bwd);
  };
  state.apply_householder(regs.elem, prep);
  apply_bad_d(false);
  const std::size_t iterations =
      plan.full_iterations + (plan.needs_final ? 1 : 0);
  for (std::size_t i = 0; i < iterations; ++i) {
    const bool last = plan.needs_final && i == plan.full_iterations;
    const double varphi = last ? plan.final_varphi : std::acos(-1.0);
    const double phi = last ? plan.final_phi : std::acos(-1.0);
    state.apply_phase_on_register_value(
        regs.flag, 0, cplx{std::cos(varphi), std::sin(varphi)});
    apply_bad_d(true);
    state.apply_householder(regs.elem, prep);
    state.apply_phase_on_basis_state(0, cplx{std::cos(phi), std::sin(phi)});
    state.apply_householder(regs.elem, prep);
    apply_bad_d(false);
    state.apply_global_phase(cplx{-1.0, 0.0});
  }
  return pure_fidelity(target_full_state(db), state);
}

TEST(NegativeControls, OffByOneOracleIsCaughtByFidelity) {
  const auto db = control_db();
  EXPECT_LT(fidelity_with_off_by_one_oracle(db), 0.99);
}

TEST(NegativeControls, WrongRotationAngleBreaksEq7) {
  // 𝒰 built for the WRONG capacity (ν+1 instead of ν) must break the
  // preparation identity of Eq. (7).
  const auto db = control_db();
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  StateVector state(regs.layout);
  state.apply_householder(regs.elem,
                          uniform_prep_householder_vector(db.universe()));
  // Load counts, rotate with the wrong table, unload.
  const auto joint = db.joint_counts();
  const std::size_t modulus = regs.layout.dim(regs.count);
  std::vector<std::size_t> fwd(joint.size()), bwd(joint.size());
  for (std::size_t i = 0; i < joint.size(); ++i) {
    fwd[i] = static_cast<std::size_t>(joint[i]) % modulus;
    bwd[i] = (modulus - fwd[i]) % modulus;
  }
  const auto wrong = make_u_rotations(db.nu() + 1, false);  // BUG
  state.apply_value_shift(regs.count, regs.elem, fwd);
  state.apply_conditioned_unitary(
      regs.flag, [&](std::size_t base) -> const Matrix* {
        return &wrong[regs.layout.digit(base, regs.count)];
      });
  state.apply_value_shift(regs.count, regs.elem, bwd);

  const double a = double(db.total()) /
                   (double(db.nu()) * double(db.universe()));
  // The good-flag probability must NOT equal a (it would with the right 𝒰).
  EXPECT_GT(std::abs(state.probability_of(regs.flag, 0) - a), 1e-3);
}

TEST(NegativeControls, SkippedUncomputeLeavesCounterEntangled) {
  // Omitting the third step of Lemma 4.2 leaves the counter register
  // correlated with the element register — the state cannot match the
  // target, whose counter is |0⟩.
  const auto db = control_db();
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  SingleStateBackend backend(db, StatePrep::kHouseholder);
  backend.prep_uniform(false);
  for (std::size_t j = 0; j < db.num_machines(); ++j)
    backend.oracle(j, false);
  backend.rotation_u(false);
  // BUG: no uncompute.
  const double p_count_zero =
      backend.state().probability_of(regs.count, 0);
  EXPECT_LT(p_count_zero, 0.999);
}

TEST(NegativeControls, BiasedPreparationFailsStatisticalVerification) {
  // A "sampler" that just outputs the uniform superposition (skipping
  // amplification entirely) must be rejected by the chi-square verifier
  // on a skewed database.
  Rng gen(5);
  auto datasets = workload::zipf(16, 1, 100, 1.4, gen);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);

  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  StateVector uniform(regs.layout);
  uniform.apply_householder(regs.elem,
                            uniform_prep_householder_vector(db.universe()));
  Rng rng(7);
  const auto verdict =
      verify_output_distribution(uniform, regs.elem, db, 20000, rng);
  EXPECT_FALSE(verdict.consistent());
}

TEST(NegativeControls, AdjointMismatchIsVisibleAtOperatorLevel) {
  // Using D instead of D† inside Q breaks the reflection structure: the
  // trajectory leaves the 2-plane and the final fidelity drops.
  const auto db = control_db();
  SingleStateBackend backend(db, StatePrep::kHouseholder);
  const AAPlan plan = plan_zero_error(
      double(db.total()) / (double(db.nu()) * double(db.universe())));
  backend.prep_uniform(false);
  apply_distributing_operator(backend, QueryMode::kSequential, false);
  for (std::size_t i = 0; i < plan.full_iterations; ++i) {
    backend.phase_good(std::acos(-1.0));
    // BUG: forward D where D† belongs.
    apply_distributing_operator(backend, QueryMode::kSequential, false);
    backend.prep_uniform(true);
    backend.phase_initial(std::acos(-1.0));
    backend.prep_uniform(false);
    apply_distributing_operator(backend, QueryMode::kSequential, false);
    backend.global_phase(std::acos(-1.0));
  }
  if (plan.full_iterations > 0) {
    EXPECT_LT(pure_fidelity(target_full_state(db), backend.state()),
              0.999);
  }
}

}  // namespace
}  // namespace qs
