// Tests for communication-volume accounting (distdb/communication.hpp).
#include "distdb/communication.hpp"

#include <gtest/gtest.h>

#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(Communication, QubitsForDimension) {
  EXPECT_EQ(qubits_for_dimension(1), 1u);
  EXPECT_EQ(qubits_for_dimension(2), 1u);
  EXPECT_EQ(qubits_for_dimension(3), 2u);
  EXPECT_EQ(qubits_for_dimension(4), 2u);
  EXPECT_EQ(qubits_for_dimension(5), 3u);
  EXPECT_EQ(qubits_for_dimension(1024), 10u);
  EXPECT_EQ(qubits_for_dimension(1025), 11u);
}

TEST(Communication, SequentialLedgerTranslation) {
  std::vector<Dataset> datasets(3, Dataset(16));
  datasets[0].insert(0, 2);
  const DistributedDatabase db(std::move(datasets), 3);
  QueryStats stats;
  stats.sequential_per_machine = {4, 2, 0};
  const auto report = communication_report(db, stats);
  EXPECT_EQ(report.elem_qubits, 4u);     // log2 16
  EXPECT_EQ(report.counter_qubits, 2u);  // log2 4
  EXPECT_EQ(report.messages, 2u * 6u);
  EXPECT_EQ(report.qubits_moved, 2u * 6u * 6u);
  EXPECT_EQ(report.rounds, 6u);
}

TEST(Communication, ParallelRoundLatencyIndependentOfN) {
  std::vector<Dataset> datasets(8, Dataset(16));
  datasets[0].insert(0, 1);
  const DistributedDatabase db(std::move(datasets), 1);
  QueryStats stats;
  stats.sequential_per_machine.assign(8, 0);
  stats.parallel_rounds = 5;
  const auto report = communication_report(db, stats);
  EXPECT_EQ(report.rounds, 5u);                 // latency: one per round
  EXPECT_EQ(report.messages, 2u * 8u * 5u);     // volume: scales with n
  // per bundle: 4 elem + 1 counter + 1 control = 6 qubits.
  EXPECT_EQ(report.qubits_moved, 2u * 8u * 6u * 5u);
}

TEST(Communication, RealSamplerRunsCompareAsTheoryPredicts) {
  Rng rng(3);
  auto datasets = workload::uniform_random(64, 6, 32, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto seq = run_sequential_sampler(db);
  const auto seq_report = communication_report(db, seq.stats);
  const auto par = run_parallel_sampler(db);
  const auto par_report = communication_report(db, par.stats);

  // Latency: parallel wins by ~n/2 (2n sequential queries vs 4 rounds/D).
  EXPECT_LT(par_report.rounds, seq_report.rounds);
  // Total volume: same order — parallelism trades latency, not bandwidth.
  EXPECT_GT(2 * par_report.qubits_moved, seq_report.qubits_moved);
}

}  // namespace
}  // namespace qs
