// Tests for the synthetic workload generators (distdb/workload.hpp).
#include "distdb/workload.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "distdb/distributed_database.hpp"

namespace qs {
namespace {

std::uint64_t grand_total(const std::vector<Dataset>& datasets) {
  std::uint64_t total = 0;
  for (const auto& d : datasets) total += d.total();
  return total;
}

TEST(Workload, UniformRandomTotalsAndDeterminism) {
  Rng a(5), b(5);
  const auto w1 = workload::uniform_random(32, 4, 100, a);
  const auto w2 = workload::uniform_random(32, 4, 100, b);
  EXPECT_EQ(w1.size(), 4u);
  EXPECT_EQ(grand_total(w1), 100u);
  EXPECT_EQ(w1, w2);  // same seed, same workload
}

TEST(Workload, UniformRandomSpreadsAcrossMachines) {
  Rng rng(7);
  const auto w = workload::uniform_random(16, 4, 4000, rng);
  for (const auto& d : w) {
    EXPECT_GT(d.total(), 800u);
    EXPECT_LT(d.total(), 1200u);
  }
}

TEST(Workload, ZipfIsSkewedTowardSmallElements) {
  Rng rng(11);
  const auto w = workload::zipf(64, 2, 5000, 1.3, rng);
  EXPECT_EQ(grand_total(w), 5000u);
  std::uint64_t first = 0, last = 0;
  for (const auto& d : w) {
    first += d.count(0);
    last += d.count(63);
  }
  EXPECT_GT(first, 20 * std::max<std::uint64_t>(last, 1));
}

TEST(Workload, DisjointPartitionCoversUniverseOnce) {
  const auto w = workload::disjoint_partition(20, 3, 2);
  EXPECT_EQ(grand_total(w), 40u);
  for (std::size_t i = 0; i < 20; ++i) {
    int owners = 0;
    for (const auto& d : w) {
      if (d.count(i) > 0) {
        ++owners;
        EXPECT_EQ(d.count(i), 2u);
      }
    }
    EXPECT_EQ(owners, 1) << "element " << i;
  }
}

TEST(Workload, DisjointPartitionBalanced) {
  const auto w = workload::disjoint_partition(30, 3, 1);
  for (const auto& d : w) EXPECT_EQ(d.total(), 10u);
}

TEST(Workload, ReplicatedMachinesAreIdentical) {
  const auto w = workload::replicated(10, 4, 6, 3);
  ASSERT_EQ(w.size(), 4u);
  for (std::size_t j = 1; j < 4; ++j) EXPECT_EQ(w[j], w[0]);
  EXPECT_EQ(w[0].support_size(), 6u);
  EXPECT_EQ(w[0].max_multiplicity(), 3u);
  // Joint multiplicity of a replicated element is n·mult — the shared-key
  // generality Section 1 emphasises.
  EXPECT_EQ(min_capacity(w), 12u);
}

TEST(Workload, HeavyHitterShape) {
  Rng rng(13);
  const auto w = workload::heavy_hitter(16, 2, 2, 50, 1, rng);
  std::uint64_t heavy = 0, light = 0;
  for (const auto& d : w) {
    heavy += d.count(0) + d.count(1);
    for (std::size_t i = 2; i < 16; ++i) light += d.count(i);
  }
  EXPECT_EQ(heavy, 100u);
  EXPECT_EQ(light, 14u);
}

TEST(Workload, ConcentratedPutsEverythingOnOneMachine) {
  const auto w = workload::concentrated(32, 4, 2, 5, 3);
  for (std::size_t j = 0; j < 4; ++j) {
    if (j == 2) {
      EXPECT_EQ(w[j].total(), 15u);
      EXPECT_EQ(w[j].support_size(), 5u);
    } else {
      EXPECT_EQ(w[j].total(), 0u);
    }
  }
}

TEST(Workload, GeneratorsProduceValidDatabases) {
  Rng rng(17);
  for (const auto& datasets :
       {workload::uniform_random(16, 3, 64, rng),
        workload::zipf(16, 3, 64, 1.0, rng),
        workload::disjoint_partition(16, 3, 2),
        workload::replicated(16, 3, 8, 2),
        workload::heavy_hitter(16, 3, 2, 10, 1, rng),
        workload::concentrated(16, 3, 1, 4, 2)}) {
    const auto nu = min_capacity(datasets);
    EXPECT_NO_THROW(DistributedDatabase(datasets, nu));
  }
}

TEST(Workload, ArgumentValidation) {
  Rng rng(19);
  EXPECT_THROW(workload::uniform_random(8, 0, 10, rng), ContractViolation);
  EXPECT_THROW(workload::disjoint_partition(8, 2, 0), ContractViolation);
  EXPECT_THROW(workload::replicated(8, 2, 9, 1), ContractViolation);
  EXPECT_THROW(workload::heavy_hitter(8, 2, 9, 1, 1, rng), ContractViolation);
  EXPECT_THROW(workload::concentrated(8, 2, 2, 4, 1), ContractViolation);
}

}  // namespace
}  // namespace qs
