// Tests for the machine oracles — the paper's Eq. (1) O_j, Eq. (2)/Section 5
// Ô_j, query accounting, and the dynamic-update property from Section 3
// (changing c_ij by 1 composes the oracle with the fixed shift U).
#include "distdb/machine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "qsim/gates.hpp"
#include "qsim/operator_builder.hpp"

namespace qs {
namespace {

struct OracleFixture : ::testing::Test {
  static constexpr std::size_t kUniverse = 4;
  static constexpr std::uint64_t kNu = 5;  // counter dim 6

  RegisterLayout layout;
  RegisterId elem, count, flag;

  OracleFixture() {
    elem = layout.add("elem", kUniverse);
    count = layout.add("count", kNu + 1);
    flag = layout.add("flag", 2);
  }

  std::size_t index(std::size_t i, std::size_t s, std::size_t b) const {
    const std::vector<std::size_t> digits = {i, s, b};
    return layout.index_of(digits);
  }
};

TEST_F(OracleFixture, OracleAddsMultiplicityModNuPlusOne) {
  // c = (2, 0, 5, 1)
  Machine m(Dataset::from_counts({2, 0, 5, 1}), kNu);
  for (std::size_t i = 0; i < kUniverse; ++i) {
    for (std::size_t s = 0; s <= kNu; ++s) {
      StateVector state(layout, index(i, s, 0));
      m.apply_oracle(state, elem, count, /*adjoint=*/false);
      const std::size_t expected =
          (s + static_cast<std::size_t>(m.data().count(i))) % (kNu + 1);
      EXPECT_EQ(state.amplitude(index(i, expected, 0)), cplx(1.0, 0.0))
          << "i=" << i << " s=" << s;
    }
  }
}

TEST_F(OracleFixture, AdjointUndoesOracle) {
  Machine m(Dataset::from_counts({1, 4, 0, 3}), kNu);
  StateVector state(layout);
  // Random-ish superposition.
  std::vector<cplx> amps(layout.total_dim());
  for (std::size_t i = 0; i < amps.size(); ++i)
    amps[i] = cplx(std::sin(0.1 * double(i + 1)), std::cos(0.2 * double(i)));
  StateVector ref(layout);
  ref.set_amplitudes(amps);
  ref.normalize();
  state.set_amplitudes(
      std::vector<cplx>(ref.amplitudes().begin(), ref.amplitudes().end()));
  m.apply_oracle(state, elem, count, false);
  m.apply_oracle(state, elem, count, true);
  EXPECT_NEAR(state.distance_squared(ref), 0.0, 1e-24);
}

TEST_F(OracleFixture, OracleIsAPermutationOperator) {
  Machine m(Dataset::from_counts({2, 3, 1, 0}), kNu);
  const auto op = operator_of_circuit(layout, [&](StateVector& s) {
    m.apply_oracle(s, elem, count, false);
  });
  EXPECT_NEAR(op.unitarity_defect(), 0.0, 1e-12);
  // Every column has exactly one unit entry.
  for (std::size_t c = 0; c < op.cols(); ++c) {
    int nonzeros = 0;
    for (std::size_t r = 0; r < op.rows(); ++r) {
      if (std::abs(op(r, c)) > 1e-12) {
        ++nonzeros;
        EXPECT_NEAR(std::abs(op(r, c) - cplx(1.0, 0.0)), 0.0, 1e-12);
      }
    }
    EXPECT_EQ(nonzeros, 1);
  }
}

TEST_F(OracleFixture, ControlledOracleActsOnlyWhenFlagSet) {
  Machine m(Dataset::from_counts({0, 2, 0, 0}), kNu);
  // b = 0: identity.
  StateVector off(layout, index(1, 0, 0));
  m.apply_controlled_oracle(off, elem, count, flag, false);
  EXPECT_EQ(off.amplitude(index(1, 0, 0)), cplx(1.0, 0.0));
  // b = 1: shift.
  StateVector on(layout, index(1, 0, 1));
  m.apply_controlled_oracle(on, elem, count, flag, false);
  EXPECT_EQ(on.amplitude(index(1, 2, 1)), cplx(1.0, 0.0));
}

TEST_F(OracleFixture, QueriesAreCounted) {
  Machine m(Dataset::from_counts({1, 1, 1, 1}), kNu);
  StateVector state(layout);
  EXPECT_EQ(m.queries(), 0u);
  m.apply_oracle(state, elem, count, false);
  m.apply_oracle(state, elem, count, true);
  m.apply_controlled_oracle(state, elem, count, flag, false);
  EXPECT_EQ(m.queries(), 3u);
  m.discount_last_query();
  EXPECT_EQ(m.queries(), 2u);
  m.reset_queries();
  EXPECT_EQ(m.queries(), 0u);
}

TEST_F(OracleFixture, DynamicInsertEqualsLeftMultiplicationByU) {
  // Section 3: if c_ij increases by 1, O_j becomes U·O_j where
  // U|i,s⟩ = |i, s+1 mod ν+1⟩. Verify at operator level.
  Machine before(Dataset::from_counts({2, 1, 0, 3}), kNu);
  Machine after(Dataset::from_counts({2, 2, 0, 3}), kNu);  // element 1 +1

  const auto op_before = operator_of_circuit(layout, [&](StateVector& s) {
    before.apply_oracle(s, elem, count, false);
  });
  const auto op_after = operator_of_circuit(layout, [&](StateVector& s) {
    after.apply_oracle(s, elem, count, false);
  });
  // U restricted to element 1: shift count by +1 only on that element.
  const auto u_update = operator_of_circuit(layout, [&](StateVector& s) {
    std::vector<std::size_t> shifts(kUniverse, 0);
    shifts[1] = 1;
    s.apply_value_shift(count, elem, shifts);
  });
  EXPECT_NEAR(Matrix::max_abs_diff(op_after, u_update * op_before), 0.0,
              1e-12);
}

TEST_F(OracleFixture, DynamicUpdateThroughMachineMutators) {
  Machine m(Dataset::from_counts({1, 0, 0, 0}), kNu);
  m.insert(1);
  m.insert(1);
  m.erase(0);
  EXPECT_EQ(m.data().count(1), 2u);
  EXPECT_EQ(m.data().count(0), 0u);
  StateVector state(layout, index(1, 0, 0));
  m.apply_oracle(state, elem, count, false);
  EXPECT_EQ(state.amplitude(index(1, 2, 0)), cplx(1.0, 0.0));
}

TEST_F(OracleFixture, CapacityViolationsRejected) {
  EXPECT_THROW(Machine(Dataset::from_counts({6, 0, 0, 0}), kNu),
               ContractViolation);
  Machine m(Dataset::from_counts({kNu, 0, 0, 0}), kNu);
  EXPECT_THROW(m.insert(0), ContractViolation);
}

TEST_F(OracleFixture, CounterRegisterTooSmallRejected) {
  RegisterLayout small;
  const auto e = small.add("elem", kUniverse);
  const auto c = small.add("count", 3);  // dim 3 but multiplicities reach 5
  Machine m(Dataset::from_counts({5, 0, 0, 0}), kNu);
  StateVector state(small);
  EXPECT_THROW(m.apply_oracle(state, e, c, false), ContractViolation);
}

TEST_F(OracleFixture, UniverseMismatchRejected) {
  RegisterLayout other;
  const auto e = other.add("elem", 8);
  const auto c = other.add("count", kNu + 1);
  Machine m(Dataset::from_counts({1, 0, 0, 0}), kNu);
  StateVector state(other);
  EXPECT_THROW(m.apply_oracle(state, e, c, false), ContractViolation);
}

TEST_F(OracleFixture, EmptyMachineOracleIsIdentity) {
  Machine m(Dataset(kUniverse), kNu);
  const auto op = operator_of_circuit(layout, [&](StateVector& s) {
    m.apply_oracle(s, elem, count, false);
  });
  EXPECT_NEAR(Matrix::max_abs_diff(op, Matrix::identity(layout.total_dim())),
              0.0, 1e-15);
}

}  // namespace
}  // namespace qs
