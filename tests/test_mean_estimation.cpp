// Tests for quantum mean estimation over the distributed database
// (apps/mean_estimation.hpp) — the cited application [10, 13, 14] closed
// over our sampler.
#include "apps/mean_estimation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

DistributedDatabase mean_db() {
  // counts: element i has multiplicity (i % 3) + 1 over universe 16,
  // spread over two machines.
  std::vector<Dataset> datasets = {Dataset(16), Dataset(16)};
  for (std::size_t i = 0; i < 16; ++i)
    datasets[i % 2].insert(i, (i % 3) + 1);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

double true_mean(const DistributedDatabase& db,
                 const std::function<double(std::size_t)>& f) {
  const auto p = db.target_distribution();
  double mean = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) mean += p[i] * f(i);
  return mean;
}

TEST(MeanEstimation, RecoversIndicatorMean) {
  const auto db = mean_db();
  const auto f = [](std::size_t i) { return i < 8 ? 1.0 : 0.0; };
  Rng rng(3);
  const auto estimate = estimate_mean(db, f, QueryMode::kSequential,
                                      exponential_schedule(7, 48), rng);
  EXPECT_NEAR(estimate.mean_hat, true_mean(db, f), 0.03);
  EXPECT_GT(estimate.oracle_cost, 0u);
}

TEST(MeanEstimation, RecoversSmoothMean) {
  const auto db = mean_db();
  const auto f = [](std::size_t i) { return double(i) / 15.0; };
  Rng rng(5);
  const auto estimate = estimate_mean(db, f, QueryMode::kParallel,
                                      exponential_schedule(7, 48), rng);
  EXPECT_NEAR(estimate.mean_hat, true_mean(db, f), 0.03);
}

TEST(MeanEstimation, ConstantFunctionGivesTheConstant) {
  const auto db = mean_db();
  const auto f = [](std::size_t) { return 0.6; };
  Rng rng(7);
  const auto estimate = estimate_mean(db, f, QueryMode::kSequential,
                                      exponential_schedule(6, 48), rng);
  EXPECT_NEAR(estimate.mean_hat, 0.6, 0.04);
}

TEST(MeanEstimation, ZeroFunctionGivesZero) {
  const auto db = mean_db();
  const auto f = [](std::size_t) { return 0.0; };
  Rng rng(9);
  const auto estimate = estimate_mean(db, f, QueryMode::kSequential,
                                      exponential_schedule(4, 24), rng);
  EXPECT_NEAR(estimate.mean_hat, 0.0, 0.02);
}

TEST(MeanEstimation, RejectsOutOfRangeF) {
  const auto db = mean_db();
  Rng rng(11);
  EXPECT_THROW(estimate_mean(
                   db, [](std::size_t) { return 1.5; },
                   QueryMode::kSequential, exponential_schedule(3, 8), rng),
               ContractViolation);
  EXPECT_THROW(estimate_mean(
                   db, [](std::size_t) { return -0.1; },
                   QueryMode::kSequential, exponential_schedule(3, 8), rng),
               ContractViolation);
}

TEST(MeanEstimation, EmptyDatabaseRejected) {
  std::vector<Dataset> datasets = {Dataset(8)};
  const DistributedDatabase db(std::move(datasets), 1);
  Rng rng(13);
  EXPECT_THROW(estimate_mean(
                   db, [](std::size_t) { return 1.0; },
                   QueryMode::kSequential, exponential_schedule(3, 8), rng),
               ContractViolation);
}

TEST(MeanEstimation, BeatsClassicalAtEqualBudget) {
  // At a matched probe budget, the quantum estimate's RMS error should be
  // smaller (Heisenberg vs Monte-Carlo) on a sparse instance.
  std::vector<Dataset> datasets = {Dataset(256)};
  for (std::size_t i = 0; i < 32; ++i) datasets[0].insert(i * 8, 2);
  const DistributedDatabase db(std::move(datasets), 4);
  const auto f = [](std::size_t i) { return (i / 8) % 2 == 0 ? 1.0 : 0.0; };
  const double truth = true_mean(db, f);

  double q_se = 0.0, c_se = 0.0;
  std::uint64_t budget = 0;
  const std::size_t repeats = 6;
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng1(100 + r);
    const auto q = estimate_mean(db, f, QueryMode::kSequential,
                                 exponential_schedule(8, 32), rng1);
    q_se += (q.mean_hat - truth) * (q.mean_hat - truth);
    budget = q.oracle_cost;
  }
  for (std::size_t r = 0; r < repeats; ++r) {
    Rng rng2(200 + r);
    // Classical rejection costs ~ n·νN/M probes per sample; spend the same
    // total budget.
    const std::size_t samples = std::max<std::size_t>(
        1, budget / (db.num_machines() * 4 * 256 / db.total()));
    const auto c = classical_mean_estimate(db, f, samples, rng2);
    c_se += (c.mean_hat - truth) * (c.mean_hat - truth);
  }
  EXPECT_LT(std::sqrt(q_se / repeats), std::sqrt(c_se / repeats));
}

TEST(MeanEstimation, ClassicalBaselineIsConsistent) {
  const auto db = mean_db();
  const auto f = [](std::size_t i) { return i % 2 == 0 ? 1.0 : 0.0; };
  Rng rng(17);
  const auto estimate = classical_mean_estimate(db, f, 20000, rng);
  EXPECT_NEAR(estimate.mean_hat, true_mean(db, f), 0.02);
  EXPECT_GT(estimate.probes, 20000u);
  EXPECT_THROW(classical_mean_estimate(db, f, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace qs
