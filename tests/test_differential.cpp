// Randomized differential testing: every sampler realisation in the
// library must produce the SAME state on the same database. One random
// instance per seed; five independent implementations cross-checked:
// sequential oracles, parallel (logical), hierarchical (several
// partitions), the ideal-D reference, and the unknown-M BBHT sampler.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/gates.hpp"
#include "sampling/hierarchical.hpp"
#include "sampling/ideal.hpp"
#include "sampling/samplers.hpp"
#include "sampling/unknown_m.hpp"

namespace qs {
namespace {

class DifferentialSweep : public ::testing::TestWithParam<std::uint64_t> {};

DistributedDatabase random_instance(std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t universe = 8 + rng.uniform_below(56);
  const std::size_t machines = 1 + rng.uniform_below(6);
  const std::uint64_t total = 1 + rng.uniform_below(universe);
  auto datasets = rng.bernoulli(0.5)
                      ? workload::uniform_random(universe, machines, total,
                                                 rng)
                      : workload::zipf(universe, machines, total, 1.0, rng);
  // Ensure non-empty.
  if (min_capacity(datasets) == 0 ||
      [&] {
        std::uint64_t m = 0;
        for (const auto& d : datasets) m += d.total();
        return m;
      }() == 0) {
    datasets[0].insert(0, 1);
  }
  const auto nu = min_capacity(datasets) + rng.uniform_below(3);
  return DistributedDatabase(std::move(datasets), nu);
}

TEST_P(DifferentialSweep, AllSamplerRealisationsAgree) {
  const auto db = random_instance(GetParam());
  const auto seq = run_sequential_sampler(db);
  ASSERT_NEAR(seq.fidelity, 1.0, 1e-9);

  const auto par = run_parallel_sampler(db);
  EXPECT_NEAR(pure_fidelity(seq.state, par.state), 1.0, 1e-9);

  Rng prng(GetParam() + 999);
  const std::size_t n = db.num_machines();
  const std::size_t groups = 1 + prng.uniform_below(n);
  const auto hier =
      run_hierarchical_sampler(db, contiguous_partition(n, groups));
  EXPECT_NEAR(pure_fidelity(seq.state, hier.state), 1.0, 1e-9);

  const auto central = run_centralized_sampler(db);
  EXPECT_NEAR(central.fidelity, 1.0, 1e-9);

  Rng urng(GetParam() + 777);
  const auto unknown = run_unknown_m_sampler(db, QueryMode::kSequential,
                                             urng);
  EXPECT_NEAR(pure_fidelity(seq.state, unknown.state), 1.0, 1e-9);
}

TEST_P(DifferentialSweep, IdealDConstructionReproducesPreparation) {
  // A|0⟩ built with the oracle-based D equals A|0⟩ built with the ideal D.
  const auto db = random_instance(GetParam() + 31337);
  SingleStateBackend oracle_backend(db, StatePrep::kHouseholder);
  oracle_backend.prep_uniform(false);
  apply_distributing_operator(oracle_backend, QueryMode::kSequential, false);

  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  StateVector ideal(regs.layout);
  ideal.apply_householder(regs.elem,
                          uniform_prep_householder_vector(db.universe()));
  apply_ideal_distributing(ideal, db, regs.elem, regs.flag, false);
  EXPECT_NEAR(oracle_backend.state().distance_squared(ideal), 0.0, 1e-18);
}

TEST_P(DifferentialSweep, QueryLedgersAreConsistent) {
  const auto db = random_instance(GetParam() + 4242);
  const auto seq = run_sequential_sampler(db);
  const auto par = run_parallel_sampler(db);
  // Same plan (public params identical), so the ledgers relate exactly:
  // sequential = d · 2n, parallel = d · 4.
  EXPECT_EQ(seq.plan.d_applications(), par.plan.d_applications());
  EXPECT_EQ(seq.stats.total_sequential(),
            seq.plan.d_applications() * 2 * db.num_machines());
  EXPECT_EQ(par.stats.parallel_rounds, par.plan.d_applications() * 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace qs
