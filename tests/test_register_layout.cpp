// Tests for the mixed-radix register layout (qsim/register_layout.hpp).
#include "qsim/register_layout.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/require.hpp"

namespace qs {
namespace {

TEST(RegisterLayout, EmptyLayoutHasDimensionOne) {
  RegisterLayout layout;
  EXPECT_EQ(layout.num_registers(), 0u);
  EXPECT_EQ(layout.total_dim(), 1u);
}

TEST(RegisterLayout, SingleRegister) {
  RegisterLayout layout;
  const auto r = layout.add("x", 5);
  EXPECT_EQ(layout.total_dim(), 5u);
  EXPECT_EQ(layout.dim(r), 5u);
  EXPECT_EQ(layout.stride(r), 1u);
  EXPECT_EQ(layout.name(r), "x");
}

TEST(RegisterLayout, FirstRegisterIsMostSignificant) {
  RegisterLayout layout;
  const auto hi = layout.add("hi", 3);
  const auto lo = layout.add("lo", 4);
  EXPECT_EQ(layout.total_dim(), 12u);
  EXPECT_EQ(layout.stride(hi), 4u);
  EXPECT_EQ(layout.stride(lo), 1u);
  // index = hi*4 + lo
  const std::array<std::size_t, 2> digits = {2, 3};
  EXPECT_EQ(layout.index_of(digits), 11u);
  EXPECT_EQ(layout.digit(11, hi), 2u);
  EXPECT_EQ(layout.digit(11, lo), 3u);
}

TEST(RegisterLayout, DigitIndexRoundTripExhaustive) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  const auto b = layout.add("b", 3);
  const auto c = layout.add("c", 5);
  for (std::size_t i = 0; i < layout.total_dim(); ++i) {
    const std::array<std::size_t, 3> digits = {layout.digit(i, a),
                                               layout.digit(i, b),
                                               layout.digit(i, c)};
    EXPECT_EQ(layout.index_of(digits), i);
  }
}

TEST(RegisterLayout, WithDigitReplacesOnlyThatRegister) {
  RegisterLayout layout;
  const auto a = layout.add("a", 4);
  const auto b = layout.add("b", 4);
  for (std::size_t i = 0; i < layout.total_dim(); ++i) {
    for (std::size_t v = 0; v < 4; ++v) {
      const auto j = layout.with_digit(i, b, v);
      EXPECT_EQ(layout.digit(j, b), v);
      EXPECT_EQ(layout.digit(j, a), layout.digit(i, a));
    }
  }
}

TEST(RegisterLayout, FindByName) {
  RegisterLayout layout;
  layout.add("elem", 8);
  const auto count = layout.add("count", 3);
  EXPECT_EQ(layout.find("count").value, count.value);
  EXPECT_THROW(layout.find("missing"), ContractViolation);
}

TEST(RegisterLayout, SameShapeIgnoresNames) {
  RegisterLayout a, b, c;
  a.add("x", 2);
  a.add("y", 3);
  b.add("p", 2);
  b.add("q", 3);
  c.add("x", 3);
  c.add("y", 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(RegisterLayout, RejectsZeroDimAndBadDigits) {
  RegisterLayout layout;
  EXPECT_THROW(layout.add("zero", 0), ContractViolation);
  const auto r = layout.add("r", 3);
  EXPECT_THROW(layout.with_digit(0, r, 3), ContractViolation);
  const std::array<std::size_t, 1> bad = {3};
  EXPECT_THROW(layout.index_of(bad), ContractViolation);
}

TEST(RegisterLayout, DimensionOneRegistersAreLegal) {
  RegisterLayout layout;
  const auto a = layout.add("a", 1);
  const auto b = layout.add("b", 4);
  EXPECT_EQ(layout.total_dim(), 4u);
  EXPECT_EQ(layout.digit(3, a), 0u);
  EXPECT_EQ(layout.digit(3, b), 3u);
}

struct ShapeCase {
  std::vector<std::size_t> dims;
};

class LayoutShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(LayoutShapeSweep, StrideProductInvariants) {
  RegisterLayout layout;
  std::vector<RegisterId> regs;
  for (std::size_t i = 0; i < GetParam().dims.size(); ++i)
    regs.push_back(layout.add("r" + std::to_string(i), GetParam().dims[i]));

  std::size_t product = 1;
  for (const auto d : GetParam().dims) product *= d;
  EXPECT_EQ(layout.total_dim(), product);

  // stride(r) equals the product of all later dims.
  for (std::size_t i = 0; i < regs.size(); ++i) {
    std::size_t expected = 1;
    for (std::size_t j = i + 1; j < regs.size(); ++j)
      expected *= GetParam().dims[j];
    EXPECT_EQ(layout.stride(regs[i]), expected);
  }

  // Round trip on a sample of indices.
  for (std::size_t idx = 0; idx < layout.total_dim();
       idx += std::max<std::size_t>(1, layout.total_dim() / 64)) {
    std::vector<std::size_t> digits;
    for (const auto r : regs) digits.push_back(layout.digit(idx, r));
    EXPECT_EQ(layout.index_of(digits), idx);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LayoutShapeSweep,
    ::testing::Values(ShapeCase{{2}}, ShapeCase{{7}}, ShapeCase{{2, 2}},
                      ShapeCase{{4, 5, 2}}, ShapeCase{{16, 5, 2}},
                      ShapeCase{{3, 1, 3}}, ShapeCase{{2, 3, 4, 5}},
                      ShapeCase{{8, 8, 2, 2, 2}}));

}  // namespace
}  // namespace qs
