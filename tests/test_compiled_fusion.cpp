// Property tests for CompiledProgram::fuse() (src/qsim/compiled_op.hpp).
//
// Two properties the peephole must satisfy beyond the pairwise rules the
// translation-validation engine proves per fuse:
//
//   idempotence    a second fuse() pass performs 0 merges — the greedy
//                  adjacent-merge reaches a fixed point in one pass because
//                  can_fuse depends only on kind and geometry, both of
//                  which fusion preserves;
//   associativity  fusing any split of the op list and then fusing the
//                  concatenation is semantically identical to fusing the
//                  whole list at once (and to not fusing at all), within
//                  the 1e-12 amplitude budget of diagonal factor products.
//
// Both are exercised on a randomized grid of programs mixing all four op
// kinds over a 3-register layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "qsim/compiled_op.hpp"
#include "qsim/register_layout.hpp"
#include "qsim/state_vector.hpp"

namespace qs {
namespace {

constexpr double kAmplitudeTolerance = 1e-12;

struct Fixture {
  RegisterLayout layout;
  RegisterId count;
  RegisterId elem;
  RegisterId flag;
};

Fixture make_fixture() {
  Fixture f;
  f.count = f.layout.add("count", 4);
  f.elem = f.layout.add("elem", 3);
  f.flag = f.layout.add("flag", 2);
  return f;
}

CompiledOp random_op(const Fixture& f, Rng& rng) {
  switch (rng.uniform_below(5)) {
    case 0: {  // random diagonal of unit-modulus phases
      std::vector<cplx> factors(f.layout.total_dim());
      for (auto& factor : factors) {
        const double angle = rng.uniform(0.0, 6.283185307179586);
        factor = cplx{std::cos(angle), std::sin(angle)};
      }
      return CompiledOp::diagonal(
          f.layout, [&](std::size_t x) { return factors[x]; });
    }
    case 1: {  // random full-space bijection (Fisher–Yates)
      std::vector<std::size_t> table(f.layout.total_dim());
      for (std::size_t i = 0; i < table.size(); ++i) table[i] = i;
      for (std::size_t i = table.size(); i-- > 1;) {
        std::swap(table[i], table[rng.uniform_below(i + 1)]);
      }
      return CompiledOp::permutation(
          f.layout, [&](std::size_t x) { return table[x]; });
    }
    case 2: {  // Eq. (1) shape on (count | elem)
      std::vector<std::size_t> shifts(f.layout.dim(f.elem));
      for (auto& s : shifts) s = rng.uniform_below(f.layout.dim(f.count));
      return CompiledOp::value_shift(f.layout, f.count, f.elem, shifts);
    }
    case 3: {  // Eq. (2) shape, flag-controlled
      std::vector<std::size_t> shifts(f.layout.dim(f.elem));
      for (auto& s : shifts) s = rng.uniform_below(f.layout.dim(f.count));
      return CompiledOp::controlled_value_shift(f.layout, f.count, f.elem,
                                                f.flag, shifts);
    }
    default: {  // conditioned 2×2 rotation on the flag
      const double angle = rng.uniform(0.0, 3.141592653589793);
      const cplx c{std::cos(angle), 0.0};
      const cplx s{std::sin(angle), 0.0};
      const Matrix rotation = Matrix::from_rows(2, 2, {c, -s, s, c});
      return CompiledOp::fiber_dense(
          f.layout, f.flag, [&](std::size_t fiber_base) {
            // Condition on the count digit so some fibers stay identity.
            return f.layout.digit(fiber_base, f.count) % 2 == 0 ? &rotation
                                                                : nullptr;
          });
    }
  }
}

CompiledProgram random_program(const Fixture& f, Rng& rng,
                               std::size_t length) {
  CompiledProgram program;
  for (std::size_t i = 0; i < length; ++i) program.push(random_op(f, rng));
  return program;
}

StateVector random_state(const RegisterLayout& layout, Rng& rng) {
  StateVector state(layout);
  double norm = 0.0;
  for (auto& amp : state.mutable_amplitudes()) {
    amp = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm += std::norm(amp);
  }
  const double scale = 1.0 / std::sqrt(norm);
  for (auto& amp : state.mutable_amplitudes()) amp *= scale;
  return state;
}

double max_distance(const StateVector& a, const StateVector& b) {
  double dist = 0.0;
  for (std::size_t i = 0; i < a.amplitudes().size(); ++i) {
    dist = std::max(dist, std::abs(a.amplitudes()[i] - b.amplitudes()[i]));
  }
  return dist;
}

TEST(CompiledFusion, FuseIsIdempotent) {
  const Fixture f = make_fixture();
  Rng rng(0xf005e);
  for (int trial = 0; trial < 40; ++trial) {
    CompiledProgram program =
        random_program(f, rng, 2 + rng.uniform_below(9));
    (void)program.fuse();
    EXPECT_EQ(program.fuse(), 0u)
        << "second fuse() pass merged ops on trial " << trial;
  }
}

TEST(CompiledFusion, AdjacentCompatiblePairsDoMerge) {
  // Idempotence would hold vacuously if fuse() never merged; pin the
  // positive case for each rule.
  const Fixture f = make_fixture();
  const auto phase = [](std::size_t x) {
    return x % 2 == 0 ? cplx{1.0, 0.0} : cplx{0.0, 1.0};
  };
  CompiledProgram diags;
  diags.push(CompiledOp::diagonal(f.layout, phase));
  diags.push(CompiledOp::diagonal(f.layout, phase));
  EXPECT_EQ(diags.fuse(), 1u);
  EXPECT_EQ(diags.size(), 1u);

  CompiledProgram perms;
  perms.push(CompiledOp::permutation(
      f.layout, [&](std::size_t x) { return (x + 1) % f.layout.total_dim(); }));
  perms.push(CompiledOp::permutation(
      f.layout, [&](std::size_t x) { return (x + 2) % f.layout.total_dim(); }));
  EXPECT_EQ(perms.fuse(), 1u);

  const std::vector<std::size_t> shifts = {1, 2, 3};
  CompiledProgram vshifts;
  vshifts.push(CompiledOp::value_shift(f.layout, f.count, f.elem, shifts));
  vshifts.push(CompiledOp::value_shift(f.layout, f.count, f.elem, shifts));
  EXPECT_EQ(vshifts.fuse(), 1u);
}

TEST(CompiledFusion, FusionPreservesSemanticsOnRandomPrograms) {
  const Fixture f = make_fixture();
  Rng rng(0xcafe);
  for (int trial = 0; trial < 25; ++trial) {
    const CompiledProgram reference =
        random_program(f, rng, 2 + rng.uniform_below(9));
    CompiledProgram fused;
    for (const auto& op : reference.ops()) fused.push(op);
    (void)fused.fuse();

    StateVector want = random_state(f.layout, rng);
    StateVector got = want;
    reference.apply_to(want);
    fused.apply_to(got);
    EXPECT_LE(max_distance(want, got), kAmplitudeTolerance)
        << "trial " << trial << " (" << reference.size() << " ops fused to "
        << fused.size() << ")";
  }
}

TEST(CompiledFusion, FusionOrderDoesNotChangeSemantics) {
  // Fuse an arbitrary split of the program, concatenate, fuse again:
  // whatever merge order results must agree with both the unfused program
  // and the whole-program fuse.
  const Fixture f = make_fixture();
  Rng rng(0x511);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t length = 3 + rng.uniform_below(8);
    const CompiledProgram reference = random_program(f, rng, length);
    const std::size_t split = 1 + rng.uniform_below(length - 1);

    CompiledProgram head;
    CompiledProgram tail;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      (i < split ? head : tail).push(reference.ops()[i]);
    }
    (void)head.fuse();
    (void)tail.fuse();
    CompiledProgram stitched;
    for (const auto& op : head.ops()) stitched.push(op);
    for (const auto& op : tail.ops()) stitched.push(op);
    (void)stitched.fuse();

    CompiledProgram whole;
    for (const auto& op : reference.ops()) whole.push(op);
    (void)whole.fuse();

    StateVector unfused_state = random_state(f.layout, rng);
    StateVector stitched_state = unfused_state;
    StateVector whole_state = unfused_state;
    reference.apply_to(unfused_state);
    stitched.apply_to(stitched_state);
    whole.apply_to(whole_state);

    EXPECT_LE(max_distance(unfused_state, stitched_state),
              kAmplitudeTolerance)
        << "trial " << trial << " split " << split;
    EXPECT_LE(max_distance(unfused_state, whole_state), kAmplitudeTolerance)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace qs
