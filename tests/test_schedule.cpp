// Tests for the compiled oblivious schedule (sampling/schedule.hpp):
// compile-ahead transcripts must equal the transcripts of real runs on any
// database with the same public parameters.
#include "sampling/schedule.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(Schedule, CompiledEqualsRealRunSequential) {
  Rng rng(3);
  auto datasets = workload::uniform_random(32, 4, 40, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto compiled =
      compile_schedule(public_params_of(db), QueryMode::kSequential);
  Transcript actual;
  SamplerOptions options;
  options.transcript = &actual;
  run_sequential_sampler(db, options);
  EXPECT_EQ(compiled, actual);
}

TEST(Schedule, CompiledEqualsRealRunParallel) {
  Rng rng(5);
  auto datasets = workload::zipf(32, 3, 40, 1.0, rng);
  const auto nu = min_capacity(datasets) + 2;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto compiled =
      compile_schedule(public_params_of(db), QueryMode::kParallel);
  Transcript actual;
  SamplerOptions options;
  options.transcript = &actual;
  run_parallel_sampler(db, options);
  EXPECT_EQ(compiled, actual);
}

TEST(Schedule, SamePublicParamsSameSchedule) {
  const PublicParams params{64, 4, 3, 48};
  const auto a = compile_schedule(params, QueryMode::kSequential);
  const auto b = compile_schedule(params, QueryMode::kSequential);
  EXPECT_EQ(a, b);
}

TEST(Schedule, LengthFormulaMatchesCompilation) {
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    for (const std::uint64_t total : {4u, 16u, 48u}) {
      const PublicParams params{64, 3, 4, total};
      EXPECT_EQ(compile_schedule(params, mode).size(),
                compiled_schedule_length(params, mode))
          << "M=" << total;
    }
  }
}

TEST(Schedule, LengthFormulaMatchesCompilationOnRandomizedGrid) {
  Rng rng(2025);
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t universe = 1 + rng.uniform_below(256);
    const std::size_t machines = 1 + rng.uniform_below(8);
    const std::uint64_t nu = 1 + rng.uniform_below(6);
    const std::uint64_t ceiling = nu * universe;
    const std::uint64_t total = 1 + rng.uniform_below(ceiling);
    const PublicParams params{universe, machines, nu, total};
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      EXPECT_EQ(compile_schedule(params, mode).size(),
                compiled_schedule_length(params, mode))
          << "N=" << universe << " n=" << machines << " nu=" << nu
          << " M=" << total;
    }
  }
}

TEST(Schedule, LengthFormulaMatchesCompilationAtDegenerateCorners) {
  // n = 1 (single machine), M = N (uniform support), and M = νN (a = 1,
  // already exact: the AA plan needs zero Grover iterates) are the corner
  // cases most likely to break the closed form.
  const PublicParams single_machine{16, 1, 3, 10};
  const PublicParams full_support{16, 4, 2, 16};
  const PublicParams already_exact{8, 2, 3, 24};  // M = νN
  const PublicParams minimal{1, 1, 1, 1};
  for (const auto& params :
       {single_machine, full_support, already_exact, minimal}) {
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      EXPECT_EQ(compile_schedule(params, mode).size(),
                compiled_schedule_length(params, mode))
          << "N=" << params.universe << " n=" << params.machines;
    }
  }
  // a = 1 needs zero Grover iterates but still pays the single
  // distributing-operator application that prepares |ψ⟩ (d = 1).
  EXPECT_EQ(compiled_schedule_length(already_exact, QueryMode::kSequential),
            2u * already_exact.machines);
  EXPECT_EQ(compiled_schedule_length(already_exact, QueryMode::kParallel),
            4u);
}

TEST(Schedule, DatabaseOverloadUsesPublicParamsOnly) {
  Rng rng(11);
  auto datasets = workload::uniform_random(32, 3, 24, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    EXPECT_EQ(compile_schedule(db, mode),
              compile_schedule(public_params_of(db), mode));
  }
  // Compile-ahead never opens the datasets (taint instrument, see
  // docs/ANALYSIS.md).
  db.reset_content_reads();
  (void)compile_schedule(db, QueryMode::kSequential);
  EXPECT_EQ(db.content_reads(), 0u);
}

TEST(Schedule, EventStreamAgreesWithCompiledTranscript) {
  const PublicParams params{32, 3, 2, 12};
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    const auto compiled = compile_schedule(params, mode);
    Transcript replayed;
    std::size_t locals = 0;
    for_each_schedule_event(params, mode, [&](const ScheduleEvent& e) {
      switch (e.kind) {
        case ScheduleEvent::Kind::kOracle:
          // dqs-lint: allow(transcript-discipline) — replaying the stream
          replayed.record_sequential(e.machine, e.adjoint);
          break;
        case ScheduleEvent::Kind::kParallelRound:
          // dqs-lint: allow(transcript-discipline) — replaying the stream
          replayed.record_parallel_round(e.adjoint);
          break;
        case ScheduleEvent::Kind::kLocalUnitary:
          ++locals;
          break;
      }
    });
    EXPECT_EQ(replayed, compiled);
    EXPECT_GT(locals, 0u);
  }
}

TEST(Schedule, DifferentMGivesDifferentLength) {
  const PublicParams small{64, 2, 2, 2};
  const PublicParams large{64, 2, 2, 100};
  EXPECT_NE(
      compile_schedule(small, QueryMode::kSequential).size(),
      compile_schedule(large, QueryMode::kSequential).size());
}

TEST(Schedule, ValidatesParameters) {
  EXPECT_THROW(compile_schedule({0, 2, 2, 4}, QueryMode::kSequential),
               ContractViolation);
  EXPECT_THROW(compile_schedule({8, 2, 2, 0}, QueryMode::kSequential),
               ContractViolation);
  // M > νN is inconsistent public knowledge.
  EXPECT_THROW(compile_schedule({8, 2, 2, 17}, QueryMode::kSequential),
               ContractViolation);
}

TEST(Schedule, PublicParamsExtraction) {
  Rng rng(7);
  auto datasets = workload::uniform_random(16, 2, 12, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);
  const auto params = public_params_of(db);
  EXPECT_EQ(params.universe, 16u);
  EXPECT_EQ(params.machines, 2u);
  EXPECT_EQ(params.nu, nu);
  EXPECT_EQ(params.total, 12u);
}

}  // namespace
}  // namespace qs
