// Tests for the compiled oblivious schedule (sampling/schedule.hpp):
// compile-ahead transcripts must equal the transcripts of real runs on any
// database with the same public parameters.
#include "sampling/schedule.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(Schedule, CompiledEqualsRealRunSequential) {
  Rng rng(3);
  auto datasets = workload::uniform_random(32, 4, 40, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto compiled =
      compile_schedule(public_params_of(db), QueryMode::kSequential);
  Transcript actual;
  SamplerOptions options;
  options.transcript = &actual;
  run_sequential_sampler(db, options);
  EXPECT_EQ(compiled, actual);
}

TEST(Schedule, CompiledEqualsRealRunParallel) {
  Rng rng(5);
  auto datasets = workload::zipf(32, 3, 40, 1.0, rng);
  const auto nu = min_capacity(datasets) + 2;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto compiled =
      compile_schedule(public_params_of(db), QueryMode::kParallel);
  Transcript actual;
  SamplerOptions options;
  options.transcript = &actual;
  run_parallel_sampler(db, options);
  EXPECT_EQ(compiled, actual);
}

TEST(Schedule, SamePublicParamsSameSchedule) {
  const PublicParams params{64, 4, 3, 48};
  const auto a = compile_schedule(params, QueryMode::kSequential);
  const auto b = compile_schedule(params, QueryMode::kSequential);
  EXPECT_EQ(a, b);
}

TEST(Schedule, LengthFormulaMatchesCompilation) {
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    for (const std::uint64_t total : {4u, 16u, 48u}) {
      const PublicParams params{64, 3, 4, total};
      EXPECT_EQ(compile_schedule(params, mode).size(),
                compiled_schedule_length(params, mode))
          << "M=" << total;
    }
  }
}

TEST(Schedule, DifferentMGivesDifferentLength) {
  const PublicParams small{64, 2, 2, 2};
  const PublicParams large{64, 2, 2, 100};
  EXPECT_NE(
      compile_schedule(small, QueryMode::kSequential).size(),
      compile_schedule(large, QueryMode::kSequential).size());
}

TEST(Schedule, ValidatesParameters) {
  EXPECT_THROW(compile_schedule({0, 2, 2, 4}, QueryMode::kSequential),
               ContractViolation);
  EXPECT_THROW(compile_schedule({8, 2, 2, 0}, QueryMode::kSequential),
               ContractViolation);
  // M > νN is inconsistent public knowledge.
  EXPECT_THROW(compile_schedule({8, 2, 2, 17}, QueryMode::kSequential),
               ContractViolation);
}

TEST(Schedule, PublicParamsExtraction) {
  Rng rng(7);
  auto datasets = workload::uniform_random(16, 2, 12, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);
  const auto params = public_params_of(db);
  EXPECT_EQ(params.universe, 16u);
  EXPECT_EQ(params.machines, 2u);
  EXPECT_EQ(params.nu, nu);
  EXPECT_EQ(params.total, 12u);
}

}  // namespace
}  // namespace qs
