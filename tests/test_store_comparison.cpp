// Tests for the SWAP-test store comparison (apps/store_comparison.hpp).
#include "apps/store_comparison.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

DistributedDatabase from_counts(std::vector<std::uint64_t> counts,
                                std::uint64_t nu) {
  std::vector<Dataset> datasets = {Dataset::from_counts(std::move(counts))};
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(StoreComparison, IdenticalStoresGiveOverlapOne) {
  const auto a = from_counts({2, 1, 0, 3}, 3);
  const auto b = from_counts({2, 1, 0, 3}, 3);
  Rng rng(3);
  const auto result =
      compare_stores(a, b, QueryMode::kSequential, 4000, rng);
  EXPECT_NEAR(result.true_overlap, 1.0, 1e-9);
  EXPECT_GT(result.overlap_estimate, 0.95);
}

TEST(StoreComparison, IdenticalDistributionsDifferentScalesStillOverlapOne) {
  // The sampling state depends on frequencies, not raw counts.
  const auto a = from_counts({1, 1, 2, 0}, 2);
  const auto b = from_counts({2, 2, 4, 0}, 4);
  Rng rng(5);
  const auto result = compare_stores(a, b, QueryMode::kParallel, 4000, rng);
  EXPECT_NEAR(result.true_overlap, 1.0, 1e-9);
  EXPECT_GT(result.overlap_estimate, 0.95);
}

TEST(StoreComparison, DisjointSupportsGiveOverlapZero) {
  const auto a = from_counts({1, 1, 0, 0}, 1);
  const auto b = from_counts({0, 0, 1, 1}, 1);
  Rng rng(7);
  const auto result =
      compare_stores(a, b, QueryMode::kSequential, 4000, rng);
  EXPECT_NEAR(result.true_overlap, 0.0, 1e-12);
  EXPECT_LT(result.overlap_estimate, 0.06);
}

TEST(StoreComparison, TrueOverlapIsBhattacharyyaSquared) {
  const auto a = from_counts({3, 1, 0, 0}, 3);
  const auto b = from_counts({1, 3, 0, 0}, 3);
  Rng rng(9);
  const auto result =
      compare_stores(a, b, QueryMode::kSequential, 6000, rng);
  // Bhattacharyya: Σ√(p_i q_i) = √(3/4·1/4) + √(1/4·3/4) = √3/2.
  const double bc = std::sqrt(3.0) / 2.0;
  EXPECT_NEAR(result.true_overlap, bc * bc, 1e-12);
  EXPECT_NEAR(result.overlap_estimate, bc * bc, 0.05);
}

TEST(StoreComparison, DriftIsDetectable) {
  // A replica that drifted slightly should score high but measurably
  // below an in-sync replica.
  Rng gen(11);
  auto base = workload::zipf(16, 1, 200, 1.0, gen);
  auto drifted = base;
  // Move 20 records from the head key to the tail key.
  drifted[0].erase(0, 20);
  drifted[0].insert(15, 20);
  const auto nu = std::max(min_capacity(base), min_capacity(drifted));
  const DistributedDatabase store_a(std::move(base), nu);
  const DistributedDatabase store_b(std::move(drifted), nu);

  Rng rng(13);
  const auto in_sync =
      compare_stores(store_a, store_a, QueryMode::kSequential, 6000, rng);
  const auto vs_drift =
      compare_stores(store_a, store_b, QueryMode::kSequential, 6000, rng);
  EXPECT_GT(in_sync.overlap_estimate, vs_drift.overlap_estimate);
  EXPECT_LT(vs_drift.true_overlap, 0.999);
  EXPECT_GT(vs_drift.true_overlap, 0.8);
}

TEST(StoreComparison, CostLedger) {
  const auto a = from_counts({1, 1, 1, 1}, 2);
  const auto b = from_counts({2, 0, 2, 0}, 2);
  Rng rng(15);
  const auto result = compare_stores(a, b, QueryMode::kSequential, 10, rng);
  EXPECT_GT(result.prep_cost_a, 0u);
  EXPECT_GT(result.prep_cost_b, 0u);
  EXPECT_EQ(result.total_cost,
            10 * (result.prep_cost_a + result.prep_cost_b));
}

TEST(StoreComparison, ValidatesInput) {
  const auto a = from_counts({1, 0}, 1);
  std::vector<Dataset> other = {Dataset(4)};
  other[0].insert(0, 1);
  const DistributedDatabase b(std::move(other), 1);
  Rng rng(17);
  EXPECT_THROW(compare_stores(a, b, QueryMode::kSequential, 10, rng),
               ContractViolation);
  const auto c = from_counts({1, 0}, 1);
  EXPECT_THROW(compare_stores(a, c, QueryMode::kSequential, 0, rng),
               ContractViolation);
}

}  // namespace
}  // namespace qs
