// Machine-checkable obliviousness: the paper's communication model demands
// that the query schedule depend only on public knowledge (N, M, ν, n) —
// never on the data. These tests compare full transcripts across datasets.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

Transcript transcript_of(const DistributedDatabase& db, bool parallel) {
  Transcript t;
  SamplerOptions options;
  options.transcript = &t;
  if (parallel) {
    run_parallel_sampler(db, options);
  } else {
    run_sequential_sampler(db, options);
  }
  return t;
}

TEST(Obliviousness, SameScheduleForDifferentDataSamePublicParams) {
  // Two completely different datasets with identical N, n, ν and M.
  Rng rng(3);
  auto a = workload::uniform_random(16, 3, 24, rng);
  auto b = workload::zipf(16, 3, 24, 1.5, rng);
  const std::uint64_t nu =
      std::max(min_capacity(a), min_capacity(b));
  const DistributedDatabase db_a(std::move(a), nu);
  const DistributedDatabase db_b(std::move(b), nu);

  EXPECT_EQ(transcript_of(db_a, false), transcript_of(db_b, false));
  EXPECT_EQ(transcript_of(db_a, true), transcript_of(db_b, true));
}

TEST(Obliviousness, ScheduleInvariantUnderRelocation) {
  // Hard-input style: moving machine k's data around the universe must not
  // change the transcript (this is exactly what the adversary exploits).
  std::vector<Dataset> a = {Dataset::from_counts({2, 2, 0, 0, 0, 0, 0, 0}),
                            Dataset::from_counts({0, 0, 1, 0, 0, 0, 0, 0})};
  std::vector<Dataset> b = {Dataset::from_counts({0, 0, 0, 2, 0, 0, 2, 0}),
                            Dataset::from_counts({0, 0, 1, 0, 0, 0, 0, 0})};
  const DistributedDatabase db_a(std::move(a), 4);
  const DistributedDatabase db_b(std::move(b), 4);
  EXPECT_EQ(transcript_of(db_a, false), transcript_of(db_b, false));
}

TEST(Obliviousness, ScheduleDependsOnPublicM) {
  // M is public; changing it may legitimately change the schedule length.
  std::vector<Dataset> small = {Dataset::from_counts({1, 0, 0, 0, 0, 0, 0,
                                                      0})};
  std::vector<Dataset> large = {Dataset::from_counts({4, 4, 4, 4, 4, 4, 4,
                                                      4})};
  const DistributedDatabase db_small(std::move(small), 4);
  const DistributedDatabase db_large(std::move(large), 4);
  EXPECT_NE(transcript_of(db_small, false).size(),
            transcript_of(db_large, false).size());
}

TEST(Obliviousness, SequentialScheduleShape) {
  // Within one D, machines are queried 1..n forward then n..1 adjoint.
  std::vector<Dataset> datasets = {Dataset::from_counts({1, 0, 0, 0}),
                                   Dataset::from_counts({0, 1, 0, 0}),
                                   Dataset::from_counts({0, 0, 1, 0})};
  const DistributedDatabase db(std::move(datasets), 2);
  const auto t = transcript_of(db, false);
  ASSERT_GE(t.size(), 6u);
  // First six events: O0 O1 O2 O2† O1† O0†.
  const auto& e = t.events();
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(e[j].machine, j);
    EXPECT_FALSE(e[j].adjoint);
    EXPECT_EQ(e[5 - j].machine, j);
    EXPECT_TRUE(e[5 - j].adjoint);
  }
}

TEST(Obliviousness, ParallelScheduleHasOnlyRounds) {
  Rng rng(7);
  auto datasets = workload::uniform_random(8, 4, 12, rng);
  const auto nu_db = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu_db);
  const auto t = transcript_of(db, true);
  for (const auto& e : t.events())
    EXPECT_EQ(e.kind, QueryKind::kParallelRound);
  // Rounds per D = 4, and the count is a multiple of it.
  EXPECT_EQ(t.size() % 4, 0u);
}

TEST(Obliviousness, RepeatedRunsAreBitIdentical) {
  Rng rng(11);
  auto datasets = workload::uniform_random(8, 2, 10, rng);
  const auto nu_db = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu_db);
  const auto t1 = transcript_of(db, false);
  const auto t2 = transcript_of(db, false);
  EXPECT_EQ(t1, t2);
}

}  // namespace
}  // namespace qs
