// Telemetry ⇄ ledger invariant tests.
//
// Three independent accountings of the same sampler run must agree
// EXACTLY — the QueryStats ledger returned by the sampler, the replayed
// ledger stats_of(transcript), and the telemetry counters maintained by
// TelemetryBackend — in both query models across a parameter grid. A
// fourth view, the `event` tags on the schedule spans, must line up with
// the transcript indices (the same ProtocolOp::event the static analyzer
// uses), so a Perfetto trace cross-references dqs-verify diagnostics.
//
// Also covers the SampleServer cache accounting: updates invalidate a live
// cache exactly once, every miss triggers exactly one rebuild, and the
// telemetry counters mirror the per-server CacheStats.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/sample_server.hpp"
#include "serving/service.hpp"
#include "common/rng.hpp"
#include "distdb/transcript.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs {
namespace {

DistributedDatabase make_db(std::size_t universe, std::size_t machines,
                            std::uint64_t total, std::uint64_t seed) {
  Rng rng(seed);
  auto datasets = workload::uniform_random(universe, machines, total, rng);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

class TelemetryLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_metrics_enabled(true);
    telemetry::set_tracing_enabled(false);
    telemetry::registry().reset();
    telemetry::tracer().clear();
  }
  void TearDown() override { telemetry::set_enabled(false); }
};

struct GridPoint {
  std::size_t universe;
  std::size_t machines;
  std::uint64_t total;
  std::uint64_t seed;
};

const GridPoint kGrid[] = {
    {64, 2, 12, 1},
    {64, 4, 20, 2},
    {128, 3, 24, 3},
    {128, 5, 30, 4},
};

TEST_F(TelemetryLedgerTest, CountersMatchLedgerAndTranscriptOnGrid) {
  for (const auto& p : kGrid) {
    for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
      SCOPED_TRACE("N=" + std::to_string(p.universe) +
                   " n=" + std::to_string(p.machines) +
                   " M=" + std::to_string(p.total) + " mode=" +
                   (mode == QueryMode::kSequential ? "seq" : "par"));
      telemetry::registry().reset();
      const auto db = make_db(p.universe, p.machines, p.total, p.seed);

      Transcript transcript;
      SamplerOptions options;
      options.transcript = &transcript;
      const auto result = mode == QueryMode::kSequential
                              ? run_sequential_sampler(db, options)
                              : run_parallel_sampler(db, options);

      // Accounting 1 vs 2: ledger vs transcript replay — exact equality.
      EXPECT_EQ(stats_of(transcript, db.num_machines()), result.stats);

      // Accounting 3: the telemetry mirror.
      EXPECT_EQ(telemetry::counter("sampling.oracle.sequential").value(),
                result.stats.total_sequential());
      EXPECT_EQ(telemetry::counter("sampling.parallel_rounds").value(),
                result.stats.parallel_rounds);
      for (std::size_t j = 0; j < db.num_machines(); ++j) {
        EXPECT_EQ(telemetry::counter("sampling.oracle.machine." +
                                     std::to_string(j))
                      .value(),
                  result.stats.sequential_per_machine[j])
            << "machine " << j;
      }
      EXPECT_EQ(telemetry::counter("sampling.runs").value(), 1u);

      // The transcript also matches the ahead-of-time compiled length.
      EXPECT_EQ(transcript.size(),
                compiled_schedule_length(public_params_of(db), mode));
    }
  }
}

/// Find a span tag by key; -1 when absent.
std::int64_t tag_of(const telemetry::TraceEvent& ev, const char* key) {
  for (std::uint32_t t = 0; t < ev.num_tags; ++t)
    if (std::strcmp(ev.tags[t].key, key) == 0) return ev.tags[t].value;
  return -1;
}

TEST_F(TelemetryLedgerTest, ScheduleSpanEventTagsAlignWithTranscript) {
  telemetry::set_tracing_enabled(true);
  for (const auto mode : {QueryMode::kSequential, QueryMode::kParallel}) {
    SCOPED_TRACE(mode == QueryMode::kSequential ? "seq" : "par");
    telemetry::tracer().clear();
    const auto db = make_db(64, 3, 15, 9);

    Transcript transcript;
    SamplerOptions options;
    options.transcript = &transcript;
    const auto result = mode == QueryMode::kSequential
                            ? run_sequential_sampler(db, options)
                            : run_parallel_sampler(db, options);
    (void)result;

    // Walk the oracle spans in completion order; their `event` tags must
    // be exactly 0, 1, 2, … and each must describe the transcript event
    // at that index (machine and adjoint for sequential queries; a
    // parallel_shift span covers TWO consecutive parallel rounds).
    const auto& events = transcript.events();
    std::uint64_t next_event = 0;
    for (const auto& span : telemetry::tracer().events()) {
      if (std::strcmp(span.name, "schedule.oracle") == 0) {
        const auto index = tag_of(span, "event");
        ASSERT_EQ(index, static_cast<std::int64_t>(next_event));
        ASSERT_LT(static_cast<std::size_t>(index), events.size());
        const auto& ev = events[static_cast<std::size_t>(index)];
        EXPECT_EQ(ev.kind, QueryKind::kSequential);
        EXPECT_EQ(static_cast<std::int64_t>(ev.machine),
                  tag_of(span, "machine"));
        EXPECT_EQ(ev.adjoint ? 1 : 0, tag_of(span, "adjoint"));
        next_event += 1;
      } else if (std::strcmp(span.name, "schedule.parallel_shift") == 0) {
        const auto index = tag_of(span, "event");
        ASSERT_EQ(index, static_cast<std::int64_t>(next_event));
        ASSERT_LT(static_cast<std::size_t>(index) + 1, events.size());
        EXPECT_EQ(events[static_cast<std::size_t>(index)].kind,
                  QueryKind::kParallelRound);
        EXPECT_EQ(events[static_cast<std::size_t>(index) + 1].kind,
                  QueryKind::kParallelRound);
        EXPECT_EQ(tag_of(span, "rounds"), 2);
        next_event += 2;
      }
    }
    // Every transcript event was claimed by exactly one span.
    EXPECT_EQ(next_event, transcript.size());
  }
}

TEST_F(TelemetryLedgerTest, ScheduleSpansMatchForEachScheduleEventOrder) {
  // The span stream restricted to oracle traffic must follow the same
  // order for_each_schedule_event visits: sequential grids share one
  // source of truth (run_sampling_circuit), so label-by-label agreement
  // is exact.
  telemetry::set_tracing_enabled(true);
  const auto db = make_db(64, 2, 10, 11);
  const auto params = public_params_of(db);

  std::vector<std::size_t> expected_machines;
  for_each_schedule_event(params, QueryMode::kSequential,
                          [&](const ScheduleEvent& ev) {
                            if (ev.kind == ScheduleEvent::Kind::kOracle)
                              expected_machines.push_back(ev.machine);
                          });

  telemetry::tracer().clear();
  (void)run_sequential_sampler(db);

  std::vector<std::size_t> traced_machines;
  for (const auto& span : telemetry::tracer().events())
    if (std::strcmp(span.name, "schedule.oracle") == 0)
      traced_machines.push_back(
          static_cast<std::size_t>(tag_of(span, "machine")));
  EXPECT_EQ(traced_machines, expected_machines);
}

// --- SampleServer cache accounting (satellite 2) --------------------------

TEST_F(TelemetryLedgerTest, SampleServerInvalidatesLiveCacheExactlyOnce) {
  SampleServer server(make_db(64, 2, 10, 21), QueryMode::kSequential);
  const auto& stats = server.cache_stats();
  EXPECT_EQ(stats, SampleServer::CacheStats{});

  // First access: miss, one rebuild.
  (void)server.state();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Second access: pure hit, no extra rebuild.
  (void)server.state();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);

  // An update on a LIVE cache invalidates it — once.
  server.insert(0, 3);
  EXPECT_EQ(stats.invalidations, 1u);
  // Piling more updates onto the now-stale cache adds NO invalidations.
  server.insert(1, 5);
  server.erase(0, 3);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);  // and no eager rebuild either

  // Next access: exactly one rebuild for the whole update burst.
  (void)server.state();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.rebuilds, 2u);

  // erase on a live cache invalidates again.
  server.erase(1, 5);
  EXPECT_EQ(stats.invalidations, 2u);
  (void)server.state();
  EXPECT_EQ(stats.rebuilds, 3u);

  // Every miss triggered exactly one rebuild — no redundant rebuilds.
  EXPECT_EQ(stats.rebuilds, stats.misses);
}

TEST_F(TelemetryLedgerTest, SampleServerDrawConsumesWithoutInvalidation) {
  SampleServer server(make_db(64, 2, 10, 22), QueryMode::kParallel);
  const auto& stats = server.cache_stats();
  Rng rng(5);

  (void)server.draw(rng);  // cold: miss + rebuild, then consumption
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_FALSE(server.cache_valid());  // measured state is gone…
  EXPECT_EQ(stats.invalidations, 0u);  // …but the DATA did not change

  (void)server.draw(rng);  // every further draw re-prepares once
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.rebuilds, 2u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.rebuilds, stats.misses);
}

TEST_F(TelemetryLedgerTest, SampleServerCountersMirrorCacheStats) {
  telemetry::registry().reset();
  SampleServer server(make_db(64, 3, 12, 23), QueryMode::kSequential);
  Rng rng(6);
  (void)server.state();
  server.insert(0, 7);
  (void)server.draw(rng);
  (void)server.state();

  const auto& stats = server.cache_stats();
  EXPECT_EQ(telemetry::counter("sample_server.cache.hit").value(),
            stats.hits);
  EXPECT_EQ(telemetry::counter("sample_server.cache.miss").value(),
            stats.misses);
  EXPECT_EQ(telemetry::counter("sample_server.cache.invalidate").value(),
            stats.invalidations);
  EXPECT_EQ(telemetry::counter("sample_server.rebuild").value(),
            stats.rebuilds);
  EXPECT_EQ(telemetry::counter("sample_server.draw").value(), 1u);
}

TEST_F(TelemetryLedgerTest, ServingCountersBalanceAcrossThreads) {
  // The serving.* counters are written from worker threads, client threads
  // and the admission path concurrently; after a drain they must mirror
  // the service's ServingStats EXACTLY — the same invariant the serial
  // SampleServer test above checks, extended across a thread pool.
  telemetry::registry().reset();
  serving::ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 64;
  serving::SampleService service(make_db(64, 3, 12, 23), options);

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&service, c] {
      for (std::size_t k = 0; k < 3; ++k) {
        serving::JobRequest request;
        request.client_seed = c;
        request.num_samples = 2;
        (void)service.submit(std::move(request));
      }
    });
  }
  for (auto& client : clients) client.join();
  service.insert(0, 7);  // force a second version mid-traffic
  serving::JobRequest expired;
  expired.deadline_ns = 0;
  (void)service.submit(std::move(expired));
  service.shutdown();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected);
  EXPECT_EQ(stats.coalesce_misses, stats.rebuilds);
  EXPECT_EQ(telemetry::counter("serving.jobs.submitted").value(),
            stats.submitted);
  EXPECT_EQ(telemetry::counter("serving.jobs.admitted").value(),
            stats.admitted);
  EXPECT_EQ(telemetry::counter("serving.jobs.rejected").value(),
            stats.rejected);
  EXPECT_EQ(telemetry::counter("serving.jobs.shed").value(), stats.shed);
  EXPECT_EQ(telemetry::counter("serving.jobs.expired").value(),
            stats.expired);
  EXPECT_EQ(telemetry::counter("serving.jobs.completed").value(),
            stats.completed);
  EXPECT_EQ(telemetry::counter("serving.coalesce.hit").value(),
            stats.coalesce_hits);
  EXPECT_EQ(telemetry::counter("serving.coalesce.miss").value(),
            stats.coalesce_misses);
  EXPECT_EQ(telemetry::counter("serving.rebuild").value(), stats.rebuilds);
  EXPECT_EQ(telemetry::counter("serving.invalidate").value(),
            stats.invalidations);
  EXPECT_EQ(telemetry::counter("serving.draw.quantum").value(),
            stats.quantum_draws);
  EXPECT_EQ(telemetry::counter("serving.draw.fallback").value(),
            stats.fallback_draws);
  // The pool is idle after shutdown and the queue fully drained.
  EXPECT_EQ(telemetry::gauge("serving.workers.busy").value(), 0);
  EXPECT_EQ(telemetry::gauge("serving.queue.depth").value(), 0);
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST_F(TelemetryLedgerTest, BackendCountersBalanceOnGrid) {
  // The qsim.backend.* family must balance against the StateVector's own
  // accounting on every grid point: kernel applications land on exactly
  // one backend's counter, the amplitude gauges track stored_amplitudes()
  // of the last state touched, and densify/sparsify transitions are
  // counted once per actual representation change.
  for (const auto& p : kGrid) {
    SCOPED_TRACE("N=" + std::to_string(p.universe) +
                 " n=" + std::to_string(p.machines));
    const auto db = make_db(p.universe, p.machines, p.total, p.seed);

    for (const bool sparse : {false, true}) {
      SCOPED_TRACE(sparse ? "sparse" : "dense");
      telemetry::registry().reset();
      SamplerOptions options;
      if (sparse) options.backend = StateBackendConfig::sparse();
      auto result = run_sequential_sampler(db, options);

      const auto dense_applies =
          telemetry::counter("qsim.backend.dense.apply").value();
      const auto sparse_applies =
          telemetry::counter("qsim.backend.sparse.apply").value();
      if (sparse) {
        EXPECT_GT(sparse_applies, 0u);
        EXPECT_EQ(dense_applies, 0u);
        EXPECT_EQ(static_cast<std::size_t>(
                      telemetry::gauge("qsim.backend.sparse.amplitudes")
                          .value()),
                  result.state.stored_amplitudes());
      } else {
        EXPECT_GT(dense_applies, 0u);
        EXPECT_EQ(sparse_applies, 0u);
        EXPECT_EQ(static_cast<std::size_t>(
                      telemetry::gauge("qsim.backend.dense.amplitudes")
                          .value()),
                  result.state.stored_amplitudes());
        EXPECT_EQ(result.state.stored_amplitudes(), result.state.dim());
      }

      // Transition counters: one densify + one sparsify per round trip,
      // and no-op conversions (already on that backend) count nothing.
      const auto densify0 = telemetry::counter("qsim.backend.densify").value();
      const auto sparsify0 =
          telemetry::counter("qsim.backend.sparsify").value();
      StateVector round_trip = result.state;
      round_trip.densify();
      round_trip.densify();  // no-op: already dense
      round_trip.sparsify();
      round_trip.sparsify();  // no-op: already sparse
      EXPECT_EQ(telemetry::counter("qsim.backend.densify").value(),
                densify0 + (sparse ? 1 : 0));
      EXPECT_EQ(telemetry::counter("qsim.backend.sparsify").value(),
                sparsify0 + 1);
    }
  }
}

TEST_F(TelemetryLedgerTest, DisabledTelemetryLeavesLedgerIntact) {
  // With telemetry fully off, the QueryStats ledger and transcript still
  // work — instrumentation must never become a functional dependency.
  telemetry::set_enabled(false);
  const auto db = make_db(64, 2, 10, 31);
  Transcript transcript;
  SamplerOptions options;
  options.transcript = &transcript;
  const auto result = run_sequential_sampler(db, options);
  EXPECT_EQ(stats_of(transcript, db.num_machines()), result.stats);
  EXPECT_GT(result.stats.total_sequential(), 0u);
  EXPECT_EQ(telemetry::counter("sampling.oracle.sequential").value(), 0u);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

}  // namespace
}  // namespace qs
