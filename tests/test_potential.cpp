// Tests for the potential-function machinery of Section 5.3 / 5.4:
// the quadratic ceiling (Lemmas 5.8 / 5.10), the floor for high-fidelity
// algorithms (Lemma 5.7 / B.4), the per-step increment bound from
// Appendix C, and the lockstep executor itself.
#include "lowerbound/potential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "lowerbound/lockstep.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

struct PotentialCase {
  std::size_t universe;
  std::size_t machines;
  std::size_t k;
  std::size_t support;
  std::uint64_t multiplicity;
  std::uint64_t nu;
  QueryMode mode;
};

class PotentialSweep : public ::testing::TestWithParam<PotentialCase> {};

PotentialResult run_case(const PotentialCase& c, std::size_t samples = 10,
                         std::uint64_t seed = 7) {
  const auto base = make_canonical_hard_input(c.universe, c.machines, c.k,
                                              c.support, c.multiplicity);
  Rng rng(seed);
  PotentialOptions options;
  options.mode = c.mode;
  options.family_samples = samples;
  return measure_potential(base, c.k, c.nu, options, rng);
}

TEST_P(PotentialSweep, CeilingOfLemma58HoldsEverywhere) {
  const auto result = run_case(GetParam());
  for (std::size_t t = 0; t < result.d_t.size(); ++t) {
    // Parallel-mode trace ticks land at composite boundaries; the exact
    // state is available at even clock values, but the conservative check
    // below holds for every recorded point.
    EXPECT_LE(result.d_t[t], result.ceiling(t + 1) + 1e-9)
        << "t=" << t + 1;
  }
}

TEST_P(PotentialSweep, FloorOfLemma57HoldsAtTheEnd) {
  // Our sampler is exact (ε = 0, mean fidelity 1), so the final potential
  // must be at least M_k/2M.
  const auto result = run_case(GetParam());
  EXPECT_NEAR(result.mean_final_fidelity, 1.0, 1e-9);
  ASSERT_FALSE(result.d_t.empty());
  EXPECT_GE(result.d_t.back(), result.floor() - 1e-9);
}

TEST_P(PotentialSweep, StartsAtZeroAndIsFinite) {
  // Before any machine-k oracle the two runs coincide; the first recorded
  // point comes AFTER one oracle call and is bounded by the ceiling at t=1.
  const auto result = run_case(GetParam());
  ASSERT_FALSE(result.d_t.empty());
  EXPECT_LE(result.d_t.front(), result.ceiling(1) + 1e-9);
  for (const auto d : result.d_t) {
    EXPECT_GE(d, -1e-12);
    EXPECT_LE(d, 4.0 + 1e-9);  // ‖a−b‖² ≤ 4 for unit vectors
  }
}

INSTANTIATE_TEST_SUITE_P(
    HardInputs, PotentialSweep,
    ::testing::Values(
        PotentialCase{16, 2, 0, 2, 2, 3, QueryMode::kSequential},
        PotentialCase{16, 2, 1, 2, 2, 3, QueryMode::kSequential},
        PotentialCase{32, 3, 1, 4, 2, 2, QueryMode::kSequential},
        PotentialCase{32, 2, 0, 2, 4, 4, QueryMode::kParallel},
        PotentialCase{24, 2, 1, 3, 3, 3, QueryMode::kParallel},
        PotentialCase{48, 4, 2, 4, 2, 2, QueryMode::kSequential}));

TEST(Potential, PerStepIncrementBoundFromAppendixC) {
  // Appendix C: √D_{t+1} ≤ √D_t + 2√(m_k/N) — the arithmetic-progression
  // step behind the t² ceiling. Check it on the measured trace.
  const auto base = make_canonical_hard_input(32, 2, 0, 4, 2);
  Rng rng(13);
  PotentialOptions options;
  options.mode = QueryMode::kSequential;
  options.family_samples = 20;
  const auto result = measure_potential(base, 0, 3, options, rng);
  const double step = 2.0 * std::sqrt(static_cast<double>(result.m_k) /
                                      static_cast<double>(result.universe));
  double prev = 0.0;  // D_0 = 0
  for (const auto d : result.d_t) {
    EXPECT_LE(std::sqrt(std::max(d, 0.0)), prev + step + 1e-9);
    prev = std::sqrt(std::max(d, 0.0));
  }
}

TEST(Potential, ExhaustiveAndSampledEstimatesAgree) {
  // With a small family (C(6,2) = 15) the Monte-Carlo estimate must
  // converge to the exhaustive value.
  const auto base = make_canonical_hard_input(6, 2, 0, 2, 2);
  PotentialOptions exhaustive;
  exhaustive.exhaustive = true;
  Rng rng1(17);
  const auto exact = measure_potential(base, 0, 3, exhaustive, rng1);
  EXPECT_EQ(exact.family_members, 15u);

  PotentialOptions sampled;
  sampled.family_samples = 600;
  Rng rng2(19);
  const auto estimate = measure_potential(base, 0, 3, sampled, rng2);
  ASSERT_EQ(exact.d_t.size(), estimate.d_t.size());
  for (std::size_t t = 0; t < exact.d_t.size(); ++t)
    EXPECT_NEAR(estimate.d_t[t], exact.d_t[t], 0.15 * exact.d_t[t] + 0.02);
}

TEST(Potential, CrossoverScalesLikeSqrtKappaNOverM) {
  // The t where the ceiling can first reach the floor is
  // √((M_k/2M)·N/(4 m_k)) = √(κ_k β N / (8M))-ish; for the canonical input
  // with multiplicity = κ_k it is exactly √(N κ_k/(8 M)) rounded up.
  const auto base = make_canonical_hard_input(64, 2, 0, 4, 4);
  Rng rng(23);
  PotentialOptions options;
  options.family_samples = 4;
  const auto result = measure_potential(base, 0, 4, options, rng);
  const double mk = 4.0, universe = 64.0, m_total = 16.0, kappa = 4.0;
  const double expected =
      std::sqrt((m_total / (2.0 * m_total)) * universe / (4.0 * mk));
  EXPECT_EQ(result.crossover(result.floor()),
            static_cast<std::uint64_t>(std::ceil(expected)));
  // And that is Θ(√(κ N / M)):
  const double theta_form = std::sqrt(kappa * universe / m_total);
  EXPECT_GT(static_cast<double>(result.crossover(result.floor())),
            0.2 * theta_form);
  EXPECT_LT(static_cast<double>(result.crossover(result.floor())),
            2.0 * theta_form);
}

TEST(Potential, EmptyMachineKRejected) {
  std::vector<Dataset> base = {Dataset(8), Dataset::from_counts(
                                               {1, 0, 0, 0, 0, 0, 0, 0})};
  Rng rng(29);
  PotentialOptions options;
  EXPECT_THROW(measure_potential(base, 0, 2, options, rng),
               ContractViolation);
}

TEST(Lockstep, RejectsMismatchedConfigurations) {
  std::vector<Dataset> a = {Dataset::from_counts({1, 0}),
                            Dataset::from_counts({0, 1})};
  std::vector<Dataset> b = {Dataset::from_counts({1, 0}),
                            Dataset::from_counts({0, 1})};
  const DistributedDatabase db_true(std::move(a), 2);
  const DistributedDatabase db_not_empty(std::move(b), 2);
  EXPECT_THROW(LockstepBackend(db_true, db_not_empty, 1,
                               StatePrep::kHouseholder),
               ContractViolation);
}

TEST(Lockstep, TrueRunMatchesStandaloneSampler) {
  // Lockstep execution must not perturb the true run: its final state has
  // to equal a standalone sequential-sampler run on the same input.
  const auto base = make_canonical_hard_input(16, 2, 0, 2, 2);
  const DistributedDatabase db_true(base, 3);
  std::vector<Dataset> emptied = base;
  emptied[0] = Dataset(16);
  const DistributedDatabase db_empty(std::move(emptied), 3);

  const double a = static_cast<double>(db_true.total()) / (3.0 * 16.0);
  const auto plan = plan_zero_error(a);
  LockstepBackend lockstep(db_true, db_empty, 0, StatePrep::kHouseholder);
  run_sampling_circuit(lockstep, QueryMode::kSequential, plan);

  const auto standalone = run_sequential_sampler(db_true);
  EXPECT_NEAR(pure_fidelity(lockstep.true_state(), standalone.state), 1.0,
              1e-10);
}

TEST(Lockstep, ClockCountsOnlyMachineKQueries) {
  const auto base = make_canonical_hard_input(16, 3, 1, 2, 2);
  const DistributedDatabase db_true(base, 3);
  std::vector<Dataset> emptied = base;
  emptied[1] = Dataset(16);
  const DistributedDatabase db_empty(std::move(emptied), 3);

  const double a = static_cast<double>(db_true.total()) / (3.0 * 16.0);
  const auto plan = plan_zero_error(a);
  LockstepBackend lockstep(db_true, db_empty, 1, StatePrep::kHouseholder);
  run_sampling_circuit(lockstep, QueryMode::kSequential, plan);

  // Machine 1 is queried twice per D application.
  EXPECT_EQ(lockstep.clock(), 2 * plan.d_applications());
}

}  // namespace
}  // namespace qs
