// Tests for the adaptive (non-oblivious) sampler (estimation/adaptive.hpp).
#include "estimation/adaptive.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {
namespace {

/// n machines, only the first `active` hold data.
DistributedDatabase mostly_empty_db(std::size_t machines, std::size_t active,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Dataset> datasets(machines, Dataset(64));
  for (std::size_t j = 0; j < active; ++j) {
    for (int e = 0; e < 6; ++e)
      datasets[j].insert(rng.uniform_below(64), 1);
  }
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(Adaptive, SkipsEmptyMachinesAndStaysExact) {
  const auto db = mostly_empty_db(8, 2, 3);
  Rng rng(5);
  const auto result =
      run_adaptive_sampler(db, exponential_schedule(6, 32), rng);
  EXPECT_EQ(result.misclassified, 0u);
  EXPECT_NEAR(result.sampling.fidelity, 1.0, 1e-9);
  std::size_t active = 0;
  for (const auto a : result.machine_active) active += a;
  EXPECT_EQ(active, 2u);
}

TEST(Adaptive, ProbesAloneCostMoreThanOneObliviousRun) {
  // Reliable emptiness detection needs Grover-order queries per machine, so
  // a SINGLE sampling task never benefits from adaptivity — empirical
  // support for the Section 6 conjecture.
  const auto db = mostly_empty_db(16, 2, 7);
  Rng rng(9);
  const auto adaptive =
      run_adaptive_sampler(db, exponential_schedule(5, 24), rng);
  const auto oblivious = run_sequential_sampler(db);
  EXPECT_NEAR(adaptive.sampling.fidelity, 1.0, 1e-9);
  EXPECT_GT(adaptive.total_cost(), oblivious.stats.total_sequential());
}

TEST(Adaptive, BeatsObliviousWhenProbesAreAmortized) {
  // Probe once, sample many: with most machines empty, the per-sample cost
  // drops to ~2·n_active·d_apps and the probe overhead washes out.
  const auto db = mostly_empty_db(16, 2, 7);
  Rng rng(9);
  const auto adaptive =
      run_adaptive_sampler(db, exponential_schedule(5, 16), rng);
  const auto oblivious = run_sequential_sampler(db);
  ASSERT_EQ(adaptive.misclassified, 0u);
  EXPECT_NEAR(adaptive.sampling.fidelity, 1.0, 1e-9);
  EXPECT_LT(adaptive.amortized_cost(1000),
            static_cast<double>(oblivious.stats.total_sequential()));
}

TEST(Adaptive, LosesWhenEveryMachineHoldsData) {
  // The probe cost is pure overhead when there is nothing to skip — the
  // empirical side of the Section 6 conjecture.
  const auto db = mostly_empty_db(4, 4, 11);
  Rng rng(13);
  const auto adaptive =
      run_adaptive_sampler(db, exponential_schedule(5, 24), rng);
  const auto oblivious = run_sequential_sampler(db);
  EXPECT_NEAR(adaptive.sampling.fidelity, 1.0, 1e-9);
  EXPECT_GT(adaptive.total_cost(), oblivious.stats.total_sequential());
}

TEST(Adaptive, MisclassificationDegradesFidelityVisibly) {
  // Unequal loads plus a threshold sitting between them: the light machines
  // get (wrongly, they hold data) skipped and the reported fidelity drops.
  std::vector<Dataset> datasets(3, Dataset(64));
  for (std::size_t i = 0; i < 12; ++i) datasets[0].insert(i, 1);  // heavy
  for (std::size_t i = 20; i < 23; ++i) datasets[1].insert(i, 1);  // light
  for (std::size_t i = 30; i < 33; ++i) datasets[2].insert(i, 1);  // light
  const DistributedDatabase db(std::move(datasets), 2);
  Rng rng(19);
  const auto result = run_adaptive_sampler(
      db, exponential_schedule(6, 32), rng, /*emptiness_threshold=*/7.0);
  EXPECT_GT(result.misclassified, 0u);
  EXPECT_LT(result.sampling.fidelity, 1.0 - 1e-6);
}

TEST(Adaptive, AllMachinesJudgedEmptyThrows) {
  const auto db = mostly_empty_db(3, 1, 23);
  Rng rng(29);
  EXPECT_THROW(run_adaptive_sampler(db, exponential_schedule(4, 16), rng,
                                    /*emptiness_threshold=*/1e9),
               ContractViolation);
}

TEST(Adaptive, SavingIsOnlyTheMachineFactorNotTheSqrtTerm) {
  // Empirical check of the conjecture's shape: per-D cost drops from 2n to
  // 2·n_active, but the NUMBER of D applications (the √(νN/M) term) is
  // unchanged.
  const auto db = mostly_empty_db(12, 3, 31);
  Rng rng(37);
  const auto adaptive =
      run_adaptive_sampler(db, exponential_schedule(5, 24), rng);
  const auto oblivious = run_sequential_sampler(db);
  ASSERT_EQ(adaptive.misclassified, 0u);
  EXPECT_EQ(adaptive.sampling.plan.d_applications(),
            oblivious.plan.d_applications());
  EXPECT_EQ(adaptive.sampling.stats.total_sequential(),
            2 * 3 * adaptive.sampling.plan.d_applications());
}

}  // namespace
}  // namespace qs
