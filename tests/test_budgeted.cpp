// Tests for the budgeted sampler — the approximate-algorithm regime of
// Section 5 (fidelity > 9/16 rather than exact).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

DistributedDatabase sparse_db() {
  // a = 32/(4·256) = 1/32 → plan has several iterations to truncate.
  std::vector<Dataset> datasets = {Dataset(256)};
  for (std::size_t i = 0; i < 16; ++i) datasets[0].insert(i * 16, 2);
  return DistributedDatabase(std::move(datasets), 4);
}

TEST(Budgeted, FullBudgetReproducesExactSampler) {
  const auto db = sparse_db();
  const auto plan = plan_zero_error(1.0 / 32.0);
  const std::size_t full =
      plan.full_iterations + (plan.needs_final ? 1 : 0);
  const auto result =
      run_budgeted_sampler(db, QueryMode::kSequential, full);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

TEST(Budgeted, OversizedBudgetDoesNotOvershoot) {
  const auto db = sparse_db();
  const auto result =
      run_budgeted_sampler(db, QueryMode::kSequential, 10000);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

TEST(Budgeted, ZeroBudgetLeavesPreparationOnly) {
  const auto db = sparse_db();
  const auto result = run_budgeted_sampler(db, QueryMode::kSequential, 0);
  // Fidelity of A|0⟩ against the target is exactly a = 1/32.
  EXPECT_NEAR(result.fidelity, 1.0 / 32.0, 1e-9);
  // One D application = 2n queries.
  EXPECT_EQ(result.stats.total_sequential(), 2 * db.num_machines());
}

TEST(Budgeted, FidelityFollowsTheRotationLaw) {
  const auto db = sparse_db();
  const double theta = std::asin(std::sqrt(1.0 / 32.0));
  const auto plan = plan_zero_error(1.0 / 32.0);
  for (std::size_t budget = 0; budget <= plan.full_iterations; ++budget) {
    const auto result =
        run_budgeted_sampler(db, QueryMode::kSequential, budget);
    const double expected =
        std::pow(std::sin((2.0 * double(budget) + 1.0) * theta), 2.0);
    EXPECT_NEAR(result.fidelity, expected, 1e-9) << "budget=" << budget;
  }
}

TEST(Budgeted, MonotoneUpToThePlanLength) {
  const auto db = sparse_db();
  double previous = 0.0;
  const auto plan = plan_zero_error(1.0 / 32.0);
  for (std::size_t budget = 0;
       budget <= plan.full_iterations + (plan.needs_final ? 1 : 0);
       ++budget) {
    const auto result =
        run_budgeted_sampler(db, QueryMode::kParallel, budget);
    EXPECT_GT(result.fidelity + 1e-12, previous);
    previous = result.fidelity;
  }
  EXPECT_NEAR(previous, 1.0, 1e-9);
}

TEST(Budgeted, CrossesNineSixteenthsWhereTheoryPredicts) {
  // The Section 5 fidelity threshold 9/16: the first budget t with
  // sin²((2t+1)θ) > 9/16.
  const auto db = sparse_db();
  const double theta = std::asin(std::sqrt(1.0 / 32.0));
  std::size_t predicted = 0;
  while (std::pow(std::sin((2.0 * double(predicted) + 1.0) * theta), 2.0) <=
         9.0 / 16.0)
    ++predicted;
  for (std::size_t budget = 0; budget <= predicted; ++budget) {
    const auto result =
        run_budgeted_sampler(db, QueryMode::kSequential, budget);
    if (budget < predicted) {
      EXPECT_LE(result.fidelity, 9.0 / 16.0 + 1e-9);
    } else {
      EXPECT_GT(result.fidelity, 9.0 / 16.0);
    }
  }
}

}  // namespace
}  // namespace qs
