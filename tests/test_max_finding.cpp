// Tests for distributed heavy-hitter search (apps/max_finding.hpp) —
// Dürr–Høyer maximum finding over joint multiplicities.
#include "apps/max_finding.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "sampling/classical.hpp"

namespace qs {
namespace {

DistributedDatabase skewed_db() {
  // Joint counts: element 5 is the unique maximum (4), a few mid and low.
  std::vector<Dataset> datasets = {Dataset(32), Dataset(32)};
  datasets[0].insert(5, 2);
  datasets[1].insert(5, 2);  // joint 4 — the heavy hitter
  datasets[0].insert(9, 2);  // 2
  datasets[1].insert(20, 1);
  datasets[0].insert(30, 1);
  return DistributedDatabase(std::move(datasets), 4);
}

TEST(ThresholdSampling, FindsOnlyKeysAboveTheThreshold) {
  const auto db = skewed_db();
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto result =
        sample_above_threshold(db, QueryMode::kSequential, 1, rng);
    ASSERT_TRUE(result.found);
    EXPECT_GT(result.multiplicity, 1u);
    EXPECT_TRUE(result.element == 5 || result.element == 9);
  }
}

TEST(ThresholdSampling, ThresholdZeroSamplesTheSupport) {
  const auto db = skewed_db();
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 40; ++trial) {
    const auto result =
        sample_above_threshold(db, QueryMode::kSequential, 0, rng);
    ASSERT_TRUE(result.found);
    seen.insert(result.element);
  }
  // Uniform over the 4 support keys: all should appear in 40 draws.
  EXPECT_EQ(seen, (std::set<std::size_t>{5, 9, 20, 30}));
}

TEST(ThresholdSampling, ReportsNotFoundAboveTheMaximum) {
  const auto db = skewed_db();
  Rng rng(7);
  const auto result =
      sample_above_threshold(db, QueryMode::kSequential, 4, rng, 24);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.attempts, 24u);
}

TEST(MaxFinding, FindsTheUniqueHeaviestKey) {
  const auto db = skewed_db();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(100 + seed);
    const auto result = find_heaviest_key(db, QueryMode::kSequential, rng);
    EXPECT_EQ(result.element, 5u) << "seed " << seed;
    EXPECT_EQ(result.multiplicity, 4u);
    EXPECT_GE(result.ratchet_steps, 1u);
  }
}

TEST(MaxFinding, ParallelModeAgrees) {
  const auto db = skewed_db();
  Rng rng(11);
  const auto result = find_heaviest_key(db, QueryMode::kParallel, rng);
  EXPECT_EQ(result.element, 5u);
  EXPECT_GT(result.stats.parallel_rounds, 0u);
  EXPECT_EQ(result.stats.total_sequential(), 0u);
}

TEST(MaxFinding, TieReturnsOneOfTheMaxima) {
  std::vector<Dataset> datasets = {Dataset(16)};
  datasets[0].insert(2, 3);
  datasets[0].insert(11, 3);  // tie at 3
  datasets[0].insert(7, 1);
  const DistributedDatabase db(std::move(datasets), 3);
  Rng rng(13);
  const auto result = find_heaviest_key(db, QueryMode::kSequential, rng);
  EXPECT_TRUE(result.element == 2 || result.element == 11);
  EXPECT_EQ(result.multiplicity, 3u);
}

TEST(MaxFinding, SingleKeyStore) {
  std::vector<Dataset> datasets = {Dataset(64)};
  datasets[0].insert(40, 2);
  const DistributedDatabase db(std::move(datasets), 2);
  Rng rng(17);
  const auto result = find_heaviest_key(db, QueryMode::kSequential, rng);
  EXPECT_EQ(result.element, 40u);
  EXPECT_EQ(result.multiplicity, 2u);
}

TEST(MaxFinding, SaturatedKeyShortCircuitsAtCapacity) {
  std::vector<Dataset> datasets = {Dataset(16)};
  datasets[0].insert(3, 4);
  const DistributedDatabase db(std::move(datasets), 4);  // c = ν
  Rng rng(19);
  const auto result = find_heaviest_key(db, QueryMode::kSequential, rng);
  EXPECT_EQ(result.element, 3u);
  EXPECT_EQ(result.ratchet_steps, 1u);  // capacity bound ends the loop
}

TEST(MaxFinding, CheaperThanClassicalScanOnLargeSparseStores) {
  // N = 1024, a handful of keys: the DH search must beat the nN scan.
  std::vector<Dataset> datasets = {Dataset(1024), Dataset(1024)};
  for (std::size_t k = 0; k < 6; ++k)
    datasets[k % 2].insert(k * 150, 1 + k % 3);
  const DistributedDatabase db(std::move(datasets), 3);
  Rng rng(23);
  const auto result = find_heaviest_key(db, QueryMode::kSequential, rng);
  EXPECT_EQ(result.multiplicity, 3u);
  const auto classical = classical_full_scan(db);
  EXPECT_LT(result.stats.total_sequential(), classical.queries);
}

TEST(MaxFinding, EmptyDatabaseRejected) {
  std::vector<Dataset> datasets = {Dataset(8)};
  const DistributedDatabase db(std::move(datasets), 1);
  Rng rng(29);
  EXPECT_THROW(find_heaviest_key(db, QueryMode::kSequential, rng),
               ContractViolation);
}

}  // namespace
}  // namespace qs
