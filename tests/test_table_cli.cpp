// Tests for the table renderer and CLI parser (common/table.hpp, cli.hpp).
#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hpp"
#include "common/require.hpp"
#include "common/table.hpp"

namespace qs {
namespace {

TEST(TextTable, RejectsEmptyHeaderAndMismatchedRow) {
  EXPECT_THROW(TextTable({}), ContractViolation);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("## demo"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, CellFormatters) {
  EXPECT_EQ(TextTable::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::cell(std::int64_t{-7}), "-7");
  EXPECT_EQ(TextTable::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::cell_sci(12345.0, 2), "1.23e+04");
}

TEST(CliArgs, ParsesSeparatedAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "32", "--mode=parallel", "--verbose"};
  const CliArgs args(5, argv);
  EXPECT_EQ(args.get("n", std::int64_t{0}), 32);
  EXPECT_EQ(args.get("mode", std::string("seq")), "parallel");
  EXPECT_TRUE(args.get("verbose", false));
  EXPECT_EQ(args.get("absent", std::int64_t{-1}), -1);
}

TEST(CliArgs, BooleanBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--fast", "--n", "8"};
  const CliArgs args(4, argv);
  EXPECT_TRUE(args.get("fast", false));
  EXPECT_EQ(args.get("n", std::uint64_t{0}), 8u);
}

TEST(CliArgs, DoubleAndHasAndUnused) {
  const char* argv[] = {"prog", "--eps", "0.25", "--typo", "1"};
  const CliArgs args(5, argv);
  EXPECT_DOUBLE_EQ(args.get("eps", 0.0), 0.25);
  EXPECT_TRUE(args.has("eps"));
  EXPECT_FALSE(args.has("nothing"));
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliArgs, RejectsNonFlagToken) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(CliArgs(2, argv), ContractViolation);
}

}  // namespace
}  // namespace qs
