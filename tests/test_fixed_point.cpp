// Tests for the π/3 fixed-point sampler (sampling/fixed_point.hpp).
#include "sampling/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "sampling/schedule.hpp"

namespace qs {
namespace {

DistributedDatabase fp_db(std::size_t universe, std::size_t support,
                          std::uint64_t mult, std::uint64_t nu) {
  std::vector<Dataset> datasets = {Dataset(universe), Dataset(universe)};
  for (std::size_t i = 0; i < support; ++i)
    datasets[i % 2].insert(i, mult);
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(FixedPoint, ErrorCubesPerLevel) {
  // The defining property: 1 − F at level m equals (1 − a)^(3^m).
  const auto db = fp_db(16, 8, 1, 2);  // a = 8/32 = 0.25
  for (std::size_t levels = 0; levels <= 3; ++levels) {
    const auto result =
        run_fixed_point_sampler(db, QueryMode::kSequential, levels);
    EXPECT_NEAR(1.0 - result.fidelity, result.predicted_error, 1e-9)
        << "levels=" << levels;
  }
}

TEST(FixedPoint, MonotoneConvergenceToOne) {
  const auto db = fp_db(32, 8, 1, 2);  // a = 8/64
  double previous = 0.0;
  for (std::size_t levels = 0; levels <= 4; ++levels) {
    const auto result =
        run_fixed_point_sampler(db, QueryMode::kParallel, levels);
    EXPECT_GT(result.fidelity + 1e-12, previous) << "levels=" << levels;
    previous = result.fidelity;
  }
  EXPECT_GT(previous, 0.99);
}

TEST(FixedPoint, NeverOverRotates) {
  // Unlike plain Grover, extra levels cannot hurt: at a = 0.9 (already
  // nearly good) a deep recursion still converges upward.
  const auto db = fp_db(10, 9, 2, 2);  // a = 18/20 = 0.9
  const auto shallow =
      run_fixed_point_sampler(db, QueryMode::kSequential, 1);
  const auto deep = run_fixed_point_sampler(db, QueryMode::kSequential, 3);
  EXPECT_GE(deep.fidelity + 1e-12, shallow.fidelity);
  EXPECT_NEAR(deep.fidelity, 1.0, 1e-9);
}

TEST(FixedPoint, CostIsThreeToTheLevels) {
  const auto db = fp_db(16, 4, 1, 2);
  for (std::size_t levels = 0; levels <= 3; ++levels) {
    const auto result =
        run_fixed_point_sampler(db, QueryMode::kSequential, levels);
    const auto d_applications =
        static_cast<std::uint64_t>(std::pow(3.0, double(levels)));
    EXPECT_EQ(result.stats.total_sequential(),
              d_applications * 2 * db.num_machines());
  }
}

TEST(FixedPoint, LevelPlannerFromFloorOnly) {
  // Planning uses only a LOWER bound on a: a_floor = 1/(νN) ("at least one
  // record"). The resulting level count must actually deliver δ.
  const auto db = fp_db(16, 6, 1, 2);  // true a = 6/32
  const double a_floor = 1.0 / (2.0 * 16.0);
  const double delta = 1e-3;
  const auto levels = fixed_point_levels_for(a_floor, delta);
  const auto result =
      run_fixed_point_sampler(db, QueryMode::kSequential, levels);
  EXPECT_LT(1.0 - result.fidelity, delta);
}

TEST(FixedPoint, LevelPlannerEdgeCases) {
  EXPECT_EQ(fixed_point_levels_for(1.0, 0.01), 0u);  // already exact
  EXPECT_THROW(fixed_point_levels_for(0.0, 0.1), ContractViolation);
  EXPECT_THROW(fixed_point_levels_for(0.5, 1.5), ContractViolation);
}

TEST(FixedPoint, ScheduleIsObliviousInM) {
  // The fixed-point schedule depends only on (n, levels) — two databases
  // with DIFFERENT M produce identical query schedules, unlike the
  // zero-error sampler whose iteration count reads M.
  const auto db_small = fp_db(16, 2, 1, 2);
  const auto db_large = fp_db(16, 8, 2, 2);
  const auto a = run_fixed_point_sampler(db_small, QueryMode::kSequential, 2);
  const auto b = run_fixed_point_sampler(db_large, QueryMode::kSequential, 2);
  EXPECT_EQ(a.stats.sequential_per_machine, b.stats.sequential_per_machine);
}

TEST(FixedPoint, AgreesWithExactSamplerWhenConverged) {
  Rng rng(7);
  auto datasets = workload::uniform_random(24, 3, 30, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  const auto exact = run_sequential_sampler(db);
  const auto fp = run_fixed_point_sampler(db, QueryMode::kSequential, 4);
  EXPECT_GT(pure_fidelity(exact.state, fp.state), 0.999);
}

TEST(FixedPoint, RejectsEmptyAndExcessiveDepth) {
  std::vector<Dataset> empty = {Dataset(8)};
  const DistributedDatabase db(std::move(empty), 1);
  EXPECT_THROW(run_fixed_point_sampler(db, QueryMode::kSequential, 1),
               ContractViolation);
  const auto ok = fp_db(8, 2, 1, 1);
  EXPECT_THROW(run_fixed_point_sampler(ok, QueryMode::kSequential, 13),
               ContractViolation);
}

}  // namespace
}  // namespace qs
