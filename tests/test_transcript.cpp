// Tests for communication transcripts (distdb/transcript.hpp).
#include "distdb/transcript.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qs {
namespace {

TEST(Transcript, RecordsEventsInOrder) {
  Transcript t;
  t.record_sequential(2, false);
  t.record_sequential(2, true);
  t.record_parallel_round(false);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].kind, QueryKind::kSequential);
  EXPECT_EQ(t.events()[0].machine, 2u);
  EXPECT_FALSE(t.events()[0].adjoint);
  EXPECT_TRUE(t.events()[1].adjoint);
  EXPECT_EQ(t.events()[2].kind, QueryKind::kParallelRound);
}

TEST(Transcript, EqualityDetectsScheduleDifferences) {
  Transcript a, b;
  a.record_sequential(0, false);
  b.record_sequential(0, false);
  EXPECT_EQ(a, b);
  b.record_sequential(1, false);
  EXPECT_NE(a, b);
  a.record_sequential(1, true);  // same machine, different direction
  EXPECT_NE(a, b);
}

TEST(Transcript, ToStringIsHumanReadable) {
  Transcript t;
  t.record_sequential(3, false);
  t.record_sequential(3, true);
  t.record_parallel_round(true);
  const auto s = t.to_string();
  EXPECT_NE(s.find("O3"), std::string::npos);
  EXPECT_NE(s.find("P"), std::string::npos);
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), s);
}

TEST(Transcript, ClearEmpties) {
  Transcript t;
  t.record_parallel_round(false);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t, Transcript{});
}

}  // namespace
}  // namespace qs
