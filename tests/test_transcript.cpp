// Tests for communication transcripts (distdb/transcript.hpp).
#include "distdb/transcript.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(Transcript, RecordsEventsInOrder) {
  Transcript t;
  t.record_sequential(2, false);
  t.record_sequential(2, true);
  t.record_parallel_round(false);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.events()[0].kind, QueryKind::kSequential);
  EXPECT_EQ(t.events()[0].machine, 2u);
  EXPECT_FALSE(t.events()[0].adjoint);
  EXPECT_TRUE(t.events()[1].adjoint);
  EXPECT_EQ(t.events()[2].kind, QueryKind::kParallelRound);
}

TEST(Transcript, EqualityDetectsScheduleDifferences) {
  Transcript a, b;
  a.record_sequential(0, false);
  b.record_sequential(0, false);
  EXPECT_EQ(a, b);
  b.record_sequential(1, false);
  EXPECT_NE(a, b);
  a.record_sequential(1, true);  // same machine, different direction
  EXPECT_NE(a, b);
}

TEST(Transcript, ToStringIsHumanReadable) {
  Transcript t;
  t.record_sequential(3, false);
  t.record_sequential(3, true);
  t.record_parallel_round(true);
  const auto s = t.to_string();
  EXPECT_NE(s.find("O3"), std::string::npos);
  EXPECT_NE(s.find("P"), std::string::npos);
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), s);
}

TEST(Transcript, ParallelRoundsRenderDistinctFromSequential) {
  // `P*` must not be confusable with a sequential query against some
  // machine named P — and forward/adjoint rounds must differ.
  Transcript par_fwd, par_adj;
  par_fwd.record_parallel_round(false);
  par_adj.record_parallel_round(true);
  EXPECT_EQ(par_fwd.to_string(), "P*");
  EXPECT_EQ(par_adj.to_string(), "P*†");
  EXPECT_NE(par_fwd.to_string(), par_adj.to_string());
}

TEST(Transcript, ParseRoundTripsMixedEvents) {
  Transcript t;
  t.record_sequential(0, false);
  t.record_sequential(12, false);
  t.record_parallel_round(false);
  t.record_parallel_round(true);
  t.record_sequential(12, true);
  t.record_sequential(0, true);
  EXPECT_EQ(parse_transcript(t.to_string()), t);
}

TEST(Transcript, ParseRoundTripsEmptyAndAcceptsLegacyParallelToken) {
  EXPECT_EQ(parse_transcript(""), Transcript{});
  EXPECT_EQ(parse_transcript("   \n  "), Transcript{});
  // Pre-wire-format logs rendered parallel rounds as bare `P`.
  Transcript expected;
  expected.record_parallel_round(false);
  expected.record_parallel_round(true);
  EXPECT_EQ(parse_transcript("P P†"), expected);
}

TEST(Transcript, ParseRejectsMalformedTokens) {
  EXPECT_THROW(parse_transcript("O"), std::exception);
  EXPECT_THROW(parse_transcript("Ox"), std::exception);
  EXPECT_THROW(parse_transcript("O3x"), std::exception);
  EXPECT_THROW(parse_transcript("Q3"), std::exception);
  EXPECT_THROW(parse_transcript("O3 garbage"), std::exception);
}

TEST(Transcript, StatsOfCountsBothKinds) {
  Transcript t;
  t.record_sequential(1, false);
  t.record_sequential(1, true);
  t.record_sequential(0, false);
  t.record_parallel_round(false);
  const auto stats = stats_of(t, 3);
  EXPECT_EQ(stats.total_sequential(), 3u);
  EXPECT_EQ(stats.parallel_rounds, 1u);
  ASSERT_EQ(stats.sequential_per_machine.size(), 3u);
  EXPECT_EQ(stats.sequential_per_machine[0], 1u);
  EXPECT_EQ(stats.sequential_per_machine[1], 2u);
  EXPECT_EQ(stats.sequential_per_machine[2], 0u);
}

TEST(Transcript, StatsOfRejectsOutOfRangeMachine) {
  Transcript t;
  t.record_sequential(5, false);
  EXPECT_THROW(stats_of(t, 3), std::exception);
}

// Regression: for both query modes, the QueryStats ledger the database
// accumulates must agree exactly with what the recorded transcript says.
TEST(Transcript, StatsOfMatchesDatabaseLedgerForBothModes) {
  Rng rng(41);
  auto datasets = workload::uniform_random(16, 3, 12, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);

  for (const bool parallel : {false, true}) {
    Transcript transcript;
    SamplerOptions options;
    options.transcript = &transcript;
    db.reset_stats();
    if (parallel) {
      run_parallel_sampler(db, options);
    } else {
      run_sequential_sampler(db, options);
    }
    const auto from_ledger = db.stats();
    const auto from_transcript = stats_of(transcript, db.num_machines());
    EXPECT_EQ(from_transcript.sequential_per_machine,
              from_ledger.sequential_per_machine);
    EXPECT_EQ(from_transcript.parallel_rounds, from_ledger.parallel_rounds);
  }
}

TEST(Transcript, ClearEmpties) {
  Transcript t;
  t.record_parallel_round(false);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t, Transcript{});
}

}  // namespace
}  // namespace qs
