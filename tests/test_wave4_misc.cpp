// Wave-4 cross-cutting tests: the per-qubit-trip noise regime, the MLAE
// Fisher-information error bars, oracle-order invariance inside D, and the
// umbrella header (compiled by including it here).
#include "dqs.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qs {
namespace {

DistributedDatabase wave4_db(std::size_t machines = 4) {
  Rng rng(3);
  auto datasets = workload::uniform_random(64, machines, 24, rng);
  const auto nu = min_capacity(datasets) + 1;
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(TransportNoise, DegradesFidelity) {
  const auto db = wave4_db();
  NoiseModel noise;
  noise.dephasing_per_qubit_trip = 0.001;
  Rng rng(5);
  const auto result =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 32, rng);
  EXPECT_LT(result.mean_fidelity, 0.999);
  EXPECT_GT(result.mean_fidelity, 0.01);
}

TEST(TransportNoise, SequentialBeatsParallelPerTrip) {
  // The parallel model moves more qubits per D (extra control qubits,
  // parallel fan-out), so per-trip noise inverts F6's winner.
  const auto db = wave4_db(6);
  NoiseModel noise;
  noise.dephasing_per_qubit_trip = 0.001;
  Rng rng1(7), rng2(8);
  const auto seq =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 48, rng1);
  const auto par =
      run_noisy_sampler(db, QueryMode::kParallel, noise, 48, rng2);
  EXPECT_GT(seq.mean_fidelity, par.mean_fidelity);
}

TEST(TransportNoise, ZeroRateIsNoiseless) {
  NoiseModel noise;
  EXPECT_TRUE(noise.is_noiseless());
  noise.dephasing_per_qubit_trip = 0.1;
  EXPECT_FALSE(noise.is_noiseless());
}

TEST(FisherErrorBars, StandardErrorShrinksWithDeeperSchedules) {
  const double theta = std::asin(std::sqrt(0.1));
  const double se_shallow =
      ae_standard_error(theta, exponential_schedule(3, 32));
  const double se_deep =
      ae_standard_error(theta, exponential_schedule(8, 32));
  EXPECT_LT(se_deep, se_shallow / 4.0);
}

TEST(FisherErrorBars, CoverageIsReasonable) {
  // |â − a| should fall within 3·SE for the large majority of seeds.
  std::vector<Dataset> datasets = {Dataset(64)};
  for (std::size_t i = 0; i < 16; ++i) datasets[0].insert(i, 1);
  const DistributedDatabase db(std::move(datasets), 2);  // a = 16/128
  const double truth = 16.0 / 128.0;
  int covered = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    Rng rng(400 + t);
    const auto estimate = estimate_good_amplitude(
        db, QueryMode::kParallel, exponential_schedule(6, 24), rng);
    if (std::abs(estimate.a_hat - truth) <= 3.0 * estimate.std_error + 1e-4)
      ++covered;
  }
  EXPECT_GE(covered, trials * 3 / 4);
}

TEST(OrderInvariance, MachineOrderInsideDDoesNotMatter) {
  // The machine additions inside D commute: querying machines in any order
  // produces the same composite (the paper's schedule fixes 1..n / n..1 for
  // concreteness only).
  const auto db = wave4_db(5);
  const auto regs = make_coordinator_layout(db.universe(), db.nu());

  SingleStateBackend forward(db, StatePrep::kHouseholder);
  forward.prep_uniform(false);
  apply_distributing_operator(forward, QueryMode::kSequential, false);

  SingleStateBackend shuffled(db, StatePrep::kHouseholder);
  shuffled.prep_uniform(false);
  // Hand-rolled D with a scrambled machine order: 3,0,4,1,2 then 𝒰 then
  // the reverse adds as adjoints in yet another order.
  const std::size_t order[] = {3, 0, 4, 1, 2};
  for (const auto j : order) shuffled.oracle(j, false);
  shuffled.rotation_u(false);
  const std::size_t reverse[] = {0, 1, 2, 3, 4};
  for (const auto j : reverse) shuffled.oracle(j, true);

  EXPECT_NEAR(forward.state().distance_squared(shuffled.state()), 0.0,
              1e-20);
  (void)regs;
}

TEST(UmbrellaHeader, EndToEndThroughSingleInclude) {
  // Everything in this test resolves through dqs.hpp alone: build, sample,
  // verify, count, report.
  Rng rng(11);
  auto datasets = workload::zipf(32, 3, 30, 1.0, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);

  const auto result = run_parallel_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);

  Rng shots(12);
  const auto verification = verify_output_distribution(
      result.state, result.registers.elem, db, 5000, shots);
  EXPECT_TRUE(verification.consistent());

  const auto wire = communication_report(db, result.stats);
  EXPECT_GT(wire.qubits_moved, 0u);

  const auto count = estimate_total_count(db, QueryMode::kParallel,
                                          exponential_schedule(5, 24), rng);
  EXPECT_NEAR(count.m_hat, 30.0, 6.0);
}

}  // namespace
}  // namespace qs
