// Tests for the executable Lemma 5.3 (lowerbound/deferred_measurement.hpp):
// deferring a measurement changes neither the fidelity nor the query count.
#include "lowerbound/deferred_measurement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/gates.hpp"
#include "sampling/samplers.hpp"

namespace qs {
namespace {

TEST(DeferredMeasurement, CoherentCopyPreservesNormAndMarginal) {
  Rng rng(3);
  RegisterLayout layout;
  const auto a = layout.add("a", 3);
  layout.add("b", 2);
  StateVector pre(layout);
  pre.set_amplitudes(random_state(6, rng));

  const auto deferred = defer_measurement(pre, a);
  EXPECT_NEAR(deferred.extended.norm(), 1.0, 1e-12);
  // The ancilla's marginal equals the measured register's marginal.
  const auto original = pre.marginal(a);
  const auto copied = deferred.extended.marginal(deferred.ancilla);
  for (std::size_t v = 0; v < 3; ++v)
    EXPECT_NEAR(original[v], copied[v], 1e-12);
}

TEST(DeferredMeasurement, FidelityEqualsEnsembleFidelity) {
  // Lemma 5.3's core identity on random states and targets.
  Rng rng(5);
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  layout.add("b", 4);
  for (int trial = 0; trial < 10; ++trial) {
    StateVector pre(layout), target(layout);
    pre.set_amplitudes(random_state(8, rng));
    target.set_amplitudes(random_state(8, rng));
    const auto deferred = defer_measurement(pre, a);
    EXPECT_NEAR(deferred_fidelity(deferred, target),
                measured_ensemble_fidelity(pre, a, target), 1e-10)
        << "trial " << trial;
  }
}

TEST(DeferredMeasurement, NoOpWhenRegisterIsClassical) {
  // If the measured register is already in a basis state, measurement does
  // nothing: ensemble fidelity equals plain pure-state fidelity.
  Rng rng(7);
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  const auto b = layout.add("b", 3);
  StateVector pre(layout);
  // |0⟩_a ⊗ random on b.
  std::vector<cplx> amps(6, 0.0);
  const auto sub = random_state(3, rng);
  for (std::size_t j = 0; j < 3; ++j) amps[j] = sub[j];
  pre.set_amplitudes(amps);
  (void)b;

  StateVector target(layout);
  target.set_amplitudes(random_state(6, rng));
  const auto deferred = defer_measurement(pre, a);
  EXPECT_NEAR(deferred_fidelity(deferred, target),
              pure_fidelity(target, pre), 1e-10);
}

TEST(DeferredMeasurement, OnTheSamplersFlagRegister) {
  // The realistic case: an under-rotated sampler whose flag is measured.
  // Deferring that measurement must not change the fidelity to |ψ,0,0⟩,
  // and costs no extra oracle queries (the transformation touches no
  // oracle).
  Rng rng(9);
  auto datasets = workload::uniform_random(16, 2, 10, rng);
  const auto nu = min_capacity(datasets) + 2;
  const DistributedDatabase db(std::move(datasets), nu);

  const auto truncated = run_budgeted_sampler(db, QueryMode::kSequential, 1);
  const auto queries_before = truncated.stats.total_sequential();
  const StateVector target = target_full_state(db);

  const double ensemble = measured_ensemble_fidelity(
      truncated.state, truncated.registers.flag, target);
  const auto deferred =
      defer_measurement(truncated.state, truncated.registers.flag);
  EXPECT_NEAR(deferred_fidelity(deferred, target), ensemble, 1e-10);
  // Query ledger untouched by the transformation.
  EXPECT_EQ(db.stats().total_sequential(), queries_before);
}

TEST(DeferredMeasurement, MeasuringTheGoodFlagKeepsExactSamplerExact) {
  // For the zero-error sampler the flag is deterministically 0, so even
  // the MEASURING algorithm retains fidelity 1 — and so does the deferred
  // one.
  Rng rng(11);
  auto datasets = workload::uniform_random(16, 2, 12, rng);
  const auto nu = min_capacity(datasets) + 1;
  const DistributedDatabase db(std::move(datasets), nu);
  const auto exact = run_sequential_sampler(db);
  const StateVector target = target_full_state(db);
  EXPECT_NEAR(measured_ensemble_fidelity(exact.state,
                                         exact.registers.flag, target),
              1.0, 1e-9);
  const auto deferred = defer_measurement(exact.state, exact.registers.flag);
  EXPECT_NEAR(deferred_fidelity(deferred, target), 1.0, 1e-9);
}

TEST(DeferredMeasurement, OutcomeProbabilitiesReported) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  StateVector pre(layout);
  pre.set_amplitudes({std::sqrt(0.3), std::sqrt(0.7)});
  const auto deferred = defer_measurement(pre, a);
  ASSERT_EQ(deferred.outcome_probabilities.size(), 2u);
  EXPECT_NEAR(deferred.outcome_probabilities[0], 0.3, 1e-12);
  EXPECT_NEAR(deferred.outcome_probabilities[1], 0.7, 1e-12);
}

}  // namespace
}  // namespace qs
