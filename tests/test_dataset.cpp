// Tests for the multiset Dataset (distdb/dataset.hpp), including a
// property-style randomized comparison against a reference model.
#include "distdb/dataset.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace qs {
namespace {

TEST(Dataset, StartsEmpty) {
  Dataset d(10);
  EXPECT_EQ(d.universe(), 10u);
  EXPECT_EQ(d.total(), 0u);
  EXPECT_EQ(d.support_size(), 0u);
  EXPECT_EQ(d.max_multiplicity(), 0u);
  EXPECT_TRUE(d.support().empty());
}

TEST(Dataset, RejectsEmptyUniverse) {
  EXPECT_THROW(Dataset(0), ContractViolation);
}

TEST(Dataset, InsertUpdatesAggregates) {
  Dataset d(5);
  d.insert(2);
  d.insert(2, 3);
  d.insert(4);
  EXPECT_EQ(d.count(2), 4u);
  EXPECT_EQ(d.count(4), 1u);
  EXPECT_EQ(d.total(), 5u);
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_EQ(d.max_multiplicity(), 4u);
  EXPECT_EQ(d.support(), (std::vector<std::size_t>{2, 4}));
}

TEST(Dataset, EraseUpdatesAggregatesAndRecomputesMax) {
  Dataset d(5);
  d.insert(0, 5);
  d.insert(1, 3);
  d.erase(0, 4);
  EXPECT_EQ(d.count(0), 1u);
  EXPECT_EQ(d.max_multiplicity(), 3u);  // recomputed after losing the max
  d.erase(0, 1);
  EXPECT_EQ(d.support_size(), 1u);
  EXPECT_EQ(d.total(), 3u);
}

TEST(Dataset, EraseMoreThanStoredThrows) {
  Dataset d(3);
  d.insert(1, 2);
  EXPECT_THROW(d.erase(1, 3), ContractViolation);
  EXPECT_THROW(d.erase(0, 1), ContractViolation);
}

TEST(Dataset, OutOfUniverseAccessThrows) {
  Dataset d(3);
  EXPECT_THROW(d.insert(3), ContractViolation);
  EXPECT_THROW(d.count(5), ContractViolation);
}

TEST(Dataset, ZeroAmountOperationsAreNoops) {
  Dataset d(3);
  d.insert(1, 0);
  EXPECT_EQ(d.total(), 0u);
  EXPECT_EQ(d.support_size(), 0u);
  d.insert(1, 2);
  d.erase(1, 0);
  EXPECT_EQ(d.count(1), 2u);
}

TEST(Dataset, FromCountsAndFromElementsAgree) {
  const std::vector<std::size_t> elems = {0, 2, 2, 4, 4, 4};
  const auto a = Dataset::from_elements(5, elems);
  const auto b = Dataset::from_counts({1, 0, 2, 0, 3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.max_multiplicity(), 3u);
  EXPECT_EQ(a.support_size(), 3u);
}

TEST(Dataset, EqualityIsStructural) {
  Dataset a(4), b(4);
  a.insert(1, 2);
  b.insert(1);
  EXPECT_NE(a, b);
  b.insert(1);
  EXPECT_EQ(a, b);
}

TEST(Dataset, RandomizedOperationsMatchReferenceModel) {
  // Property test: after any sequence of inserts/erases, all cached
  // aggregates agree with a recomputation from a reference map.
  Rng rng(99);
  const std::size_t universe = 12;
  Dataset d(universe);
  std::map<std::size_t, std::uint64_t> model;

  for (int step = 0; step < 3000; ++step) {
    const auto element =
        static_cast<std::size_t>(rng.uniform_below(universe));
    const auto amount = rng.uniform_below(4);
    if (rng.bernoulli(0.6)) {
      d.insert(element, amount);
      if (amount > 0) model[element] += amount;
    } else {
      const std::uint64_t have = model.contains(element) ? model[element] : 0;
      const std::uint64_t take = std::min<std::uint64_t>(have, amount);
      d.erase(element, take);
      if (take > 0) {
        model[element] -= take;
        if (model[element] == 0) model.erase(element);
      }
    }

    if (step % 100 == 0) {
      std::uint64_t total = 0, max_mult = 0;
      for (const auto& [e, c] : model) {
        total += c;
        max_mult = std::max(max_mult, c);
      }
      EXPECT_EQ(d.total(), total);
      EXPECT_EQ(d.support_size(), model.size());
      EXPECT_EQ(d.max_multiplicity(), max_mult);
      for (std::size_t e = 0; e < universe; ++e) {
        const std::uint64_t expected = model.contains(e) ? model.at(e) : 0;
        EXPECT_EQ(d.count(e), expected);
      }
    }
  }
}

}  // namespace
}  // namespace qs
