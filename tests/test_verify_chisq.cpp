// Tests for chi-square goodness-of-fit (common/stats.hpp) and the
// statistical output verifier (sampling/verify.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "distdb/workload.hpp"
#include "sampling/samplers.hpp"
#include "sampling/verify.hpp"

namespace qs {
namespace {

TEST(ChiSquare, PerfectFitGivesSmallStatistic) {
  // Observations exactly proportional to expectations.
  const std::vector<std::uint64_t> observed = {250, 250, 500};
  const std::vector<double> expected = {0.25, 0.25, 0.5};
  const auto result = chi_square_gof(observed, expected);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_EQ(result.degrees_of_freedom, 2u);
  EXPECT_GT(result.p_value, 0.9);
}

TEST(ChiSquare, GrossMismatchGivesTinyPValue) {
  const std::vector<std::uint64_t> observed = {900, 100};
  const std::vector<double> expected = {0.5, 0.5};
  const auto result = chi_square_gof(observed, expected);
  EXPECT_GT(result.statistic, 100.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, ZeroProbabilityBinWithMassIsInfinite) {
  const std::vector<std::uint64_t> observed = {10, 1};
  const std::vector<double> expected = {1.0, 0.0};
  const auto result = chi_square_gof(observed, expected);
  EXPECT_TRUE(std::isinf(result.statistic));
  EXPECT_EQ(result.p_value, 0.0);
}

TEST(ChiSquare, ZeroProbabilityBinWithoutMassIsFine) {
  const std::vector<std::uint64_t> observed = {10, 0, 10};
  const std::vector<double> expected = {0.5, 0.0, 0.5};
  const auto result = chi_square_gof(observed, expected);
  EXPECT_EQ(result.degrees_of_freedom, 1u);
  EXPECT_GT(result.p_value, 0.5);
}

TEST(ChiSquare, PValueCalibrationUnderTheNull) {
  // Sampling from the true distribution must produce mostly-large p-values.
  Rng rng(5);
  const std::vector<double> dist = {0.1, 0.2, 0.3, 0.4};
  int small_p = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<std::uint64_t> hist(4, 0);
    for (int s = 0; s < 1000; ++s) ++hist[rng.weighted_index(dist)];
    if (chi_square_gof(hist, dist).p_value < 0.01) ++small_p;
  }
  // Nominally 1% of trials; allow generous slack.
  EXPECT_LT(small_p, 12);
}

TEST(ChiSquare, ValidatesInput) {
  EXPECT_THROW(chi_square_gof({}, {}), ContractViolation);
  EXPECT_THROW(chi_square_gof({1}, {0.5, 0.5}), ContractViolation);
  EXPECT_THROW(chi_square_gof({0, 0}, {0.5, 0.5}), ContractViolation);
  EXPECT_THROW(chi_square_gof({1, 1}, {0.5, -0.5}), ContractViolation);
}

TEST(Verify, CorrectSamplerPassesVerification) {
  Rng rng(7);
  auto datasets = workload::zipf(16, 2, 64, 1.0, rng);
  const auto nu = min_capacity(datasets);
  const DistributedDatabase db(std::move(datasets), nu);
  const auto result = run_sequential_sampler(db);
  Rng shots_rng(8);
  const auto verification = verify_output_distribution(
      result.state, result.registers.elem, db, 20000, shots_rng);
  EXPECT_TRUE(verification.consistent());
  EXPECT_LT(verification.total_variation, 0.03);
}

TEST(Verify, WrongDistributionFailsVerification) {
  // Verify the output of database A against database B's distribution.
  Rng rng(9);
  auto a = workload::concentrated(16, 1, 0, 4, 3);
  const DistributedDatabase db_a(std::move(a), 3);
  std::vector<Dataset> b = {Dataset(16)};
  for (std::size_t i = 8; i < 16; ++i) b[0].insert(i, 1);
  const DistributedDatabase db_b(std::move(b), 3);

  const auto result = run_sequential_sampler(db_a);
  Rng shots_rng(10);
  const auto verification = verify_output_distribution(
      result.state, result.registers.elem, db_b, 5000, shots_rng);
  EXPECT_FALSE(verification.consistent());
}

TEST(Verify, TruncatedSamplerFailsVerification) {
  // An under-rotated (budget-truncated) run still has big uniform leakage;
  // statistics should flag it.
  std::vector<Dataset> datasets = {Dataset(64)};
  for (std::size_t i = 0; i < 4; ++i) datasets[0].insert(i, 2);
  const DistributedDatabase db(std::move(datasets), 2);  // a = 8/128
  const auto result = run_budgeted_sampler(db, QueryMode::kSequential, 1);
  ASSERT_LT(result.fidelity, 0.9);
  Rng shots_rng(11);
  const auto verification = verify_output_distribution(
      result.state, result.registers.elem, db, 20000, shots_rng);
  EXPECT_FALSE(verification.consistent());
}

}  // namespace
}  // namespace qs
