// Tests for zero-error amplitude amplification (BHMT Theorem 4 as used by
// Theorems 4.3 / 4.5): exactness across the full parameter range, the
// iteration-count formula, and consistency of the reduced 2×2 dynamics.
#include "sampling/amplitude_amplification.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <tuple>

#include "common/require.hpp"

namespace qs {
namespace {

using cplx = std::complex<double>;

TEST(AAPlan, RejectsOutOfRangeProbabilities) {
  EXPECT_THROW(plan_zero_error(0.0), ContractViolation);
  EXPECT_THROW(plan_zero_error(-0.1), ContractViolation);
  EXPECT_THROW(plan_zero_error(1.5), ContractViolation);
}

TEST(AAPlan, FullProbabilityIsAlreadyExact) {
  const auto plan = plan_zero_error(1.0);
  EXPECT_TRUE(plan.already_exact);
  EXPECT_EQ(plan.d_applications(), 1u);
  const auto [good, bad] = evolve_two_level(plan);
  EXPECT_NEAR(std::abs(good), 1.0, 1e-15);
  EXPECT_NEAR(std::abs(bad), 0.0, 1e-15);
}

TEST(AAPlan, ZeroErrorAcrossDenseSweep) {
  for (int i = 1; i <= 2000; ++i) {
    const double a = i / 2000.0;
    const auto plan = plan_zero_error(a);
    const auto [good, bad] = evolve_two_level(plan);
    EXPECT_NEAR(std::abs(bad), 0.0, 1e-10) << "a=" << a;
    EXPECT_NEAR(std::abs(good), 1.0, 1e-10) << "a=" << a;
  }
}

TEST(AAPlan, ZeroErrorAtExtremeSmallProbabilities) {
  for (const double a : {1e-2, 1e-4, 1e-6, 1e-8}) {
    const auto plan = plan_zero_error(a);
    const auto [good, bad] = evolve_two_level(plan);
    EXPECT_NEAR(std::abs(bad), 0.0, 1e-9) << "a=" << a;
  }
}

TEST(AAPlan, IterationCountScalesAsInverseSqrtA) {
  // ⌊π/(4 asin √a) − 1/2⌋ ≈ (π/4)/√a for small a.
  for (const double a : {1e-2, 1e-4, 1e-6}) {
    const auto plan = plan_zero_error(a);
    const double predicted = std::numbers::pi / (4.0 * std::sqrt(a));
    EXPECT_NEAR(static_cast<double>(plan.full_iterations), predicted,
                predicted * 0.02 + 2.0)
        << "a=" << a;
  }
}

TEST(AAPlan, DApplicationsFormula) {
  const auto plan = plan_zero_error(0.04);  // θ ≈ 0.2
  const std::size_t iterations =
      plan.full_iterations + (plan.needs_final ? 1 : 0);
  EXPECT_EQ(plan.d_applications(), 1 + 2 * iterations);
}

TEST(AAPlan, HalfProbabilityNeedsExactlyZeroFullIterations) {
  // a = 1/2: θ = π/4, m̃ = 1/2, ⌊m̃⌋ = 0; a single corrected iterate lands
  // exactly.
  const auto plan = plan_zero_error(0.5);
  EXPECT_EQ(plan.full_iterations, 0u);
  EXPECT_TRUE(plan.needs_final);
  const auto [good, bad] = evolve_two_level(plan);
  EXPECT_NEAR(std::abs(bad), 0.0, 1e-12);
}

TEST(AAPlan, IntegralMtildeNeedsNoFinalCorrection) {
  // Choose θ = π/6: m̃ = π/(4θ) − 1/2 = 1.0 exactly, so after one Q(π,π)
  // the good amplitude is sin(3θ) = sin(π/2) = 1.
  const double theta = std::numbers::pi / 6.0;
  const double a = std::sin(theta) * std::sin(theta);  // 1/4
  const auto plan = plan_zero_error(a);
  EXPECT_EQ(plan.full_iterations, 1u);
  EXPECT_FALSE(plan.needs_final);
  const auto [good, bad] = evolve_two_level(plan);
  EXPECT_NEAR(std::abs(bad), 0.0, 1e-12);
}

TEST(PlainAA, UndershootsWithoutCorrection) {
  // The textbook count gives success sin²((2m+1)θ), generally < 1; the
  // zero-error variant must beat it. Check at a value where plain AA has a
  // visible error.
  const double a = 0.03;
  const double theta = std::asin(std::sqrt(a));
  const std::size_t m = plain_iteration_count(a);
  const double plain_success =
      std::pow(std::sin((2.0 * double(m) + 1.0) * theta), 2.0);
  EXPECT_LT(plain_success, 1.0 - 1e-6);
  const auto plan = plan_zero_error(a);
  const auto [good, bad] = evolve_two_level(plan);
  EXPECT_GT(std::norm(good), plain_success);
  (void)bad;
}

TEST(QStep, PiPiStepMatchesGroverRotation) {
  // With φ = ϕ = π, one Q advances the rotation angle by 2θ (up to global
  // sign): starting at angle θ, the good amplitude becomes sin(3θ).
  const double theta = 0.3;
  auto [good, bad] = q_step_two_level(std::sin(theta), std::cos(theta), theta,
                                      std::numbers::pi, std::numbers::pi);
  EXPECT_NEAR(std::abs(good), std::abs(std::sin(3.0 * theta)), 1e-12);
  EXPECT_NEAR(std::abs(bad), std::abs(std::cos(3.0 * theta)), 1e-12);
}

TEST(QStep, IsNormPreserving) {
  const double theta = 0.7;
  auto [good, bad] = q_step_two_level({0.3, 0.1}, {0.2, -0.9}, theta, 1.1,
                                      2.2);
  const double norm_in = std::norm(cplx{0.3, 0.1}) + std::norm(cplx{0.2, -0.9});
  EXPECT_NEAR(std::norm(good) + std::norm(bad), norm_in, 1e-12);
}

class AASweep : public ::testing::TestWithParam<double> {};

TEST_P(AASweep, TrajectoryMonotoneUntilPeak) {
  // Under Q(π,π) the good probability is sin²((2t+1)θ): strictly
  // increasing while (2t+1)θ ≤ π/2 — i.e. for all planned full iterations.
  const double a = GetParam();
  const auto plan = plan_zero_error(a);
  double prev = a;
  cplx good = std::sin(plan.theta), bad = std::cos(plan.theta);
  for (std::size_t t = 0; t < plan.full_iterations; ++t) {
    std::tie(good, bad) = q_step_two_level(good, bad, plan.theta,
                                           std::numbers::pi, std::numbers::pi);
    EXPECT_GT(std::norm(good) + 1e-12, prev) << "a=" << a << " t=" << t;
    prev = std::norm(good);
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, AASweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.25, 0.4,
                                           0.6, 0.9, 0.99));

}  // namespace
}  // namespace qs
