// Tests for canonical (phase-estimation based) quantum counting
// (estimation/qpe_counting.hpp).
#include "estimation/qpe_counting.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "estimation/amplitude_estimation.hpp"

namespace qs {
namespace {

DistributedDatabase controlled(std::size_t universe, std::size_t machines,
                               std::size_t support,
                               std::uint64_t multiplicity, std::uint64_t nu) {
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < support; ++i)
    datasets[i % machines].insert(i, multiplicity);
  return DistributedDatabase(std::move(datasets), nu);
}

TEST(Qpe, RecoversAmplitudeWithinResolution) {
  const auto db = controlled(32, 2, 8, 2, 4);  // a = 16/128 = 0.125
  Rng rng(3);
  const auto estimate =
      qpe_estimate_good_amplitude(db, QueryMode::kSequential, 7, 31, rng);
  // Canonical AE error bound: |â−a| ≤ 2π√(a(1−a))/2^t + π²/4^t ≈ 0.017.
  EXPECT_NEAR(estimate.a_hat, 0.125, 0.02);
  EXPECT_EQ(estimate.phase_bits, 7u);
  EXPECT_EQ(estimate.total_shots, 31u);
}

TEST(Qpe, ResolutionImprovesWithPhaseBits) {
  const auto db = controlled(32, 2, 8, 1, 4);  // a = 8/128 = 0.0625
  double coarse_err = 0.0, fine_err = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng1(100 + seed), rng2(200 + seed);
    coarse_err += std::abs(
        qpe_estimate_good_amplitude(db, QueryMode::kParallel, 4, 15, rng1)
            .a_hat -
        0.0625);
    fine_err += std::abs(
        qpe_estimate_good_amplitude(db, QueryMode::kParallel, 8, 15, rng2)
            .a_hat -
        0.0625);
  }
  EXPECT_LT(fine_err, coarse_err + 1e-12);
}

TEST(Qpe, CountEstimateTracksTrueM) {
  const auto db = controlled(64, 3, 16, 2, 4);  // M = 32
  Rng rng(7);
  QpeEstimate details;
  const double m_hat = qpe_estimate_total_count(db, QueryMode::kParallel, 7,
                                                21, rng, &details);
  EXPECT_NEAR(m_hat, 32.0, 6.0);
  EXPECT_GT(details.oracle_cost, 0u);
}

TEST(Qpe, EmptyDatabaseGivesZero) {
  std::vector<Dataset> datasets = {Dataset(16)};
  const DistributedDatabase db(std::move(datasets), 2);
  Rng rng(9);
  const auto estimate =
      qpe_estimate_good_amplitude(db, QueryMode::kSequential, 5, 15, rng);
  EXPECT_NEAR(estimate.a_hat, 0.0, 0.02);
}

TEST(Qpe, FullDatabaseGivesOne) {
  const auto db = controlled(8, 1, 8, 3, 3);  // a = 1
  Rng rng(11);
  const auto estimate =
      qpe_estimate_good_amplitude(db, QueryMode::kSequential, 5, 15, rng);
  EXPECT_NEAR(estimate.a_hat, 1.0, 0.05);
}

TEST(Qpe, CostLedgerMatchesPowerSum) {
  const auto db = controlled(16, 2, 4, 1, 2);
  Rng rng(13);
  const std::size_t bits = 5, shots = 9;
  const auto estimate =
      qpe_estimate_good_amplitude(db, QueryMode::kSequential, bits, shots,
                                  rng);
  const std::uint64_t d_per_shot = 1 + 2 * ((1u << bits) - 1);
  EXPECT_EQ(estimate.d_applications, d_per_shot * shots);
  EXPECT_EQ(estimate.oracle_cost, d_per_shot * shots * 2 * 2);  // 2n = 4
}

TEST(Qpe, AgreesWithMlaeEstimator) {
  const auto db = controlled(64, 2, 16, 1, 2);  // a = 16/128
  Rng rng1(17), rng2(18);
  const auto qpe =
      qpe_estimate_good_amplitude(db, QueryMode::kParallel, 7, 21, rng1);
  const auto mlae = estimate_good_amplitude(
      db, QueryMode::kParallel, exponential_schedule(7, 32), rng2);
  EXPECT_NEAR(qpe.a_hat, mlae.a_hat, 0.03);
}

TEST(Qpe, ValidatesArguments) {
  const auto db = controlled(16, 1, 4, 1, 2);
  Rng rng(19);
  EXPECT_THROW(
      qpe_estimate_good_amplitude(db, QueryMode::kSequential, 0, 5, rng),
      ContractViolation);
  EXPECT_THROW(
      qpe_estimate_good_amplitude(db, QueryMode::kSequential, 5, 0, rng),
      ContractViolation);
}

}  // namespace
}  // namespace qs
