// Tests for exact density-matrix evolution (qsim/density_evolution.hpp) and
// its certification of the trajectory noise channels.
#include "qsim/density_evolution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "distdb/workload.hpp"
#include "qsim/gates.hpp"
#include "qsim/noise.hpp"
#include "sampling/noisy_sampler.hpp"

namespace qs {
namespace {

RegisterLayout small_layout() {
  RegisterLayout layout;
  layout.add("a", 2);
  layout.add("b", 3);
  return layout;
}

TEST(DensityState, StartsPureWithUnitTrace) {
  DensityState rho(small_layout(), 4);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-15);
  EXPECT_NEAR(rho.rho()(4, 4).real(), 1.0, 1e-15);
}

TEST(DensityState, FromPureStateMatchesOuterProduct) {
  Rng rng(3);
  StateVector pure(small_layout());
  pure.set_amplitudes(random_state(6, rng));
  DensityState rho(pure);
  EXPECT_NEAR(rho.fidelity_with(pure), 1.0, 1e-12);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
}

TEST(DensityState, UnitaryFragmentMatchesPureEvolution) {
  Rng rng(5);
  const auto layout = small_layout();
  StateVector pure(layout);
  pure.set_amplitudes(random_state(6, rng));
  DensityState rho(pure);

  const auto u = random_unitary(3, rng);
  const auto fragment = [&](StateVector& s) {
    s.apply_unitary(s.layout().find("b"), u);
    s.apply_phase_on_register_value(s.layout().find("a"), 1,
                                    cplx{0.0, 1.0});
  };
  fragment(pure);
  rho.apply_unitary_fragment(fragment);
  EXPECT_NEAR(rho.fidelity_with(pure), 1.0, 1e-10);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityState, DephasingMatchesSingleRegisterFormula) {
  // On a single-register layout the exact channel equals dephasing_exact.
  RegisterLayout layout;
  const auto r = layout.add("r", 3);
  Rng rng(7);
  StateVector pure(layout);
  pure.set_amplitudes(random_state(3, rng));
  DensityState rho(pure);
  rho.apply_dephasing(r, 0.35);
  const auto expected = dephasing_exact(DensityState(pure).rho(), 0.35);
  EXPECT_NEAR(Matrix::max_abs_diff(rho.rho(), expected), 0.0, 1e-12);
}

TEST(DensityState, DepolarizingMatchesSingleRegisterFormula) {
  RegisterLayout layout;
  const auto r = layout.add("r", 4);
  Rng rng(9);
  StateVector pure(layout);
  pure.set_amplitudes(random_state(4, rng));
  DensityState rho(pure);
  rho.apply_depolarizing(r, 0.6);
  const auto expected = depolarizing_exact(DensityState(pure).rho(), 0.6);
  EXPECT_NEAR(Matrix::max_abs_diff(rho.rho(), expected), 0.0, 1e-12);
}

TEST(DensityState, ChannelsPreserveTraceOnMultiRegisterStates) {
  Rng rng(11);
  const auto layout = small_layout();
  StateVector pure(layout);
  pure.set_amplitudes(random_state(6, rng));
  DensityState rho(pure);
  rho.apply_dephasing(layout.find("a"), 0.3);
  rho.apply_depolarizing(layout.find("b"), 0.4);
  EXPECT_NEAR(rho.trace(), 1.0, 1e-12);
  EXPECT_NEAR(rho.rho().hermiticity_defect(), 0.0, 1e-12);
}

TEST(DensityState, TrajectoryAverageOfNoisySamplerMatchesExactEvolution) {
  // The headline certification: run the NOISY SEQUENTIAL SAMPLER as (a)
  // trajectory average and (b) exact density evolution, and compare the
  // final fidelity. Small instance: N=4, n=1, ν=2 → dim 24, rho 24x24.
  std::vector<Dataset> datasets = {Dataset::from_counts({2, 1, 0, 1})};
  const DistributedDatabase db(std::move(datasets), 2);
  const double p_deph = 0.15;

  // (b) exact: evolve the density matrix through the same circuit with the
  // dephasing channel after every oracle application.
  const auto regs = make_coordinator_layout(db.universe(), db.nu());
  const AAPlan plan = plan_zero_error(
      static_cast<double>(db.total()) /
      (static_cast<double>(db.nu()) * static_cast<double>(db.universe())));

  DensityState rho(regs.layout, 0);
  // Hand-rolled circuit mirroring run_sampling_circuit with noise.
  const auto householder = uniform_prep_householder_vector(db.universe());
  const auto rotations = make_u_rotations(db.nu(), false);
  const auto rotations_adj = make_u_rotations(db.nu(), true);
  const auto apply_d = [&](DensityState& state, bool adjoint) {
    state.apply_unitary_fragment([&](StateVector& s) {
      db.machine(0).apply_oracle(s, regs.elem, regs.count, false);
    });
    state.apply_dephasing(regs.elem, p_deph);  // noise after the oracle
    state.apply_unitary_fragment([&](StateVector& s) {
      const auto& rots = adjoint ? rotations_adj : rotations;
      const auto& layout = s.layout();
      s.apply_conditioned_unitary(
          regs.flag, [&](std::size_t base) -> const Matrix* {
            return &rots[layout.digit(base, regs.count)];
          });
    });
    state.apply_unitary_fragment([&](StateVector& s) {
      db.machine(0).apply_oracle(s, regs.elem, regs.count, true);
    });
    state.apply_dephasing(regs.elem, p_deph);
  };
  rho.apply_unitary_fragment(
      [&](StateVector& s) { s.apply_householder(regs.elem, householder); });
  apply_d(rho, false);
  for (std::size_t i = 0;
       i < plan.full_iterations + (plan.needs_final ? 1 : 0); ++i) {
    const bool last = plan.needs_final && i == plan.full_iterations;
    const double varphi = last ? plan.final_varphi : std::acos(-1.0);
    const double phi = last ? plan.final_phi : std::acos(-1.0);
    rho.apply_unitary_fragment([&](StateVector& s) {
      s.apply_phase_on_register_value(
          regs.flag, 0, cplx{std::cos(varphi), std::sin(varphi)});
    });
    apply_d(rho, true);
    rho.apply_unitary_fragment([&](StateVector& s) {
      s.apply_householder(regs.elem, householder);
      s.apply_phase_on_basis_state(0, cplx{std::cos(phi), std::sin(phi)});
      s.apply_householder(regs.elem, householder);
    });
    apply_d(rho, false);
  }
  const double exact_fidelity = rho.fidelity_with(target_full_state(db));

  // (a) trajectory average via the production noisy sampler.
  NoiseModel noise;
  noise.dephasing_per_round = p_deph;
  Rng rng(13);
  const auto trajectories =
      run_noisy_sampler(db, QueryMode::kSequential, noise, 4000, rng);

  EXPECT_NEAR(trajectories.mean_fidelity, exact_fidelity, 0.02);
  EXPECT_LT(exact_fidelity, 0.999);  // noise actually did something
}

TEST(DensityState, RejectsOversizedInstances) {
  RegisterLayout layout;
  layout.add("big", 5000);
  EXPECT_THROW(DensityState{layout}, ContractViolation);
}

}  // namespace
}  // namespace qs
