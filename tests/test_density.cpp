// Tests for reduced density operators (qsim/density.hpp) — the machinery of
// Lemma B.1 (output fidelity = fidelity of the traced-out element register).
#include "qsim/density.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "qsim/gates.hpp"

namespace qs {
namespace {

TEST(PartialTrace, ProductStateGivesPureReduction) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  layout.add("b", 3);
  // |+⟩ ⊗ |1⟩
  StateVector s(layout);
  std::vector<cplx> amps(6, 0.0);
  amps[0 * 3 + 1] = 1.0 / std::sqrt(2.0);
  amps[1 * 3 + 1] = 1.0 / std::sqrt(2.0);
  s.set_amplitudes(amps);
  const auto rho = partial_trace(s, {a});
  EXPECT_NEAR(rho.trace().real(), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(rho(0, 1) - cplx(0.5, 0.0)), 0.0, 1e-12);
  // Purity Tr ρ² = 1 for a product state.
  EXPECT_NEAR((rho * rho).trace().real(), 1.0, 1e-12);
}

TEST(PartialTrace, MaximallyEntangledGivesMaximallyMixed) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  layout.add("b", 2);
  StateVector s(layout);
  s.set_amplitudes({1.0 / std::sqrt(2.0), 0.0, 0.0, 1.0 / std::sqrt(2.0)});
  const auto rho = partial_trace(s, {a});
  EXPECT_NEAR(std::abs(rho(0, 0) - cplx(0.5, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rho(1, 1) - cplx(0.5, 0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(rho(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR((rho * rho).trace().real(), 0.5, 1e-12);  // purity 1/2
}

TEST(PartialTrace, KeepingEverythingIsOuterProduct) {
  Rng rng(7);
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  const auto b = layout.add("b", 3);
  StateVector s(layout);
  const auto amps = random_state(6, rng);
  s.set_amplitudes(amps);
  const auto rho = partial_trace(s, {a, b});
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(std::abs(rho(i, j) - amps[i] * std::conj(amps[j])), 0.0,
                  1e-12);
}

TEST(PartialTrace, KeptOrderReordersSubsystem) {
  // Keeping {b, a} instead of {a, b} permutes the reduced matrix indices.
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  const auto b = layout.add("b", 2);
  StateVector s(layout, 1);  // |a=0, b=1⟩
  const auto rho_ab = partial_trace(s, {a, b});
  const auto rho_ba = partial_trace(s, {b, a});
  // |a=0,b=1⟩ is index 1 in (a,b) ordering and index 2 in (b,a) ordering.
  EXPECT_NEAR(rho_ab(1, 1).real(), 1.0, 1e-12);
  EXPECT_NEAR(rho_ba(2, 2).real(), 1.0, 1e-12);
}

TEST(PartialTrace, TraceAlwaysOne) {
  Rng rng(11);
  RegisterLayout layout;
  const auto a = layout.add("a", 3);
  layout.add("b", 4);
  const auto c = layout.add("c", 2);
  StateVector s(layout);
  s.set_amplitudes(random_state(24, rng));
  for (const auto& kept :
       {std::vector<RegisterId>{a}, std::vector<RegisterId>{c},
        std::vector<RegisterId>{a, c}}) {
    EXPECT_NEAR(partial_trace(s, kept).trace().real(), 1.0, 1e-12);
  }
}

TEST(FidelityWithPure, MatchesDirectOverlapForPureStates) {
  Rng rng(13);
  RegisterLayout layout;
  const auto a = layout.add("a", 4);
  StateVector s(layout);
  const auto amps = random_state(4, rng);
  s.set_amplitudes(amps);
  const auto rho = partial_trace(s, {a});
  const auto target = random_state(4, rng);
  cplx ip{0.0, 0.0};
  for (std::size_t i = 0; i < 4; ++i) ip += std::conj(target[i]) * amps[i];
  EXPECT_NEAR(fidelity_with_pure(rho, target), std::norm(ip), 1e-12);
}

TEST(FidelityWithPure, AgreesWithUhlmannFidelity) {
  Rng rng(17);
  RegisterLayout layout;
  const auto a = layout.add("a", 3);
  layout.add("env", 3);
  StateVector s(layout);
  s.set_amplitudes(random_state(9, rng));
  const auto rho = partial_trace(s, {a});
  const auto psi = random_state(3, rng);
  Matrix sigma(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      sigma(i, j) = psi[i] * std::conj(psi[j]);
  EXPECT_NEAR(fidelity_with_pure(rho, psi), fidelity(rho, sigma), 1e-8);
}

TEST(FidelityWithPure, EntangledStateDegradesFidelity) {
  // A maximally entangled element register can have at most 1/d fidelity
  // with any pure target.
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  layout.add("b", 2);
  StateVector s(layout);
  s.set_amplitudes({1.0 / std::sqrt(2.0), 0.0, 0.0, 1.0 / std::sqrt(2.0)});
  const auto rho = partial_trace(s, {a});
  const std::vector<cplx> plus = {1.0 / std::sqrt(2.0), 1.0 / std::sqrt(2.0)};
  EXPECT_NEAR(fidelity_with_pure(rho, plus), 0.5, 1e-12);
}

}  // namespace
}  // namespace qs
