// Tests for measurement (qsim/measure.hpp): Section 3's defining property —
// measuring |ψ⟩ in the computational basis samples the database — is what
// these helpers implement.
#include "qsim/measure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "qsim/gates.hpp"

namespace qs {
namespace {

TEST(Measure, BasisStateIsDeterministicOnBasisInput) {
  RegisterLayout layout;
  layout.add("r", 6);
  StateVector s(layout, 4);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(measure_basis_state(s, rng), 4u);
}

TEST(Measure, RegisterMeasurementMatchesMarginal) {
  RegisterLayout layout;
  const auto a = layout.add("a", 2);
  layout.add("b", 2);
  StateVector s(layout);
  // (√0.81 |0⟩ + √0.19 |1⟩) on a, |0⟩ on b.
  s.set_amplitudes({cplx(std::sqrt(0.81), 0.0), 0.0,
                    cplx(std::sqrt(0.19), 0.0), 0.0});
  Rng rng(2);
  int ones = 0;
  const int shots = 50000;
  for (int i = 0; i < shots; ++i) ones += (measure_register(s, a, rng) == 1);
  EXPECT_NEAR(ones / static_cast<double>(shots), 0.19, 0.01);
}

TEST(Measure, HistogramMatchesDistribution) {
  RegisterLayout layout;
  const auto r = layout.add("r", 8);
  StateVector s(layout);
  s.apply_householder(r, uniform_prep_householder_vector(8));
  Rng rng(3);
  const auto hist = histogram_register(s, r, rng, 80000);
  const auto p = normalize_histogram(hist);
  for (const auto pi : p) EXPECT_NEAR(pi, 0.125, 0.01);
}

TEST(Measure, HistogramTotalEqualsShots) {
  RegisterLayout layout;
  const auto r = layout.add("r", 4);
  StateVector s(layout);
  s.apply_householder(r, uniform_prep_householder_vector(4));
  Rng rng(4);
  const auto hist = histogram_register(s, r, rng, 1234);
  std::uint64_t total = 0;
  for (const auto h : hist) total += h;
  EXPECT_EQ(total, 1234u);
}

TEST(TotalVariation, BasicProperties) {
  const std::vector<double> p = {0.5, 0.5, 0.0};
  const std::vector<double> q = {0.0, 0.5, 0.5};
  EXPECT_NEAR(total_variation(p, p), 0.0, 1e-15);
  EXPECT_NEAR(total_variation(p, q), 0.5, 1e-15);
  // Symmetry.
  EXPECT_NEAR(total_variation(q, p), total_variation(p, q), 1e-15);
  EXPECT_THROW(total_variation(p, {0.1}), ContractViolation);
}

TEST(TotalVariation, DisjointSupportsGiveOne) {
  EXPECT_NEAR(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-15);
}

TEST(NormalizeHistogram, SumsToOneAndRejectsEmpty) {
  const auto p = normalize_histogram({1, 3, 0, 4});
  EXPECT_NEAR(p[0], 0.125, 1e-15);
  EXPECT_NEAR(p[1], 0.375, 1e-15);
  EXPECT_NEAR(p[3], 0.5, 1e-15);
  EXPECT_THROW(normalize_histogram({0, 0}), ContractViolation);
}

}  // namespace
}  // namespace qs
