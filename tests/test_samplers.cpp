// End-to-end tests for the samplers (Theorems 4.3 / 4.5): exact output
// state, exact query accounting, and agreement across query models,
// preparation operators and workloads.
#include "sampling/samplers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "distdb/workload.hpp"
#include "qsim/measure.hpp"

namespace qs {
namespace {

struct SamplerCase {
  std::size_t universe;
  std::size_t machines;
  std::uint64_t total;
  std::uint64_t extra_capacity;
  std::uint64_t seed;
  const char* workload;
};

DistributedDatabase build_db(const SamplerCase& c) {
  Rng rng(c.seed);
  std::vector<Dataset> datasets;
  const std::string kind = c.workload;
  if (kind == "uniform") {
    datasets = workload::uniform_random(c.universe, c.machines, c.total, rng);
  } else if (kind == "zipf") {
    datasets = workload::zipf(c.universe, c.machines, c.total, 1.1, rng);
  } else if (kind == "disjoint") {
    datasets = workload::disjoint_partition(c.universe, c.machines,
                                            std::max<std::uint64_t>(
                                                1, c.total / c.universe));
  } else if (kind == "replicated") {
    datasets = workload::replicated(c.universe, c.machines, c.universe / 2,
                                    2);
  } else {
    datasets = workload::concentrated(c.universe, c.machines, 0,
                                      c.universe / 4 + 1, 2);
  }
  const auto nu = min_capacity(datasets) + c.extra_capacity;
  return DistributedDatabase(std::move(datasets), nu);
}

class SamplerSweep : public ::testing::TestWithParam<SamplerCase> {};

TEST_P(SamplerSweep, SequentialSamplerIsExact) {
  const auto db = build_db(GetParam());
  const auto result = run_sequential_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  EXPECT_NEAR(result.state.norm(), 1.0, 1e-9);
}

TEST_P(SamplerSweep, SequentialQueryCountMatchesPrediction) {
  const auto db = build_db(GetParam());
  const auto result = run_sequential_sampler(db);
  EXPECT_EQ(result.stats.total_sequential(),
            predicted_sequential_queries(result.plan, db.num_machines()));
  EXPECT_EQ(result.stats.parallel_rounds, 0u);
  // Per-machine counts are balanced: every machine is queried the same
  // number of times (2 per D application).
  for (const auto q : result.stats.sequential_per_machine)
    EXPECT_EQ(q, 2 * result.plan.d_applications());
}

TEST_P(SamplerSweep, ParallelSamplerIsExactWithPredictedRounds) {
  const auto db = build_db(GetParam());
  const auto result = run_parallel_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
  EXPECT_EQ(result.stats.parallel_rounds,
            predicted_parallel_rounds(result.plan));
  EXPECT_EQ(result.stats.total_sequential(), 0u);
}

TEST_P(SamplerSweep, SequentialAndParallelProduceTheSameState) {
  const auto db = build_db(GetParam());
  const auto seq = run_sequential_sampler(db);
  const auto par = run_parallel_sampler(db);
  EXPECT_NEAR(pure_fidelity(seq.state, par.state), 1.0, 1e-9);
}

TEST_P(SamplerSweep, OutputAmplitudesMatchTargetDistribution) {
  const auto db = build_db(GetParam());
  const auto result = run_sequential_sampler(db);
  const auto amps = result.output_amplitudes();
  const auto p = db.target_distribution();
  for (std::size_t i = 0; i < amps.size(); ++i)
    EXPECT_NEAR(std::norm(amps[i]), p[i], 1e-9) << "element " << i;
}

TEST_P(SamplerSweep, QftPreparationAgrees) {
  const auto db = build_db(GetParam());
  SamplerOptions options;
  options.prep = StatePrep::kQft;
  const auto result = run_sequential_sampler(db, options);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SamplerSweep,
    ::testing::Values(
        SamplerCase{8, 1, 12, 0, 1, "uniform"},
        SamplerCase{8, 2, 12, 1, 2, "uniform"},
        SamplerCase{16, 3, 40, 0, 3, "uniform"},
        SamplerCase{16, 4, 24, 2, 4, "zipf"},
        SamplerCase{32, 2, 64, 1, 5, "zipf"},
        SamplerCase{16, 4, 16, 0, 6, "disjoint"},
        SamplerCase{32, 8, 32, 3, 7, "disjoint"},
        SamplerCase{12, 3, 0, 0, 8, "replicated"},
        SamplerCase{20, 5, 0, 1, 9, "concentrated"},
        SamplerCase{64, 2, 100, 4, 10, "uniform"}));

TEST(Sampler, SingleElementUniverse) {
  std::vector<Dataset> datasets = {Dataset::from_counts({3})};
  DistributedDatabase db(std::move(datasets), 4);
  const auto result = run_sequential_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-12);
}

TEST(Sampler, FullCapacityDatabaseNeedsNoIterations) {
  // c_i = ν for every i means a = 1: A|0⟩ is already the target.
  std::vector<Dataset> datasets = {
      Dataset::from_counts({2, 2, 2, 2}),
      Dataset::from_counts({1, 1, 1, 1}),
  };
  DistributedDatabase db(std::move(datasets), 3);
  const auto result = run_sequential_sampler(db);
  EXPECT_TRUE(result.plan.already_exact);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-12);
  // One D application = 2n queries.
  EXPECT_EQ(result.stats.total_sequential(), 2 * db.num_machines());
}

TEST(Sampler, MachinesWithEmptyDatasetsAreHandled) {
  std::vector<Dataset> datasets = {Dataset::from_counts({0, 0, 0, 0}),
                                   Dataset::from_counts({1, 2, 0, 1}),
                                   Dataset(4)};
  DistributedDatabase db(std::move(datasets), 3);
  const auto result = run_sequential_sampler(db);
  EXPECT_NEAR(result.fidelity, 1.0, 1e-10);
  // Empty machines are still queried (obliviousness!).
  for (const auto q : result.stats.sequential_per_machine) EXPECT_GT(q, 0u);
}

TEST(Sampler, EmptyDatabaseIsRejected) {
  std::vector<Dataset> datasets = {Dataset(4)};
  DistributedDatabase db(std::move(datasets), 1);
  EXPECT_THROW(run_sequential_sampler(db), ContractViolation);
}

TEST(Sampler, CentralizedSamplerMatchesDistributed) {
  Rng rng(21);
  auto datasets = workload::uniform_random(16, 4, 30, rng);
  const auto nu = min_capacity(datasets) + 1;
  DistributedDatabase db(std::move(datasets), nu);
  const auto dist = run_sequential_sampler(db);
  const auto central = run_centralized_sampler(db);
  EXPECT_NEAR(central.fidelity, 1.0, 1e-10);
  // Same target state, same plan, but n=1 queries.
  EXPECT_EQ(central.plan.d_applications(), dist.plan.d_applications());
  EXPECT_EQ(central.stats.sequential_per_machine.size(), 1u);
  EXPECT_EQ(central.stats.total_sequential(),
            2 * central.plan.d_applications());
}

TEST(Sampler, TrajectoryEndsAtOneAndGrowsInitially) {
  Rng rng(23);
  auto datasets = workload::uniform_random(64, 2, 16, rng);
  const auto nu_db = min_capacity(datasets) + 3;
  DistributedDatabase db(std::move(datasets), nu_db);
  SamplerOptions options;
  options.record_trajectory = true;
  const auto result = run_sequential_sampler(db, options);
  ASSERT_GE(result.trajectory.size(), 2u);
  EXPECT_NEAR(result.trajectory.back(), 1.0, 1e-9);
  // The first recorded point is the preparation overlap a = M/νN.
  const double a = static_cast<double>(db.total()) /
                   (static_cast<double>(db.nu()) * 64.0);
  EXPECT_NEAR(result.trajectory.front(), a, 1e-9);
  // Monotone growth through the full Q(π,π) iterations.
  for (std::size_t i = 0; i + 2 < result.trajectory.size(); ++i)
    EXPECT_GT(result.trajectory[i + 1] + 1e-12, result.trajectory[i]);
}

TEST(Sampler, MeasurementsFollowJointFrequencies) {
  // The defining semantics (Section 3): measuring |ψ⟩ samples i with
  // probability c_i / M.
  Rng rng(25);
  auto datasets = workload::zipf(8, 2, 200, 1.0, rng);
  const auto nu_db = min_capacity(datasets);
  DistributedDatabase db(std::move(datasets), nu_db);
  const auto result = run_sequential_sampler(db);
  Rng shots_rng(26);
  const auto hist = histogram_register(result.state,
                                       result.registers.elem, shots_rng,
                                       200000);
  const auto empirical = normalize_histogram(hist);
  EXPECT_LT(total_variation(empirical, db.target_distribution()), 0.01);
}

TEST(Sampler, QueriesScaleWithSqrtCapacityRatio) {
  // Fixing N and M while doubling ν must grow the query count like √2
  // (Theorem 4.3's √(νN/M) dependence).
  std::vector<Dataset> datasets = {Dataset::from_counts(
      std::vector<std::uint64_t>(64, 1))};  // N = 64, M = 64
  const DistributedDatabase db1(datasets, 16);
  const DistributedDatabase db2(datasets, 64);
  const auto r1 = run_sequential_sampler(db1);
  const auto r2 = run_sequential_sampler(db2);
  const double ratio = static_cast<double>(r2.stats.total_sequential()) /
                       static_cast<double>(r1.stats.total_sequential());
  EXPECT_NEAR(ratio, 2.0, 0.3);  // √(64/16) = 2
  EXPECT_NEAR(r1.fidelity, 1.0, 1e-9);
  EXPECT_NEAR(r2.fidelity, 1.0, 1e-9);
}

TEST(Sampler, DynamicUpdateThenResampleIsExact) {
  Rng rng(31);
  auto datasets = workload::uniform_random(16, 3, 30, rng);
  const auto nu_db = min_capacity(datasets) + 2;
  DistributedDatabase db(std::move(datasets), nu_db);
  const auto before = run_sequential_sampler(db);
  EXPECT_NEAR(before.fidelity, 1.0, 1e-9);
  db.insert(1, 5);
  db.insert(2, 5);
  if (db.machine(0).data().total() > 0)
    db.erase(0, db.machine(0).data().support().front());
  const auto after = run_sequential_sampler(db);
  EXPECT_NEAR(after.fidelity, 1.0, 1e-9);
  // The two targets differ (the update actually changed the distribution).
  EXPECT_GT(total_variation(db.target_distribution(),
                            [&] {
                              // reconstruct the old distribution from the
                              // "before" output state
                              std::vector<double> p;
                              for (const auto& amp :
                                   before.output_amplitudes())
                                p.push_back(std::norm(amp));
                              return p;
                            }()),
            1e-4);
}

}  // namespace
}  // namespace qs
