// Tests for gate builders (qsim/gates.hpp), focusing on the properties the
// sampling circuit relies on: both realisations of F prepare |π⟩, and the
// rotations/shifts compose as required by Lemmas 4.1/4.2.
#include "qsim/gates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "qsim/state_vector.hpp"

namespace qs {
namespace {

TEST(Prep, QftAndHouseholderAgreeOnZeroColumn) {
  for (const std::size_t d : {2u, 5u, 16u}) {
    const auto f = qft_matrix(d);
    const auto h = householder_matrix(uniform_prep_householder_vector(d));
    for (std::size_t i = 0; i < d; ++i)
      EXPECT_NEAR(std::abs(f(i, 0) - h(i, 0)), 0.0, 1e-12) << "d=" << d;
  }
}

TEST(Prep, HouseholderIsRealSymmetric) {
  const auto h = householder_matrix(uniform_prep_householder_vector(6));
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(h(i, j).imag(), 0.0, 1e-15);
      EXPECT_NEAR(std::abs(h(i, j) - h(j, i)), 0.0, 1e-15);
    }
}

TEST(Prep, DimensionOneIsIdentity) {
  const auto v = uniform_prep_householder_vector(1);
  const auto h = householder_matrix(v);
  EXPECT_NEAR(std::abs(h(0, 0) - cplx(1.0, 0.0)), 0.0, 1e-15);
}

TEST(Shift, AdjointIsInverseShift) {
  for (const std::size_t d : {2u, 3u, 7u}) {
    for (std::size_t a = 0; a < d; ++a) {
      const auto fwd = shift_matrix(d, a);
      const auto bwd = shift_matrix(d, (d - a) % d);
      EXPECT_NEAR(Matrix::max_abs_diff(fwd.adjoint(), bwd), 0.0, 1e-15);
    }
  }
}

TEST(Shift, GroupStructure) {
  // shift(a) * shift(b) == shift(a + b mod d)
  const std::size_t d = 6;
  for (std::size_t a = 0; a < d; ++a)
    for (std::size_t b = 0; b < d; ++b)
      EXPECT_NEAR(Matrix::max_abs_diff(shift_matrix(d, a) * shift_matrix(d, b),
                                       shift_matrix(d, (a + b) % d)),
                  0.0, 1e-15);
}

TEST(Qft, SquaredIsParityPermutation) {
  // F² maps |x⟩ to |-x mod d⟩ — a defining property of the DFT matrix.
  const std::size_t d = 5;
  const auto f = qft_matrix(d);
  const auto f2 = f * f;
  for (std::size_t x = 0; x < d; ++x) {
    const std::size_t y = (d - x) % d;
    EXPECT_NEAR(std::abs(f2(y, x) - cplx(1.0, 0.0)), 0.0, 1e-12);
  }
}

TEST(RandomState, IsNormalised) {
  Rng rng(3);
  for (const std::size_t d : {1u, 2u, 17u}) {
    const auto v = random_state(d, rng);
    double norm_sq = 0.0;
    for (const auto& x : v) norm_sq += std::norm(x);
    EXPECT_NEAR(norm_sq, 1.0, 1e-12);
  }
}

TEST(RandomUnitary, DistinctDrawsDiffer) {
  Rng rng(5);
  const auto u = random_unitary(3, rng);
  const auto v = random_unitary(3, rng);
  EXPECT_GT(Matrix::max_abs_diff(u, v), 1e-3);
}

class PrepOnStateSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrepOnStateSweep, BothPrepsCreateUniformSuperposition) {
  const std::size_t d = GetParam();
  RegisterLayout layout;
  const auto r = layout.add("r", d);

  StateVector via_householder(layout);
  via_householder.apply_householder(r, uniform_prep_householder_vector(d));

  StateVector via_qft(layout);
  via_qft.apply_unitary(r, qft_matrix(d));

  EXPECT_NEAR(pure_fidelity(via_householder, via_qft), 1.0, 1e-12);
  for (std::size_t i = 0; i < d; ++i)
    EXPECT_NEAR(via_householder.probability_of(r, i), 1.0 / double(d), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Dims, PrepOnStateSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33, 128));

}  // namespace
}  // namespace qs
