// Tests for the dense linear algebra substrate (qsim/linalg.hpp).
#include "qsim/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "qsim/gates.hpp"

namespace qs {
namespace {

Matrix random_hermitian(std::size_t d, Rng& rng) {
  Matrix a(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    a(i, i) = rng.normal();
    for (std::size_t j = i + 1; j < d; ++j) {
      const cplx x(rng.normal(), rng.normal());
      a(i, j) = x;
      a(j, i) = std::conj(x);
    }
  }
  return a;
}

TEST(Matrix, IdentityAndTrace) {
  const auto eye = Matrix::identity(4);
  EXPECT_EQ(eye.trace(), cplx(4.0, 0.0));
  EXPECT_NEAR(eye.unitarity_defect(), 0.0, 1e-15);
  EXPECT_NEAR(eye.hermiticity_defect(), 0.0, 1e-15);
}

TEST(Matrix, ProductMatchesHandComputation) {
  const auto a = Matrix::from_rows(2, 2, {1.0, 2.0, 3.0, 4.0});
  const auto b = Matrix::from_rows(2, 2, {5.0, 6.0, 7.0, 8.0});
  const auto c = a * b;
  EXPECT_EQ(c(0, 0), cplx(19.0, 0.0));
  EXPECT_EQ(c(0, 1), cplx(22.0, 0.0));
  EXPECT_EQ(c(1, 0), cplx(43.0, 0.0));
  EXPECT_EQ(c(1, 1), cplx(50.0, 0.0));
}

TEST(Matrix, AdjointConjugatesAndTransposes) {
  auto a = Matrix(2, 3);
  a(0, 1) = cplx(1.0, 2.0);
  const auto ad = a.adjoint();
  EXPECT_EQ(ad.rows(), 3u);
  EXPECT_EQ(ad.cols(), 2u);
  EXPECT_EQ(ad(1, 0), cplx(1.0, -2.0));
}

TEST(Matrix, ApplyMatchesManualMatVec) {
  const auto a = Matrix::from_rows(2, 2, {cplx(0, 1), 1.0, 2.0, cplx(0, -1)});
  const auto y = a.apply({cplx(1.0, 0.0), cplx(0.0, 1.0)});
  EXPECT_EQ(y[0], cplx(0.0, 2.0));
  EXPECT_EQ(y[1], cplx(3.0, 0.0));
}

TEST(Matrix, ShapeMismatchesThrow) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, ContractViolation);
  EXPECT_THROW(a.apply({1.0, 2.0}), ContractViolation);
  EXPECT_THROW(a.trace(), ContractViolation);
}

TEST(Matrix, RandomUnitaryIsUnitary) {
  Rng rng(3);
  for (const std::size_t d : {2u, 3u, 5u, 8u}) {
    const auto u = random_unitary(d, rng);
    EXPECT_NEAR(u.unitarity_defect(), 0.0, 1e-10) << "d=" << d;
  }
}

TEST(Kron, DimensionsAndBlockStructure) {
  const auto a = Matrix::from_rows(2, 2, {1.0, 0.0, 0.0, 2.0});
  const auto b = Matrix::from_rows(2, 2, {0.0, 1.0, 1.0, 0.0});
  const auto k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  EXPECT_EQ(k(0, 1), cplx(1.0, 0.0));
  EXPECT_EQ(k(1, 0), cplx(1.0, 0.0));
  EXPECT_EQ(k(2, 3), cplx(2.0, 0.0));
  EXPECT_EQ(k(3, 2), cplx(2.0, 0.0));
  EXPECT_EQ(k(0, 0), cplx(0.0, 0.0));
}

TEST(Kron, OfUnitariesIsUnitary) {
  Rng rng(11);
  const auto u = random_unitary(3, rng);
  const auto v = random_unitary(2, rng);
  EXPECT_NEAR(kron(u, v).unitarity_defect(), 0.0, 1e-10);
}

TEST(HermitianEigen, DiagonalMatrix) {
  auto a = Matrix(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto vals = hermitian_eigen(a);
  ASSERT_EQ(vals.size(), 3u);
  EXPECT_NEAR(vals[0], 1.0, 1e-12);
  EXPECT_NEAR(vals[1], 2.0, 1e-12);
  EXPECT_NEAR(vals[2], 3.0, 1e-12);
}

TEST(HermitianEigen, PauliXEigenvalues) {
  auto x = Matrix(2, 2);
  x(0, 1) = 1.0;
  x(1, 0) = 1.0;
  const auto vals = hermitian_eigen(x);
  EXPECT_NEAR(vals[0], -1.0, 1e-12);
  EXPECT_NEAR(vals[1], 1.0, 1e-12);
}

TEST(HermitianEigen, ReconstructsRandomMatrices) {
  Rng rng(17);
  for (const std::size_t d : {2u, 4u, 7u, 12u}) {
    const auto a = random_hermitian(d, rng);
    Matrix v;
    const auto vals = hermitian_eigen(a, &v);
    EXPECT_NEAR(v.unitarity_defect(), 0.0, 1e-9) << "d=" << d;
    // A == V diag(vals) V†
    Matrix diag(d, d);
    for (std::size_t i = 0; i < d; ++i) diag(i, i) = vals[i];
    const auto rebuilt = v * diag * v.adjoint();
    EXPECT_NEAR(Matrix::max_abs_diff(a, rebuilt), 0.0, 1e-9) << "d=" << d;
  }
}

TEST(HermitianEigen, RejectsNonHermitian) {
  auto a = Matrix(2, 2);
  a(0, 1) = 1.0;  // not mirrored
  EXPECT_THROW(hermitian_eigen(a), ContractViolation);
}

TEST(PsdSqrt, SquaresBack) {
  Rng rng(23);
  for (const std::size_t d : {2u, 5u}) {
    // Build PSD as B B†.
    const auto b = random_unitary(d, rng);
    Matrix diag(d, d);
    for (std::size_t i = 0; i < d; ++i) diag(i, i) = rng.uniform01() + 0.1;
    const auto psd = b * diag * b.adjoint();
    const auto root = psd_sqrt(psd);
    EXPECT_NEAR(Matrix::max_abs_diff(root * root, psd), 0.0, 1e-9);
    EXPECT_NEAR(root.hermiticity_defect(), 0.0, 1e-9);
  }
}

TEST(Fidelity, PureStatesMatchInnerProduct) {
  Rng rng(29);
  const std::size_t d = 6;
  const auto psi = random_state(d, rng);
  const auto phi = random_state(d, rng);
  Matrix rho(d, d), sigma(d, d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) {
      rho(i, j) = psi[i] * std::conj(psi[j]);
      sigma(i, j) = phi[i] * std::conj(phi[j]);
    }
  cplx ip{0.0, 0.0};
  for (std::size_t i = 0; i < d; ++i) ip += std::conj(psi[i]) * phi[i];
  EXPECT_NEAR(fidelity(rho, sigma), std::norm(ip), 1e-8);
}

TEST(Fidelity, IdenticalStatesGiveOne) {
  const std::size_t d = 4;
  Matrix rho(d, d);
  for (std::size_t i = 0; i < d; ++i) rho(i, i) = 0.25;  // maximally mixed
  EXPECT_NEAR(fidelity(rho, rho), 1.0, 1e-9);
}

TEST(Fidelity, MaximallyMixedVsPure) {
  const std::size_t d = 4;
  Matrix mixed(d, d);
  for (std::size_t i = 0; i < d; ++i) mixed(i, i) = 0.25;
  Matrix pure(d, d);
  pure(0, 0) = 1.0;
  EXPECT_NEAR(fidelity(mixed, pure), 0.25, 1e-9);
  EXPECT_NEAR(fidelity(pure, mixed), 0.25, 1e-9);  // symmetry
}

TEST(Gates, QftIsUnitaryAndMapsZeroToUniform) {
  for (const std::size_t d : {2u, 3u, 8u, 10u}) {
    const auto f = qft_matrix(d);
    EXPECT_NEAR(f.unitarity_defect(), 0.0, 1e-10);
    for (std::size_t i = 0; i < d; ++i) {
      EXPECT_NEAR(std::abs(f(i, 0) - cplx(1.0 / std::sqrt(double(d)), 0.0)),
                  0.0, 1e-12);
    }
  }
}

TEST(Gates, ShiftMatrixCycles) {
  const auto s = shift_matrix(5, 2);
  EXPECT_NEAR(s.unitarity_defect(), 0.0, 1e-14);
  // |3⟩ → |0⟩
  EXPECT_EQ(s(0, 3), cplx(1.0, 0.0));
  // shift by dim is identity
  EXPECT_NEAR(Matrix::max_abs_diff(shift_matrix(5, 5), Matrix::identity(5)),
              0.0, 1e-15);
}

TEST(Gates, HouseholderPreparesUniform) {
  for (const std::size_t d : {1u, 2u, 7u, 32u}) {
    const auto v = uniform_prep_householder_vector(d);
    const auto h = householder_matrix(v);
    EXPECT_NEAR(h.unitarity_defect(), 0.0, 1e-10) << "d=" << d;
    // Self-inverse.
    EXPECT_NEAR(Matrix::max_abs_diff(h * h, Matrix::identity(d)), 0.0, 1e-10);
    // Column 0 is the uniform superposition.
    for (std::size_t i = 0; i < d; ++i)
      EXPECT_NEAR(std::abs(h(i, 0) - cplx(1.0 / std::sqrt(double(d)), 0.0)),
                  0.0, 1e-12);
  }
}

TEST(Gates, RotationComposition) {
  const auto r1 = rotation_matrix(0.3);
  const auto r2 = rotation_matrix(0.5);
  EXPECT_NEAR(Matrix::max_abs_diff(r1 * r2, rotation_matrix(0.8)), 0.0, 1e-12);
  EXPECT_NEAR(Matrix::max_abs_diff(r1 * rotation_matrix(-0.3),
                                   Matrix::identity(2)),
              0.0, 1e-12);
}

TEST(Gates, PhaseMatrixTargetsOneValue) {
  const auto p = phase_matrix(3, 1, std::acos(-1.0));
  EXPECT_EQ(p(0, 0), cplx(1.0, 0.0));
  EXPECT_NEAR(std::abs(p(1, 1) - cplx(-1.0, 0.0)), 0.0, 1e-12);
  EXPECT_EQ(p(2, 2), cplx(1.0, 0.0));
}

}  // namespace
}  // namespace qs
