#!/bin/sh
# Full reproduction pipeline: configure, build, run the 666-test suite,
# regenerate every table/figure experiment, and leave the transcripts in
# test_output.txt / bench_output.txt.
set -eu
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "================ $(basename "$b") ================"
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt
echo "reproduction complete: see EXPERIMENTS.md for the claim-by-claim map."
