// Umbrella header: the complete public API of the distributed quantum
// sampling library. Include this to get everything; include the individual
// module headers (listed by area below) to keep compile times tight.
#pragma once

// Substrate utilities.
#include "common/cli.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

// Statevector simulator.
#include "qsim/controlled.hpp"
#include "qsim/density.hpp"
#include "qsim/density_evolution.hpp"
#include "qsim/gates.hpp"
#include "qsim/linalg.hpp"
#include "qsim/measure.hpp"
#include "qsim/noise.hpp"
#include "qsim/operator_builder.hpp"
#include "qsim/register_layout.hpp"
#include "qsim/state_vector.hpp"

// Distributed database model (Section 3).
#include "distdb/communication.hpp"
#include "distdb/dataset.hpp"
#include "distdb/distributed_database.hpp"
#include "distdb/machine.hpp"
#include "distdb/query_stats.hpp"
#include "distdb/serialize.hpp"
#include "distdb/transcript.hpp"
#include "distdb/transport.hpp"
#include "distdb/workload.hpp"

// Samplers (Section 4) and model tooling.
#include "sampling/amplitude_amplification.hpp"
#include "sampling/backend.hpp"
#include "sampling/circuit.hpp"
#include "sampling/classical.hpp"
#include "sampling/fixed_point.hpp"
#include "sampling/hierarchical.hpp"
#include "sampling/ideal.hpp"
#include "sampling/noisy_sampler.hpp"
#include "sampling/parallel_full.hpp"
#include "sampling/samplers.hpp"
#include "sampling/schedule.hpp"
#include "sampling/unknown_m.hpp"
#include "sampling/verify.hpp"

// Quantum counting and adaptive scheduling.
#include "estimation/adaptive.hpp"
#include "estimation/amplitude_estimation.hpp"
#include "estimation/iqae.hpp"
#include "estimation/qpe_counting.hpp"

// Lower-bound machinery (Section 5).
#include "lowerbound/deferred_measurement.hpp"
#include "lowerbound/hard_inputs.hpp"
#include "lowerbound/lockstep.hpp"
#include "lowerbound/potential.hpp"

// Applications.
#include "apps/index_erasure.hpp"
#include "apps/max_finding.hpp"
#include "apps/mean_estimation.hpp"
#include "apps/sample_server.hpp"
#include "apps/store_comparison.hpp"
#include "apps/stream_window.hpp"
#include "apps/subset_sampling.hpp"
#include "apps/weighted_sampling.hpp"
