// Query accounting.
//
// The paper's cost model counts oracle invocations: t_j sequential queries
// to machine j (Section 5.2), and rounds of the parallel oracle O (Eq. 3),
// each of which invokes all n machines simultaneously. QueryStats is the
// ledger both samplers and the lower-bound experiments read; it separates
// forward and adjoint calls only for reporting (both cost one query).
#pragma once

#include <cstdint>
#include <vector>

namespace qs {

struct QueryStats {
  /// t_j — sequential oracle calls per machine (O_j or O_j†).
  std::vector<std::uint64_t> sequential_per_machine;

  /// Rounds of the parallel oracle O / O† (each round touches every
  /// machine once).
  std::uint64_t parallel_rounds = 0;

  std::uint64_t total_sequential() const {
    std::uint64_t total = 0;
    for (const auto t : sequential_per_machine) total += t;
    return total;
  }

  /// Total individual machine invocations including those inside parallel
  /// rounds (n per round).
  std::uint64_t total_machine_invocations() const {
    return total_sequential() +
           parallel_rounds *
               static_cast<std::uint64_t>(sequential_per_machine.size());
  }

  friend bool operator==(const QueryStats&, const QueryStats&) = default;
};

}  // namespace qs
