// Communication transcripts for the oblivious model.
//
// The paper restricts attention to OBLIVIOUS algorithms: the schedule of
// coordinator↔machine communication is fixed by public knowledge
// (N, M, ν, n) and never depends on the data (Section 3). Mirroring the
// MPI style of explicit, inspectable message traffic, every oracle call a
// sampler makes is logged as an event; the test suite then checks that two
// runs on different datasets with identical public parameters produce
// IDENTICAL transcripts — a machine-checkable obliviousness certificate.
//
// Transcripts have a textual wire format so they can be stored and fed to
// the static analyzer (tools/dqs_verify): one whitespace-separated token
// per event,
//
//   O<j>    sequential query O_j to machine j (Eq. 1)
//   O<j>†   its adjoint O_j†
//   P*      one collective round of the parallel oracle O (Eq. 3)
//   P*†     one collective round of O†
//
// The "*" marks the round as touching ALL machines at once, so a parallel
// round can never be misread as a query to some machine named P.
// parse_transcript() inverts to_string() exactly (round-trip tested).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "distdb/query_stats.hpp"

namespace qs {

enum class QueryKind : std::uint8_t {
  kSequential,      // O_j on one machine (Eq. 1)
  kParallelRound,   // one round of the parallel oracle O (Eq. 3)
};

struct TranscriptEvent {
  QueryKind kind = QueryKind::kSequential;
  /// Machine index for sequential queries; ignored for parallel rounds.
  std::size_t machine = 0;
  bool adjoint = false;

  friend bool operator==(const TranscriptEvent&,
                         const TranscriptEvent&) = default;
};

class Transcript {
 public:
  void record_sequential(std::size_t machine, bool adjoint);
  void record_parallel_round(bool adjoint);

  const std::vector<TranscriptEvent>& events() const noexcept {
    return events_;
  }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  friend bool operator==(const Transcript&, const Transcript&) = default;

  /// Wire-format rendering ("O3 O3† P* P*† ...") — see the header comment.
  std::string to_string() const;

 private:
  std::vector<TranscriptEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const Transcript& t);

/// Where and why parsing a transcript failed: the 1-based line, the
/// 1-based byte column at which the offending token starts, the token
/// itself, and a human-readable reason. Structured so tools can point at
/// the exact spot in a stored transcript file.
struct TranscriptParseError {
  std::size_t line = 0;
  std::size_t column = 0;
  std::string token;
  std::string reason;

  /// "transcript line 3, column 7: 'OX' — <reason>"
  std::string to_string() const;

  friend bool operator==(const TranscriptParseError&,
                         const TranscriptParseError&) = default;
};

struct TranscriptParseResult {
  Transcript transcript;  ///< events up to (not including) the error
  std::optional<TranscriptParseError> error;

  bool ok() const noexcept { return !error.has_value(); }
};

/// Parse the wire format produced by Transcript::to_string(). Accepts any
/// whitespace between tokens (so multi-line transcript files work) and the
/// legacy bare "P"/"P†" parallel-round spelling. Never throws on malformed
/// input: the error names the line, column, token and reason.
TranscriptParseResult parse_transcript_checked(const std::string& text);

/// As parse_transcript_checked(), but throws ContractViolation carrying
/// the structured error's rendering on malformed input.
Transcript parse_transcript(const std::string& text);

/// Rebuild the query ledger a run with this transcript must have produced:
/// t_j per sequential event on machine j, one parallel round per P* event.
/// The cross-check `stats_of(t, n) == db.stats()` ties the Machine counters
/// to the recorded traffic. Throws if an event names a machine >= machines.
QueryStats stats_of(const Transcript& transcript, std::size_t machines);

}  // namespace qs
