// Communication transcripts for the oblivious model.
//
// The paper restricts attention to OBLIVIOUS algorithms: the schedule of
// coordinator↔machine communication is fixed by public knowledge
// (N, M, ν, n) and never depends on the data (Section 3). Mirroring the
// MPI style of explicit, inspectable message traffic, every oracle call a
// sampler makes is logged as an event; the test suite then checks that two
// runs on different datasets with identical public parameters produce
// IDENTICAL transcripts — a machine-checkable obliviousness certificate.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qs {

enum class QueryKind : std::uint8_t {
  kSequential,      // O_j on one machine (Eq. 1)
  kParallelRound,   // one round of the parallel oracle O (Eq. 3)
};

struct TranscriptEvent {
  QueryKind kind = QueryKind::kSequential;
  /// Machine index for sequential queries; ignored for parallel rounds.
  std::size_t machine = 0;
  bool adjoint = false;

  friend bool operator==(const TranscriptEvent&,
                         const TranscriptEvent&) = default;
};

class Transcript {
 public:
  void record_sequential(std::size_t machine, bool adjoint);
  void record_parallel_round(bool adjoint);

  const std::vector<TranscriptEvent>& events() const noexcept {
    return events_;
  }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() noexcept { events_.clear(); }

  friend bool operator==(const Transcript&, const Transcript&) = default;

  /// Compact rendering ("O3 O3† P P† ...") for diagnostics.
  std::string to_string() const;

 private:
  std::vector<TranscriptEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const Transcript& t);

}  // namespace qs
