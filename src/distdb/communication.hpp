// Communication-volume accounting.
//
// The paper's cost model counts oracle QUERIES; a systems deployment also
// cares how much quantum state actually moves. Per Section 3, a sequential
// query ships the element and counter registers to one machine and back
// (2·(⌈log₂N⌉ + ⌈log₂(ν+1)⌉) qubits of traffic); a parallel round ships an
// element qudit, a counter qudit and a control qubit to EVERY machine and
// back. This module turns a QueryStats ledger into the corresponding
// message/qubit totals — the MPI-style "how much did we put on the wire"
// view of a sampler run, reported by experiment T10.
#pragma once

#include <cstdint>

#include "distdb/distributed_database.hpp"
#include "distdb/query_stats.hpp"

namespace qs {

struct CommunicationReport {
  std::uint64_t messages = 0;        ///< register bundles sent (both ways)
  std::uint64_t qubits_moved = 0;    ///< total qubit·trips
  std::uint64_t rounds = 0;          ///< communication rounds (latency)
  std::uint64_t elem_qubits = 0;     ///< ⌈log₂ N⌉ (per element register)
  std::uint64_t counter_qubits = 0;  ///< ⌈log₂(ν+1)⌉
};

/// Qubits needed to carry a d-dimensional qudit: ⌈log₂ d⌉ (min 1).
std::uint64_t qubits_for_dimension(std::uint64_t dim);

/// Translate a query ledger into wire traffic for a given database shape.
CommunicationReport communication_report(const DistributedDatabase& db,
                                         const QueryStats& stats);

}  // namespace qs
