// Plain-text (de)serialization of datasets and databases.
//
// Format (line-oriented, '#' comments allowed):
//
//   dqsdb 1              # magic + version
//   universe N
//   nu V
//   machine J            # followed by its sparse counts
//   E C                  # element E has multiplicity C (C > 0)
//   ...
//
// Used by the CLI tool and by users who want to run the samplers against
// their own shard layouts.
#pragma once

#include <iosfwd>
#include <string>

#include "distdb/distributed_database.hpp"

namespace qs {

/// Write the database (universe, ν, per-machine sparse counts).
void save_database(std::ostream& os, const DistributedDatabase& db);

/// Parse a database; throws ContractViolation with a line number on
/// malformed input.
DistributedDatabase load_database(std::istream& is);

/// Convenience file wrappers.
void save_database_file(const std::string& path,
                        const DistributedDatabase& db);
DistributedDatabase load_database_file(const std::string& path);

}  // namespace qs
