// Plain-text (de)serialization of datasets and databases.
//
// Format (line-oriented, '#' comments allowed):
//
//   dqsdb 1              # magic + version
//   universe N
//   nu V
//   machine J            # followed by its sparse counts
//   E C                  # element E has multiplicity C (C > 0)
//   ...
//
// Used by the CLI tool and by users who want to run the samplers against
// their own shard layouts.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "distdb/distributed_database.hpp"

namespace qs {

/// Write the database (universe, ν, per-machine sparse counts).
void save_database(std::ostream& os, const DistributedDatabase& db);

/// Parse a database; throws ContractViolation with a line number on
/// malformed input.
DistributedDatabase load_database(std::istream& is);

/// Convenience file wrappers.
void save_database_file(const std::string& path,
                        const DistributedDatabase& db);
DistributedDatabase load_database_file(const std::string& path);

// --- binary cursors ---------------------------------------------------------
//
// Fixed-width little-endian primitives for the dqs-wire-v1 frame codec
// (distdb/ipc/wire.hpp). Every multi-byte field that crosses the process
// boundary goes through these two cursors, so the byte layout is defined in
// exactly one place and reads are bounds-checked rather than pointer-cast.

/// Append-only little-endian encoder over a caller-visible byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

 private:
  void raw(const void* p, std::size_t n) {
    const std::size_t at = out_.size();
    out_.resize(at + n);
    // Little-endian host assumed (x86-64 / aarch64 Linux); static_assert in
    // serialize.cpp pins it so a big-endian port fails loudly at compile.
    std::memcpy(out_.data() + at, p, n);
  }

  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian decoder. Reads never fault: each accessor
/// reports success and leaves the cursor in place on a short buffer, so a
/// frame parser can turn the failure into a structured WireError naming the
/// offset instead of crashing on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t remaining() const noexcept { return data_.size() - offset_; }

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u16(std::uint16_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool f64(double& v) { return raw(&v, sizeof v); }
  bool bytes(std::uint8_t* out, std::size_t n) { return raw(out, n); }
  bool skip(std::size_t n) {
    if (remaining() < n) return false;
    offset_ += n;
    return true;
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(p, data_.data() + offset_, n);
    offset_ += n;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace qs
