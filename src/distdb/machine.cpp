#include "distdb/machine.hpp"

#include "common/require.hpp"
#include "telemetry/metrics.hpp"

namespace qs {

Machine::Machine(Dataset data, std::uint64_t kappa)
    : data_(std::move(data)), kappa_(kappa) {
  QS_REQUIRE(kappa_ >= data_.max_multiplicity(),
             "machine capacity κ_j below an existing multiplicity");
}

const std::vector<std::size_t>& Machine::shift_vector(std::size_t modulus,
                                                      bool adjoint) const {
  static auto& t_hits = telemetry::counter("distdb.oracle.cache.hit");
  static auto& t_compiles = telemetry::counter("distdb.oracle.cache.compile");
  QS_REQUIRE(modulus >= 1, "counter modulus must be positive");
  auto& cache = oracle_cache_;
  if (cache.valid && cache.modulus == modulus &&
      cache.version == data_.version()) {
    t_hits.add();
    return adjoint ? cache.adjoint : cache.forward;
  }
  // One content read (a single taint bump) compiles BOTH directions, so the
  // adjoint leg of an oracle/uncompute pair is always a hit.
  const auto& counts = data_.counts();
  cache.forward.resize(counts.size());
  cache.adjoint.resize(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(counts[i]) % modulus;
    cache.forward[i] = c;
    cache.adjoint[i] = (modulus - c) % modulus;
  }
  cache.modulus = modulus;
  cache.version = data_.version();
  cache.valid = true;
  t_compiles.add();
  return adjoint ? cache.adjoint : cache.forward;
}

void Machine::apply_oracle(StateVector& state, RegisterId elem,
                           RegisterId count, bool adjoint) const {
  const auto& layout = state.layout();
  QS_REQUIRE(layout.dim(elem) == data_.universe(),
             "element register dimension must equal the universe size");
  const std::size_t modulus = layout.dim(count);
  QS_REQUIRE(modulus > data_.max_multiplicity(),
             "counter register (ν+1) too small for this machine's counts");
  state.apply_value_shift(count, elem, shift_vector(modulus, adjoint));
  ++query_count_;
}

void Machine::apply_controlled_oracle(StateVector& state, RegisterId elem,
                                      RegisterId count, RegisterId flag,
                                      bool adjoint) const {
  const auto& layout = state.layout();
  QS_REQUIRE(layout.dim(elem) == data_.universe(),
             "element register dimension must equal the universe size");
  const std::size_t modulus = layout.dim(count);
  QS_REQUIRE(modulus > data_.max_multiplicity(),
             "counter register (ν+1) too small for this machine's counts");
  state.apply_controlled_value_shift(count, elem, flag,
                                     shift_vector(modulus, adjoint));
  ++query_count_;
}

void Machine::insert(std::size_t element) {
  QS_REQUIRE(data_.count(element) < kappa_,
             "insert would exceed machine capacity κ_j");
  data_.insert(element);
}

void Machine::erase(std::size_t element) { data_.erase(element); }

}  // namespace qs
