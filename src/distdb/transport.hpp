// MPI-style transport session: protocol discipline for the quantum
// register traffic.
//
// Section 3 describes the physical exchange behind each query: the
// coordinator SENDS its element and counter registers to one machine,
// which applies its oracle and sends them back (sequential model), or
// sends one (element, counter, control) bundle to EVERY machine
// simultaneously (parallel model). A TransportSession is the state machine
// that enforces this discipline, mirroring point-to-point vs collective
// operations in MPI:
//
//   * in the sequential model the coordinator's registers can be at only
//     ONE site at a time — overlapping sends are a protocol violation;
//   * a parallel round is a collective: all machines receive, all return,
//     and no sequential query may interleave with an open round;
//   * every bundle that leaves must come back before the circuit can
//     apply coordinator-side unitaries.
//
// The session replays a Transcript (e.g. a compiled schedule) and either
// certifies it protocol-clean or reports the first violation — used by the
// tests to show every schedule this library emits is physically
// executable, and that corrupted schedules are caught.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "distdb/transcript.hpp"

namespace qs {

class TransportSession {
 public:
  explicit TransportSession(std::size_t machines);

  /// Coordinator ships its registers to machine j (sequential model).
  /// Fails if any transfer is in flight.
  void send_sequential(std::size_t machine);

  /// Machine j returns the registers. Fails unless exactly that transfer
  /// is open.
  void receive_sequential(std::size_t machine);

  /// Open a collective round: one bundle to every machine. Fails if any
  /// transfer is in flight.
  void begin_parallel_round();

  /// Close the collective round (all bundles returned).
  void end_parallel_round();

  /// True when the coordinator holds all registers (may apply local
  /// unitaries / terminate).
  bool quiescent() const noexcept;

  /// Ledger of completed interactions.
  std::uint64_t completed_sequential() const noexcept { return sequential_; }
  std::uint64_t completed_rounds() const noexcept { return rounds_; }

  /// Transport operations completed (sends, receives, round begins/ends).
  /// Violation diagnostics cite this index, so a failure names exactly
  /// where in the op stream the protocol broke.
  std::uint64_t ops() const noexcept { return ops_; }

  /// Replay an oracle schedule, treating each sequential event as a
  /// send+receive pair and each parallel event as a full collective round.
  /// Returns std::nullopt when the schedule is protocol-clean, otherwise a
  /// description of the first violation.
  static std::optional<std::string> validate_schedule(
      const Transcript& transcript, std::size_t machines);

 private:
  std::size_t machines_;
  std::optional<std::size_t> in_flight_sequential_;
  bool round_open_ = false;
  std::uint64_t sequential_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace qs
