#include "distdb/serialize.hpp"

#include <bit>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace qs {

// The ByteWriter/ByteReader cursors memcpy host-order integers straight into
// the wire image; dqs-wire-v1 is defined little-endian.
static_assert(std::endian::native == std::endian::little,
              "dqs-wire-v1 assumes a little-endian host");

void save_database(std::ostream& os, const DistributedDatabase& db) {
  os << "dqsdb 1\n";
  os << "universe " << db.universe() << "\n";
  os << "nu " << db.nu() << "\n";
  for (std::size_t j = 0; j < db.num_machines(); ++j) {
    os << "machine " << j << "\n";
    const auto& counts = db.machine(j).data().counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) os << i << ' ' << counts[i] << "\n";
    }
  }
}

DistributedDatabase load_database(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;
  std::size_t universe = 0;
  std::uint64_t nu = 0;
  std::vector<Dataset> datasets;

  const auto fail = [&](const std::string& why) {
    QS_REQUIRE(false, "dqsdb parse error at line " + std::to_string(line_no) +
                          ": " + why);
  };

  bool saw_magic = false;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;

    if (!saw_magic) {
      int version = 0;
      if (word != "dqsdb" || !(ls >> version) || version != 1)
        fail("expected header 'dqsdb 1'");
      saw_magic = true;
    } else if (word == "universe") {
      if (!(ls >> universe) || universe == 0) fail("bad universe");
    } else if (word == "nu") {
      if (!(ls >> nu) || nu == 0) fail("bad nu");
    } else if (word == "machine") {
      std::size_t index = 0;
      if (!(ls >> index)) fail("bad machine index");
      if (index != datasets.size()) fail("machine indices must be 0,1,2,...");
      if (universe == 0) fail("'universe' must precede machines");
      datasets.emplace_back(universe);
    } else {
      // An "E C" count line for the current machine.
      if (datasets.empty()) fail("count line before any 'machine'");
      std::size_t element = 0;
      std::uint64_t count = 0;
      std::istringstream pair(line);
      if (!(pair >> element >> count) || count == 0)
        fail("expected 'element count' with count > 0");
      if (element >= universe) fail("element outside the universe");
      datasets.back().insert(element, count);
    }
  }
  if (!saw_magic) {
    ++line_no;
    fail("empty input");
  }
  if (datasets.empty()) fail("no machines");
  if (nu == 0) fail("missing nu");
  return DistributedDatabase(std::move(datasets), nu);
}

void save_database_file(const std::string& path,
                        const DistributedDatabase& db) {
  std::ofstream os(path);
  QS_REQUIRE(os.good(), "cannot open '" + path + "' for writing");
  save_database(os, db);
}

DistributedDatabase load_database_file(const std::string& path) {
  std::ifstream is(path);
  QS_REQUIRE(is.good(), "cannot open '" + path + "' for reading");
  return load_database(is);
}

}  // namespace qs
