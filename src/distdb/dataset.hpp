// Multiset datasets over the universe [N].
//
// Section 3 of the paper: machine j holds a multiset T_j over the data
// universe [N], described completely by the multiplicities c_ij. Dataset is
// that multiset — a dense multiplicity vector plus cached aggregates
// (|T_j| = M_j, |Supp(T_j)| = m_j, max_i c_ij) kept consistent under the
// dynamic insert/erase updates the paper's oracle supports.
//
// Elements are 0-indexed internally ([N] = {1..N} in the paper maps to
// {0..N-1} here, matching register digits).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qs {

class Dataset {
 public:
  /// Empty multiset over a universe of `universe` elements.
  explicit Dataset(std::size_t universe);

  /// Build from an explicit multiplicity vector (its size is the universe).
  static Dataset from_counts(std::vector<std::uint64_t> counts);

  /// Build from a list of element occurrences (duplicates accumulate).
  static Dataset from_elements(std::size_t universe,
                               std::span<const std::size_t> elements);

  std::size_t universe() const noexcept { return counts_.size(); }

  /// Multiplicity c_ij of element i.
  std::uint64_t count(std::size_t element) const;

  /// |T_j| — total number of stored elements counting multiplicity.
  std::uint64_t total() const noexcept { return total_; }

  /// m_j = |Supp(T_j)| — number of distinct elements present.
  std::size_t support_size() const noexcept { return support_size_; }

  /// Largest multiplicity of any single element.
  std::uint64_t max_multiplicity() const noexcept { return max_multiplicity_; }

  /// The distinct elements present, ascending.
  std::vector<std::size_t> support() const;

  const std::vector<std::uint64_t>& counts() const noexcept {
    ++content_reads_;
    return counts_;
  }

  /// Monotone mutation counter: bumped by every effective insert/erase.
  /// Consumers that compile data-dependent artifacts (the per-machine
  /// oracle shift cache, docs/PERF.md) key them on this version and rebuild
  /// when it moves.
  std::uint64_t version() const noexcept { return version_; }

  /// Taint counter for the static obliviousness audit (docs/ANALYSIS.md):
  /// number of times PER-ELEMENT contents were read through count(),
  /// counts() or support(). The aggregates the paper declares public
  /// (universe N, total M) do not count. A schedule-compilation path must
  /// leave this untouched — anything else means the "oblivious" schedule
  /// could have depended on the data.
  std::uint64_t content_reads() const noexcept { return content_reads_; }
  void reset_content_reads() const noexcept { content_reads_ = 0; }

  /// Add `amount` occurrences of `element`.
  void insert(std::size_t element, std::uint64_t amount = 1);

  /// Remove `amount` occurrences; requires count(element) >= amount.
  void erase(std::size_t element, std::uint64_t amount = 1);

  /// Equality is over the stored multiset only (the aggregates are derived
  /// and the taint counter is observation state, not data).
  friend bool operator==(const Dataset& a, const Dataset& b) {
    return a.counts_ == b.counts_;
  }

 private:
  void recompute_max();

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::size_t support_size_ = 0;
  std::uint64_t max_multiplicity_ = 0;
  std::uint64_t version_ = 0;
  mutable std::uint64_t content_reads_ = 0;
};

}  // namespace qs
