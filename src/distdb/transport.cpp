#include "distdb/transport.hpp"

#include "common/require.hpp"
#include "telemetry/trace.hpp"

namespace qs {

namespace {

// Telemetry mirror of the session ledgers. `ownership_moves` counts every
// change of site of the coordinator's register bundle: one per sequential
// send and one per return; a collective round moves n bundles out and n
// back.
struct TransportCounters {
  telemetry::Counter& sends =
      telemetry::counter("transport.sequential_sends");
  telemetry::Counter& receives =
      telemetry::counter("transport.sequential_receives");
  telemetry::Counter& rounds = telemetry::counter("transport.parallel_rounds");
  telemetry::Counter& moves = telemetry::counter("transport.ownership_moves");
};

TransportCounters& transport_counters() {
  static TransportCounters counters;
  return counters;
}

}  // namespace

TransportSession::TransportSession(std::size_t machines)
    : machines_(machines) {
  QS_REQUIRE(machines_ > 0, "transport session needs at least one machine");
}

void TransportSession::send_sequential(std::size_t machine) {
  // Every diagnostic names the op index and the machines involved, so a
  // violation inside a long schedule pinpoints itself (QS_REQUIRE builds
  // the message lazily — the happy path pays nothing for this).
  QS_REQUIRE(machine < machines_,
             "send to machine " + std::to_string(machine) + " (op " +
                 std::to_string(ops_) + "): machine index out of range (n=" +
                 std::to_string(machines_) + ")");
  QS_REQUIRE(!round_open_,
             "send to machine " + std::to_string(machine) + " (op " +
                 std::to_string(ops_) + "): a collective round is open");
  QS_REQUIRE(!in_flight_sequential_.has_value(),
             "send to machine " + std::to_string(machine) + " (op " +
                 std::to_string(ops_) +
                 "): registers already in flight to machine " +
                 std::to_string(in_flight_sequential_.value_or(0)));
  in_flight_sequential_ = machine;
  ++ops_;
  transport_counters().sends.add();
  transport_counters().moves.add();
}

void TransportSession::receive_sequential(std::size_t machine) {
  QS_REQUIRE(in_flight_sequential_.has_value(),
             "receive from machine " + std::to_string(machine) + " (op " +
                 std::to_string(ops_) +
                 "): no sequential transfer in flight");
  QS_REQUIRE(in_flight_sequential_.value() == machine,
             "receive from machine " + std::to_string(machine) + " (op " +
                 std::to_string(ops_) +
                 "): registers are in flight to machine " +
                 std::to_string(in_flight_sequential_.value()));
  in_flight_sequential_.reset();
  ++sequential_;
  ++ops_;
  transport_counters().receives.add();
  transport_counters().moves.add();
}

void TransportSession::begin_parallel_round() {
  QS_REQUIRE(!round_open_,
             "begin collective round (op " + std::to_string(ops_) +
                 "): a collective round is already open");
  QS_REQUIRE(!in_flight_sequential_.has_value(),
             "begin collective round (op " + std::to_string(ops_) +
                 "): registers in flight to machine " +
                 std::to_string(in_flight_sequential_.value_or(0)));
  round_open_ = true;
  ++ops_;
  transport_counters().moves.add(machines_);
}

void TransportSession::end_parallel_round() {
  QS_REQUIRE(round_open_, "end collective round (op " +
                              std::to_string(ops_) +
                              "): no collective round to close");
  round_open_ = false;
  ++rounds_;
  ++ops_;
  transport_counters().rounds.add();
  transport_counters().moves.add(machines_);
}

bool TransportSession::quiescent() const noexcept {
  return !round_open_ && !in_flight_sequential_.has_value();
}

std::optional<std::string> TransportSession::validate_schedule(
    const Transcript& transcript, std::size_t machines) {
  static auto& t_ns = telemetry::histogram("transport.validate_schedule.ns");
  telemetry::Span span("transport.validate_schedule", &t_ns);
  span.tag("events", static_cast<std::int64_t>(transcript.size()));
  span.tag("machines", static_cast<std::int64_t>(machines));
  TransportSession session(machines);
  std::size_t index = 0;
  try {
    for (const auto& event : transcript.events()) {
      if (event.kind == QueryKind::kSequential) {
        session.send_sequential(event.machine);
        session.receive_sequential(event.machine);
      } else {
        session.begin_parallel_round();
        session.end_parallel_round();
      }
      ++index;
    }
    if (!session.quiescent()) {
      return "schedule ends with registers still in flight";
    }
  } catch (const ContractViolation& violation) {
    return "event " + std::to_string(index) + ": " + violation.what();
  }
  return std::nullopt;
}

}  // namespace qs
