#include "distdb/transport.hpp"

#include "common/require.hpp"

namespace qs {

TransportSession::TransportSession(std::size_t machines)
    : machines_(machines) {
  QS_REQUIRE(machines_ > 0, "transport session needs at least one machine");
}

void TransportSession::send_sequential(std::size_t machine) {
  QS_REQUIRE(machine < machines_, "machine index out of range");
  QS_REQUIRE(!round_open_, "cannot send during an open collective round");
  QS_REQUIRE(!in_flight_sequential_.has_value(),
             "coordinator registers are already in flight");
  in_flight_sequential_ = machine;
}

void TransportSession::receive_sequential(std::size_t machine) {
  QS_REQUIRE(in_flight_sequential_.has_value(),
             "no sequential transfer in flight");
  QS_REQUIRE(in_flight_sequential_.value() == machine,
             "registers returned from the wrong machine");
  in_flight_sequential_.reset();
  ++sequential_;
}

void TransportSession::begin_parallel_round() {
  QS_REQUIRE(!round_open_, "a collective round is already open");
  QS_REQUIRE(!in_flight_sequential_.has_value(),
             "cannot open a round while registers are in flight");
  round_open_ = true;
}

void TransportSession::end_parallel_round() {
  QS_REQUIRE(round_open_, "no collective round to close");
  round_open_ = false;
  ++rounds_;
}

bool TransportSession::quiescent() const noexcept {
  return !round_open_ && !in_flight_sequential_.has_value();
}

std::optional<std::string> TransportSession::validate_schedule(
    const Transcript& transcript, std::size_t machines) {
  TransportSession session(machines);
  std::size_t index = 0;
  try {
    for (const auto& event : transcript.events()) {
      if (event.kind == QueryKind::kSequential) {
        session.send_sequential(event.machine);
        session.receive_sequential(event.machine);
      } else {
        session.begin_parallel_round();
        session.end_parallel_round();
      }
      ++index;
    }
    if (!session.quiescent()) {
      return "schedule ends with registers still in flight";
    }
  } catch (const ContractViolation& violation) {
    return "event " + std::to_string(index) + ": " + violation.what();
  }
  return std::nullopt;
}

}  // namespace qs
