#include "distdb/transcript.hpp"

#include <cctype>
#include <ostream>
#include <sstream>

#include "common/require.hpp"

namespace qs {

namespace {

// UTF-8 encoding of the dagger '†' used by the wire format.
constexpr const char* kDagger = "†";

bool consume_suffix(std::string& token, const std::string& suffix) {
  if (token.size() < suffix.size() ||
      token.compare(token.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return false;
  }
  token.resize(token.size() - suffix.size());
  return true;
}

}  // namespace

void Transcript::record_sequential(std::size_t machine, bool adjoint) {
  events_.push_back({QueryKind::kSequential, machine, adjoint});
}

void Transcript::record_parallel_round(bool adjoint) {
  events_.push_back({QueryKind::kParallelRound, 0, adjoint});
}

std::string Transcript::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ' ';
    first = false;
    if (e.kind == QueryKind::kSequential) {
      os << 'O' << e.machine;
    } else {
      os << "P*";
    }
    if (e.adjoint) os << kDagger;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Transcript& t) {
  return os << t.to_string();
}

Transcript parse_transcript(const std::string& text) {
  Transcript transcript;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const bool adjoint = consume_suffix(token, kDagger);
    if (token == "P*" || token == "P") {
      transcript.record_parallel_round(adjoint);
      continue;
    }
    QS_REQUIRE(token.size() >= 2 && token[0] == 'O',
               "transcript token must be O<machine>, P* or P: '" + token +
                   "'");
    std::size_t machine = 0;
    for (std::size_t i = 1; i < token.size(); ++i) {
      const char c = token[i];
      QS_REQUIRE(std::isdigit(static_cast<unsigned char>(c)) != 0,
                 "malformed machine index in transcript token: '" + token +
                     "'");
      machine = machine * 10 + static_cast<std::size_t>(c - '0');
    }
    transcript.record_sequential(machine, adjoint);
  }
  return transcript;
}

QueryStats stats_of(const Transcript& transcript, std::size_t machines) {
  QueryStats stats;
  stats.sequential_per_machine.assign(machines, 0);
  for (const auto& e : transcript.events()) {
    if (e.kind == QueryKind::kSequential) {
      QS_REQUIRE(e.machine < machines,
                 "transcript queries a machine outside the database");
      ++stats.sequential_per_machine[e.machine];
    } else {
      ++stats.parallel_rounds;
    }
  }
  return stats;
}

}  // namespace qs
