#include "distdb/transcript.hpp"

#include <cctype>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/require.hpp"

namespace qs {

namespace {

// UTF-8 encoding of the dagger '†' used by the wire format.
constexpr const char* kDagger = "†";

bool consume_suffix(std::string& token, const std::string& suffix) {
  if (token.size() < suffix.size() ||
      token.compare(token.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return false;
  }
  token.resize(token.size() - suffix.size());
  return true;
}

}  // namespace

void Transcript::record_sequential(std::size_t machine, bool adjoint) {
  events_.push_back({QueryKind::kSequential, machine, adjoint});
}

void Transcript::record_parallel_round(bool adjoint) {
  events_.push_back({QueryKind::kParallelRound, 0, adjoint});
}

std::string Transcript::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ' ';
    first = false;
    if (e.kind == QueryKind::kSequential) {
      os << 'O' << e.machine;
    } else {
      os << "P*";
    }
    if (e.adjoint) os << kDagger;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Transcript& t) {
  return os << t.to_string();
}

std::string TranscriptParseError::to_string() const {
  return "transcript line " + std::to_string(line) + ", column " +
         std::to_string(column) + ": '" + token + "' — " + reason;
}

TranscriptParseResult parse_transcript_checked(const std::string& text) {
  TranscriptParseResult result;
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t i = 0;
  const auto fail = [&](std::size_t tok_line, std::size_t tok_column,
                        std::string token, std::string reason) {
    result.error = TranscriptParseError{tok_line, tok_column,
                                        std::move(token), std::move(reason)};
    return result;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++column;
      ++i;
      continue;
    }
    // Scan one whitespace-delimited token, remembering where it starts.
    const std::size_t tok_line = line;
    const std::size_t tok_column = column;
    const std::size_t start = i;
    while (i < text.size() && text[i] != '\n' &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
      ++column;
    }
    std::string token = text.substr(start, i - start);
    const std::string raw = token;
    const bool adjoint = consume_suffix(token, kDagger);
    if (token == "P*" || token == "P") {
      result.transcript.record_parallel_round(adjoint);
      continue;
    }
    if (token.empty() || token[0] != 'O') {
      if (!token.empty() && token[0] == 'P') {
        return fail(tok_line, tok_column, raw,
                    "a parallel round is spelled P* (or legacy P), "
                    "optionally followed by " + std::string(kDagger));
      }
      return fail(tok_line, tok_column, raw,
                  "unknown token: expected O<machine>, P* or P");
    }
    if (token.size() < 2) {
      return fail(tok_line, tok_column, raw,
                  "sequential token names no machine: expected O<machine>");
    }
    std::size_t machine = 0;
    for (std::size_t k = 1; k < token.size(); ++k) {
      const char d = token[k];
      if (std::isdigit(static_cast<unsigned char>(d)) == 0) {
        return fail(tok_line, tok_column, raw,
                    std::string("machine index contains non-digit '") + d +
                        "' at offset " + std::to_string(k));
      }
      if (machine > (std::numeric_limits<std::size_t>::max() - 9) / 10) {
        return fail(tok_line, tok_column, raw,
                    "machine index overflows the machine-index type");
      }
      machine = machine * 10 + static_cast<std::size_t>(d - '0');
    }
    result.transcript.record_sequential(machine, adjoint);
  }
  return result;
}

Transcript parse_transcript(const std::string& text) {
  TranscriptParseResult result = parse_transcript_checked(text);
  QS_REQUIRE(result.ok(), result.error->to_string());
  return std::move(result.transcript);
}

QueryStats stats_of(const Transcript& transcript, std::size_t machines) {
  QueryStats stats;
  stats.sequential_per_machine.assign(machines, 0);
  for (const auto& e : transcript.events()) {
    if (e.kind == QueryKind::kSequential) {
      QS_REQUIRE(e.machine < machines,
                 "transcript queries a machine outside the database");
      ++stats.sequential_per_machine[e.machine];
    } else {
      ++stats.parallel_rounds;
    }
  }
  return stats;
}

}  // namespace qs
