#include "distdb/transcript.hpp"

#include <ostream>
#include <sstream>

namespace qs {

void Transcript::record_sequential(std::size_t machine, bool adjoint) {
  events_.push_back({QueryKind::kSequential, machine, adjoint});
}

void Transcript::record_parallel_round(bool adjoint) {
  events_.push_back({QueryKind::kParallelRound, 0, adjoint});
}

std::string Transcript::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    if (e.kind == QueryKind::kSequential) {
      os << 'O' << e.machine;
    } else {
      os << 'P';
    }
    if (e.adjoint) os << "†";
    os << ' ';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Transcript& t) {
  return os << t.to_string();
}

}  // namespace qs
