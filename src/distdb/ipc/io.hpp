// EINTR/partial-transfer-safe I/O primitives for the ipc transport.
//
// POSIX read/write on a stream socket may transfer fewer bytes than asked,
// fail with EINTR on any signal, or block forever against a hung peer.
// Every blocking operation in src/distdb/ipc goes through the four wrappers
// below, which (a) retry EINTR transparently, (b) loop partial transfers to
// completion, and (c) honor a monotonic deadline via poll() so a stopped
// worker turns into a typed kTimeout instead of a wedged coordinator. The
// dqs_lint `ipc-discipline` rule forbids bare read/write/poll/waitpid calls
// anywhere else in src/, so this file is the single place the raw syscall
// semantics live.
//
// Deadlines are measured on telemetry::monotonic_ns() — the library's one
// sanctioned clock (timing-discipline) — and writes use send(MSG_NOSIGNAL)
// so a dead peer yields EPIPE instead of killing the coordinator with
// SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace qs::ipc {

/// Absolute monotonic deadline; at_ns == 0 means "no deadline".
struct Deadline {
  std::uint64_t at_ns = 0;

  static Deadline none() noexcept { return {}; }
  /// A deadline `ms` milliseconds from now (telemetry::monotonic_ns).
  static Deadline in_ms(std::uint64_t ms) noexcept;

  bool unbounded() const noexcept { return at_ns == 0; }
  bool expired() const noexcept;
  /// Remaining budget in whole milliseconds for poll(): -1 when unbounded,
  /// 0 when expired, else at least 1 (so a sub-millisecond remainder still
  /// polls instead of spinning).
  int remaining_ms() const noexcept;
};

enum class IoStatus : std::uint8_t {
  kOk,       // full transfer completed
  kEof,      // peer closed the stream mid-transfer (worker death)
  kTimeout,  // deadline expired (hung peer; the watchdog takes over)
  kError,    // errno-carrying failure (EPIPE, ECONNRESET, ...)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  int error = 0;                 ///< errno when status == kError
  std::size_t transferred = 0;   ///< bytes moved before the outcome

  bool ok() const noexcept { return status == IoStatus::kOk; }
};

const char* to_string(IoStatus status);

/// Read exactly `n` bytes into `buf`, or report why not.
IoResult read_full(int fd, void* buf, std::size_t n, const Deadline& deadline);

/// Write exactly `n` bytes from `buf` (send + MSG_NOSIGNAL), or report why
/// not.
IoResult write_full(int fd, const void* buf, std::size_t n,
                    const Deadline& deadline);

/// Block until `fd` is readable (or EOF-able) within the deadline.
IoResult wait_readable(int fd, const Deadline& deadline);

/// EINTR-retrying waitpid. Returns the waited pid, 0 (WNOHANG, no change),
/// or -1 with errno (ECHILD when there is nothing left to reap).
pid_t waitpid_retry(pid_t pid, int* status, int flags) noexcept;

/// waitpid with a deadline: poll WNOHANG on a short cadence until the child
/// is reaped or the deadline expires (returns 0 on timeout). Used by the
/// shutdown drain, where SIGKILL guarantees eventual progress.
pid_t waitpid_deadline(pid_t pid, int* status, const Deadline& deadline);

}  // namespace qs::ipc
