#include "distdb/ipc/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <optional>
#include <span>
#include <unistd.h>
#include <vector>

#include "distdb/ipc/io.hpp"
#include "distdb/ipc/wire.hpp"
#include "distdb/serialize.hpp"

namespace qs::ipc {
namespace {

/// One worker's entire state: its machine's dense multiplicity vector plus
/// the armed chaos-fault, if any.
struct WorkerState {
  std::uint32_t machine = 0;
  std::uint64_t universe = 0;
  std::vector<std::uint64_t> counts;
  std::optional<ArmedFaultMode> armed;
};

/// Apply O_j (Eq. 1) to the amplitudes in-place of layout semantics: the
/// count digit of every basis state advances by c_elem mod dim(count). The
/// register layout travels with the request as dims most-significant-first;
/// strides follow the RegisterLayout convention (first register most
/// significant). This is a pure permutation of the amplitude vector, so the
/// result is bit-identical to Machine::apply_oracle on the coordinator.
bool apply_oracle_permutation(const WorkerState& state, OraclePayload& oracle) {
  const std::size_t num_regs = oracle.dims.size();
  std::vector<std::size_t> strides(num_regs, 1);
  std::size_t total = 1;
  for (std::size_t i = num_regs; i-- > 0;) {
    strides[i] = total;
    total *= static_cast<std::size_t>(oracle.dims[i]);
  }
  if (oracle.amplitudes.size() != total) return false;

  const std::size_t elem_dim =
      static_cast<std::size_t>(oracle.dims[oracle.elem_reg]);
  const std::size_t elem_stride = strides[oracle.elem_reg];
  const std::size_t count_dim =
      static_cast<std::size_t>(oracle.dims[oracle.count_reg]);
  const std::size_t count_stride = strides[oracle.count_reg];
  if (elem_dim != state.universe) return false;

  // Per-element count-digit shift: c_i mod m forward, (m − c_i mod m) mod m
  // adjoint.
  std::vector<std::size_t> shift(elem_dim, 0);
  for (std::size_t i = 0; i < elem_dim && i < state.counts.size(); ++i) {
    const std::size_t c = static_cast<std::size_t>(state.counts[i]) % count_dim;
    shift[i] = oracle.adjoint != 0 ? (count_dim - c) % count_dim : c;
  }

  std::vector<cplx> out(total);
  for (std::size_t idx = 0; idx < total; ++idx) {
    const std::size_t elem = (idx / elem_stride) % elem_dim;
    const std::size_t count = (idx / count_stride) % count_dim;
    const std::size_t shifted = (count + shift[elem]) % count_dim;
    const std::size_t dst = idx + (shifted - count) * count_stride;
    out[dst] = oracle.amplitudes[idx];
  }
  oracle.amplitudes = std::move(out);
  return true;
}

bool send_frame(int fd, FrameType type, std::uint32_t machine,
                std::uint64_t seq, std::span<const std::uint8_t> payload) {
  const auto bytes = encode_frame(type, machine, seq, payload);
  return write_full(fd, bytes.data(), bytes.size(), Deadline::none()).ok();
}

bool send_error(int fd, std::uint32_t machine, std::uint64_t seq,
                std::uint32_t code, const char* message) {
  const auto payload = encode_error({code, message});
  return send_frame(fd, FrameType::kError, machine, seq, payload);
}

/// Realise an armed kCorruptChecksum: a full, framing-valid reply whose CRC
/// is wrong. The stream stays in sync, so the coordinator classifies a torn
/// frame and retries without tearing down the connection.
bool send_corrupted(int fd, FrameType type, std::uint32_t machine,
                    std::uint64_t seq, std::span<const std::uint8_t> payload) {
  auto bytes = encode_frame(type, machine, seq, payload);
  bytes[24] ^= 0xFF;  // flip a checksum byte; length fields stay intact
  return write_full(fd, bytes.data(), bytes.size(), Deadline::none()).ok();
}

/// Realise an armed kTruncateAndDie: write half a frame, then die mid-write
/// exactly as a crashed peer would — the coordinator sees a short read / EOF.
void send_truncated_and_die(int fd, FrameType type, std::uint32_t machine,
                            std::uint64_t seq,
                            std::span<const std::uint8_t> payload) {
  const auto bytes = encode_frame(type, machine, seq, payload);
  const std::size_t half = bytes.size() / 2;
  write_full(fd, bytes.data(), half < kHeaderSize ? half : kHeaderSize + 1,
             Deadline::none());
  _exit(0);
}

/// Send one reply, realising an armed chaos fault if one is pending. The
/// armed fault applies to the next reply of ANY type except the kArmFaultAck
/// that acknowledged arming it — so the harness can tear an oracle reply or
/// a heartbeat pong alike.
bool send_reply(int fd, WorkerState& state, FrameType type, std::uint64_t seq,
                std::span<const std::uint8_t> payload) {
  if (state.armed && type != FrameType::kArmFaultAck) {
    const ArmedFaultMode mode = *state.armed;
    state.armed.reset();
    if (mode == ArmedFaultMode::kCorruptChecksum) {
      return send_corrupted(fd, type, state.machine, seq, payload);
    }
    send_truncated_and_die(fd, type, state.machine, seq, payload);
  }
  return send_frame(fd, type, state.machine, seq, payload);
}

/// Read exactly one frame (header, then payload) from the socket. Returns
/// false on EOF / error — the worker exits. A malformed frame yields a
/// kError reply and `true` (connection lives).
bool read_and_dispatch(int fd, WorkerState& state, bool& done) {
  std::uint8_t header_bytes[kHeaderSize];
  const IoResult hr = read_full(fd, header_bytes, kHeaderSize,
                                Deadline::none());
  if (!hr.ok()) return false;

  FrameHeader header;
  if (auto err = parse_header_checked(
          std::span<const std::uint8_t>(header_bytes, kHeaderSize), header)) {
    // Headers are unframed bytes; desync is unrecoverable worker-side.
    send_error(fd, state.machine, 0, 1, err->to_string().c_str());
    return false;
  }

  std::vector<std::uint8_t> buffer(kHeaderSize + header.payload_len);
  std::copy(header_bytes, header_bytes + kHeaderSize, buffer.begin());
  if (header.payload_len > 0) {
    const IoResult pr = read_full(fd, buffer.data() + kHeaderSize,
                                  header.payload_len, Deadline::none());
    if (!pr.ok()) return false;
  }

  const FrameParseResult parsed = parse_frame_checked(buffer);
  if (!parsed.ok()) {
    send_error(fd, state.machine, header.seq, 2,
               parsed.error->to_string().c_str());
    return true;  // framing is intact (length was trusted), keep serving
  }
  const Frame& frame = *parsed.frame;
  const std::uint64_t seq = frame.header.seq;

  switch (frame.header.type) {
    case FrameType::kHello: {
      HelloPayload hello;
      if (auto err = decode_hello(frame.payload, hello))
        return send_error(fd, state.machine, seq, 3,
                          err->to_string().c_str());
      state.universe = hello.universe;
      state.counts.assign(hello.universe, 0);
      std::uint64_t total = 0;
      for (const auto& [elem, count] : hello.counts) {
        state.counts[elem] = count;
        total += count;
      }
      std::vector<std::uint8_t> ack;
      ByteWriter w(ack);
      w.u64(total);
      return send_reply(fd, state, FrameType::kHelloAck, seq, ack);
    }
    case FrameType::kOracle: {
      OraclePayload oracle;
      if (auto err = decode_oracle(frame.payload, oracle))
        return send_error(fd, state.machine, seq, 4,
                          err->to_string().c_str());
      if (state.counts.empty())
        return send_error(fd, state.machine, seq, 5, "oracle before hello");
      if (!apply_oracle_permutation(state, oracle))
        return send_error(fd, state.machine, seq, 6,
                          "oracle layout mismatch");
      const auto reply = encode_amplitudes(oracle.amplitudes);
      return send_reply(fd, state, FrameType::kOracleReply, seq, reply);
    }
    case FrameType::kPing:
      return send_reply(fd, state, FrameType::kPong, seq, {});
    case FrameType::kArmFault: {
      if (frame.payload.size() != 1 || frame.payload[0] > 1)
        return send_error(fd, state.machine, seq, 7, "bad arm-fault mode");
      state.armed = static_cast<ArmedFaultMode>(frame.payload[0]);
      return send_reply(fd, state, FrameType::kArmFaultAck, seq, {});
    }
    case FrameType::kUpdate: {
      UpdatePayload update;
      if (auto err = decode_update(frame.payload, update))
        return send_error(fd, state.machine, seq, 8,
                          err->to_string().c_str());
      if (update.element >= state.counts.size())
        return send_error(fd, state.machine, seq, 9,
                          "update element outside the universe");
      auto& count = state.counts[update.element];
      if (update.delta < 0 && count == 0)
        return send_error(fd, state.machine, seq, 10,
                          "erase of absent element");
      count = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(count) + update.delta);
      return send_reply(fd, state, FrameType::kUpdateAck, seq, {});
    }
    case FrameType::kShutdown:
      done = true;
      return send_reply(fd, state, FrameType::kShutdownAck, seq, {});
    default:
      return send_error(fd, state.machine, seq, 11,
                        "frame type not valid coordinator-to-worker");
  }
}

}  // namespace

int ipc_worker_main(int fd, std::uint32_t machine) noexcept {
  WorkerState state;
  state.machine = machine;
  bool done = false;
  // The worker blocks forever on its socket: liveness is the COORDINATOR's
  // concern (heartbeats + watchdog), and an orphaned worker dies on EOF when
  // the parent's socket end closes.
  while (!done) {
    if (!read_and_dispatch(fd, state, done)) {
      if (!done) {
        std::fprintf(stderr, "[dqs-worker %u] socket closed, exiting\n",
                     machine);
      }
      break;
    }
  }
  return 0;
}

}  // namespace qs::ipc
