// The oracle transport seam.
//
// SingleStateBackend applies the oracle O_j either directly (in-process
// Machine::apply_oracle) or through an OracleChannel that moves the register
// amplitudes to wherever the machine's data actually lives. Because O_j is an
// exact permutation of the amplitude vector (Eq. 1), ANY correct channel is
// bit-identical to the in-process path — the property the ipc chaos grid
// asserts end to end. The channel is deliberately tiny: two calls, one per
// oracle shape the samplers use, mirroring Machine::apply_oracle's signature.
#pragma once

#include <cstddef>
#include <cstdint>

#include "qsim/state_vector.hpp"

namespace qs::ipc {

/// Which transport the sampler/serving stack routes oracle calls through.
enum class TransportKind : std::uint8_t {
  kInProcess = 0,  ///< direct Machine::apply_oracle on the coordinator
  kIpc = 1,        ///< per-machine worker processes over Unix sockets
};

inline const char* to_string(TransportKind kind) {
  return kind == TransportKind::kIpc ? "ipc" : "in-process";
}

/// Applies oracles remotely. Implementations may throw ContractViolation when
/// the transport is irrecoverably down; the serving ladder catches that and
/// degrades to the in-process transport, then to the classical fallback.
class OracleChannel {
 public:
  virtual ~OracleChannel() = default;

  /// Apply O_machine (adjoint: O_machine†) to `state` in place, shifting the
  /// count register conditioned on the element register (sequential protocol).
  virtual void apply_sequential(std::size_t machine, bool adjoint,
                                StateVector& state, RegisterId elem,
                                RegisterId count) = 0;

  /// Apply the composed total shift Σ_j c_ij (parallel protocol, Lemma 4.4)
  /// by threading the state through every machine once: n exact modular adds
  /// compose to the joint shift, so the result is bit-identical to the
  /// coordinator's cached joint-count table.
  virtual void apply_total_shift(bool adjoint, StateVector& state,
                                 RegisterId elem, RegisterId count) = 0;
};

}  // namespace qs::ipc
