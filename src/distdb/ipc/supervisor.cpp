#include "distdb/ipc/supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/require.hpp"
#include "distdb/ipc/io.hpp"
#include "distdb/ipc/worker.hpp"
#include "distdb/serialize.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs::ipc {

const char* to_string(PeerFailureKind kind) {
  switch (kind) {
    case PeerFailureKind::kExited: return "exited";
    case PeerFailureKind::kKilled: return "killed";
    case PeerFailureKind::kHung: return "hung";
    case PeerFailureKind::kTornFrame: return "torn-frame";
    case PeerFailureKind::kWireError: return "wire-error";
    case PeerFailureKind::kSpawnFailed: return "spawn-failed";
  }
  return "unknown";
}

std::string PeerFailure::to_string() const {
  std::string out = "machine ";
  out += std::to_string(machine);
  out += ": ";
  out += ipc::to_string(kind);
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ")";
  }
  return out;
}

namespace {

struct RecvOutcome {
  std::optional<Frame> frame;
  PeerFailureKind kind = PeerFailureKind::kExited;
  std::string detail;

  bool ok() const noexcept { return frame.has_value(); }
};

/// Read one full frame under the deadline. kTimeout and kEof map onto the
/// process-level kinds so the caller's watchdog can refine them; a CRC
/// failure on an otherwise well-framed reply is kTornFrame (stream intact).
RecvOutcome recv_frame(int fd, const Deadline& deadline) {
  RecvOutcome out;
  std::uint8_t header_bytes[kHeaderSize];
  IoResult io = read_full(fd, header_bytes, kHeaderSize, deadline);
  if (!io.ok()) {
    out.kind = io.status == IoStatus::kTimeout ? PeerFailureKind::kHung
                                               : PeerFailureKind::kExited;
    out.detail = io.status == IoStatus::kError ? std::strerror(io.error)
                                               : ipc::to_string(io.status);
    return out;
  }
  FrameHeader header;
  if (auto err = parse_header_checked(
          std::span<const std::uint8_t>(header_bytes, kHeaderSize), header)) {
    out.kind = PeerFailureKind::kWireError;
    out.detail = err->to_string();
    return out;
  }
  std::vector<std::uint8_t> buffer(kHeaderSize + header.payload_len);
  std::copy(header_bytes, header_bytes + kHeaderSize, buffer.begin());
  if (header.payload_len > 0) {
    io = read_full(fd, buffer.data() + kHeaderSize, header.payload_len,
                   deadline);
    if (!io.ok()) {
      out.kind = io.status == IoStatus::kTimeout ? PeerFailureKind::kHung
                                                 : PeerFailureKind::kExited;
      out.detail = "mid-frame: ";
      out.detail += io.status == IoStatus::kError ? std::strerror(io.error)
                                                  : ipc::to_string(io.status);
      return out;
    }
  }
  FrameParseResult parsed = parse_frame_checked(buffer);
  if (!parsed.ok()) {
    out.kind = parsed.error->field == "checksum" ? PeerFailureKind::kTornFrame
                                                 : PeerFailureKind::kWireError;
    out.detail = parsed.error->to_string();
    return out;
  }
  out.frame = std::move(*parsed.frame);
  return out;
}

telemetry::Counter& frames_sent() {
  static auto& c = telemetry::counter("transport.ipc.frames.sent");
  return c;
}
telemetry::Counter& frames_received() {
  static auto& c = telemetry::counter("transport.ipc.frames.received");
  return c;
}
telemetry::Counter& bytes_sent() {
  static auto& c = telemetry::counter("transport.ipc.bytes.sent");
  return c;
}
telemetry::Counter& bytes_received() {
  static auto& c = telemetry::counter("transport.ipc.bytes.received");
  return c;
}

}  // namespace

IpcSupervisor::IpcSupervisor(const DistributedDatabase& db, IpcOptions options)
    : db_(db), options_(std::move(options)), peers_(db.num_machines()) {}

IpcSupervisor::~IpcSupervisor() { shutdown(); }

std::size_t IpcSupervisor::num_machines() const noexcept {
  return peers_.size();
}

bool IpcSupervisor::peer_alive(std::size_t machine) const {
  return machine < peers_.size() && peers_[machine].alive;
}

void IpcSupervisor::close_peer(Peer& peer) {
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.alive = false;
}

std::optional<PeerFailure> IpcSupervisor::spawn(std::size_t machine) {
  Peer& peer = peers_[machine];
  QS_REQUIRE(!peer.alive, "spawn of a live ipc peer");

  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return PeerFailure{machine, PeerFailureKind::kSpawnFailed,
                       std::string("socketpair: ") + std::strerror(errno)};
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return PeerFailure{machine, PeerFailureKind::kSpawnFailed,
                       std::string("fork: ") + std::strerror(errno)};
  }
  if (pid == 0) {
    // Child: become the worker. No exec — we keep the parent's text segment
    // and run the serial protocol loop. _exit (not exit) so no parent-owned
    // atexit handlers or stream buffers run twice.
    ::close(sv[0]);
    if (!options_.worker_stderr_dir.empty()) {
      const std::string path = options_.worker_stderr_dir + "/worker_" +
                               std::to_string(machine) + ".log";
      const int log_fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                                0644);
      if (log_fd >= 0) {
        ::dup2(log_fd, 2);
        ::close(log_fd);
      }
    }
    _exit(ipc_worker_main(sv[1], static_cast<std::uint32_t>(machine)));
  }
  // Parent.
  ::close(sv[1]);
  peer.pid = pid;
  peer.fd = sv[0];
  peer.seq = 0;
  peer.alive = true;
  telemetry::gauge("transport.ipc.workers").add(1);

  if (options_.kill_before_handshake) {
    // Test hook: the worker dies before it ever speaks. The handshake below
    // must classify this cleanly, not hang.
    ::kill(pid, SIGKILL);
  }
  return handshake(machine);
}

std::optional<PeerFailure> IpcSupervisor::handshake(std::size_t machine) {
  Peer& peer = peers_[machine];
  HelloPayload hello;
  hello.universe = db_.universe();
  const auto& counts = db_.machine(machine).data().counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) hello.counts.emplace_back(i, counts[i]);
  }
  const auto payload = encode_hello(hello);
  const auto frame = encode_frame(FrameType::kHello,
                                  static_cast<std::uint32_t>(machine),
                                  ++peer.seq, payload);
  const Deadline deadline = Deadline::in_ms(options_.handshake_timeout_ms);
  IoResult io = write_full(peer.fd, frame.data(), frame.size(), deadline);
  if (!io.ok()) return watchdog(machine, "hello write");
  frames_sent().add();
  bytes_sent().add(frame.size());

  RecvOutcome reply = recv_frame(peer.fd, deadline);
  if (!reply.ok()) return watchdog(machine, "hello: " + reply.detail);
  frames_received().add();
  bytes_received().add(kHeaderSize + reply.frame->payload.size());
  if (reply.frame->header.type != FrameType::kHelloAck ||
      reply.frame->header.seq != peer.seq) {
    close_peer(peer);
    ::kill(peer.pid, SIGKILL);
    waitpid_retry(peer.pid, nullptr, 0);
    peer.pid = -1;
    telemetry::gauge("transport.ipc.workers").add(-1);
    return PeerFailure{machine, PeerFailureKind::kWireError,
                       "handshake reply was not kHelloAck"};
  }
  return std::nullopt;
}

std::optional<PeerFailure> IpcSupervisor::start() {
  QS_REQUIRE(!started_, "ipc supervisor already started");
  started_ = true;
  shut_down_ = false;
  std::optional<PeerFailure> first_failure;
  for (std::size_t j = 0; j < peers_.size(); ++j) {
    if (auto failure = spawn(j); failure && !first_failure) {
      first_failure = std::move(failure);
    }
  }
  return first_failure;
}

PeerFailure IpcSupervisor::watchdog(std::size_t machine,
                                    const std::string& context) {
  Peer& peer = peers_[machine];
  close_peer(peer);
  PeerFailure failure{machine, PeerFailureKind::kExited, context};
  if (peer.pid < 0) {
    failure.kind = PeerFailureKind::kSpawnFailed;
    return failure;
  }
  int status = 0;
  pid_t reaped = waitpid_retry(peer.pid, &status, WNOHANG);
  if (reaped == 0) {
    // Still alive but past its deadline: hung (SIGSTOP chaos, or wedged).
    // The watchdog escalates to SIGKILL and reaps — a hung worker must never
    // wedge the coordinator.
    failure.kind = PeerFailureKind::kHung;
    ::kill(peer.pid, SIGKILL);
    reaped = waitpid_retry(peer.pid, &status, 0);
  } else if (reaped == peer.pid && WIFSIGNALED(status)) {
    failure.kind = PeerFailureKind::kKilled;
    failure.detail = context + "; signal " + std::to_string(WTERMSIG(status));
  }
  peer.pid = -1;
  telemetry::gauge("transport.ipc.workers").add(-1);
  telemetry::counter("transport.ipc.heartbeat.miss").add();
  return failure;
}

std::optional<PeerFailure> IpcSupervisor::ping(std::size_t machine) {
  Peer& peer = peers_[machine];
  if (!peer.alive)
    return PeerFailure{machine, PeerFailureKind::kExited, "peer is down"};
  const auto frame = encode_frame(FrameType::kPing,
                                  static_cast<std::uint32_t>(machine),
                                  ++peer.seq, {});
  const Deadline deadline = Deadline::in_ms(options_.heartbeat_timeout_ms);
  const std::uint64_t t0 = telemetry::monotonic_ns();
  IoResult io = write_full(peer.fd, frame.data(), frame.size(), deadline);
  if (!io.ok()) return watchdog(machine, "ping write");
  frames_sent().add();
  bytes_sent().add(frame.size());
  RecvOutcome reply = recv_frame(peer.fd, deadline);
  if (!reply.ok()) {
    if (reply.kind == PeerFailureKind::kTornFrame) {
      // Fully read, framing intact, CRC bad: the peer is alive and the
      // stream is in sync — report without invoking the watchdog.
      telemetry::counter("transport.ipc.torn_frames").add();
      return PeerFailure{machine, PeerFailureKind::kTornFrame, reply.detail};
    }
    return watchdog(machine, "ping: " + reply.detail);
  }
  frames_received().add();
  bytes_received().add(kHeaderSize + reply.frame->payload.size());
  if (reply.frame->header.type != FrameType::kPong ||
      reply.frame->header.seq != peer.seq) {
    return watchdog(machine, "ping reply was not the matching kPong");
  }
  telemetry::histogram("transport.ipc.rtt.ns")
      .record(telemetry::monotonic_ns() - t0);
  return std::nullopt;
}

std::optional<PeerFailure> IpcSupervisor::oracle_roundtrip(
    std::size_t machine, bool adjoint, StateVector& state, RegisterId elem,
    RegisterId count) {
  Peer& peer = peers_[machine];
  if (!peer.alive)
    return PeerFailure{machine, PeerFailureKind::kExited, "peer is down"};
  QS_REQUIRE(!state.is_sparse(),
             "ipc transport requires the dense state backend");

  OraclePayload oracle;
  oracle.adjoint = adjoint ? 1 : 0;
  oracle.elem_reg = static_cast<std::uint32_t>(elem.value);
  oracle.count_reg = static_cast<std::uint32_t>(count.value);
  const RegisterLayout& layout = state.layout();
  for (std::size_t r = 0; r < layout.num_registers(); ++r) {
    oracle.dims.push_back(layout.dim(RegisterId{r}));
  }
  const auto amps = state.amplitudes();
  oracle.amplitudes.assign(amps.begin(), amps.end());

  const auto payload = encode_oracle(oracle);
  const auto frame = encode_frame(FrameType::kOracle,
                                  static_cast<std::uint32_t>(machine),
                                  ++peer.seq, payload);
  const Deadline deadline = Deadline::in_ms(options_.reply_timeout_ms);
  const std::uint64_t t0 = telemetry::monotonic_ns();
  IoResult io = write_full(peer.fd, frame.data(), frame.size(), deadline);
  if (!io.ok()) return watchdog(machine, "oracle write");
  frames_sent().add();
  bytes_sent().add(frame.size());

  RecvOutcome reply = recv_frame(peer.fd, deadline);
  if (!reply.ok()) {
    if (reply.kind == PeerFailureKind::kTornFrame) {
      // The frame was fully read and only failed its CRC: the stream is
      // still in sync and the peer is alive. Report without tearing down.
      telemetry::counter("transport.ipc.torn_frames").add();
      return PeerFailure{machine, PeerFailureKind::kTornFrame, reply.detail};
    }
    return watchdog(machine, "oracle: " + reply.detail);
  }
  frames_received().add();
  bytes_received().add(kHeaderSize + reply.frame->payload.size());
  if (reply.frame->header.type == FrameType::kError) {
    ErrorPayload error;
    decode_error(reply.frame->payload, error);
    return PeerFailure{machine, PeerFailureKind::kWireError,
                       "worker error: " + error.message};
  }
  if (reply.frame->header.type != FrameType::kOracleReply ||
      reply.frame->header.seq != peer.seq) {
    return watchdog(machine, "oracle reply had the wrong type or seq");
  }
  std::vector<cplx> permuted;
  if (auto err = decode_amplitudes(reply.frame->payload, permuted)) {
    return PeerFailure{machine, PeerFailureKind::kWireError, err->to_string()};
  }
  if (permuted.size() != amps.size()) {
    return PeerFailure{machine, PeerFailureKind::kWireError,
                       "oracle reply amplitude count mismatch"};
  }
  state.set_amplitudes(std::move(permuted));
  telemetry::histogram("transport.ipc.rtt.ns")
      .record(telemetry::monotonic_ns() - t0);
  return std::nullopt;
}

std::optional<PeerFailure> IpcSupervisor::arm_fault(std::size_t machine,
                                                    ArmedFaultMode mode) {
  Peer& peer = peers_[machine];
  if (!peer.alive)
    return PeerFailure{machine, PeerFailureKind::kExited, "peer is down"};
  const std::uint8_t payload[1] = {static_cast<std::uint8_t>(mode)};
  const auto frame = encode_frame(FrameType::kArmFault,
                                  static_cast<std::uint32_t>(machine),
                                  ++peer.seq, payload);
  const Deadline deadline = Deadline::in_ms(options_.reply_timeout_ms);
  IoResult io = write_full(peer.fd, frame.data(), frame.size(), deadline);
  if (!io.ok()) return watchdog(machine, "arm-fault write");
  frames_sent().add();
  bytes_sent().add(frame.size());
  RecvOutcome reply = recv_frame(peer.fd, deadline);
  if (!reply.ok()) return watchdog(machine, "arm-fault: " + reply.detail);
  frames_received().add();
  if (reply.frame->header.type != FrameType::kArmFaultAck ||
      reply.frame->header.seq != peer.seq) {
    return watchdog(machine, "arm-fault reply was not the matching ack");
  }
  return std::nullopt;
}

std::optional<PeerFailure> IpcSupervisor::update(std::size_t machine,
                                                 std::uint64_t element,
                                                 std::int64_t delta) {
  Peer& peer = peers_[machine];
  if (!peer.alive)
    return PeerFailure{machine, PeerFailureKind::kExited, "peer is down"};
  const auto payload = encode_update({element, delta});
  const auto frame = encode_frame(FrameType::kUpdate,
                                  static_cast<std::uint32_t>(machine),
                                  ++peer.seq, payload);
  const Deadline deadline = Deadline::in_ms(options_.reply_timeout_ms);
  IoResult io = write_full(peer.fd, frame.data(), frame.size(), deadline);
  if (!io.ok()) return watchdog(machine, "update write");
  frames_sent().add();
  bytes_sent().add(frame.size());
  RecvOutcome reply = recv_frame(peer.fd, deadline);
  if (!reply.ok()) return watchdog(machine, "update: " + reply.detail);
  frames_received().add();
  if (reply.frame->header.type == FrameType::kError) {
    ErrorPayload error;
    decode_error(reply.frame->payload, error);
    return PeerFailure{machine, PeerFailureKind::kWireError,
                       "worker error: " + error.message};
  }
  if (reply.frame->header.type != FrameType::kUpdateAck ||
      reply.frame->header.seq != peer.seq) {
    return watchdog(machine, "update reply was not the matching ack");
  }
  return std::nullopt;
}

void IpcSupervisor::kill_peer(std::size_t machine) {
  const Peer& peer = peers_[machine];
  if (peer.pid > 0) ::kill(peer.pid, SIGKILL);
}

void IpcSupervisor::stop_peer(std::size_t machine) {
  const Peer& peer = peers_[machine];
  if (peer.pid > 0) ::kill(peer.pid, SIGSTOP);
}

std::optional<PeerFailure> IpcSupervisor::respawn(std::size_t machine) {
  Peer& peer = peers_[machine];
  if (peer.alive) {
    // A caller may respawn a peer it only suspects is dead (e.g. SIGKILLed
    // out-of-band but not yet probed). Run the watchdog first so the old
    // process is definitely gone and reaped.
    watchdog(machine, "respawn of a live peer");
  } else if (peer.pid > 0) {
    waitpid_retry(peer.pid, nullptr, 0);
    peer.pid = -1;
    telemetry::gauge("transport.ipc.workers").add(-1);
  }
  if (respawn_count_ >= options_.max_respawns) {
    return PeerFailure{machine, PeerFailureKind::kSpawnFailed,
                       "respawn budget exhausted"};
  }
  ++respawn_count_;
  telemetry::counter("transport.ipc.respawns").add();
  return spawn(machine);
}

void IpcSupervisor::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Phase 1: polite drain — kShutdown to every live peer; workers ack and
  // exit 0.
  for (std::size_t j = 0; j < peers_.size(); ++j) {
    Peer& peer = peers_[j];
    if (!peer.alive) continue;
    const auto frame = encode_frame(FrameType::kShutdown,
                                    static_cast<std::uint32_t>(j), ++peer.seq,
                                    {});
    const Deadline deadline = Deadline::in_ms(options_.shutdown_timeout_ms);
    if (write_full(peer.fd, frame.data(), frame.size(), deadline).ok()) {
      frames_sent().add();
      recv_frame(peer.fd, deadline);  // best-effort ack; exit is the signal
    }
    close_peer(peer);
  }
  // Phase 2: reap with escalation. SIGTERM first (covers a worker wedged in
  // user code), SIGKILL as the backstop (covers SIGSTOP'd chaos victims —
  // SIGKILL acts even on a stopped process).
  for (Peer& peer : peers_) {
    if (peer.pid <= 0) continue;
    int status = 0;
    pid_t reaped = waitpid_deadline(
        peer.pid, &status, Deadline::in_ms(options_.shutdown_timeout_ms));
    if (reaped == 0) {
      ::kill(peer.pid, SIGTERM);
      reaped = waitpid_deadline(peer.pid, &status, Deadline::in_ms(200));
    }
    if (reaped == 0) {
      ::kill(peer.pid, SIGKILL);
      waitpid_retry(peer.pid, &status, 0);
    }
    peer.pid = -1;
    telemetry::gauge("transport.ipc.workers").add(-1);
  }
}

std::size_t IpcSupervisor::zombies() {
  std::size_t count = 0;
  for (Peer& peer : peers_) {
    if (peer.pid <= 0) continue;
    int status = 0;
    const pid_t reaped = waitpid_retry(peer.pid, &status, WNOHANG);
    if (reaped == peer.pid) {
      // It was sitting dead and unreaped: a zombie until this probe.
      ++count;
      peer.pid = -1;
      peer.alive = false;
      telemetry::gauge("transport.ipc.workers").add(-1);
    }
  }
  return count;
}

}  // namespace qs::ipc
