// The per-machine worker process entry point.
//
// The supervisor forks one worker per Machine (no exec — the child keeps the
// parent's text segment and runs this loop on its end of a socketpair). The
// worker is deliberately primitive: single-threaded, no OpenMP, no shared
// state with the coordinator, owning only its machine's multiplicity vector
// (delivered by kHello) and applying the oracle permutation to whatever
// amplitudes arrive in a kOracle frame. All failure handling lives on the
// coordinator side; the worker's job is to be trivially correct and
// trivially killable — the chaos harness SIGKILLs and SIGSTOPs it
// mid-schedule and the supervisor must recover.
#pragma once

#include <cstdint>

namespace qs::ipc {

/// Run the worker protocol loop on `fd` (the child's end of the socketpair)
/// as machine `machine`. Returns the process exit code: 0 after a graceful
/// kShutdown or peer EOF, nonzero on an unrecoverable local error. Never
/// throws; the caller passes the result straight to _exit so no atexit
/// handlers or stream flushes race the parent.
int ipc_worker_main(int fd, std::uint32_t machine) noexcept;

}  // namespace qs::ipc
