// Coordinator-side supervisor for the per-machine worker processes.
//
// One worker per Machine, forked over a Unix-domain socketpair and speaking
// dqs-wire-v1 (wire.hpp). The supervisor owns every process-level concern so
// the layers above it stay transport-agnostic:
//
//   * spawn + handshake (kHello with the machine's live counts, from the
//     database at spawn time — a respawned worker rebuilds current state);
//   * framed round-trips with per-peer deadlines and sequence echo checks;
//   * the watchdog: a missed deadline triggers waitpid(WNOHANG) to decide
//     "dead" (reap, classify by exit/signal) vs "hung" (SIGSTOP'd or wedged
//     — SIGKILL, reap, classify kHung);
//   * respawn of crashed peers and a graceful shutdown drain
//     (kShutdown/ack → SIGTERM → SIGKILL) that reaps every child.
//
// The supervisor reports failures as PeerFailure values — it does NOT decide
// retry policy. The faults layer maps PeerFailureKind into the existing
// fault taxonomy (classify_peer_failure in faults/ipc_chaos.hpp) so
// RetryPolicy / CircuitBreaker / plan_recovery operate unchanged over real
// process crashes. Telemetry: transport.ipc.* counters and the
// transport.ipc.rtt.ns histogram.
//
// Thread-safety: NONE — callers serialize access (the serving layer already
// serializes builds through its prep_in_flight_ gate).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "distdb/distributed_database.hpp"
#include "distdb/ipc/wire.hpp"
#include "qsim/state_vector.hpp"

namespace qs::ipc {

struct IpcOptions {
  std::uint64_t handshake_timeout_ms = 2000;  ///< spawn → kHelloAck
  std::uint64_t reply_timeout_ms = 5000;      ///< oracle/update round-trip
  std::uint64_t heartbeat_timeout_ms = 1000;  ///< kPing → kPong
  std::uint64_t shutdown_timeout_ms = 2000;   ///< drain before SIGTERM/KILL
  std::size_t max_respawns = 16;  ///< lifetime cap across all machines
  /// When non-empty, each worker's stderr is redirected to
  /// `<dir>/worker_<machine>.log` (CI uploads these as artifacts).
  std::string worker_stderr_dir;
  /// Test hook: SIGKILL each child between fork and kHello, exercising the
  /// dies-before-handshake path. Clear it to let a respawn succeed.
  bool kill_before_handshake = false;
};

/// What went wrong with one peer, as observed at the process/wire level.
enum class PeerFailureKind : std::uint8_t {
  kExited = 0,      ///< worker exited (EOF / reaped with WIFEXITED)
  kKilled = 1,      ///< worker terminated by a signal (SIGKILL chaos)
  kHung = 2,        ///< deadline missed while the process was still alive
  kTornFrame = 3,   ///< frame failed its CRC; stream intact, peer alive
  kWireError = 4,   ///< malformed frame / protocol violation / kError reply
  kSpawnFailed = 5, ///< fork/socketpair/handshake never completed
};

const char* to_string(PeerFailureKind kind);

struct PeerFailure {
  std::size_t machine = 0;
  PeerFailureKind kind = PeerFailureKind::kExited;
  std::string detail;

  std::string to_string() const;
};

class IpcSupervisor {
 public:
  /// Does not own `db`; it must outlive the supervisor. Workers are NOT
  /// spawned until start().
  explicit IpcSupervisor(const DistributedDatabase& db, IpcOptions options = {});
  ~IpcSupervisor();

  IpcSupervisor(const IpcSupervisor&) = delete;
  IpcSupervisor& operator=(const IpcSupervisor&) = delete;

  std::size_t num_machines() const noexcept;
  const IpcOptions& options() const noexcept { return options_; }
  IpcOptions& options() noexcept { return options_; }

  /// Spawn and handshake every worker. Returns the first failure, if any
  /// (remaining workers are still spawned; the failed one can be respawned).
  std::optional<PeerFailure> start();
  bool started() const noexcept { return started_; }

  /// True when the worker process is running and its socket is open.
  bool peer_alive(std::size_t machine) const;

  /// Liveness probe (kPing/kPong) under the heartbeat deadline. A miss runs
  /// the watchdog: dead peers are reaped and classified, hung peers are
  /// SIGKILLed then reaped.
  std::optional<PeerFailure> ping(std::size_t machine);

  /// One oracle application on the worker: ships the dense amplitudes,
  /// receives the permuted ones, writes them back into `state`. On failure
  /// `state` is left untouched (no partial mutation).
  std::optional<PeerFailure> oracle_roundtrip(std::size_t machine,
                                              bool adjoint, StateVector& state,
                                              RegisterId elem,
                                              RegisterId count);

  /// Arm the worker's next oracle reply with a chaos fault (wire.hpp).
  std::optional<PeerFailure> arm_fault(std::size_t machine,
                                       ArmedFaultMode mode);

  /// Propagate a dynamic update (±1 multiplicity) to the worker.
  std::optional<PeerFailure> update(std::size_t machine, std::uint64_t element,
                                    std::int64_t delta);

  /// Chaos controls: really signal the child.
  void kill_peer(std::size_t machine);  ///< SIGKILL
  void stop_peer(std::size_t machine);  ///< SIGSTOP (watchdog must detect)

  /// Reap (if needed) and re-fork a dead peer, replaying the handshake with
  /// the database's CURRENT counts. Fails once max_respawns is exhausted.
  std::optional<PeerFailure> respawn(std::size_t machine);
  std::size_t respawns() const noexcept { return respawn_count_; }

  /// Graceful drain: kShutdown to every live peer, wait for acks/exits, then
  /// escalate SIGTERM → SIGKILL, and reap every child. Idempotent.
  void shutdown();

  /// Number of our children that are dead but unreaped (reaps them as a side
  /// effect of probing). Must be 0 after shutdown() — asserted by tests.
  std::size_t zombies();

 private:
  struct Peer {
    pid_t pid = -1;
    int fd = -1;
    std::uint64_t seq = 0;
    bool alive = false;
  };

  std::optional<PeerFailure> spawn(std::size_t machine);
  std::optional<PeerFailure> handshake(std::size_t machine);
  /// Deadline missed or stream broke: decide dead vs hung, reap, classify.
  PeerFailure watchdog(std::size_t machine, const std::string& context);
  void close_peer(Peer& peer);

  const DistributedDatabase& db_;
  IpcOptions options_;
  std::vector<Peer> peers_;
  bool started_ = false;
  bool shut_down_ = false;
  std::size_t respawn_count_ = 0;
};

}  // namespace qs::ipc
