// OracleChannel over the IpcSupervisor: the production ipc transport.
//
// Each oracle application becomes one framed round-trip to the machine's
// worker process. The channel adds a small bounded self-repair loop on top
// of the supervisor — a torn frame is simply retried (the stream stays in
// sync), a dead or hung worker is respawned and retried — so transient
// process failures during a fault-free replay never surface to the sampler.
// When the budget is exhausted the channel throws ContractViolation, which
// the serving ladder catches to degrade ipc → in-process → classical.
//
// The chaos harness (faults/ipc_chaos.hpp) does NOT rely on this loop: it
// drives the supervisor directly during fault injection and only uses the
// channel for the recovered-schedule replay.
#pragma once

#include <cstddef>
#include <cstdint>

#include "distdb/ipc/channel.hpp"
#include "distdb/ipc/supervisor.hpp"

namespace qs::ipc {

struct IpcChannelStats {
  std::uint64_t sequential_calls = 0;
  std::uint64_t total_shift_calls = 0;
  std::uint64_t retries = 0;   ///< round-trips repeated after a PeerFailure
  std::uint64_t respawns = 0;  ///< workers re-forked by the repair loop
};

class IpcOracleChannel final : public OracleChannel {
 public:
  /// Does not own the supervisor; it must outlive the channel and be
  /// started. `max_attempts` bounds round-trip tries per oracle call.
  explicit IpcOracleChannel(IpcSupervisor& supervisor,
                            std::size_t max_attempts = 3);

  void apply_sequential(std::size_t machine, bool adjoint, StateVector& state,
                        RegisterId elem, RegisterId count) override;

  void apply_total_shift(bool adjoint, StateVector& state, RegisterId elem,
                         RegisterId count) override;

  const IpcChannelStats& stats() const noexcept { return stats_; }

 private:
  void roundtrip_with_repair(std::size_t machine, bool adjoint,
                             StateVector& state, RegisterId elem,
                             RegisterId count);

  IpcSupervisor& supervisor_;
  std::size_t max_attempts_;
  IpcChannelStats stats_;
};

}  // namespace qs::ipc
