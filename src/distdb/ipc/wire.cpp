#include "distdb/ipc/wire.hpp"

#include <array>

#include "distdb/serialize.hpp"

namespace qs::ipc {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello-ack";
    case FrameType::kOracle: return "oracle";
    case FrameType::kOracleReply: return "oracle-reply";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kArmFault: return "arm-fault";
    case FrameType::kArmFaultAck: return "arm-fault-ack";
    case FrameType::kUpdate: return "update";
    case FrameType::kUpdateAck: return "update-ack";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kShutdownAck: return "shutdown-ack";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

bool is_known_frame_type(std::uint16_t raw) {
  return raw >= static_cast<std::uint16_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint16_t>(FrameType::kError);
}

std::string WireError::to_string() const {
  return "wire offset " + std::to_string(offset) + ", field '" + field +
         "': " + reason;
}

namespace {

/// CRC-32 lookup table for the reflected polynomial 0xEDB88320, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::optional<WireError> wire_error(std::size_t offset, const char* field,
                                    std::string reason) {
  return WireError{offset, field, std::move(reason)};
}

/// Serialize the header with `checksum` as given (0 while computing).
void put_header(ByteWriter& w, const FrameHeader& h) {
  w.u32(h.magic);
  w.u16(h.version);
  w.u16(static_cast<std::uint16_t>(h.type));
  w.u32(h.machine);
  w.u32(h.payload_len);
  w.u64(h.seq);
  w.u32(h.checksum);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint32_t machine,
                                       std::uint64_t seq,
                                       std::span<const std::uint8_t> payload) {
  FrameHeader h;
  h.type = type;
  h.machine = machine;
  h.seq = seq;
  h.payload_len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size());
  ByteWriter w(out);
  put_header(w, h);
  w.bytes(payload);
  // CRC over header-with-zero-checksum plus payload, then patch it in.
  const std::uint32_t crc_head =
      crc32(std::span(out.data(), kHeaderSize - sizeof(std::uint32_t)));
  const std::uint32_t crc = crc32(payload, crc_head);
  std::memcpy(out.data() + kHeaderSize - sizeof(std::uint32_t), &crc,
              sizeof crc);
  return out;
}

std::optional<WireError> parse_header_checked(
    std::span<const std::uint8_t> buffer, FrameHeader& out) {
  ByteReader r(buffer);
  FrameHeader h;
  if (!r.u32(h.magic)) {
    return wire_error(r.offset(), "magic",
                      "frame truncated before the 4-byte magic (" +
                          std::to_string(buffer.size()) + " bytes)");
  }
  if (h.magic != kWireMagic) {
    return wire_error(0, "magic", "bad magic (not a dqs-wire-v1 frame)");
  }
  if (!r.u16(h.version)) {
    return wire_error(r.offset(), "version", "frame truncated in the header");
  }
  if (h.version != kWireVersion) {
    return wire_error(4, "version",
                      "unsupported wire version " + std::to_string(h.version) +
                          " (this build speaks " +
                          std::to_string(kWireVersion) + ")");
  }
  std::uint16_t raw_type = 0;
  if (!r.u16(raw_type)) {
    return wire_error(r.offset(), "type", "frame truncated in the header");
  }
  if (!is_known_frame_type(raw_type)) {
    return wire_error(6, "type",
                      "unknown frame type " + std::to_string(raw_type));
  }
  h.type = static_cast<FrameType>(raw_type);
  if (!r.u32(h.machine) || !r.u32(h.payload_len) || !r.u64(h.seq) ||
      !r.u32(h.checksum)) {
    return wire_error(r.offset(), "header", "frame truncated in the header");
  }
  if (h.payload_len > kMaxPayload) {
    return wire_error(12, "payload_len",
                      "payload length " + std::to_string(h.payload_len) +
                          " exceeds the " + std::to_string(kMaxPayload) +
                          "-byte cap");
  }
  out = h;
  return std::nullopt;
}

FrameParseResult parse_frame_checked(std::span<const std::uint8_t> buffer) {
  FrameParseResult result;
  FrameHeader h;
  if (auto err = parse_header_checked(buffer, h)) {
    result.error = std::move(err);
    return result;
  }
  if (buffer.size() < kHeaderSize + h.payload_len) {
    result.error = wire_error(
        buffer.size(), "payload",
        "frame truncated: header promises " + std::to_string(h.payload_len) +
            " payload bytes, buffer holds " +
            std::to_string(buffer.size() - kHeaderSize));
    return result;
  }
  if (buffer.size() > kHeaderSize + h.payload_len) {
    result.error = wire_error(
        kHeaderSize + h.payload_len, "payload",
        std::to_string(buffer.size() - kHeaderSize - h.payload_len) +
            " trailing bytes after the framed payload");
    return result;
  }
  const auto payload = buffer.subspan(kHeaderSize, h.payload_len);
  const std::uint32_t crc_head =
      crc32(buffer.first(kHeaderSize - sizeof(std::uint32_t)));
  const std::uint32_t expect = crc32(payload, crc_head);
  if (expect != h.checksum) {
    result.error =
        wire_error(kHeaderSize - sizeof(std::uint32_t), "checksum",
                   "checksum mismatch (torn or corrupted frame)");
    return result;
  }
  Frame frame;
  frame.header = h;
  frame.payload.assign(payload.begin(), payload.end());
  result.frame = std::move(frame);
  return result;
}

// --- typed payloads ---------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u64(hello.universe);
  w.u64(hello.counts.size());
  for (const auto& [elem, count] : hello.counts) {
    w.u64(elem);
    w.u64(count);
  }
  return out;
}

std::optional<WireError> decode_hello(std::span<const std::uint8_t> payload,
                                      HelloPayload& out) {
  ByteReader r(payload);
  HelloPayload h;
  if (!r.u64(h.universe)) {
    return wire_error(r.offset(), "universe", "hello payload truncated");
  }
  std::uint64_t entries = 0;
  if (!r.u64(entries)) {
    return wire_error(r.offset(), "counts", "hello payload truncated");
  }
  if (entries > h.universe) {
    return wire_error(r.offset(), "counts",
                      std::to_string(entries) +
                          " sparse count entries for a universe of " +
                          std::to_string(h.universe));
  }
  h.counts.reserve(static_cast<std::size_t>(entries));
  for (std::uint64_t k = 0; k < entries; ++k) {
    std::uint64_t elem = 0;
    std::uint64_t count = 0;
    if (!r.u64(elem) || !r.u64(count)) {
      return wire_error(r.offset(), "counts", "hello payload truncated");
    }
    if (elem >= h.universe) {
      return wire_error(r.offset() - 16, "counts",
                        "element " + std::to_string(elem) +
                            " outside the universe of " +
                            std::to_string(h.universe));
    }
    h.counts.emplace_back(elem, count);
  }
  if (r.remaining() != 0) {
    return wire_error(r.offset(), "counts", "trailing bytes in hello payload");
  }
  out = std::move(h);
  return std::nullopt;
}

std::vector<std::uint8_t> encode_oracle(const OraclePayload& oracle) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(oracle.adjoint);
  w.u32(oracle.elem_reg);
  w.u32(oracle.count_reg);
  w.u32(static_cast<std::uint32_t>(oracle.dims.size()));
  for (const std::uint64_t d : oracle.dims) w.u64(d);
  w.u64(oracle.amplitudes.size());
  for (const cplx& a : oracle.amplitudes) {
    w.f64(a.real());
    w.f64(a.imag());
  }
  return out;
}

std::optional<WireError> decode_oracle(std::span<const std::uint8_t> payload,
                                       OraclePayload& out) {
  ByteReader r(payload);
  OraclePayload o;
  std::uint32_t num_regs = 0;
  if (!r.u8(o.adjoint) || !r.u32(o.elem_reg) || !r.u32(o.count_reg) ||
      !r.u32(num_regs)) {
    return wire_error(r.offset(), "oracle", "oracle payload truncated");
  }
  if (o.adjoint > 1) {
    return wire_error(0, "adjoint", "adjoint flag must be 0 or 1");
  }
  if (num_regs == 0 || num_regs > 64) {
    return wire_error(9, "dims",
                      "implausible register count " +
                          std::to_string(num_regs));
  }
  if (o.elem_reg >= num_regs || o.count_reg >= num_regs ||
      o.elem_reg == o.count_reg) {
    return wire_error(1, "registers",
                      "elem/count register indices out of range or equal");
  }
  o.dims.resize(num_regs);
  std::uint64_t total = 1;
  for (std::uint32_t k = 0; k < num_regs; ++k) {
    if (!r.u64(o.dims[k])) {
      return wire_error(r.offset(), "dims", "oracle payload truncated");
    }
    if (o.dims[k] == 0) {
      return wire_error(r.offset() - 8, "dims", "register dimension 0");
    }
    if (total > kMaxPayload / o.dims[k]) {
      return wire_error(r.offset() - 8, "dims",
                        "register dimensions overflow the payload cap");
    }
    total *= o.dims[k];
  }
  std::uint64_t amps = 0;
  if (!r.u64(amps)) {
    return wire_error(r.offset(), "amplitudes", "oracle payload truncated");
  }
  if (amps != total) {
    return wire_error(r.offset() - 8, "amplitudes",
                      std::to_string(amps) + " amplitudes for a layout of " +
                          std::to_string(total) + " basis states");
  }
  if (r.remaining() != amps * 2 * sizeof(double)) {
    return wire_error(r.offset(), "amplitudes",
                      "amplitude block is " + std::to_string(r.remaining()) +
                          " bytes, expected " +
                          std::to_string(amps * 2 * sizeof(double)));
  }
  o.amplitudes.resize(static_cast<std::size_t>(amps));
  for (auto& a : o.amplitudes) {
    double re = 0.0;
    double im = 0.0;
    if (!r.f64(re) || !r.f64(im)) {
      return wire_error(r.offset(), "amplitudes", "oracle payload truncated");
    }
    a = cplx{re, im};
  }
  out = std::move(o);
  return std::nullopt;
}

std::vector<std::uint8_t> encode_amplitudes(std::span<const cplx> amplitudes) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u64(amplitudes.size());
  for (const cplx& a : amplitudes) {
    w.f64(a.real());
    w.f64(a.imag());
  }
  return out;
}

std::optional<WireError> decode_amplitudes(
    std::span<const std::uint8_t> payload, std::vector<cplx>& out) {
  ByteReader r(payload);
  std::uint64_t amps = 0;
  if (!r.u64(amps)) {
    return wire_error(r.offset(), "amplitudes", "reply payload truncated");
  }
  if (r.remaining() != amps * 2 * sizeof(double)) {
    return wire_error(r.offset(), "amplitudes",
                      "amplitude block is " + std::to_string(r.remaining()) +
                          " bytes, expected " +
                          std::to_string(amps * 2 * sizeof(double)));
  }
  std::vector<cplx> result(static_cast<std::size_t>(amps));
  for (auto& a : result) {
    double re = 0.0;
    double im = 0.0;
    if (!r.f64(re) || !r.f64(im)) {
      return wire_error(r.offset(), "amplitudes", "reply payload truncated");
    }
    a = cplx{re, im};
  }
  out = std::move(result);
  return std::nullopt;
}

std::vector<std::uint8_t> encode_update(const UpdatePayload& update) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u64(update.element);
  w.u64(static_cast<std::uint64_t>(update.delta));
  return out;
}

std::optional<WireError> decode_update(std::span<const std::uint8_t> payload,
                                       UpdatePayload& out) {
  ByteReader r(payload);
  UpdatePayload u;
  std::uint64_t raw_delta = 0;
  if (!r.u64(u.element) || !r.u64(raw_delta)) {
    return wire_error(r.offset(), "update", "update payload truncated");
  }
  if (r.remaining() != 0) {
    return wire_error(r.offset(), "update", "trailing bytes in update payload");
  }
  u.delta = static_cast<std::int64_t>(raw_delta);
  out = u;
  return std::nullopt;
}

std::vector<std::uint8_t> encode_error(const ErrorPayload& error) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u32(error.code);
  // memcpy rather than insert: GCC 12's -Warray-bounds false-positives on
  // vector::insert ranges that follow a 4-byte resize.
  const std::size_t at = out.size();
  out.resize(at + error.message.size());
  if (!error.message.empty()) {
    std::memcpy(out.data() + at, error.message.data(), error.message.size());
  }
  return out;
}

std::optional<WireError> decode_error(std::span<const std::uint8_t> payload,
                                      ErrorPayload& out) {
  ByteReader r(payload);
  ErrorPayload e;
  if (!r.u32(e.code)) {
    return wire_error(r.offset(), "error", "error payload truncated");
  }
  e.message.assign(reinterpret_cast<const char*>(payload.data()) + r.offset(),
                   r.remaining());
  out = std::move(e);
  return std::nullopt;
}

}  // namespace qs::ipc
