#include "distdb/ipc/io.hpp"

#include <cerrno>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "telemetry/trace.hpp"

namespace qs::ipc {

Deadline Deadline::in_ms(std::uint64_t ms) noexcept {
  Deadline d;
  d.at_ns = telemetry::monotonic_ns() + ms * 1'000'000ull;
  if (d.at_ns == 0) d.at_ns = 1;  // keep "0 == unbounded" unambiguous
  return d;
}

bool Deadline::expired() const noexcept {
  return at_ns != 0 && telemetry::monotonic_ns() >= at_ns;
}

int Deadline::remaining_ms() const noexcept {
  if (at_ns == 0) return -1;
  const std::uint64_t now = telemetry::monotonic_ns();
  if (now >= at_ns) return 0;
  const std::uint64_t ns = at_ns - now;
  // Round up so a sub-millisecond remainder polls once instead of spinning.
  const std::uint64_t ms = (ns + 999'999ull) / 1'000'000ull;
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kEof: return "eof";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

namespace {

// Wait until `fd` has `events` pending (POLLIN/POLLOUT) within the deadline.
IoResult wait_for(int fd, short events, const Deadline& deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int budget = deadline.remaining_ms();
    if (budget == 0) return {IoStatus::kTimeout, 0, 0};
    const int rc = ::poll(&pfd, 1, budget);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return {IoStatus::kError, errno, 0};
    }
    if (rc == 0) {
      if (deadline.expired()) return {IoStatus::kTimeout, 0, 0};
      continue;
    }
    // POLLHUP/POLLERR fall through to the read/write, which reports the
    // definitive EOF or errno.
    return {IoStatus::kOk, 0, 0};
  }
}

}  // namespace

IoResult read_full(int fd, void* buf, std::size_t n, const Deadline& deadline) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    IoResult ready = wait_for(fd, POLLIN, deadline);
    if (!ready.ok()) {
      ready.transferred = done;
      return ready;
    }
    const ssize_t rc = ::read(fd, p + done, n - done);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return {IoStatus::kError, errno, done};
    }
    if (rc == 0) return {IoStatus::kEof, 0, done};
    done += static_cast<std::size_t>(rc);
  }
  return {IoStatus::kOk, 0, done};
}

IoResult write_full(int fd, const void* buf, std::size_t n,
                    const Deadline& deadline) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    IoResult ready = wait_for(fd, POLLOUT, deadline);
    if (!ready.ok()) {
      ready.transferred = done;
      return ready;
    }
    // MSG_NOSIGNAL: a peer that died mid-write yields EPIPE here instead of
    // delivering SIGPIPE to the whole coordinator.
    const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        return {IoStatus::kEof, errno, done};
      return {IoStatus::kError, errno, done};
    }
    done += static_cast<std::size_t>(rc);
  }
  return {IoStatus::kOk, 0, done};
}

IoResult wait_readable(int fd, const Deadline& deadline) {
  return wait_for(fd, POLLIN, deadline);
}

pid_t waitpid_retry(pid_t pid, int* status, int flags) noexcept {
  for (;;) {
    const pid_t rc = ::waitpid(pid, status, flags);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

pid_t waitpid_deadline(pid_t pid, int* status, const Deadline& deadline) {
  for (;;) {
    const pid_t rc = waitpid_retry(pid, status, WNOHANG);
    if (rc != 0) return rc;  // reaped, or an error such as ECHILD
    if (deadline.expired()) return 0;
    // Short sleep between WNOHANG probes; SIGKILL ahead of the drain
    // guarantees the child exits, so this converges quickly.
    pollfd none{};
    none.fd = -1;
    const int budget = deadline.remaining_ms();
    ::poll(&none, 1, budget < 0 || budget > 2 ? 2 : budget);
  }
}

}  // namespace qs::ipc
