#include "distdb/ipc/ipc_channel.hpp"

#include "common/require.hpp"
#include "telemetry/metrics.hpp"

namespace qs::ipc {

IpcOracleChannel::IpcOracleChannel(IpcSupervisor& supervisor,
                                   std::size_t max_attempts)
    : supervisor_(supervisor), max_attempts_(max_attempts) {
  QS_REQUIRE(max_attempts_ >= 1, "ipc channel needs at least one attempt");
}

void IpcOracleChannel::roundtrip_with_repair(std::size_t machine, bool adjoint,
                                             StateVector& state,
                                             RegisterId elem,
                                             RegisterId count) {
  std::optional<PeerFailure> failure;
  for (std::size_t attempt = 0; attempt < max_attempts_; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (!supervisor_.peer_alive(machine)) {
      if (auto spawn_failure = supervisor_.respawn(machine)) {
        failure = std::move(spawn_failure);
        continue;
      }
      ++stats_.respawns;
    }
    failure = supervisor_.oracle_roundtrip(machine, adjoint, state, elem,
                                           count);
    if (!failure) return;
    // A torn frame leaves the peer alive and the stream synced: loop and
    // retry directly. Every other kind left the peer reaped; the next
    // iteration respawns it.
  }
  QS_REQUIRE(false, "ipc transport failed for machine " +
                        std::to_string(machine) + " after " +
                        std::to_string(max_attempts_) + " attempts: " +
                        (failure ? failure->to_string() : "unknown"));
}

void IpcOracleChannel::apply_sequential(std::size_t machine, bool adjoint,
                                        StateVector& state, RegisterId elem,
                                        RegisterId count) {
  ++stats_.sequential_calls;
  roundtrip_with_repair(machine, adjoint, state, elem, count);
}

void IpcOracleChannel::apply_total_shift(bool adjoint, StateVector& state,
                                         RegisterId elem, RegisterId count) {
  // Lemma 4.4: the parallel round's net counter shift is Σ_j c_ij mod (ν+1).
  // n exact per-machine modular adds compose to exactly that joint shift, so
  // threading the state through every worker once is bit-identical to the
  // coordinator's cached joint-count table.
  ++stats_.total_shift_calls;
  for (std::size_t j = 0; j < supervisor_.num_machines(); ++j) {
    roundtrip_with_repair(j, adjoint, state, elem, count);
  }
}

}  // namespace qs::ipc
