// dqs-wire-v1: the framed binary protocol between the coordinator and the
// per-machine worker processes (docs/DISTRIBUTION.md).
//
// Every message is one length-prefixed frame — a fixed 28-byte header
// followed by a typed payload — moved over a Unix-domain stream socket:
//
//   offset  size  field
//        0     4  magic        0x44515357 ("DQSW" read big-endian)
//        4     2  version      1
//        6     2  type         FrameType
//        8     4  machine      sender/target machine index
//       12     4  payload_len  bytes following the header (capped)
//       16     8  seq          per-connection sequence number; replies echo it
//       24     4  checksum     CRC-32 over header[0..24) ++ payload
//
// All integers are little-endian (pinned by a static_assert in
// distdb/serialize.cpp). The per-frame CRC covers the header fields AND the
// payload, so a torn or bit-flipped frame is detected before any of its
// content is acted on; parse_frame_checked() returns a structured
// WireError{offset, field, reason} on malformed input and NEVER throws or
// mutates receiver state — the malformed-wire corpus in
// tests/test_ipc_wire.cpp feeds it truncated/oversized/corrupt frames.
//
// The oracle payload moves raw IEEE-754 doubles: the oracle O_j is an exact
// permutation of the amplitude vector (Eq. 1), so shipping bytes and
// relabeling them worker-side is bit-identical to the in-process
// apply_oracle — the property the chaos grid asserts end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "qsim/linalg.hpp"

namespace qs::ipc {

inline constexpr std::uint32_t kWireMagic = 0x44515357;  // "DQSW"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 28;
/// Hard payload cap: a dense coordinator state of a few million amplitudes
/// (the qsim dense ceiling) at 16 bytes each, plus codec overhead.
inline constexpr std::uint32_t kMaxPayload = 256u << 20;

enum class FrameType : std::uint16_t {
  kHello = 1,        // coordinator → worker: universe + sparse counts
  kHelloAck = 2,     // worker → coordinator: echoes the dataset total
  kOracle = 3,       // coordinator → worker: apply O_j to these amplitudes
  kOracleReply = 4,  // worker → coordinator: the permuted amplitudes
  kPing = 5,         // heartbeat / liveness probe
  kPong = 6,
  kArmFault = 7,     // chaos harness: corrupt or tear the next reply
  kArmFaultAck = 8,
  kUpdate = 9,       // dynamic dataset update: element multiplicity ± 1
  kUpdateAck = 10,
  kShutdown = 11,    // graceful drain; worker acks then exits 0
  kShutdownAck = 12,
  kError = 13,       // worker → coordinator: typed refusal, connection lives
};

const char* to_string(FrameType type);
bool is_known_frame_type(std::uint16_t raw);

struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::kPing;
  std::uint32_t machine = 0;
  std::uint32_t payload_len = 0;
  std::uint64_t seq = 0;
  std::uint32_t checksum = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Where and why a frame failed to parse: byte offset into the buffer, the
/// header/payload field being decoded, and a human-readable reason —
/// the transcript-parser error shape (TranscriptParseError), binary flavour.
struct WireError {
  std::size_t offset = 0;
  std::string field;
  std::string reason;

  /// "wire offset 6, field 'type': <reason>"
  std::string to_string() const;

  friend bool operator==(const WireError&, const WireError&) = default;
};

struct FrameParseResult {
  std::optional<Frame> frame;       ///< engaged iff the frame is valid
  std::optional<WireError> error;

  bool ok() const noexcept { return frame.has_value(); }
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the per-frame checksum.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Encode one frame: header with computed checksum, then the payload.
std::vector<std::uint8_t> encode_frame(FrameType type, std::uint32_t machine,
                                       std::uint64_t seq,
                                       std::span<const std::uint8_t> payload);

/// Validate and decode ONLY the 28-byte header (magic, version, known type,
/// payload cap). The checksum is validated by parse_frame_checked once the
/// payload is present. Never throws.
std::optional<WireError> parse_header_checked(
    std::span<const std::uint8_t> buffer, FrameHeader& out);

/// Validate and decode one complete frame from `buffer` (which must hold
/// exactly header + payload). Returns either the frame or a structured
/// WireError; no partial state, no exceptions.
FrameParseResult parse_frame_checked(std::span<const std::uint8_t> buffer);

// --- typed payloads ---------------------------------------------------------

/// kHello: the worker's entire world — universe size and its machine's
/// sparse multiplicity vector (the dqsdb sparse-counts shape, binary).
struct HelloPayload {
  std::uint64_t universe = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;  // (elem, c)
};

/// kOracle: apply O_j (adjoint: O_j†) to these amplitudes. The register
/// layout travels with the request: dims in most-significant-first order
/// (qsim/register_layout.hpp) plus which registers are elem and count.
struct OraclePayload {
  std::uint8_t adjoint = 0;
  std::uint32_t elem_reg = 0;
  std::uint32_t count_reg = 0;
  std::vector<std::uint64_t> dims;
  std::vector<cplx> amplitudes;
};

/// kArmFault: chaos-harness instruction for the next data-bearing reply.
enum class ArmedFaultMode : std::uint8_t {
  kCorruptChecksum = 0,  ///< send a full reply whose CRC is wrong
  kTruncateAndDie = 1,   ///< write a partial frame, then _exit mid-write
};

struct UpdatePayload {
  std::uint64_t element = 0;
  std::int64_t delta = 0;  ///< +1 insert, -1 erase
};

struct ErrorPayload {
  std::uint32_t code = 0;
  std::string message;
};

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello);
std::optional<WireError> decode_hello(std::span<const std::uint8_t> payload,
                                      HelloPayload& out);

std::vector<std::uint8_t> encode_oracle(const OraclePayload& oracle);
std::optional<WireError> decode_oracle(std::span<const std::uint8_t> payload,
                                       OraclePayload& out);

std::vector<std::uint8_t> encode_amplitudes(std::span<const cplx> amplitudes);
std::optional<WireError> decode_amplitudes(
    std::span<const std::uint8_t> payload, std::vector<cplx>& out);

std::vector<std::uint8_t> encode_update(const UpdatePayload& update);
std::optional<WireError> decode_update(std::span<const std::uint8_t> payload,
                                       UpdatePayload& out);

std::vector<std::uint8_t> encode_error(const ErrorPayload& error);
std::optional<WireError> decode_error(std::span<const std::uint8_t> payload,
                                      ErrorPayload& out);

}  // namespace qs::ipc
