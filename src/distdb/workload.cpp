#include "distdb/workload.hpp"

#include "common/require.hpp"

namespace qs {
namespace workload {

std::vector<Dataset> uniform_random(std::size_t universe,
                                    std::size_t machines, std::uint64_t total,
                                    Rng& rng) {
  QS_REQUIRE(machines > 0, "need at least one machine");
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::uint64_t t = 0; t < total; ++t) {
    const auto element = static_cast<std::size_t>(rng.uniform_below(universe));
    const auto machine = static_cast<std::size_t>(rng.uniform_below(machines));
    datasets[machine].insert(element);
  }
  return datasets;
}

std::vector<Dataset> zipf(std::size_t universe, std::size_t machines,
                          std::uint64_t total, double exponent, Rng& rng) {
  QS_REQUIRE(machines > 0, "need at least one machine");
  const ZipfSampler sampler(universe, exponent);
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::uint64_t t = 0; t < total; ++t) {
    const auto element = sampler.sample(rng);
    const auto machine = static_cast<std::size_t>(rng.uniform_below(machines));
    datasets[machine].insert(element);
  }
  return datasets;
}

std::vector<Dataset> disjoint_partition(std::size_t universe,
                                        std::size_t machines,
                                        std::uint64_t multiplicity) {
  QS_REQUIRE(machines > 0, "need at least one machine");
  QS_REQUIRE(multiplicity > 0, "multiplicity must be positive");
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < universe; ++i) {
    const std::size_t owner = i * machines / universe;
    datasets[owner].insert(i, multiplicity);
  }
  return datasets;
}

std::vector<Dataset> replicated(std::size_t universe, std::size_t machines,
                                std::size_t support,
                                std::uint64_t multiplicity) {
  QS_REQUIRE(machines > 0, "need at least one machine");
  QS_REQUIRE(support <= universe, "support cannot exceed the universe");
  QS_REQUIRE(multiplicity > 0, "multiplicity must be positive");
  std::vector<Dataset> datasets;
  datasets.reserve(machines);
  Dataset replica(universe);
  for (std::size_t i = 0; i < support; ++i) replica.insert(i, multiplicity);
  for (std::size_t j = 0; j < machines; ++j) datasets.push_back(replica);
  return datasets;
}

std::vector<Dataset> heavy_hitter(std::size_t universe, std::size_t machines,
                                  std::size_t num_heavy, std::uint64_t heavy,
                                  std::uint64_t light, Rng& rng) {
  QS_REQUIRE(machines > 0, "need at least one machine");
  QS_REQUIRE(num_heavy <= universe, "more heavy hitters than elements");
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < universe; ++i) {
    const std::uint64_t copies = i < num_heavy ? heavy : light;
    for (std::uint64_t c = 0; c < copies; ++c) {
      const auto machine =
          static_cast<std::size_t>(rng.uniform_below(machines));
      datasets[machine].insert(i);
    }
  }
  return datasets;
}

std::vector<Dataset> concentrated(std::size_t universe, std::size_t machines,
                                  std::size_t k, std::size_t support,
                                  std::uint64_t multiplicity) {
  QS_REQUIRE(machines > 0, "need at least one machine");
  QS_REQUIRE(k < machines, "machine index out of range");
  QS_REQUIRE(support <= universe, "support cannot exceed the universe");
  QS_REQUIRE(multiplicity > 0, "multiplicity must be positive");
  std::vector<Dataset> datasets(machines, Dataset(universe));
  for (std::size_t i = 0; i < support; ++i)
    datasets[k].insert(i, multiplicity);
  return datasets;
}

}  // namespace workload
}  // namespace qs
