#include "distdb/dataset.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace qs {

Dataset::Dataset(std::size_t universe) : counts_(universe, 0) {
  QS_REQUIRE(universe > 0, "data universe must be non-empty");
}

Dataset Dataset::from_counts(std::vector<std::uint64_t> counts) {
  Dataset d(counts.size());
  d.counts_ = std::move(counts);
  for (std::size_t i = 0; i < d.counts_.size(); ++i) {
    const auto c = d.counts_[i];
    d.total_ += c;
    if (c > 0) ++d.support_size_;
    d.max_multiplicity_ = std::max(d.max_multiplicity_, c);
  }
  return d;
}

Dataset Dataset::from_elements(std::size_t universe,
                               std::span<const std::size_t> elements) {
  Dataset d(universe);
  for (const auto e : elements) d.insert(e);
  return d;
}

std::uint64_t Dataset::count(std::size_t element) const {
  QS_REQUIRE(element < counts_.size(), "element outside the data universe");
  ++content_reads_;
  return counts_[element];
}

std::vector<std::size_t> Dataset::support() const {
  ++content_reads_;
  std::vector<std::size_t> result;
  result.reserve(support_size_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) result.push_back(i);
  }
  return result;
}

void Dataset::insert(std::size_t element, std::uint64_t amount) {
  QS_REQUIRE(element < counts_.size(), "element outside the data universe");
  if (amount == 0) return;
  ++version_;
  if (counts_[element] == 0) ++support_size_;
  counts_[element] += amount;
  total_ += amount;
  max_multiplicity_ = std::max(max_multiplicity_, counts_[element]);
}

void Dataset::erase(std::size_t element, std::uint64_t amount) {
  QS_REQUIRE(element < counts_.size(), "element outside the data universe");
  QS_REQUIRE(counts_[element] >= amount,
             "cannot erase more occurrences than stored");
  if (amount == 0) return;
  ++version_;
  const bool was_max = counts_[element] == max_multiplicity_;
  counts_[element] -= amount;
  total_ -= amount;
  if (counts_[element] == 0) --support_size_;
  if (was_max) recompute_max();
}

void Dataset::recompute_max() {
  max_multiplicity_ = 0;
  for (const auto c : counts_)
    max_multiplicity_ = std::max(max_multiplicity_, c);
}

}  // namespace qs
