#include "distdb/distributed_database.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace qs {

DistributedDatabase::DistributedDatabase(std::vector<Dataset> datasets,
                                         std::uint64_t nu,
                                         std::vector<std::uint64_t> kappas)
    : nu_(nu) {
  QS_REQUIRE(!datasets.empty(), "database needs at least one machine");
  QS_REQUIRE(nu_ >= 1, "capacity ν must be at least 1");
  const std::size_t n = datasets.front().universe();
  for (const auto& d : datasets) {
    QS_REQUIRE(d.universe() == n, "all machines must share one universe");
  }
  if (kappas.empty()) kappas.assign(datasets.size(), nu_);
  QS_REQUIRE(kappas.size() == datasets.size(),
             "need one capacity per machine");
  machines_.reserve(datasets.size());
  for (std::size_t j = 0; j < datasets.size(); ++j) {
    QS_REQUIRE(kappas[j] <= nu_, "per-machine capacity κ_j must be ≤ ν");
    machines_.emplace_back(std::move(datasets[j]), kappas[j]);
  }
  check_capacity();
}

std::size_t DistributedDatabase::universe() const noexcept {
  return machines_.front().data().universe();
}

Machine& DistributedDatabase::machine(std::size_t j) {
  QS_REQUIRE(j < machines_.size(), "machine index out of range");
  return machines_[j];
}

const Machine& DistributedDatabase::machine(std::size_t j) const {
  QS_REQUIRE(j < machines_.size(), "machine index out of range");
  return machines_[j];
}

std::uint64_t DistributedDatabase::total_count(std::size_t element) const {
  std::uint64_t c = 0;
  for (const auto& m : machines_) c += m.data().count(element);
  return c;
}

std::vector<std::uint64_t> DistributedDatabase::joint_counts() const {
  std::vector<std::uint64_t> counts(universe(), 0);
  for (const auto& m : machines_) {
    const auto& local = m.data().counts();
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += local[i];
  }
  return counts;
}

std::uint64_t DistributedDatabase::version() const noexcept {
  std::uint64_t v = 0;
  for (const auto& m : machines_) v += m.data().version();
  return v;
}

std::uint64_t DistributedDatabase::total() const {
  std::uint64_t m_total = 0;
  for (const auto& m : machines_) m_total += m.data().total();
  return m_total;
}

std::vector<double> DistributedDatabase::target_distribution() const {
  const auto counts = joint_counts();
  const auto m_total = total();
  QS_REQUIRE(m_total > 0, "sampling from an empty database is undefined");
  std::vector<double> p(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    p[i] = static_cast<double>(counts[i]) / static_cast<double>(m_total);
  return p;
}

std::vector<cplx> DistributedDatabase::target_amplitudes() const {
  const auto p = target_distribution();
  std::vector<cplx> amps(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) amps[i] = std::sqrt(p[i]);
  return amps;
}

void DistributedDatabase::insert(std::size_t j, std::size_t element) {
  // Validate BEFORE mutating so a rejected insert leaves the database
  // unchanged (strong exception guarantee).
  QS_REQUIRE(total_count(element) < nu_,
             "insert would exceed the global capacity ν");
  machine(j).insert(element);
}

void DistributedDatabase::erase(std::size_t j, std::size_t element) {
  machine(j).erase(element);
}

QueryStats DistributedDatabase::stats() const {
  QueryStats s;
  s.sequential_per_machine.reserve(machines_.size());
  for (const auto& m : machines_)
    s.sequential_per_machine.push_back(m.queries());
  s.parallel_rounds = parallel_rounds_;
  return s;
}

void DistributedDatabase::reset_stats() const {
  for (const auto& m : machines_) m.reset_queries();
  parallel_rounds_ = 0;
}

std::uint64_t DistributedDatabase::content_reads() const {
  std::uint64_t reads = 0;
  for (const auto& m : machines_) reads += m.data().content_reads();
  return reads;
}

void DistributedDatabase::reset_content_reads() const {
  for (const auto& m : machines_) m.data().reset_content_reads();
}

void DistributedDatabase::check_capacity() const {
  const auto counts = joint_counts();
  for (const auto c : counts) {
    QS_REQUIRE(c <= nu_, "joint multiplicity exceeds the global capacity ν");
  }
}

std::uint64_t min_capacity(const std::vector<Dataset>& datasets) {
  QS_REQUIRE(!datasets.empty(), "no datasets");
  std::vector<std::uint64_t> joint(datasets.front().universe(), 0);
  for (const auto& d : datasets) {
    QS_REQUIRE(d.universe() == joint.size(), "universe mismatch");
    for (std::size_t i = 0; i < joint.size(); ++i) joint[i] += d.count(i);
  }
  const auto it = std::max_element(joint.begin(), joint.end());
  return std::max<std::uint64_t>(*it, 1);
}

}  // namespace qs
