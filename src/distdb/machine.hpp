// A single database machine.
//
// Each machine stores one multiset T_j and exposes exactly the two oracle
// unitaries the paper allows (Section 3 / Section 5):
//
//   O_j |i⟩|s⟩      = |i⟩|(s + c_ij) mod (ν+1)⟩                    (Eq. 1)
//   Ô_j |i⟩|s⟩|b⟩   = |i⟩|(s + c_ij·b) mod (ν+1)⟩|b⟩               (Eq. 2)
//
// where ν+1 is the dimension of the counter register of the state the
// oracle is applied to. The machine also supports the paper's dynamic
// updates: inserting or deleting one element changes c_ij by one, which
// corresponds to left-multiplying O_j by the fixed shift U or U† — in this
// simulation the oracle reads the live multiplicity vector, so updates are
// O(1) and the next query automatically reflects them.
//
// κ_j (Section 5) is the machine's own capacity: an upper bound on its
// local multiplicities, used by the lower-bound experiments.
#pragma once

#include <cstdint>

#include "distdb/dataset.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

class Machine {
 public:
  /// Takes ownership of the dataset. κ_j defaults to "unconstrained locally"
  /// (the global ν still applies); pass a tighter bound for the lower-bound
  /// experiments. Requires kappa >= max_i c_ij.
  Machine(Dataset data, std::uint64_t kappa);

  const Dataset& data() const noexcept { return data_; }
  std::uint64_t capacity() const noexcept { return kappa_; }

  /// O_j (Eq. 1): add this machine's multiplicities into the counter
  /// register, conditioned on the element register. `adjoint` applies O_j†
  /// (subtraction). Counts one query.
  void apply_oracle(StateVector& state, RegisterId elem, RegisterId count,
                    bool adjoint) const;

  /// Ô_j (Eq. 2): as O_j but additionally controlled on a qubit register b.
  /// Counts one query.
  void apply_controlled_oracle(StateVector& state, RegisterId elem,
                               RegisterId count, RegisterId flag,
                               bool adjoint) const;

  /// Dynamic updates (Section 3): change c_ij by ±1 in O(1).
  void insert(std::size_t element);
  void erase(std::size_t element);

  std::uint64_t queries() const noexcept { return query_count_; }
  void reset_queries() const noexcept { query_count_ = 0; }

  /// Record one query answered by this machine's REMOTE worker process (ipc
  /// transport): the oracle ran off-coordinator, but the paper's query
  /// ledger charges the machine identically either way.
  void count_remote_query() const noexcept { ++query_count_; }

  /// Remove the last query from this machine's sequential ledger. Used when
  /// an Ô_j application happens INSIDE a parallel round (Eq. 3), which is
  /// charged once per round on the database instead.
  void discount_last_query() const noexcept {
    if (query_count_ > 0) --query_count_;
  }

 private:
  /// Shift vector over elements: c_ij mod modulus (or its negation).
  /// Served from a per-machine cache compiled once per (modulus, dataset
  /// version): the multiplicity vector is read a single time and both
  /// directions are stored, so a query is O(1) data access instead of an
  /// O(N) rebuild, and dynamic updates invalidate automatically through
  /// Dataset::version(). Telemetry: distdb.oracle.cache.{compile,hit}.
  const std::vector<std::size_t>& shift_vector(std::size_t modulus,
                                               bool adjoint) const;

  Dataset data_;
  std::uint64_t kappa_;
  mutable std::uint64_t query_count_ = 0;

  struct OracleCache {
    bool valid = false;
    std::size_t modulus = 0;
    std::uint64_t version = 0;
    std::vector<std::size_t> forward;
    std::vector<std::size_t> adjoint;
  };
  mutable OracleCache oracle_cache_;
};

}  // namespace qs
