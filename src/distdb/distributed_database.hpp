// The distributed database of Section 3: n machines plus public metadata.
//
// The coordinator publicly knows the universe size N, the machine count n,
// the global capacity ν ≥ max_i Σ_j c_ij, and the total cardinality M
// (Theorem 4.3 uses the amplitude √(M/νN), so M is public). Everything
// about WHICH elements live WHERE is private to the machines and reachable
// only through their oracles — the samplers in src/sampling honour this
// boundary, and the obliviousness tests verify it.
#pragma once

#include <cstdint>
#include <vector>

#include "distdb/machine.hpp"
#include "distdb/query_stats.hpp"
#include "qsim/linalg.hpp"

namespace qs {

class DistributedDatabase {
 public:
  /// All datasets must share one universe. ν must dominate every joint
  /// multiplicity c_i = Σ_j c_ij. Per-machine capacities default to ν; pass
  /// `kappas` to tighten them (Section 5's κ_j ≤ ν).
  DistributedDatabase(std::vector<Dataset> datasets, std::uint64_t nu,
                      std::vector<std::uint64_t> kappas = {});

  std::size_t num_machines() const noexcept { return machines_.size(); }
  std::size_t universe() const noexcept;  // N
  std::uint64_t nu() const noexcept { return nu_; }

  Machine& machine(std::size_t j);
  const Machine& machine(std::size_t j) const;

  /// c_i — joint multiplicity of element i across all machines.
  std::uint64_t total_count(std::size_t element) const;

  /// The joint multiplicity vector (c_1, ..., c_N).
  std::vector<std::uint64_t> joint_counts() const;

  /// M — total number of stored elements counting multiplicity.
  std::uint64_t total() const;

  /// Monotone database version: the sum of the machines' dataset versions.
  /// Moves on every dynamic update; consumers cache data-derived artifacts
  /// (e.g. the parallel total-shift table) against it (docs/PERF.md).
  std::uint64_t version() const noexcept;

  /// The sampling distribution p_i = c_i / M. Requires M > 0.
  std::vector<double> target_distribution() const;

  /// Amplitudes √(c_i / M) of the quantum sampling state |ψ⟩ (Eq. 4).
  std::vector<cplx> target_amplitudes() const;

  /// One round of the parallel oracle O (Eq. 3) — accounting only; the
  /// register-level action is applied by the caller (see
  /// sampling/distributing_operator and sampling/parallel_full).
  void count_parallel_round() const { ++parallel_rounds_; }

  /// Dynamic updates, routed to machine j.
  void insert(std::size_t j, std::size_t element);
  void erase(std::size_t j, std::size_t element);

  QueryStats stats() const;
  void reset_stats() const;

  /// Sum of the machines' Dataset::content_reads() taint counters — the
  /// obliviousness audit asserts this stays 0 across schedule compilation.
  std::uint64_t content_reads() const;
  void reset_content_reads() const;

  /// Validates ν ≥ max_i c_i; called after updates.
  void check_capacity() const;

 private:
  std::vector<Machine> machines_;
  std::uint64_t nu_;
  mutable std::uint64_t parallel_rounds_ = 0;
};

/// Smallest legal global capacity for a set of datasets: max_i Σ_j c_ij
/// (at least 1 so the counter register is a real register).
std::uint64_t min_capacity(const std::vector<Dataset>& datasets);

}  // namespace qs
