#include "distdb/communication.hpp"

namespace qs {

std::uint64_t qubits_for_dimension(std::uint64_t dim) {
  std::uint64_t bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < dim) {
    capacity *= 2;
    ++bits;
  }
  return bits == 0 ? 1 : bits;
}

CommunicationReport communication_report(const DistributedDatabase& db,
                                         const QueryStats& stats) {
  CommunicationReport report;
  report.elem_qubits = qubits_for_dimension(db.universe());
  report.counter_qubits = qubits_for_dimension(db.nu() + 1);

  // Sequential query: coordinator → machine → coordinator, carrying the
  // element + counter registers = 2 messages, 2·(elem+counter) qubit trips.
  const std::uint64_t seq_queries = stats.total_sequential();
  const std::uint64_t per_seq_qubits =
      report.elem_qubits + report.counter_qubits;
  report.messages += 2 * seq_queries;
  report.qubits_moved += 2 * per_seq_qubits * seq_queries;
  report.rounds += seq_queries;  // one latency round per query

  // Parallel round: n simultaneous bundles each way, each carrying one
  // element qudit, one counter qudit and one control qubit (Eq. 3's three
  // registers); latency of ONE round regardless of n.
  const auto n = static_cast<std::uint64_t>(db.num_machines());
  const std::uint64_t per_par_qubits =
      report.elem_qubits + report.counter_qubits + 1;
  report.messages += 2 * n * stats.parallel_rounds;
  report.qubits_moved += 2 * n * per_par_qubits * stats.parallel_rounds;
  report.rounds += stats.parallel_rounds;

  return report;
}

}  // namespace qs
