// Synthetic workload generators.
//
// The paper evaluates no concrete datasets (it is a theory paper), so the
// experiment harness generates the distributed datasets its motivation
// describes: sharded big-data stores (disjoint partition), fault-tolerant
// replicated stores (the paper explicitly allows machines to hold the same
// key), skewed real-world frequency data (Zipf), and the adversarial
// single-machine concentration used by the lower-bound construction
// (Theorem 5.1's "put all of the elements on the k-th machine").
//
// Every generator takes an explicit Rng and returns one Dataset per machine;
// combine with min_capacity() / a chosen ν to build a DistributedDatabase.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "distdb/dataset.hpp"

namespace qs {
namespace workload {

/// M elements thrown independently: element uniform over [N], machine
/// uniform over [n].
std::vector<Dataset> uniform_random(std::size_t universe,
                                    std::size_t machines, std::uint64_t total,
                                    Rng& rng);

/// M elements with Zipf(s)-distributed values, machine uniform. Models
/// skewed key frequencies.
std::vector<Dataset> zipf(std::size_t universe, std::size_t machines,
                          std::uint64_t total, double exponent, Rng& rng);

/// Every element i appears `multiplicity` times on exactly one machine;
/// elements are range-partitioned contiguously (classic sharding, all
/// datasets disjoint — the paper's lower bound holds even here).
std::vector<Dataset> disjoint_partition(std::size_t universe,
                                        std::size_t machines,
                                        std::uint64_t multiplicity);

/// Every machine holds an identical copy: each of the first `support`
/// elements `multiplicity` times (full replication; machines may share
/// keys, the generality Section 1 highlights).
std::vector<Dataset> replicated(std::size_t universe, std::size_t machines,
                                std::size_t support,
                                std::uint64_t multiplicity);

/// `num_heavy` heavy elements with `heavy` copies each and the rest of the
/// universe with `light` copies each (light may be 0), all spread uniformly
/// over machines at random.
std::vector<Dataset> heavy_hitter(std::size_t universe, std::size_t machines,
                                  std::size_t num_heavy, std::uint64_t heavy,
                                  std::uint64_t light, Rng& rng);

/// The lower-bound shape: machine k holds elements {0, ..., support-1} with
/// `multiplicity` copies each; all other machines are empty.
std::vector<Dataset> concentrated(std::size_t universe, std::size_t machines,
                                  std::size_t k, std::size_t support,
                                  std::uint64_t multiplicity);

}  // namespace workload
}  // namespace qs
