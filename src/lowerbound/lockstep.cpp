#include "lowerbound/lockstep.hpp"

#include "common/require.hpp"

namespace qs {

LockstepBackend::LockstepBackend(const DistributedDatabase& db_true,
                                 const DistributedDatabase& db_empty,
                                 std::size_t k, StatePrep prep)
    : k_(k), true_run_(db_true, prep), empty_run_(db_empty, prep) {
  QS_REQUIRE(db_true.universe() == db_empty.universe() &&
                 db_true.num_machines() == db_empty.num_machines() &&
                 db_true.nu() == db_empty.nu(),
             "lockstep runs must share the public parameters N, n, ν");
  QS_REQUIRE(k < db_true.num_machines(), "machine index out of range");
  QS_REQUIRE(db_empty.machine(k).data().total() == 0,
             "the comparison database must have machine k emptied");
}

std::size_t LockstepBackend::num_machines() const {
  return true_run_.num_machines();
}

void LockstepBackend::record_distance() {
  distances_.push_back(
      true_run_.state().distance_squared(empty_run_.state()));
}

void LockstepBackend::prep_uniform(bool adjoint) {
  true_run_.prep_uniform(adjoint);
  empty_run_.prep_uniform(adjoint);
}

void LockstepBackend::phase_good(double phi) {
  true_run_.phase_good(phi);
  empty_run_.phase_good(phi);
}

void LockstepBackend::phase_initial(double phi) {
  true_run_.phase_initial(phi);
  empty_run_.phase_initial(phi);
}

void LockstepBackend::rotation_u(bool adjoint) {
  true_run_.rotation_u(adjoint);
  empty_run_.rotation_u(adjoint);
}

void LockstepBackend::oracle(std::size_t j, bool adjoint) {
  true_run_.oracle(j, adjoint);
  empty_run_.oracle(j, adjoint);
  if (j == k_) record_distance();
}

void LockstepBackend::parallel_total_shift(bool adjoint) {
  // The composite spends two parallel rounds; the potential is only
  // observable at the composite boundary, so both clock ticks carry the
  // post-composite distance (a conservative reading of D_t between the two
  // rounds — see the module comment in potential.hpp).
  true_run_.parallel_total_shift(adjoint);
  empty_run_.parallel_total_shift(adjoint);
  record_distance();
  record_distance();
}

void LockstepBackend::global_phase(double angle) {
  true_run_.global_phase(angle);
  empty_run_.global_phase(angle);
}

}  // namespace qs
