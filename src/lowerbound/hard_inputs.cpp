#include "lowerbound/hard_inputs.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "distdb/workload.hpp"

namespace qs {

HardInputCheck check_hard_input(const std::vector<Dataset>& datasets,
                                std::size_t k, std::uint64_t kappa_k,
                                std::uint64_t nu, double required_alpha,
                                double required_beta) {
  QS_REQUIRE(k < datasets.size(), "machine index out of range");
  HardInputCheck result;

  std::uint64_t m_total = 0;
  for (const auto& d : datasets) m_total += d.total();
  const auto& tk = datasets[k];
  if (m_total == 0 || tk.total() == 0 || kappa_k == 0) {
    result.violation = "machine k (or the database) is empty";
    return result;
  }

  result.alpha = static_cast<double>(tk.total()) /
                 static_cast<double>(m_total);
  result.beta = static_cast<double>(tk.total()) /
                static_cast<double>(tk.support_size()) /
                static_cast<double>(kappa_k);

  if (result.alpha < required_alpha) {
    result.violation = "M_k < α·M";
    return result;
  }
  if (result.beta < required_beta) {
    result.violation = "M_k/m_k < β·κ_k";
    return result;
  }

  // max_{i, j≠k} c_ij + max_i c_ik ≤ ν: any relocation of T_k stays legal.
  std::uint64_t max_other = 0;
  for (std::size_t j = 0; j < datasets.size(); ++j) {
    if (j == k) continue;
    max_other = std::max(max_other, datasets[j].max_multiplicity());
  }
  if (max_other + tk.max_multiplicity() > nu) {
    result.violation = "max_{i,j≠k} c_ij + max_i c_ik > ν";
    return result;
  }

  result.satisfied = true;
  return result;
}

std::vector<Dataset> apply_sigma(const std::vector<Dataset>& base,
                                 std::size_t k,
                                 std::span<const std::size_t> image) {
  QS_REQUIRE(k < base.size(), "machine index out of range");
  const auto support = base[k].support();
  QS_REQUIRE(image.size() == support.size(),
             "image size must equal |Supp(T_k)|");
  QS_REQUIRE(std::is_sorted(image.begin(), image.end()) &&
                 std::adjacent_find(image.begin(), image.end()) == image.end(),
             "image must be strictly increasing (order-preserving σ)");

  std::vector<Dataset> result = base;
  Dataset relocated(base[k].universe());
  for (std::size_t r = 0; r < support.size(); ++r) {
    QS_REQUIRE(image[r] < base[k].universe(), "image element out of range");
    relocated.insert(image[r], base[k].count(support[r]));
  }
  result[k] = std::move(relocated);
  return result;
}

std::vector<std::vector<std::size_t>> enumerate_images(std::size_t universe,
                                                       std::size_t m) {
  QS_REQUIRE(m <= universe, "subset larger than the universe");
  std::vector<std::vector<std::size_t>> all;
  std::vector<std::size_t> current(m);
  // Standard lexicographic m-combination enumeration.
  for (std::size_t i = 0; i < m; ++i) current[i] = i;
  if (m == 0) {
    all.push_back({});
    return all;
  }
  for (;;) {
    all.push_back(current);
    // Advance: find rightmost index that can move up.
    std::size_t i = m;
    while (i-- > 0) {
      if (current[i] < universe - (m - i)) {
        ++current[i];
        for (std::size_t j = i + 1; j < m; ++j) current[j] = current[j - 1] + 1;
        break;
      }
      if (i == 0) return all;
    }
  }
}

std::vector<std::size_t> sample_image(std::size_t universe, std::size_t m,
                                      Rng& rng) {
  return rng.sample_without_replacement(universe, m);
}

std::vector<Dataset> make_canonical_hard_input(std::size_t universe,
                                               std::size_t machines,
                                               std::size_t k,
                                               std::size_t support,
                                               std::uint64_t multiplicity) {
  return workload::concentrated(universe, machines, k, support, multiplicity);
}

}  // namespace qs
