// Lockstep execution for the potential-function argument (Section 5.3).
//
// The lower-bound proof compares the algorithm's state |ψ_t^T⟩ on input T
// against |ψ_t⟩ on the input T̃ with machine k's dataset REMOVED (Eqs. 9–10)
// — the two runs share every input-independent unitary and every oracle of
// the other machines, and differ only in how machine k's oracle acts. The
// LockstepBackend realises exactly that: it forwards every circuit
// operation to two SingleStateBackends (true database / emptied database)
// and, after each oracle application that involves machine k, appends
// ‖|ψ_t^T⟩ − |ψ_t⟩‖² to its trace. Averaging those traces over the hard
// input family estimates D_t (Eq. 11/12).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sampling/backend.hpp"

namespace qs {

class LockstepBackend final : public SamplingBackend {
 public:
  /// Both databases must share N, n and ν (the public parameters);
  /// `db_empty` is `db_true` with machine k's dataset removed. `k` is the
  /// distinguished machine whose queries advance the potential clock.
  LockstepBackend(const DistributedDatabase& db_true,
                  const DistributedDatabase& db_empty, std::size_t k,
                  StatePrep prep);

  std::size_t num_machines() const override;
  void prep_uniform(bool adjoint) override;
  void phase_good(double phi) override;
  void phase_initial(double phi) override;
  void rotation_u(bool adjoint) override;
  void oracle(std::size_t j, bool adjoint) override;
  void parallel_total_shift(bool adjoint) override;
  void global_phase(double angle) override;

  const StateVector& true_state() const { return true_run_.state(); }
  const StateVector& empty_state() const { return empty_run_.state(); }

  /// t-th entry: ‖ψ_t^T − ψ_t‖² after the t-th machine-k oracle call
  /// (sequential mode) or after the t-th parallel round (parallel mode —
  /// every round involves machine k).
  const std::vector<double>& distance_trace() const noexcept {
    return distances_;
  }

  /// Total machine-k oracle calls / parallel rounds so far.
  std::uint64_t clock() const noexcept { return distances_.size(); }

 private:
  void record_distance();

  std::size_t k_;
  SingleStateBackend true_run_;
  SingleStateBackend empty_run_;
  std::vector<double> distances_;
};

}  // namespace qs
