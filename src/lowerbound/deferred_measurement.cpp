#include "lowerbound/deferred_measurement.hpp"

#include "common/require.hpp"
#include "qsim/density.hpp"

namespace qs {

DeferredMeasurement defer_measurement(const StateVector& pre_measurement,
                                      RegisterId measured) {
  const auto& layout = pre_measurement.layout();
  const std::size_t outcome_dim = layout.dim(measured);

  // Extended layout: same registers plus the outcome copy, appended last
  // (least significant) so original flat indices map to x·d + i.
  RegisterLayout extended_layout = layout;
  const RegisterId ancilla = extended_layout.add("meas_copy", outcome_dim);

  std::vector<cplx> amps(extended_layout.total_dim(), cplx{0.0, 0.0});
  const auto source = pre_measurement.amplitudes();
  for (std::size_t x = 0; x < source.size(); ++x) {
    const std::size_t outcome = layout.digit(x, measured);
    amps[x * outcome_dim + outcome] = source[x];
  }

  DeferredMeasurement result{StateVector(extended_layout), ancilla,
                             pre_measurement.marginal(measured)};
  result.extended.set_amplitudes(std::move(amps));
  return result;
}

double measured_ensemble_fidelity(const StateVector& pre_measurement,
                                  RegisterId measured,
                                  const StateVector& target) {
  const auto& layout = pre_measurement.layout();
  QS_REQUIRE(target.layout().same_shape(layout),
             "target must live on the algorithm's layout");
  // ⟨t| (Σ_i Π_i ρ Π_i) |t⟩ = Σ_i |⟨t|Π_i|pre⟩|².
  const std::size_t outcome_dim = layout.dim(measured);
  std::vector<cplx> overlap(outcome_dim, cplx{0.0, 0.0});
  const auto pre = pre_measurement.amplitudes();
  const auto tgt = target.amplitudes();
  for (std::size_t x = 0; x < pre.size(); ++x) {
    overlap[layout.digit(x, measured)] += std::conj(tgt[x]) * pre[x];
  }
  double fidelity = 0.0;
  for (const auto& o : overlap) fidelity += std::norm(o);
  return fidelity;
}

double deferred_fidelity(const DeferredMeasurement& deferred,
                         const StateVector& target) {
  const auto& extended_layout = deferred.extended.layout();
  // Keep every original register (all but the ancilla, which is last).
  std::vector<RegisterId> kept;
  for (std::size_t r = 0; r + 1 < extended_layout.num_registers(); ++r)
    kept.push_back(RegisterId{r});
  const Matrix rho = partial_trace(deferred.extended, kept);
  const auto tgt = target.amplitudes();
  return fidelity_with_pure(rho,
                            std::vector<cplx>(tgt.begin(), tgt.end()));
}

}  // namespace qs
