// Executable Lemma 5.3 / Appendix A: measurements can be deferred without
// changing query complexity or fidelity.
//
// The lower-bound proof first replaces any oblivious algorithm 𝒜 that
// measures mid-circuit by a measurement-free algorithm ℬ: because the
// schedule is oblivious, the measurement commutes to the end, and the final
// projective measurement {Π_i} is replaced by the unitary
//
//   U |s, 0⟩ = Σ_i √p_i |s_i, i⟩,   p_i = ⟨s|Π_i|s⟩,  |s_i⟩ = Π_i|s⟩/√p_i,
//
// i.e. the measurement outcome is coherently copied into a fresh ancilla
// and never read. Appendix A shows the output fidelity is unchanged.
//
// Here we realise exactly that transformation for computational-basis
// measurements of one register (the case every algorithm in this library
// uses — e.g. the unknown-M sampler's flag measurement): defer_measurement
// entangles the measured register with a fresh ancilla; the reduced state
// on the original registers then equals the ENSEMBLE the measuring
// algorithm would produce, so any fixed-target fidelity matches. The tests
// check Lemma 5.3's two claims — equal fidelity, equal query count — on
// real sampler runs.
#pragma once

#include "qsim/density_evolution.hpp"
#include "qsim/state_vector.hpp"

namespace qs {

/// The purified post-measurement object: the original layout extended by
/// one ancilla register ("meas_copy") holding the coherent outcome copy.
struct DeferredMeasurement {
  StateVector extended;    ///< |Ψ⟩ = Σ_i √p_i |s_i⟩|i⟩
  RegisterId ancilla;      ///< the outcome register inside `extended`
  std::vector<double> outcome_probabilities;
};

/// Build ℬ's final state from 𝒜's pre-measurement state: coherently copy
/// register `measured` into a fresh ancilla (no collapse, no randomness).
DeferredMeasurement defer_measurement(const StateVector& pre_measurement,
                                      RegisterId measured);

/// The fidelity an algorithm that MEASURES `measured` (and then discards
/// the outcome register) achieves against a pure target on the original
/// layout: F = Σ_i p_i |⟨target|s_i⟩|² computed via the ensemble.
/// Lemma 5.3 asserts this equals the deferred version's reduced fidelity.
double measured_ensemble_fidelity(const StateVector& pre_measurement,
                                  RegisterId measured,
                                  const StateVector& target);

/// The deferred (measurement-free) algorithm's fidelity: ⟨target|ρ|target⟩
/// with ρ the reduction of the extended state onto the original registers.
double deferred_fidelity(const DeferredMeasurement& deferred,
                         const StateVector& target);

}  // namespace qs
