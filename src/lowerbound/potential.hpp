// The potential function D_t (Eq. 11/12) measured on real executions.
//
// For a hard-input family 𝒯 (machine k), the lower bound rests on two
// facts about D_t = E_{T∈𝒯} ‖|ψ_t^T⟩ − |ψ_t⟩‖²:
//
//   Lemma 5.7 / 5.9 (floor):    D_{t_k} ≥ C · M_k/M for any algorithm whose
//                               output fidelity exceeds 9/16;
//   Lemma 5.8 / 5.10 (ceiling): D_t ≤ 4 (m_k/N) t².
//
// Crossing the floor therefore needs t ≥ √(C M_k N / (4 m_k M)) ∼
// √(κ_k N / M). measure_potential() runs the paper's own sampler in
// lockstep over family members (exhaustively for small N, Monte-Carlo
// otherwise) and returns the averaged trace, so the benches can plot
// measured D_t against both bounds and extract the empirical crossover.
//
// Granularity note: in the parallel model our simulator applies Lemma 4.4's
// two-round composite atomically, so the trace holds the post-composite
// value at both of the composite's clock ticks; the quadratic ceiling is
// checked at composite boundaries, where the state is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "lowerbound/hard_inputs.hpp"
#include "sampling/circuit.hpp"

namespace qs {

struct PotentialOptions {
  QueryMode mode = QueryMode::kSequential;
  /// Family members to average over; ignored when exhaustive.
  std::size_t family_samples = 16;
  /// Enumerate the entire C(N, m_k) family instead of sampling.
  bool exhaustive = false;
  StatePrep prep = StatePrep::kHouseholder;
};

struct PotentialResult {
  /// d_t[t-1] = estimate of D_t after t machine-k queries (or rounds).
  std::vector<double> d_t;
  /// Mean fidelity of each true run against ITS OWN target (should be ~1
  /// for the paper's sampler — confirming the floor applies).
  double mean_final_fidelity = 0.0;
  std::size_t family_members = 0;
  std::size_t m_k = 0;      ///< |Supp(T_k)|
  std::size_t universe = 0;  ///< N
  double mk_over_m = 0.0;    ///< M_k / M
  std::uint64_t kappa_k = 0;

  /// Lemma 5.8 / 5.10 ceiling at time t.
  double ceiling(std::uint64_t t) const;
  /// Lemma B.4 floor on F_{t_k}: M_k / (2M). (The final constant C in
  /// Lemma 5.7 depends on ε; with the paper's zero-error sampler, ε = 0 and
  /// D_{t_k} ≥ (√(M_k/2M) − 0)² = M_k/2M.)
  double floor() const { return mk_over_m / 2.0; }
  /// Smallest t whose ceiling reaches `level`.
  std::uint64_t crossover(double level) const;
};

/// Run the paper's own sampler on every (sampled) family member in lockstep
/// with the machine-k-emptied input and average the distance traces.
/// `base` must contain the datasets of a valid database for capacity nu.
PotentialResult measure_potential(const std::vector<Dataset>& base,
                                  std::size_t k, std::uint64_t nu,
                                  const PotentialOptions& options, Rng& rng);

}  // namespace qs
