#include "lowerbound/potential.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "lowerbound/lockstep.hpp"
#include "sampling/samplers.hpp"

namespace qs {

double PotentialResult::ceiling(std::uint64_t t) const {
  return 4.0 * static_cast<double>(m_k) / static_cast<double>(universe) *
         static_cast<double>(t) * static_cast<double>(t);
}

std::uint64_t PotentialResult::crossover(double level) const {
  // Smallest t with 4 (m_k/N) t² ≥ level.
  const double t = std::sqrt(level * static_cast<double>(universe) /
                             (4.0 * static_cast<double>(m_k)));
  return static_cast<std::uint64_t>(std::ceil(t));
}

PotentialResult measure_potential(const std::vector<Dataset>& base,
                                  std::size_t k, std::uint64_t nu,
                                  const PotentialOptions& options, Rng& rng) {
  QS_REQUIRE(k < base.size(), "machine index out of range");
  QS_REQUIRE(base[k].total() > 0, "machine k must be non-empty");

  const std::size_t universe = base[k].universe();
  const std::size_t m_k = base[k].support_size();

  // The comparison input T̃: machine k emptied, all else identical. It is
  // the SAME for every member of the family (the other machines never
  // change), which is what makes D_t well-defined.
  std::vector<Dataset> emptied = base;
  emptied[k] = Dataset(universe);
  const DistributedDatabase db_empty(std::move(emptied), nu);

  // Collect the family members to run.
  std::vector<std::vector<std::size_t>> images;
  if (options.exhaustive) {
    images = enumerate_images(universe, m_k);
  } else {
    images.reserve(options.family_samples);
    for (std::size_t s = 0; s < options.family_samples; ++s)
      images.push_back(sample_image(universe, m_k, rng));
  }
  QS_REQUIRE(!images.empty(), "empty hard-input family");

  PotentialResult result;
  result.family_members = images.size();
  result.m_k = m_k;
  result.universe = universe;

  double fidelity_sum = 0.0;
  for (const auto& image : images) {
    auto datasets = apply_sigma(base, k, image);
    const DistributedDatabase db_true(std::move(datasets), nu);

    // Plan from public parameters of the TRUE input (identical across the
    // family: relocating T_k changes neither M nor ν).
    const double a = static_cast<double>(db_true.total()) /
                     (static_cast<double>(nu) *
                      static_cast<double>(db_true.universe()));
    const AAPlan plan = plan_zero_error(a);

    LockstepBackend lockstep(db_true, db_empty, k, options.prep);
    run_sampling_circuit(lockstep, options.mode, plan);

    const auto& trace = lockstep.distance_trace();
    if (result.d_t.size() < trace.size()) result.d_t.resize(trace.size(), 0.0);
    for (std::size_t t = 0; t < trace.size(); ++t) result.d_t[t] += trace[t];

    fidelity_sum +=
        pure_fidelity(target_full_state(db_true), lockstep.true_state());

    if (result.mk_over_m == 0.0) {
      result.mk_over_m = static_cast<double>(db_true.machine(k).data().total()) /
                         static_cast<double>(db_true.total());
      result.kappa_k = db_true.machine(k).data().max_multiplicity();
    }
  }

  const double inv = 1.0 / static_cast<double>(images.size());
  for (auto& d : result.d_t) d *= inv;
  result.mean_final_fidelity = fidelity_sum * inv;
  return result;
}

}  // namespace qs
