// Hard-input families for the adversary lower bound (Section 5.2).
//
// Fix a machine k. Starting from a base input T whose k-th multiset has
// support S = Supp(T_k), every ORDER-PRESERVING injection σ of S into [N]
// yields a new input σ̃ᵏ(T) that relocates T_k's multiplicities onto σ(S)
// while leaving every other machine untouched (Definition 5.5). Lemma 5.6
// shows the family has exactly C(N, m_k) distinct members — one per
// m_k-subset of [N] — which is why sampling a uniform random m_k-subset
// samples the family uniformly.
//
// Definition 5.4's hard input condition (with constants α, β) is what makes
// the family adversarial: machine k carries an α-fraction of all data, its
// average multiplicity is within β of its capacity κ_k, and relocating T_k
// can never exceed the global ν.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "distdb/dataset.hpp"

namespace qs {

struct HardInputCheck {
  bool satisfied = false;
  double alpha = 0.0;  ///< achieved M_k / M
  double beta = 0.0;   ///< achieved (M_k / m_k) / κ_k
  std::string violation;  ///< empty when satisfied
};

/// Check Definition 5.4 for machine k with capacity kappa_k against the
/// required constants; reports the achieved α and β.
HardInputCheck check_hard_input(const std::vector<Dataset>& datasets,
                                std::size_t k, std::uint64_t kappa_k,
                                std::uint64_t nu, double required_alpha,
                                double required_beta);

/// σ̃ᵏ(T): relocate machine k's support onto `image` order-preservingly.
/// `image` must be strictly increasing with size |Supp(T_k)|.
std::vector<Dataset> apply_sigma(const std::vector<Dataset>& base,
                                 std::size_t k,
                                 std::span<const std::size_t> image);

/// All C(N, m) ascending m-subsets of [0, N): the full family (use only for
/// small N; the count is checked against Lemma 5.6 in the tests).
std::vector<std::vector<std::size_t>> enumerate_images(std::size_t universe,
                                                       std::size_t m);

/// One uniform m-subset of [0, N), ascending: a uniform family member.
std::vector<std::size_t> sample_image(std::size_t universe, std::size_t m,
                                      Rng& rng);

/// The canonical hard input used in the proof of Theorem 5.1: place
/// `support` distinct elements with `multiplicity` copies each on machine
/// k and nothing anywhere else (then M_k = M, α = 1, β = multiplicity/κ_k).
std::vector<Dataset> make_canonical_hard_input(std::size_t universe,
                                               std::size_t machines,
                                               std::size_t k,
                                               std::size_t support,
                                               std::uint64_t multiplicity);

}  // namespace qs
