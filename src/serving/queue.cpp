#include "serving/queue.hpp"

#include <utility>

#include "common/require.hpp"
#include "telemetry/metrics.hpp"

namespace qs::serving {

namespace {

std::size_t band_of(JobPriority priority) {
  return static_cast<std::size_t>(priority);
}

}  // namespace

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  QS_REQUIRE(capacity_ > 0, "serving queue capacity must be positive");
}

void JobQueue::update_depth_gauge(std::size_t depth) const {
  telemetry::gauge("serving.queue.depth")
      .set(static_cast<std::int64_t>(depth));
}

JobQueue::PushResult JobQueue::push(PendingJob job) {
  PushResult result;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      result.reason = RejectReason::kShuttingDown;
      return result;
    }
    if (size_ >= capacity_) {
      // Displace the YOUNGEST job of the LOWEST band strictly below the
      // arrival: it is the one that would have been served last anyway,
      // and FIFO order inside every band is preserved.
      std::deque<PendingJob>* victim_band = nullptr;
      for (std::size_t band = 0; band < band_of(job.request.priority);
           ++band) {
        if (!bands_[band].empty()) {
          victim_band = &bands_[band];
          break;
        }
      }
      if (victim_band == nullptr) {
        result.reason = RejectReason::kQueueFull;
        return result;
      }
      result.displaced = std::move(victim_band->back());
      victim_band->pop_back();
      --size_;
    }
    bands_[band_of(job.request.priority)].push_back(std::move(job));
    ++size_;
    result.accepted = true;
    update_depth_gauge(size_);
  }
  cv_.notify_one();
  return result;
}

std::optional<PendingJob> JobQueue::pop_locked() {
  for (std::size_t band = bands_.size(); band-- > 0;) {
    if (bands_[band].empty()) continue;
    PendingJob job = std::move(bands_[band].front());
    bands_[band].pop_front();
    --size_;
    update_depth_gauge(size_);
    return job;
  }
  return std::nullopt;
}

std::optional<PendingJob> JobQueue::pop_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return size_ > 0 || closed_; });
  return pop_locked();  // nullopt only when closed_ && empty
}

std::optional<PendingJob> JobQueue::try_pop() {
  const std::lock_guard<std::mutex> lock(mu_);
  return pop_locked();
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

}  // namespace qs::serving
