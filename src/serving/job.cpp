#include "serving/job.hpp"

namespace qs::serving {

const char* to_string(JobPriority priority) {
  switch (priority) {
    case JobPriority::kLow: return "low";
    case JobPriority::kNormal: return "normal";
    case JobPriority::kHigh: return "high";
  }
  return "unknown";
}

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kDisplaced: return "displaced";
    case RejectReason::kShedLowPriority: return "shed-low-priority";
    case RejectReason::kDeadlineExpired: return "deadline-expired";
    case RejectReason::kShuttingDown: return "shutting-down";
    case RejectReason::kEmptyStore: return "empty-store";
  }
  return "unknown";
}

}  // namespace qs::serving
