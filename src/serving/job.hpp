// Typed jobs for the dqs-serve layer (docs/SERVING.md).
//
// A job is one client request against the CURRENT data: "draw
// `num_samples` classical samples, seeded by (client_seed, job id)". The
// service answers it with a JobResult carrying the samples plus the full
// evidence trail the serial SampleServer exposes — preparation QueryStats,
// ServerHealth, and the recovery ledger of any faulted rebuild this job
// performed — or with a typed JobRejection. A job is NEVER dropped
// silently: every accepted ticket resolves to exactly one outcome, and
// admission control communicates shedding through RejectReason, not
// through absence.
//
// Determinism contract: the samples of job k with client seed s are drawn
// from rng_for_stream(s, k) against the deterministic preparation for the
// served dataset version, so a coalesced concurrent batch and a serial
// replay of the same jobs produce bit-identical samples (tested in
// tests/test_serving.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "apps/sample_server.hpp"
#include "distdb/query_stats.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"

namespace qs::serving {

/// Admission priority. Under kDegraded health the service sheds kLow jobs
/// at admission; under queue pressure a kHigh arrival may displace a
/// queued kLow job (which still gets its typed rejection).
enum class JobPriority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

const char* to_string(JobPriority priority);

/// Why a job was NOT served. kNone never appears in a JobRejection.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull,         ///< bounded queue at capacity, nothing shed-able
  kDisplaced,         ///< evicted from a full queue by a higher priority
  kShedLowPriority,   ///< admission shed: service degraded, job was kLow
  kDeadlineExpired,   ///< queue wait exceeded the job's deadline budget
  kShuttingDown,      ///< submitted after shutdown(), or queued behind one
                      ///< with no worker left to drain it
  kEmptyStore,        ///< the database holds no elements to sample
};

const char* to_string(RejectReason reason);

/// One client request. The service assigns the job id at admission.
struct JobRequest {
  std::uint64_t client_seed = 1;   ///< per-client RNG root (common/rng)
  std::size_t num_samples = 1;    ///< classical draws to return
  JobPriority priority = JobPriority::kNormal;
  /// Maximum nanoseconds the job may spend queued before dispatch; jobs
  /// over budget get RejectReason::kDeadlineExpired. kNoDeadline = none.
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};
  std::uint64_t deadline_ns = kNoDeadline;
  /// Fault plan armed for the rebuild THIS job performs (ignored when the
  /// job coalesces onto a preparation another job built — the builder's
  /// plan governed that schedule). Mirrors SampleServer::arm_faults: a
  /// job carrying a plan also clears a sticky classical fallback so the
  /// quantum path is retried.
  std::optional<FaultPlan> faults;
  RetryPolicy retry;
};

/// A served job: samples plus the evidence trail.
struct JobResult {
  std::uint64_t job_id = 0;
  std::vector<std::size_t> samples;
  /// Dataset version the samples describe.
  std::uint64_t served_version = 0;
  /// Preparation ledger for the state the samples were measured from
  /// (shared across a coalesced batch; zero for classical-fallback jobs).
  QueryStats prep_stats;
  /// Service health as of this job's completion.
  ServerHealth health = ServerHealth::kHealthy;
  /// Recovery cost of the rebuild this job performed (empty when the job
  /// coalesced or the rebuild was fault-free).
  RecoveryLedger recovery;
  /// True when the samples came from a preparation another job built.
  bool coalesced = false;
  /// Draws served by the exact classical sampler (fallback health).
  std::uint64_t fallback_draws = 0;
  /// Classical multiplicity probes those fallback draws spent.
  std::uint64_t classical_queries = 0;
};

struct JobRejection {
  RejectReason reason = RejectReason::kNone;
  std::string detail;  ///< human-readable amplification (may be empty)
};

/// Exactly one of `result` / `rejection` is engaged.
struct JobOutcome {
  std::optional<JobResult> result;
  std::optional<JobRejection> rejection;

  bool ok() const noexcept { return result.has_value(); }
};

namespace detail {

/// Shared completion slot behind a JobTicket: one writer (the worker or
/// the admission path), many waiters.
struct JobSlot {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<JobOutcome> outcome;

  void fulfill(JobOutcome value) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      if (outcome.has_value()) return;  // first outcome wins; never two
      outcome = std::move(value);
    }
    cv.notify_all();
  }
};

}  // namespace detail

/// Handle to a submitted job. Copyable; wait() blocks until the service
/// resolves the job (admission rejections resolve immediately).
class JobTicket {
 public:
  JobTicket() = default;
  JobTicket(std::uint64_t id, std::shared_ptr<detail::JobSlot> slot)
      : id_(id), slot_(std::move(slot)) {}

  std::uint64_t id() const noexcept { return id_; }
  bool valid() const noexcept { return slot_ != nullptr; }

  bool done() const {
    const std::lock_guard<std::mutex> lock(slot_->mu);
    return slot_->outcome.has_value();
  }

  /// Blocks until the outcome is available, then returns it (stable for
  /// the ticket's lifetime — repeated calls return the same object).
  const JobOutcome& wait() const {
    std::unique_lock<std::mutex> lock(slot_->mu);
    slot_->cv.wait(lock, [&] { return slot_->outcome.has_value(); });
    return *slot_->outcome;
  }

 private:
  std::uint64_t id_ = 0;
  std::shared_ptr<detail::JobSlot> slot_;
};

}  // namespace qs::serving
