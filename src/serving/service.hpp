// dqs-serve: an async, multi-tenant serving layer over one distributed
// database (docs/SERVING.md).
//
// SampleService is the thread-safe facade the single-threaded SampleServer
// deliberately is not: clients submit typed jobs (job.hpp) from any number
// of threads, a bounded priority queue admits them, and a worker pool
// executes compiled schedules. Three mechanisms carry the design:
//
//   * REQUEST COALESCING — the expensive artifact is the prepared sampling
//     state for a dataset version. Concurrent jobs against the same
//     `DistributedDatabase::version()` share ONE oracle compile and ONE
//     state preparation: the first job to observe a stale (or absent)
//     preparation becomes the BUILDER, flags the build in flight, releases
//     the service lock for the whole schedule execution (lock-discipline:
//     no lock is ever held across sampler execution), and publishes an
//     immutable `shared_ptr<const Prepared>`; every concurrent same-version
//     job waits on that flag and then draws from the shared state. Exactly
//     one rebuild per version, N − 1 coalesce hits (tested under real
//     concurrency in tests/test_serving.cpp).
//
//   * DETERMINISM — preparation is deterministic per version, and job k
//     with client seed s draws from rng_for_stream(s, k), never from
//     shared RNG state. A coalesced concurrent batch is therefore
//     bit-identical to a serial SampleServer replay of the same jobs
//     (measuring a shared preparation does not consume it — draws operate
//     on the immutable snapshot, mirroring the serial server's
//     re-preparation of the identical state per draw).
//
//   * ADMISSION CONTROL & GRACEFUL DEGRADATION — the PR 5 health ladder is
//     wired into admission: kDegraded (last preparation needed recovery)
//     sheds kLow jobs with a typed rejection; a full queue refuses or
//     displaces (typed, never silent); kFallback (quantum preparation
//     impossible under the armed faults) serves the exact classical
//     full-scan sampler — same distribution, classical cost — identical to
//     the serial server's fallback draws. Per-job deadline budgets expire
//     jobs at dispatch with kDeadlineExpired.
//
// Everything observable is exported through src/telemetry under the
// serving.* namespace: queue depth and worker occupancy gauges, coalescing
// hit/miss counters, job latency and queue-wait histograms, and the health
// gauge. Recorded transcripts stay dqs_verify-clean (tested).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/sample_server.hpp"
#include "distdb/ipc/channel.hpp"
#include "distdb/ipc/supervisor.hpp"
#include "distdb/transcript.hpp"
#include "qsim/state_backend.hpp"
#include "serving/job.hpp"
#include "serving/queue.hpp"

namespace qs::serving {

struct ServiceOptions {
  /// Worker threads. 0 = no pool: the caller drives execution with
  /// pump_one() / run(), which keeps admission and dispatch deterministic
  /// for tests and keeps the service usable single-threaded.
  std::size_t workers = 2;
  /// Bounded queue capacity (admission control; queue.hpp).
  std::size_t queue_capacity = 256;
  QueryMode mode = QueryMode::kSequential;
  StatePrep prep = StatePrep::kHouseholder;
  /// Record the oracle transcript of every preparation for audit;
  /// transcripts() exposes them and each stays dqs_verify-clean.
  bool record_transcripts = false;
  /// Amplitude storage for every preparation's coordinator state
  /// (state_backend.hpp): the Prepared snapshot jobs draw from is built —
  /// and measured — on this backend. Sparse lifts the serveable N past the
  /// dense memory ceiling; a configured amplitude budget turns runaway
  /// support growth into a typed, recoverable rejection instead of an OOM.
  StateBackendConfig backend = StateBackendConfig::dense();
  /// Admission policy: shed kLow jobs while health is kDegraded.
  bool shed_low_priority_when_degraded = true;
  /// Oracle transport for preparations (docs/DISTRIBUTION.md). kIpc forks
  /// one worker process per machine and moves the registers over
  /// unix-domain sockets; oracles are exact permutations, so the prepared
  /// state — and every sample — is bit-identical to kInProcess. The health
  /// ladder extends one rung: an IPC preparation that dies on a contract
  /// violation (respawn budget gone, unrecoverable wire error) DEMOTES the
  /// service to the in-process transport and retries within the same
  /// build; only an in-process failure falls through to the classical
  /// fallback. Never a hang, never a silent wrong answer.
  ipc::TransportKind transport = ipc::TransportKind::kInProcess;
  /// Supervisor tuning when transport == kIpc (deadlines, respawn budget,
  /// worker stderr capture).
  ipc::IpcOptions ipc;
};

/// Aggregate service accounting. After shutdown() has drained,
///   submitted == admitted + (admission rejections)   and
///   submitted == completed + rejected
/// hold exactly; the telemetry serving.* counters mirror every field
/// (tested in tests/test_telemetry_ledger.cpp across threads).
struct ServingStats {
  std::uint64_t submitted = 0;   ///< submit() calls
  std::uint64_t admitted = 0;    ///< jobs that entered the queue
  std::uint64_t rejected = 0;    ///< ALL typed rejections (admission+dispatch)
  std::uint64_t shed = 0;        ///< subset: kShedLowPriority/kDisplaced/kQueueFull
  std::uint64_t expired = 0;     ///< subset: kDeadlineExpired
  std::uint64_t completed = 0;   ///< jobs that got a JobResult
  std::uint64_t coalesce_hits = 0;    ///< jobs served from another job's prep
  std::uint64_t coalesce_misses = 0;  ///< jobs that had to build
  std::uint64_t rebuilds = 0;         ///< successful preparations
  std::uint64_t invalidations = 0;    ///< updates that retired a live prep
  std::uint64_t quantum_draws = 0;    ///< samples measured from a preparation
  std::uint64_t fallback_draws = 0;   ///< samples served classically
  std::uint64_t classical_queries = 0;  ///< probes spent by fallback draws

  friend bool operator==(const ServingStats&, const ServingStats&) = default;
};

class SampleService {
 public:
  /// The service owns its database, like the serial server.
  explicit SampleService(DistributedDatabase db, ServiceOptions options = {});
  ~SampleService();

  SampleService(const SampleService&) = delete;
  SampleService& operator=(const SampleService&) = delete;

  /// Admit a job (or reject it immediately — the ticket then already
  /// carries the typed rejection). Thread-safe; never blocks on sampling.
  JobTicket submit(JobRequest request);

  /// submit() + wait(), pumping the queue inline when workers == 0.
  JobOutcome run(JobRequest request);

  /// Execute one queued job on the CALLING thread; false when the queue
  /// was empty. The workers == 0 test/debug drive.
  bool pump_one();

  /// Stop admission, drain every already-admitted job (workers serve them;
  /// with workers == 0 the drain resolves them with kShuttingDown — still
  /// typed, never silent), join the pool. Idempotent; the destructor calls
  /// it.
  void shutdown();

  /// Updates. Serialised against in-flight preparations: the database
  /// never mutates under a running schedule; the current preparation is
  /// retired and the next job rebuilds (exactly once) for the new version.
  void insert(std::size_t machine, std::size_t element);
  void erase(std::size_t machine, std::size_t element);

  /// Clear a sticky classical fallback and any per-service fault memory,
  /// mirroring SampleServer::disarm_faults(). (Faults ARM per job — see
  /// JobRequest::faults — so there is no service-level arm.)
  void clear_faults();

  ServerHealth health() const;
  std::string last_failure() const;
  /// The transport the NEXT preparation will use: ServiceOptions::transport
  /// until IPC demotion (see ServiceOptions::transport), kInProcess after.
  /// clear_faults() re-arms a demoted IPC transport.
  ipc::TransportKind active_transport() const;
  ServingStats stats() const;
  /// Recovery cost accumulated across all faulted preparations.
  RecoveryLedger recovery_ledger() const;
  /// Oracle queries (sequential) / rounds (parallel) spent by all
  /// preparations — the serving-layer Thm 4.3/4.5 ledger.
  std::uint64_t total_query_cost() const;
  std::uint64_t preparations() const;
  std::uint64_t version() const;
  std::size_t queue_depth() const;
  std::size_t total_elements() const;
  /// Preparation transcripts, when ServiceOptions::record_transcripts.
  std::vector<Transcript> transcripts() const;

  const ServiceOptions& options() const noexcept { return options_; }

 private:
  /// Immutable published preparation; jobs hold it by shared_ptr and draw
  /// without any lock.
  struct Prepared {
    std::uint64_t version = 0;
    SamplerResult result;
    bool recovered = false;  ///< built under faults with injections
  };

  struct BuildOutcome {
    std::shared_ptr<const Prepared> prepared;  ///< null on failure
    RecoveryLedger ledger;
    Transcript transcript;  ///< when ServiceOptions::record_transcripts
    std::string failure;
    bool faulted = false;
    /// The IPC transport died mid-build and the in-process retry (in the
    /// SAME call) produced this outcome; the serve path latches the
    /// demotion and degrades health under mu_.
    bool ipc_demoted = false;
    std::string ipc_failure;  ///< what killed the transport, when demoted
  };

  void worker_loop();
  /// Dispatch-side execution: deadline check, serve, fulfill.
  void execute(PendingJob job);
  JobOutcome serve(PendingJob& job);
  /// Runs the sampler with NO service lock held (lock-discipline).
  /// `use_ipc` is the caller's under-mu_ snapshot of the transport choice;
  /// the supervisor itself is touched only here, serialized by the
  /// prep_in_flight_ gate (plus mu_ for insert/erase propagation).
  BuildOutcome build(const PendingJob& job, bool use_ipc);
  /// Spawn/handshake the worker fleet if not yet running. Throws
  /// ContractViolation on failure (caught by build's demotion ladder).
  void ensure_ipc_started();
  /// Demote under mu_: latch ipc_demoted_, degrade health, count it.
  void demote_ipc_locked(const std::string& why);
  /// Mirror one database mutation onto the live worker (kUpdate frame). A
  /// failed propagation self-heals by respawning the worker (a fresh
  /// handshake ships the post-mutation counts); if THAT fails, demote.
  void propagate_update_locked(std::size_t machine, std::size_t element,
                               std::int64_t delta);
  void reject(const std::shared_ptr<detail::JobSlot>& slot,
              RejectReason reason, std::string detail);
  void set_health_locked(ServerHealth health);
  JobResult classical_serve_locked(const PendingJob& job, Rng& rng);

  ServiceOptions options_;
  JobQueue queue_;

  /// Guards everything below. NEVER held across build() (schedule
  /// execution) or queue_ operations — enforced by the dqs_lint
  /// lock-discipline rule and the tsan CI leg.
  mutable std::mutex mu_;
  /// Signals prep_in_flight_ transitions (coalescers and updates wait).
  std::condition_variable prep_cv_;
  DistributedDatabase db_;
  std::shared_ptr<const Prepared> prepared_;
  bool prep_in_flight_ = false;
  /// Sticky classical fallback, mirroring the serial server: set when a
  /// faulted preparation exhausts recovery; cleared by clear_faults() or
  /// by the next job that arms a fresh plan.
  bool fallback_ = false;
  ServerHealth health_ = ServerHealth::kHealthy;
  /// Worker fleet when ServiceOptions::transport == kIpc; spawned lazily by
  /// the first preparation, reaped by shutdown(). Mutated only inside
  /// build() (excluded by prep_in_flight_) and under mu_ (insert/erase
  /// propagation, shutdown after the drain).
  std::unique_ptr<ipc::IpcSupervisor> supervisor_;
  /// Sticky IPC demotion (the middle rung of the health ladder): set when
  /// the IPC transport died on a contract violation; cleared by
  /// clear_faults(). Read/written under mu_ only.
  bool ipc_demoted_ = false;
  std::string last_failure_;
  ServingStats stats_;
  RecoveryLedger ledger_;
  std::uint64_t query_cost_ = 0;
  std::uint64_t preparations_ = 0;
  std::vector<Transcript> transcripts_;
  std::uint64_t next_job_id_ = 1;
  bool accepting_ = true;

  std::vector<std::thread> threads_;
};

}  // namespace qs::serving
