// Bounded, priority-banded job queue for the dqs-serve layer.
//
// Three FIFO bands (one per JobPriority); pop serves the highest
// non-empty band. The queue is BOUNDED: at capacity, an arrival may
// displace the youngest strictly-lower-priority queued job — which the
// service then resolves with a typed RejectReason::kDisplaced, never a
// silent drop — or is itself refused with kQueueFull. close() stops
// admission while letting consumers drain what is already queued; a
// blocked pop_wait() returns nullopt once the queue is closed AND empty,
// which is what lets shutdown() guarantee every admitted job resolves.
//
// All synchronisation lives inside the queue; the service never holds its
// own state mutex while touching it (lock-discipline, docs/SERVING.md).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>

#include "serving/job.hpp"

namespace qs::serving {

/// An admitted job travelling through the queue to a worker.
struct PendingJob {
  JobRequest request;
  std::uint64_t id = 0;
  /// telemetry::monotonic_ns() at admission; 0 when neither a deadline
  /// nor metrics needed a timestamp.
  std::uint64_t admitted_ns = 0;
  std::shared_ptr<detail::JobSlot> slot;
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  struct PushResult {
    bool accepted = false;
    /// Engaged when admission displaced a lower-priority queued job to
    /// make room; the caller owes it a typed kDisplaced rejection.
    std::optional<PendingJob> displaced;
    /// Valid when !accepted: kQueueFull or kShuttingDown.
    RejectReason reason = RejectReason::kNone;
  };

  PushResult push(PendingJob job);

  /// Blocks until a job is available or the queue is closed and empty.
  std::optional<PendingJob> pop_wait();

  /// Non-blocking pop (drives pump_one() and synchronous drains).
  std::optional<PendingJob> try_pop();

  /// Stop admission; queued jobs remain poppable (drain-on-shutdown).
  void close();

  bool closed() const;
  std::size_t depth() const;

 private:
  std::optional<PendingJob> pop_locked();
  void update_depth_gauge(std::size_t depth) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t capacity_;
  bool closed_ = false;
  /// bands_[p] holds priority p; pop scans from kHigh down.
  std::array<std::deque<PendingJob>, 3> bands_;
  std::size_t size_ = 0;
};

}  // namespace qs::serving
