#include "serving/service.hpp"

#include <utility>

#include "common/require.hpp"
#include "faults/ipc_chaos.hpp"
#include "faults/recovery.hpp"
#include "qsim/measure.hpp"
#include "sampling/classical.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs::serving {

namespace {

/// Process-global telemetry mirror of ServingStats (docs/TELEMETRY.md).
struct ServingCounters {
  telemetry::Counter& submitted = telemetry::counter("serving.jobs.submitted");
  telemetry::Counter& admitted = telemetry::counter("serving.jobs.admitted");
  telemetry::Counter& rejected = telemetry::counter("serving.jobs.rejected");
  telemetry::Counter& shed = telemetry::counter("serving.jobs.shed");
  telemetry::Counter& expired = telemetry::counter("serving.jobs.expired");
  telemetry::Counter& completed = telemetry::counter("serving.jobs.completed");
  telemetry::Counter& hits = telemetry::counter("serving.coalesce.hit");
  telemetry::Counter& misses = telemetry::counter("serving.coalesce.miss");
  telemetry::Counter& rebuilds = telemetry::counter("serving.rebuild");
  telemetry::Counter& invalidations = telemetry::counter("serving.invalidate");
  telemetry::Counter& quantum_draws =
      telemetry::counter("serving.draw.quantum");
  telemetry::Counter& fallback_draws =
      telemetry::counter("serving.draw.fallback");
  telemetry::Counter& ipc_demotions =
      telemetry::counter("serving.transport.ipc.demotions");
  telemetry::Gauge& busy = telemetry::gauge("serving.workers.busy");
  telemetry::Gauge& health = telemetry::gauge("serving.health");
  telemetry::Histogram& job_ns = telemetry::histogram("serving.job.ns");
  telemetry::Histogram& queue_wait_ns =
      telemetry::histogram("serving.job.queue_wait.ns");
  telemetry::Histogram& rebuild_ns =
      telemetry::histogram("serving.rebuild.ns");
};

ServingCounters& counters() {
  static ServingCounters instance;
  return instance;
}

bool is_shed(RejectReason reason) {
  return reason == RejectReason::kQueueFull ||
         reason == RejectReason::kDisplaced ||
         reason == RejectReason::kShedLowPriority;
}

}  // namespace

SampleService::SampleService(DistributedDatabase db, ServiceOptions options)
    : options_(options), queue_(options.queue_capacity), db_(std::move(db)) {
  counters().health.set(static_cast<std::int64_t>(health_));
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

SampleService::~SampleService() { shutdown(); }

void SampleService::set_health_locked(ServerHealth health) {
  health_ = health;
  counters().health.set(static_cast<std::int64_t>(health));
}

JobTicket SampleService::submit(JobRequest request) {
  auto slot = std::make_shared<detail::JobSlot>();
  PendingJob job;
  job.request = std::move(request);
  job.slot = slot;

  RejectReason admission_reject = RejectReason::kNone;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job.id = next_job_id_++;
    ++stats_.submitted;
    if (!accepting_) {
      admission_reject = RejectReason::kShuttingDown;
    } else if (options_.shed_low_priority_when_degraded &&
               health_ == ServerHealth::kDegraded &&
               job.request.priority == JobPriority::kLow) {
      // Load shedding: while the last preparation needed recovery, keep
      // capacity for normal/high traffic (docs/SERVING.md).
      admission_reject = RejectReason::kShedLowPriority;
    }
  }
  counters().submitted.add();
  JobTicket ticket(job.id, slot);
  if (admission_reject != RejectReason::kNone) {
    reject(slot, admission_reject,
           admission_reject == RejectReason::kShuttingDown
               ? "service is shutting down"
               : "service degraded; low-priority job shed at admission");
    return ticket;
  }

  // Timestamp admission when anyone will consume it: a deadline budget is
  // measured from here, and the queue-wait histogram wants it too.
  if (job.request.deadline_ns != JobRequest::kNoDeadline ||
      telemetry::metrics_enabled()) {
    job.admitted_ns = telemetry::monotonic_ns();
  }

  JobQueue::PushResult pushed = queue_.push(std::move(job));
  if (pushed.displaced.has_value()) {
    reject(pushed.displaced->slot, RejectReason::kDisplaced,
           "displaced from a full queue by a higher-priority arrival");
  }
  if (pushed.accepted) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.admitted;
    }
    counters().admitted.add();
  } else {
    reject(slot, pushed.reason,
           pushed.reason == RejectReason::kQueueFull
               ? "queue at capacity with no lower-priority job to displace"
               : "service is shutting down");
  }
  return ticket;
}

void SampleService::reject(const std::shared_ptr<detail::JobSlot>& slot,
                           RejectReason reason, std::string detail) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    if (is_shed(reason)) ++stats_.shed;
    if (reason == RejectReason::kDeadlineExpired) ++stats_.expired;
  }
  counters().rejected.add();
  if (is_shed(reason)) counters().shed.add();
  if (reason == RejectReason::kDeadlineExpired) counters().expired.add();
  JobOutcome outcome;
  outcome.rejection = JobRejection{reason, std::move(detail)};
  slot->fulfill(std::move(outcome));
}

void SampleService::worker_loop() {
  while (auto job = queue_.pop_wait()) {
    counters().busy.add(1);
    execute(std::move(*job));
    counters().busy.add(-1);
  }
}

bool SampleService::pump_one() {
  auto job = queue_.try_pop();
  if (!job.has_value()) return false;
  execute(std::move(*job));
  return true;
}

JobOutcome SampleService::run(JobRequest request) {
  JobTicket ticket = submit(std::move(request));
  if (options_.workers == 0) {
    // Inline drive: pump until OUR job resolved (earlier queued jobs run
    // first — admission order is service order within a priority band).
    while (!ticket.done() && pump_one()) {
    }
  }
  return ticket.wait();
}

void SampleService::execute(PendingJob job) {
  if (job.admitted_ns != 0 && telemetry::metrics_enabled()) {
    counters().queue_wait_ns.record(telemetry::monotonic_ns() -
                                    job.admitted_ns);
  }
  if (job.request.deadline_ns != JobRequest::kNoDeadline &&
      telemetry::monotonic_ns() - job.admitted_ns >= job.request.deadline_ns) {
    reject(job.slot, RejectReason::kDeadlineExpired,
           "queue wait exceeded the job's deadline budget");
    return;
  }
  telemetry::Span span("serving.job", &counters().job_ns);
  span.tag("job", static_cast<std::int64_t>(job.id));
  span.tag("priority", static_cast<std::int64_t>(job.request.priority));
  JobOutcome outcome = serve(job);
  if (!outcome.ok()) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
  }
  if (!outcome.ok()) counters().rejected.add();
  job.slot->fulfill(std::move(outcome));
}

void SampleService::ensure_ipc_started() {
  if (supervisor_ == nullptr) {
    supervisor_ = std::make_unique<ipc::IpcSupervisor>(db_, options_.ipc);
  }
  if (!supervisor_->started()) {
    auto failure = supervisor_->start();
    QS_REQUIRE(!failure, "ipc transport failed to start: " +
                             (failure ? failure->to_string() : ""));
  }
}

SampleService::BuildOutcome SampleService::build(const PendingJob& job,
                                                 bool use_ipc) {
  // Runs with NO service lock held: the prep_in_flight_ flag (not mu_)
  // excludes concurrent builds and updates, so the schedule executes on a
  // stable database while other threads keep admitting, shedding and
  // answering metadata queries. The supervisor is covered by the same
  // exclusion: only the builder and the (mu_-serialised, prep-excluded)
  // update propagation ever touch it.
  telemetry::Span span("serving.rebuild", &counters().rebuild_ns);
  span.tag("job", static_cast<std::int64_t>(job.id));
  span.tag("faulted", job.request.faults.has_value() ? 1 : 0);
  span.tag("ipc", use_ipc ? 1 : 0);
  BuildOutcome out;
  SamplerOptions sampler_options;
  sampler_options.prep = options_.prep;
  sampler_options.backend = options_.backend;
  if (options_.record_transcripts) {
    sampler_options.transcript = &out.transcript;
  }
  if (use_ipc) {
    try {
      ensure_ipc_started();
      auto prepared = std::make_shared<Prepared>();
      prepared->version = db_.version();
      if (job.request.faults.has_value()) {
        out.faulted = true;
        FaultedRun run = run_ipc_sampler_with_faults(
            db_, options_.mode, *job.request.faults, job.request.retry,
            *supervisor_, sampler_options);
        out.ledger = run.recovery.ledger;
        if (!run.ok()) {
          // Recovery exhaustion is a FAULT outcome, not a transport
          // failure: fall through to classical fallback exactly like the
          // in-process path. The fleet was already repaired by the
          // post-plan respawn pass, so the supervisor stays armed.
          out.failure = run.recovery.failure;
          return out;
        }
        prepared->result = std::move(*run.result);
        prepared->recovered = run.recovery.ledger.injected_faults > 0;
      } else {
        prepared->result =
            run_ipc_sampler(db_, options_.mode, *supervisor_, sampler_options);
      }
      out.prepared = std::move(prepared);
      return out;
    } catch (const ContractViolation& error) {
      // Middle rung of the health ladder (docs/ROBUSTNESS.md): the process
      // transport itself is gone — respawn budget exhausted, handshake
      // failure, unrecoverable wire error. Reap the fleet and retry THIS
      // build in-process: the oracles are the same exact permutations, so
      // the client-visible answer is unchanged; only health degrades.
      if (supervisor_ != nullptr) {
        supervisor_->shutdown();
        supervisor_.reset();
      }
      out.ipc_demoted = true;
      out.ipc_failure = error.what();
      out.faulted = false;
      out.ledger = RecoveryLedger{};
      out.transcript = Transcript{};
    }
  }
  try {
    auto prepared = std::make_shared<Prepared>();
    prepared->version = db_.version();
    if (job.request.faults.has_value()) {
      out.faulted = true;
      FaultedRun run =
          run_sampler_with_faults(db_, options_.mode, *job.request.faults,
                                  job.request.retry, sampler_options);
      out.ledger = run.recovery.ledger;
      if (!run.ok()) {
        out.failure = run.recovery.failure;
        return out;
      }
      prepared->result = std::move(*run.result);
      prepared->recovered = run.recovery.ledger.injected_faults > 0;
    } else {
      prepared->result = options_.mode == QueryMode::kSequential
                             ? run_sequential_sampler(db_, sampler_options)
                             : run_parallel_sampler(db_, sampler_options);
    }
    out.prepared = std::move(prepared);
  } catch (const ContractViolation& error) {
    // Degradation seam (docs/ROBUSTNESS.md): a preparation that dies on a
    // typed contract violation turns into classical fallback, not a dead
    // worker thread.
    out.prepared.reset();
    out.failure = error.what();
  }
  return out;
}

JobResult SampleService::classical_serve_locked(const PendingJob& job,
                                                Rng& rng) {
  // Exact classical fallback, bit-identical to SampleServer::draw's: one
  // full scan per draw, then a weighted draw from the learned counts. Runs
  // under mu_ — the scan bumps the database's mutable audit counters, so
  // it must not overlap a concurrent preparation (and cannot: fallback_
  // and prep_in_flight_ are mutually exclusive).
  JobResult result;
  result.job_id = job.id;
  result.served_version = db_.version();
  for (std::size_t k = 0; k < job.request.num_samples; ++k) {
    const ClassicalScanResult scan = classical_full_scan(db_);
    result.classical_queries += scan.queries;
    std::vector<double> weights(scan.counts.begin(), scan.counts.end());
    result.samples.push_back(rng.weighted_index(weights));
  }
  result.fallback_draws = job.request.num_samples;
  stats_.fallback_draws += job.request.num_samples;
  stats_.classical_queries += result.classical_queries;
  counters().fallback_draws.add(job.request.num_samples);
  return result;
}

JobOutcome SampleService::serve(PendingJob& job) {
  // Per-job determinism: the stream is keyed on (client seed, job id), so
  // replaying the same job ids serially reproduces every sample exactly.
  Rng rng = rng_for_stream(job.request.client_seed, job.id);
  JobOutcome outcome;

  std::unique_lock<std::mutex> lock(mu_);
  if (job.request.faults.has_value() && fallback_) {
    // A job arming a fresh plan gets a fresh chance, mirroring
    // SampleServer::arm_faults: leave the sticky fallback and retry the
    // quantum path on the rebuild this job is about to perform.
    fallback_ = false;
    last_failure_.clear();
  }

  RecoveryLedger job_ledger;
  bool built_here = false;
  std::shared_ptr<const Prepared> prep;
  for (;;) {
    if (db_.total() == 0) {
      outcome.rejection = JobRejection{
          RejectReason::kEmptyStore,
          "the database holds no elements to sample"};
      return outcome;
    }
    if (fallback_) {
      JobResult result = classical_serve_locked(job, rng);
      result.health = health_;
      result.recovery = job_ledger;
      result.coalesced = false;
      ++stats_.completed;
      counters().completed.add();
      return JobOutcome{std::move(result), std::nullopt};
    }
    const std::uint64_t version = db_.version();
    if (prepared_ != nullptr && prepared_->version == version) {
      prep = prepared_;
      break;
    }
    if (prep_in_flight_) {
      // COALESCE: another job is already preparing this version; wait for
      // its publication instead of spending a second oracle budget.
      prep_cv_.wait(lock);
      continue;
    }
    // Become the builder: exactly one per version.
    prep_in_flight_ = true;
    built_here = true;
    const bool use_ipc =
        options_.transport == ipc::TransportKind::kIpc && !ipc_demoted_;
    ++stats_.coalesce_misses;
    counters().misses.add();
    lock.unlock();
    BuildOutcome built = build(job, use_ipc);
    lock.lock();
    prep_in_flight_ = false;
    if (built.ipc_demoted) demote_ipc_locked(built.ipc_failure);
    ledger_.accumulate(built.ledger);
    job_ledger = built.ledger;
    if (built.prepared != nullptr) {
      prepared_ = built.prepared;
      ++preparations_;
      ++stats_.rebuilds;
      counters().rebuilds.add();
      query_cost_ += options_.mode == QueryMode::kSequential
                         ? built.prepared->result.stats.total_sequential()
                         : built.prepared->result.stats.parallel_rounds;
      if (options_.record_transcripts) {
        transcripts_.push_back(std::move(built.transcript));
      }
      // A demoted build degrades even when the in-process retry was clean:
      // the service lost its process transport, and admission should shed
      // low-priority load until clear_faults() re-arms it.
      set_health_locked(built.prepared->recovered || built.ipc_demoted
                            ? ServerHealth::kDegraded
                            : ServerHealth::kHealthy);
    } else {
      fallback_ = true;
      last_failure_ = built.failure;
      set_health_locked(ServerHealth::kFallback);
    }
    prep_cv_.notify_all();
    // Re-check under the SAME critical section: on success the version is
    // unchanged (updates wait on prep_in_flight_), so the next iteration
    // takes the published preparation; on failure it takes the fallback.
  }

  const bool coalesced = !built_here;
  if (coalesced) {
    ++stats_.coalesce_hits;
    counters().hits.add();
  }
  const ServerHealth health_at_serve = health_;
  lock.unlock();

  // Draws need no lock: the preparation is immutable and shared, and the
  // measurement reads (never consumes) the snapshot — re-measuring the
  // deterministic preparation is exactly what the serial server does when
  // it re-prepares per draw.
  JobResult result;
  result.job_id = job.id;
  result.served_version = prep->version;
  result.prep_stats = prep->result.stats;
  result.health = health_at_serve;
  result.recovery = job_ledger;
  result.coalesced = coalesced;
  result.samples.reserve(job.request.num_samples);
  for (std::size_t k = 0; k < job.request.num_samples; ++k) {
    result.samples.push_back(
        measure_register(prep->result.state, prep->result.registers.elem, rng));
  }

  lock.lock();
  stats_.quantum_draws += job.request.num_samples;
  ++stats_.completed;
  lock.unlock();
  counters().quantum_draws.add(job.request.num_samples);
  counters().completed.add();
  outcome.result = std::move(result);
  return outcome;
}

void SampleService::demote_ipc_locked(const std::string& why) {
  ipc_demoted_ = true;
  last_failure_ = "ipc transport demoted: " + why;
  counters().ipc_demotions.add();
}

void SampleService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
  }
  queue_.close();
  // Workers drain every admitted job before pop_wait() returns nullopt.
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  // No workers (or none left): resolve whatever is still queued with a
  // TYPED rejection — an admitted job never just disappears.
  while (auto job = queue_.try_pop()) {
    reject(job->slot, RejectReason::kShuttingDown,
           "service shut down before the job was dispatched");
  }
  // The pool is joined and the queue drained, so no build can be running:
  // take the fleet out from under mu_, then drain and reap it outside the
  // lock (the graceful drain can wait out shutdown_timeout_ms).
  std::unique_ptr<ipc::IpcSupervisor> supervisor;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    supervisor = std::move(supervisor_);
  }
  if (supervisor != nullptr) supervisor->shutdown();
}

void SampleService::propagate_update_locked(std::size_t machine,
                                            std::size_t element,
                                            std::int64_t delta) {
  // Called under mu_ with no preparation in flight, so the supervisor is
  // ours to touch. The database mutation already happened; the worker must
  // follow or be replaced — a stale worker would serve a WRONG permutation.
  if (supervisor_ == nullptr || !supervisor_->started() || ipc_demoted_) {
    return;
  }
  auto failure = supervisor_->update(
      machine, static_cast<std::uint64_t>(element), delta);
  if (!failure) return;
  // Self-heal: the respawn handshake ships the machine's CURRENT counts,
  // which already include this mutation.
  if (auto respawn_failure = supervisor_->respawn(machine)) {
    demote_ipc_locked("update propagation to machine " +
                      std::to_string(machine) + " failed (" +
                      failure->to_string() + ") and respawn failed (" +
                      respawn_failure->to_string() + ")");
    set_health_locked(ServerHealth::kDegraded);
    supervisor_->shutdown();
    supervisor_.reset();
  }
}

void SampleService::insert(std::size_t machine, std::size_t element) {
  std::unique_lock<std::mutex> lock(mu_);
  prep_cv_.wait(lock, [&] { return !prep_in_flight_; });
  db_.insert(machine, element);
  propagate_update_locked(machine, element, +1);
  if (prepared_ != nullptr) {
    prepared_.reset();  // in-flight jobs holding the snapshot finish on it
    ++stats_.invalidations;
    counters().invalidations.add();
  }
}

void SampleService::erase(std::size_t machine, std::size_t element) {
  std::unique_lock<std::mutex> lock(mu_);
  prep_cv_.wait(lock, [&] { return !prep_in_flight_; });
  db_.erase(machine, element);
  propagate_update_locked(machine, element, -1);
  if (prepared_ != nullptr) {
    prepared_.reset();
    ++stats_.invalidations;
    counters().invalidations.add();
  }
}

void SampleService::clear_faults() {
  const std::lock_guard<std::mutex> lock(mu_);
  fallback_ = false;
  ipc_demoted_ = false;  // give a demoted IPC transport a fresh start
  last_failure_.clear();
  set_health_locked(ServerHealth::kHealthy);
}

ipc::TransportKind SampleService::active_transport() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return options_.transport == ipc::TransportKind::kIpc && !ipc_demoted_
             ? ipc::TransportKind::kIpc
             : ipc::TransportKind::kInProcess;
}

ServerHealth SampleService::health() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

std::string SampleService::last_failure() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_failure_;
}

ServingStats SampleService::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

RecoveryLedger SampleService::recovery_ledger() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

std::uint64_t SampleService::total_query_cost() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return query_cost_;
}

std::uint64_t SampleService::preparations() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return preparations_;
}

std::uint64_t SampleService::version() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return db_.version();
}

std::size_t SampleService::queue_depth() const { return queue_.depth(); }

std::size_t SampleService::total_elements() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(db_.total());
}

std::vector<Transcript> SampleService::transcripts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return transcripts_;
}

}  // namespace qs::serving
