// FaultyTransportSession: deterministic fault injection at the transport
// interface, with the real TransportSession as the source of truth.
//
// Wraps a TransportSession and a FaultPlan behind an ATTEMPT interface: an
// attempt either succeeds — and only then drives the underlying protocol
// state machine through the full legal transition (send+receive, or a
// complete collective round) — or fails BEFORE any transition happens.
// A faulted bundle therefore never half-leaves the coordinator: injected
// faults cannot put the session into a state Section 3 forbids, and the
// sequence of successful attempts is protocol-clean by construction
// (TransportSession::validate_schedule accepts it, always).
//
// The session keeps a logical clock in schedule events: every attempt
// costs one event, stragglers add their latency, and backoff waits advance
// it via wait(). Crash durations and breaker cooldowns are measured on
// this clock, so the whole fault/recovery timeline is integer-exact and
// replayable (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <vector>

#include "distdb/transport.hpp"
#include "faults/fault_plan.hpp"

namespace qs {

enum class AttemptResult : std::uint8_t {
  kOk,           // legal transition performed on the underlying session
  kDropped,      // bundle (or reply) lost in transit; no transition
  kMachineDown,  // target machine crashed and has not restarted yet
  kTransient,    // the oracle invocation itself failed once
};

struct Attempt {
  AttemptResult result = AttemptResult::kOk;
  /// Extra latency (schedule events) a straggler added on success.
  std::uint64_t delay = 0;
  /// The machine at fault when attributable (sequential target, or the
  /// crashed machine that stalled a collective round); == the session's
  /// machine count when no single machine is to blame.
  std::size_t machine = 0;
};

/// The attempt interface the recovery planner drives. Two implementations:
/// FaultyTransportSession (below) simulates faults against the in-process
/// TransportSession, and IpcAttemptSession (faults/ipc_chaos.hpp) realises
/// the same fault plan against REAL worker processes — mirroring this
/// class's logical-clock semantics event for event, so the two recoveries
/// are comparable attempt by attempt.
class AttemptSession {
 public:
  virtual ~AttemptSession() = default;

  /// Attempt the next primary sequential event against `machine`.
  virtual Attempt attempt_sequential(std::size_t machine) = 0;

  /// Attempt one collective round (all machines must be up).
  virtual Attempt attempt_parallel_round() = 0;

  /// Backoff: advance the logical clock without attempting anything.
  virtual void wait(std::uint64_t events) = 0;

  virtual std::uint64_t clock() const = 0;
  /// Successful (primary) events completed — the fault plan's event index.
  virtual std::uint64_t primary_events() const = 0;

  /// Injected-fault counts (plan activations, NOT failed attempts: one
  /// crash activation may fail many attempts while the machine is down).
  virtual std::uint64_t injected_total() const = 0;
  virtual std::uint64_t injected(FaultKind kind) const = 0;
};

class FaultyTransportSession final : public AttemptSession {
 public:
  FaultyTransportSession(std::size_t machines, const FaultPlan& plan);

  /// Attempt the next primary sequential event against `machine`: on
  /// success the underlying session performs the full legal send+receive
  /// pair.
  Attempt attempt_sequential(std::size_t machine) override;

  Attempt attempt_parallel_round() override;

  void wait(std::uint64_t events) override { clock_ += events; }

  bool machine_up(std::size_t machine) const;
  /// Clock value at which `machine` restarts (== clock() when up).
  std::uint64_t up_at(std::size_t machine) const;

  std::uint64_t clock() const override { return clock_; }
  std::uint64_t primary_events() const override { return primary_events_; }

  /// The protocol state machine of record.
  const TransportSession& session() const noexcept { return session_; }

  std::uint64_t injected_total() const override { return injected_total_; }
  std::uint64_t injected(FaultKind kind) const override;
  /// Plan entries whose slot the run never reached.
  std::size_t pending_faults() const noexcept {
    return plan_.size() - next_plan_entry_;
  }

 private:
  void activate_pending();

  std::size_t machines_;
  FaultPlan plan_;
  TransportSession session_;
  std::uint64_t clock_ = 0;
  std::uint64_t primary_events_ = 0;
  std::size_t next_plan_entry_ = 0;
  /// clock value until which each machine is down (≤ clock_ means up).
  std::vector<std::uint64_t> down_until_;
  /// Armed one-shot failures (drop/transient) for the CURRENT slot, FIFO.
  std::vector<FaultKind> armed_oneshots_;
  std::size_t next_oneshot_ = 0;
  /// Armed straggler latency for the current slot.
  std::uint64_t armed_delay_ = 0;
  std::uint64_t injected_total_ = 0;
  std::vector<std::uint64_t> injected_by_kind_;
};

}  // namespace qs
