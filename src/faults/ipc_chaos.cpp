#include "faults/ipc_chaos.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "distdb/ipc/ipc_channel.hpp"
#include "sampling/schedule.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs {

FaultKind classify_peer_failure(ipc::PeerFailureKind kind) {
  switch (kind) {
    case ipc::PeerFailureKind::kExited:
    case ipc::PeerFailureKind::kKilled:
    case ipc::PeerFailureKind::kHung:
    case ipc::PeerFailureKind::kSpawnFailed:
      return FaultKind::kMachineCrash;
    case ipc::PeerFailureKind::kTornFrame:
    case ipc::PeerFailureKind::kWireError:
      return FaultKind::kDropBundle;
  }
  return FaultKind::kMachineCrash;
}

IpcAttemptSession::IpcAttemptSession(ipc::IpcSupervisor& supervisor,
                                     const FaultPlan& plan)
    : supervisor_(supervisor),
      plan_(plan),
      machines_(supervisor.num_machines()),
      down_until_(machines_, 0),
      injected_by_kind_(7, 0),
      needs_probe_(machines_, false) {
  QS_REQUIRE(supervisor_.started(),
             "ipc attempt session needs a started supervisor");
  for (const auto& e : plan_.events()) {
    const bool targeted = e.kind == FaultKind::kMachineCrash ||
                          e.kind == FaultKind::kProcessKill ||
                          e.kind == FaultKind::kProcessHang;
    QS_REQUIRE(!targeted || e.machine < machines_,
               std::string("fault plan ") + qs::to_string(e.kind) +
                   "s machine " + std::to_string(e.machine) +
                   " but the supervisor has only " +
                   std::to_string(machines_) + " workers");
  }
}

std::uint64_t IpcAttemptSession::injected(FaultKind kind) const {
  return injected_by_kind_.at(static_cast<std::size_t>(kind));
}

void IpcAttemptSession::realize_crash(const FaultEvent& e) {
  // kProcessHang really SIGSTOPs (the watchdog must escalate to SIGKILL on
  // its own); kill and plain crash SIGKILL outright. Either way the logical
  // down-window is what the planner sees — identical to the simulation.
  if (supervisor_.peer_alive(e.machine)) {
    if (e.kind == FaultKind::kProcessHang) {
      supervisor_.stop_peer(e.machine);
    } else {
      supervisor_.kill_peer(e.machine);
    }
    needs_probe_[e.machine] = true;
  }
  down_until_[e.machine] =
      std::max(down_until_[e.machine], clock_ + 1 + e.duration);
}

void IpcAttemptSession::realize_torn(std::size_t preferred_machine) {
  // Arm a corrupted-checksum reply and collect it with a real ping, so the
  // CRC check fires against bytes that crossed a real socket. Falls back to
  // any alive machine; if none is alive the fault stays logical-only.
  std::size_t target = machines_;
  if (preferred_machine < machines_ &&
      supervisor_.peer_alive(preferred_machine)) {
    target = preferred_machine;
  } else {
    for (std::size_t j = 0; j < machines_; ++j) {
      if (supervisor_.peer_alive(j)) {
        target = j;
        break;
      }
    }
  }
  if (target == machines_) return;
  if (auto failure = supervisor_.arm_fault(
          target, ipc::ArmedFaultMode::kCorruptChecksum)) {
    observed_.push_back(std::move(*failure));
    return;
  }
  auto failure = supervisor_.ping(target);
  QS_REQUIRE(failure &&
                 failure->kind == ipc::PeerFailureKind::kTornFrame,
             "armed checksum corruption was not observed as a torn frame");
  observed_.push_back(std::move(*failure));
}

void IpcAttemptSession::ensure_alive(std::size_t machine) {
  if (supervisor_.peer_alive(machine)) return;
  auto failure = supervisor_.respawn(machine);
  QS_REQUIRE(!failure, "ipc chaos could not respawn machine " +
                           std::to_string(machine) + ": " +
                           (failure ? failure->to_string() : ""));
}

void IpcAttemptSession::activate_pending() {
  const auto& events = plan_.events();
  while (next_plan_entry_ < events.size() &&
         events[next_plan_entry_].event <= primary_events_) {
    const FaultEvent& e = events[next_plan_entry_];
    ++next_plan_entry_;
    ++injected_total_;
    ++injected_by_kind_[static_cast<std::size_t>(e.kind)];
    switch (e.kind) {
      case FaultKind::kMachineCrash:
      case FaultKind::kProcessKill:
      case FaultKind::kProcessHang:
        realize_crash(e);
        break;
      case FaultKind::kDelay:
        armed_delay_ += e.duration;
        break;
      case FaultKind::kDropBundle:
      case FaultKind::kOracleTransient:
      case FaultKind::kTornFrame:
        armed_oneshots_.push_back(e.kind);
        break;
    }
  }
}

Attempt IpcAttemptSession::attempt_sequential(std::size_t machine) {
  QS_REQUIRE(machine < machines_,
             "attempt_sequential: machine " + std::to_string(machine) +
                 " out of range (n=" + std::to_string(machines_) + ")");
  activate_pending();
  ++clock_;
  if (next_oneshot_ < armed_oneshots_.size()) {
    const FaultKind kind = armed_oneshots_[next_oneshot_++];
    if (kind == FaultKind::kTornFrame) realize_torn(machine);
    return {kind == FaultKind::kOracleTransient ? AttemptResult::kTransient
                                                : AttemptResult::kDropped,
            0, machine};
  }
  if (down_until_[machine] > clock_) {
    if (needs_probe_[machine]) {
      // One real probe per realised crash: the ping either hits a corpse
      // (EOF → reap, classify killed/exited) or a SIGSTOP'd process (timeout
      // → watchdog SIGKILLs and reaps → hung). Both classify as a machine
      // crash, which is exactly what the planner already decided.
      needs_probe_[machine] = false;
      if (auto failure = supervisor_.ping(machine)) {
        QS_REQUIRE(classify_peer_failure(failure->kind) ==
                       FaultKind::kMachineCrash,
                   "probe of a killed worker classified as '" +
                       failure->to_string() + "', not a machine crash");
        observed_.push_back(std::move(*failure));
      }
    }
    return {AttemptResult::kMachineDown, 0, machine};
  }
  ensure_alive(machine);
  ++primary_events_;
  const std::uint64_t delay = armed_delay_;
  armed_delay_ = 0;
  armed_oneshots_.clear();
  next_oneshot_ = 0;
  clock_ += delay;
  return {AttemptResult::kOk, delay, machine};
}

Attempt IpcAttemptSession::attempt_parallel_round() {
  activate_pending();
  ++clock_;
  if (next_oneshot_ < armed_oneshots_.size()) {
    const FaultKind kind = armed_oneshots_[next_oneshot_++];
    if (kind == FaultKind::kTornFrame) realize_torn(machines_);
    return {kind == FaultKind::kOracleTransient ? AttemptResult::kTransient
                                                : AttemptResult::kDropped,
            0, machines_};
  }
  for (std::size_t j = 0; j < machines_; ++j) {
    if (down_until_[j] > clock_) {
      if (needs_probe_[j]) {
        needs_probe_[j] = false;
        if (auto failure = supervisor_.ping(j)) {
          QS_REQUIRE(classify_peer_failure(failure->kind) ==
                         FaultKind::kMachineCrash,
                     "probe of a killed worker classified as '" +
                         failure->to_string() + "', not a machine crash");
          observed_.push_back(std::move(*failure));
        }
      }
      return {AttemptResult::kMachineDown, 0, j};
    }
  }
  // A collective round touches every worker; all must be running.
  for (std::size_t j = 0; j < machines_; ++j) ensure_alive(j);
  ++primary_events_;
  const std::uint64_t delay = armed_delay_;
  armed_delay_ = 0;
  armed_oneshots_.clear();
  next_oneshot_ = 0;
  clock_ += delay;
  return {AttemptResult::kOk, delay, machines_};
}

SamplerResult run_ipc_sampler(const DistributedDatabase& db, QueryMode mode,
                              ipc::IpcSupervisor& supervisor,
                              const SamplerOptions& options) {
  QS_REQUIRE(supervisor.started(), "run_ipc_sampler needs a started supervisor");
  QS_REQUIRE(supervisor.num_machines() == db.num_machines(),
             "supervisor/database machine count mismatch");
  ipc::IpcOracleChannel channel(supervisor);
  SamplerOptions ipc_options = options;
  ipc_options.channel = &channel;
  return mode == QueryMode::kSequential
             ? run_sequential_sampler(db, ipc_options)
             : run_parallel_sampler(db, ipc_options);
}

FaultedRun run_ipc_sampler_with_faults(const DistributedDatabase& db,
                                       QueryMode mode, const FaultPlan& plan,
                                       const RetryPolicy& policy,
                                       ipc::IpcSupervisor& supervisor,
                                       const SamplerOptions& options) {
  QS_REQUIRE(supervisor.started(),
             "run_ipc_sampler_with_faults needs a started supervisor");
  QS_REQUIRE(supervisor.num_machines() == db.num_machines(),
             "supervisor/database machine count mismatch");
  static auto& t_ns = telemetry::histogram("faults.ipc_recovered_run.ns");
  telemetry::Span span("faults.ipc_recovered_run", &t_ns);
  const Transcript schedule = compile_schedule(db, mode);

  // Phase 1: plan recovery with REAL fault realisation — kills, hangs,
  // watchdog probes, respawns, torn frames — but no amplitude movement.
  IpcAttemptSession session(supervisor, plan);
  RecoveryOutcome recovery =
      plan_recovery(schedule, db.num_machines(), session, policy);

  // Repair the fleet: any worker still dead from a late plan entry is
  // respawned so the replay (and subsequent serving) sees a full roster.
  for (std::size_t j = 0; j < supervisor.num_machines(); ++j) {
    if (!supervisor.peer_alive(j)) {
      auto failure = supervisor.respawn(j);
      QS_REQUIRE(!failure, "post-plan repair could not respawn machine " +
                               std::to_string(j) + ": " +
                               (failure ? failure->to_string() : ""));
    }
  }
  if (!recovery.ok) {
    FaultedRun run;
    run.recovery = std::move(recovery);
    return run;
  }

  // Phase 2: replay the recovered order with the amplitudes moving over the
  // sockets. The permutations are exact, so this is bit-identical to the
  // simulated recovered run AND to the fault-free run.
  ipc::IpcOracleChannel channel(supervisor);
  SamplerOptions ipc_options = options;
  ipc_options.channel = &channel;
  return run_recovered_sampler(db, mode, std::move(recovery), ipc_options);
}

}  // namespace qs
