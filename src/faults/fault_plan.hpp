// Deterministic fault plans: WHAT goes wrong, WHERE in the schedule.
//
// The paper's cost model (Section 3, Thms 4.3/4.5) assumes a lossless
// transport: every register bundle the coordinator sends comes back and
// every machine oracle O_j is always available. A FaultPlan is a finite,
// fully deterministic deviation from that assumption, addressed by PRIMARY
// EVENT INDEX — the position in the recovered oracle transcript at which
// the fault activates — so the same plan replayed against the same
// schedule always injects the same faults (same seed ⇒ same plan ⇒ same
// recovery ⇒ same transcript; docs/ROBUSTNESS.md).
//
// Four fault kinds model the transport-level failure modes:
//
//   drop       the bundle (or its reply) is lost: the attempt at the slot
//              fails once, the protocol state machine never transitions;
//   delay      a straggler: the attempt succeeds but consumes `duration`
//              extra schedule events of latency (parallel-round straggler
//              or a slow sequential round trip);
//   crash      machine `machine` goes down when the slot is first
//              attempted and RESTARTS `duration` schedule events later —
//              restart-with-identical-data, so a re-issued query is
//              exactly re-executable (zero-error AA is what makes the
//              recovered run provably bit-identical);
//   transient  one oracle invocation fails (decoherence, a busy site);
//              the next attempt sees a healthy machine.
//
// Plans serialize to a line-oriented wire format (`# dqs-fault-plan-v1`)
// so a failing grid point in CI can be uploaded as an artifact and
// replayed locally with `dqs_chaos --plan FILE`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qs {

enum class FaultKind : std::uint8_t {
  kDropBundle,       // one lost send/reply at the slot
  kDelay,            // straggler: success plus `duration` events of latency
  kMachineCrash,     // `machine` down for `duration` events, then restarts
  kOracleTransient,  // one failed oracle invocation at the slot
  // Process-level kinds, realised by the ipc chaos harness against REAL
  // worker processes (SIGKILL / SIGSTOP / a deliberately corrupted frame).
  // Their recovery semantics intentionally coincide with the transport-level
  // kinds above — kill/hang recover like a crash, a torn frame like a drop —
  // so one plan replays on both the simulated and the ipc transport and the
  // recovered transcripts can be compared event for event.
  kProcessKill,      // worker SIGKILLed; down `duration` events, respawned
  kProcessHang,      // worker SIGSTOPped; watchdog kills + respawns likewise
  kTornFrame,        // one reply arrives with a bad checksum and is discarded
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  /// Primary (recovered-transcript) event index at which the fault
  /// activates. Drop/delay/transient hit the attempt landing that slot;
  /// a crash takes `machine` down from the first attempt at the slot.
  std::uint64_t event = 0;
  FaultKind kind = FaultKind::kDropBundle;
  /// Crash target; unused (0) for the other kinds, which hit whichever
  /// attempt occupies the slot.
  std::size_t machine = 0;
  /// Crash down-time / delay latency, in schedule events. ≥ 1 for those
  /// kinds, unused (0) for drop/transient.
  std::uint64_t duration = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Per-slot activation probabilities and size caps for random plans. The
/// defaults produce a handful of faults across a typical d·2n sequential
/// schedule — enough to exercise every recovery path without drowning the
/// run in backoff.
struct FaultProfile {
  double drop_rate = 0.05;
  double delay_rate = 0.04;
  double crash_rate = 0.03;
  double transient_rate = 0.05;
  // Process-level rates, 0 by default. They are rolled AFTER the four
  // transport-level edges, so enabling them never perturbs the events a
  // given seed produces for the defaults (plan reproducibility across
  // versions is part of the artifact contract).
  double process_kill_rate = 0.0;
  double process_hang_rate = 0.0;
  double torn_frame_rate = 0.0;
  std::uint64_t max_crash_duration = 6;  ///< events; drawn uniformly ≥ 1
  std::uint64_t max_delay = 4;           ///< events; drawn uniformly ≥ 1
};

class FaultPlan {
 public:
  FaultPlan() = default;
  /// Scripted plan. Events are sorted by (event, kind, machine) so plans
  /// compare and serialize canonically.
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Seeded random plan over `schedule_events` primary slots (common/rng —
  /// the same xoshiro generator every experiment draws from, so the plan
  /// is reproducible from a printed seed). At most one fault per slot.
  static FaultPlan random(std::uint64_t seed, std::uint64_t schedule_events,
                          std::size_t machines,
                          const FaultProfile& profile = {});

  const std::vector<FaultEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }

  /// `# dqs-fault-plan-v1` wire format: one `<kind> event=E machine=J
  /// duration=D` line per fault. parse_fault_plan() inverts it exactly.
  std::string to_string() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

/// Parse the wire format (blank lines and `#` comments ignored). Throws
/// ContractViolation naming the offending line on malformed input.
FaultPlan parse_fault_plan(const std::string& text);

}  // namespace qs
