// Fault injection and recovery over REAL worker processes.
//
// IpcAttemptSession implements the recovery planner's AttemptSession
// interface against an IpcSupervisor: the same deterministic fault plan that
// FaultyTransportSession simulates is REALISED here with genuine process
// boundaries — kProcessKill SIGKILLs the worker, kProcessHang SIGSTOPs it
// (the supervisor's watchdog must detect the stopped process and escalate),
// kTornFrame arms the worker to corrupt a real reply's checksum. The
// session mirrors FaultyTransportSession's logical-clock semantics EXACTLY
// — every Attempt outcome is a function of the plan and the clock, never of
// wall-time — so plan_recovery over this session produces the SAME
// recovered schedule as the simulation (asserted per grid point by
// `dqs_chaos --ipc`), while the real side effects exercise the process
// machinery end to end.
//
// Execution is two-phase, matching run_sampler_with_faults:
//   1. plan_recovery drives this session: signals fly, the watchdog reaps,
//      workers respawn — but no amplitudes move (the dry-run contract).
//   2. run_recovered_sampler replays the recovered order while an
//      IpcOracleChannel moves the real amplitudes over the sockets.
// Oracles are exact permutations, so the final result is bit-identical to
// the fault-free in-process run.
#pragma once

#include "distdb/ipc/supervisor.hpp"
#include "faults/faulty_transport.hpp"
#include "faults/recovery.hpp"

namespace qs {

/// Map a process/wire-level failure into the fault taxonomy the retry
/// policy, circuit breaker and recovery planner already understand: a dead,
/// hung or unspawnable worker recovers like a crashed machine; a torn or
/// malformed frame recovers like a dropped bundle.
FaultKind classify_peer_failure(ipc::PeerFailureKind kind);

class IpcAttemptSession final : public AttemptSession {
 public:
  /// The supervisor must be started and sized to the plan's machine set.
  /// Mirrors FaultyTransportSession(machines, plan) logically.
  IpcAttemptSession(ipc::IpcSupervisor& supervisor, const FaultPlan& plan);

  Attempt attempt_sequential(std::size_t machine) override;
  Attempt attempt_parallel_round() override;
  void wait(std::uint64_t events) override { clock_ += events; }

  std::uint64_t clock() const override { return clock_; }
  std::uint64_t primary_events() const override { return primary_events_; }
  std::uint64_t injected_total() const override { return injected_total_; }
  std::uint64_t injected(FaultKind kind) const override;

  /// Every PeerFailure the real transport reported while realising the
  /// plan (probes of killed/stopped workers, torn replies). Diagnostics;
  /// the Attempt outcomes never depend on these.
  const std::vector<ipc::PeerFailure>& observed_failures() const noexcept {
    return observed_;
  }

 private:
  void activate_pending();
  /// SIGKILL or SIGSTOP the target worker, arming the first-down-attempt
  /// probe that lets the watchdog observe the corpse.
  void realize_crash(const FaultEvent& e);
  /// Arm a real corrupted-checksum reply on an alive machine and collect it
  /// with a ping, so the torn frame crosses a real socket.
  void realize_torn(std::size_t preferred_machine);
  /// Respawn the worker if its logical down-time elapsed but the process is
  /// still dead. Throws ContractViolation if the respawn budget is gone.
  void ensure_alive(std::size_t machine);

  ipc::IpcSupervisor& supervisor_;
  FaultPlan plan_;
  std::size_t machines_;
  std::uint64_t clock_ = 0;
  std::uint64_t primary_events_ = 0;
  std::size_t next_plan_entry_ = 0;
  std::vector<std::uint64_t> down_until_;
  std::vector<FaultKind> armed_oneshots_;
  std::size_t next_oneshot_ = 0;
  std::uint64_t armed_delay_ = 0;
  std::uint64_t injected_total_ = 0;
  std::vector<std::uint64_t> injected_by_kind_;
  /// Machines whose crash was realised but not yet probed: the first down
  /// attempt pays one REAL probe so the watchdog classifies the corpse.
  std::vector<bool> needs_probe_;
  std::vector<ipc::PeerFailure> observed_;
};

/// Fault-free sampler run over the ipc transport: every oracle application
/// is a framed round-trip to a worker process. Bit-identical to the
/// in-process run. The supervisor must be started.
SamplerResult run_ipc_sampler(const DistributedDatabase& db, QueryMode mode,
                              ipc::IpcSupervisor& supervisor,
                              const SamplerOptions& options = {});

/// The ipc counterpart of run_sampler_with_faults: plan recovery over an
/// IpcAttemptSession (real kills, hangs and torn frames), repair the worker
/// fleet, then replay the recovered schedule with the amplitudes moving
/// over the sockets. The supervisor must be started.
FaultedRun run_ipc_sampler_with_faults(const DistributedDatabase& db,
                                       QueryMode mode, const FaultPlan& plan,
                                       const RetryPolicy& policy,
                                       ipc::IpcSupervisor& supervisor,
                                       const SamplerOptions& options = {});

}  // namespace qs
