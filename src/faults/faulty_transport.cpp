#include "faults/faulty_transport.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace qs {

FaultyTransportSession::FaultyTransportSession(std::size_t machines,
                                               const FaultPlan& plan)
    : machines_(machines),
      plan_(plan),
      session_(machines),
      down_until_(machines, 0),
      injected_by_kind_(7, 0) {
  for (const auto& e : plan_.events()) {
    const bool targeted = e.kind == FaultKind::kMachineCrash ||
                          e.kind == FaultKind::kProcessKill ||
                          e.kind == FaultKind::kProcessHang;
    QS_REQUIRE(!targeted || e.machine < machines_,
               std::string("fault plan ") + qs::to_string(e.kind) +
                   "s machine " + std::to_string(e.machine) +
                   " but the session has only " + std::to_string(machines_) +
                   " machines");
  }
}

void FaultyTransportSession::activate_pending() {
  const auto& events = plan_.events();
  while (next_plan_entry_ < events.size() &&
         events[next_plan_entry_].event <= primary_events_) {
    const FaultEvent& e = events[next_plan_entry_];
    ++next_plan_entry_;
    ++injected_total_;
    ++injected_by_kind_[static_cast<std::size_t>(e.kind)];
    switch (e.kind) {
      case FaultKind::kMachineCrash:
      case FaultKind::kProcessKill:
      case FaultKind::kProcessHang:
        // Down from NOW (the first attempt at the slot) for `duration`
        // events; overlapping crashes extend, never shorten. The process
        // kinds simulate identically to a crash here — their difference is
        // HOW the ipc harness realises them (SIGKILL vs SIGSTOP), which the
        // logical clock cannot see.
        down_until_[e.machine] =
            std::max(down_until_[e.machine], clock_ + 1 + e.duration);
        break;
      case FaultKind::kDelay:
        armed_delay_ += e.duration;
        break;
      case FaultKind::kDropBundle:
      case FaultKind::kOracleTransient:
      case FaultKind::kTornFrame:
        armed_oneshots_.push_back(e.kind);
        break;
    }
  }
}

Attempt FaultyTransportSession::attempt_sequential(std::size_t machine) {
  QS_REQUIRE(machine < machines_,
             "attempt_sequential: machine " + std::to_string(machine) +
                 " out of range (n=" + std::to_string(machines_) + ")");
  activate_pending();
  ++clock_;  // the attempt itself consumes one schedule event
  if (next_oneshot_ < armed_oneshots_.size()) {
    const FaultKind kind = armed_oneshots_[next_oneshot_++];
    return {kind == FaultKind::kOracleTransient ? AttemptResult::kTransient
                                                : AttemptResult::kDropped,
            0, machine};
  }
  if (down_until_[machine] > clock_) {
    return {AttemptResult::kMachineDown, 0, machine};
  }
  // Success: the full legal protocol transition, on the session of record.
  session_.send_sequential(machine);
  session_.receive_sequential(machine);
  ++primary_events_;
  const std::uint64_t delay = armed_delay_;
  armed_delay_ = 0;
  armed_oneshots_.clear();
  next_oneshot_ = 0;
  clock_ += delay;
  return {AttemptResult::kOk, delay, machine};
}

Attempt FaultyTransportSession::attempt_parallel_round() {
  activate_pending();
  ++clock_;
  if (next_oneshot_ < armed_oneshots_.size()) {
    const FaultKind kind = armed_oneshots_[next_oneshot_++];
    return {kind == FaultKind::kOracleTransient ? AttemptResult::kTransient
                                                : AttemptResult::kDropped,
            0, machines_};
  }
  // A collective round needs EVERY machine: one crashed site stalls the
  // round (the straggler-amplification of synchronous collectives).
  for (std::size_t j = 0; j < machines_; ++j) {
    if (down_until_[j] > clock_) return {AttemptResult::kMachineDown, 0, j};
  }
  session_.begin_parallel_round();
  session_.end_parallel_round();
  ++primary_events_;
  const std::uint64_t delay = armed_delay_;
  armed_delay_ = 0;
  armed_oneshots_.clear();
  next_oneshot_ = 0;
  clock_ += delay;
  return {AttemptResult::kOk, delay, machines_};
}

bool FaultyTransportSession::machine_up(std::size_t machine) const {
  QS_REQUIRE(machine < machines_, "machine index out of range");
  return down_until_[machine] <= clock_;
}

std::uint64_t FaultyTransportSession::up_at(std::size_t machine) const {
  QS_REQUIRE(machine < machines_, "machine index out of range");
  return std::max(down_until_[machine], clock_);
}

std::uint64_t FaultyTransportSession::injected(FaultKind kind) const {
  return injected_by_kind_.at(static_cast<std::size_t>(kind));
}

}  // namespace qs
