// Retry/backoff policy, per-machine circuit breaker, and the recovery
// ledger that keeps Thm 4.3/4.5 budget accounting auditable under faults.
//
// All time here is logical — measured in SCHEDULE EVENTS on the
// FaultyTransportSession clock, never wall clock — so recovery decisions
// are a pure function of (schedule, plan, policy) and two runs with the
// same inputs back off identically (determinism is what lets dqs_chaos
// assert bit-identical recovery; docs/ROBUSTNESS.md).
//
// Accounting contract: every FAILED attempt (lost bundle, down machine,
// transient oracle) is charged to the RecoveryLedger's own QueryStats,
// never to the run's primary ledger. The primary transcript and ledger of
// a recovered run therefore match the fault-free run exactly, so the
// dqs_verify query-budget pass (d·2n sequential / d·4 parallel closed
// forms) still certifies it, and the recovery cost is reported separately
// instead of silently voiding the theorems.
#pragma once

#include <cstdint>

#include "distdb/query_stats.hpp"

namespace qs {

struct RetryPolicy {
  /// Attempts per primary event per work-list visit before the executor
  /// defers the event (sequential forward blocks) or keeps backing off
  /// (order-fixed adjoint blocks and parallel rounds).
  std::uint32_t max_attempts = 8;
  /// Deterministic exponential backoff after the k-th consecutive failure:
  /// wait min(backoff_base << (k-1), backoff_max) schedule events.
  std::uint64_t backoff_base = 1;
  std::uint64_t backoff_max = 16;
  /// Consecutive failures of one machine that open its breaker; while
  /// open, the executor stops attempting that machine (no failed-attempt
  /// charges) until `breaker_cooldown` events pass and one half-open
  /// probe is allowed.
  std::uint32_t breaker_threshold = 4;
  std::uint64_t breaker_cooldown = 8;
  /// Total schedule events one primary event may spend waiting (backoff
  /// plus stalls) before recovery gives up with a typed failure. Bounds
  /// termination even against adversarial scripted plans.
  std::uint64_t max_wait_events = 4096;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Per-machine breaker: closed → open after `breaker_threshold`
/// consecutive failures, half-open probe after `breaker_cooldown` logical
/// events, closed again on the first success. Purely deterministic.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const RetryPolicy& policy) noexcept
      : threshold_(policy.breaker_threshold),
        cooldown_(policy.breaker_cooldown) {}

  /// May this machine be attempted at logical time `now`? Transitions
  /// open → half-open when the cooldown has elapsed.
  bool allows(std::uint64_t now) noexcept {
    if (state_ == State::kOpen && now >= probe_at_) state_ = State::kHalfOpen;
    return state_ != State::kOpen;
  }

  void on_success() noexcept {
    state_ = State::kClosed;
    consecutive_failures_ = 0;
  }

  /// Returns true when this failure OPENED the breaker (for the ledger
  /// and the faults.breaker.open gauge).
  bool on_failure(std::uint64_t now) noexcept {
    ++consecutive_failures_;
    const bool tripped = state_ == State::kHalfOpen ||
                         (state_ == State::kClosed &&
                          consecutive_failures_ >= threshold_);
    if (tripped) {
      state_ = State::kOpen;
      probe_at_ = now + cooldown_;
    }
    return tripped;
  }

  State state() const noexcept { return state_; }

 private:
  std::uint32_t threshold_;
  std::uint64_t cooldown_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint64_t probe_at_ = 0;
};

/// Separate accounting for everything recovery did beyond the fault-free
/// schedule. `recovery` is a full QueryStats: failed sequential attempts
/// charged per machine, failed collective rounds to parallel_rounds —
/// exactly the shape of the primary ledger, so the two add and audit the
/// same way (cross-checked by dqs_chaos: failed_attempts equals the
/// recovery ledger's total, injected_faults equals the plan size).
struct RecoveryLedger {
  QueryStats recovery;                     ///< failed/re-issued attempts
  std::uint64_t injected_faults = 0;       ///< plan activations, total
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_delays = 0;
  std::uint64_t injected_crashes = 0;
  std::uint64_t injected_transients = 0;
  std::uint64_t failed_attempts = 0;       ///< == recovery ledger total
  std::uint64_t backoff_events = 0;        ///< logical events spent waiting
  std::uint64_t breaker_opens = 0;
  std::uint64_t deferrals = 0;             ///< work-list slot displacements

  /// Fold another ledger into this one (long-lived servers accumulate the
  /// recovery cost of every faulted preparation; the per-machine vectors
  /// grow to the wider of the two).
  void accumulate(const RecoveryLedger& other) {
    auto& seq = recovery.sequential_per_machine;
    const auto& other_seq = other.recovery.sequential_per_machine;
    if (seq.size() < other_seq.size()) seq.resize(other_seq.size(), 0);
    for (std::size_t j = 0; j < other_seq.size(); ++j) seq[j] += other_seq[j];
    recovery.parallel_rounds += other.recovery.parallel_rounds;
    injected_faults += other.injected_faults;
    injected_drops += other.injected_drops;
    injected_delays += other.injected_delays;
    injected_crashes += other.injected_crashes;
    injected_transients += other.injected_transients;
    failed_attempts += other.failed_attempts;
    backoff_events += other.backoff_events;
    breaker_opens += other.breaker_opens;
    deferrals += other.deferrals;
  }

  friend bool operator==(const RecoveryLedger&,
                         const RecoveryLedger&) = default;
};

}  // namespace qs
