#include "faults/recovery.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "faults/faulty_transport.hpp"
#include "sampling/fault_seam.hpp"
#include "sampling/schedule.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace qs {

namespace {

/// Telemetry instruments of the fault subsystem (docs/ROBUSTNESS.md):
/// injected-fault counters by kind, the retry-attempt histogram recorded
/// per recovered event, and the open-breaker gauge maintained while the
/// recovery planner runs.
struct FaultInstruments {
  telemetry::Counter& drops = telemetry::counter("faults.injected.drop");
  telemetry::Counter& delays = telemetry::counter("faults.injected.delay");
  telemetry::Counter& crashes = telemetry::counter("faults.injected.crash");
  telemetry::Counter& transients =
      telemetry::counter("faults.injected.transient");
  telemetry::Counter& failed =
      telemetry::counter("faults.recovery.failed_attempts");
  telemetry::Counter& breaker_opens = telemetry::counter("breaker.opens");
  telemetry::Gauge& breaker_open = telemetry::gauge("breaker.open");
  telemetry::Histogram& attempts = telemetry::histogram("retry.attempts");
};

FaultInstruments& fault_instruments() {
  static FaultInstruments instruments;
  return instruments;
}

/// One schedule slot with its position in the canonical (fault-free)
/// schedule, for diagnostics and displacement marking.
struct Slot {
  TranscriptEvent event;
  std::size_t canonical_index = 0;
};

enum class LandResult : std::uint8_t { kOk, kDeferred, kFailed };

class RecoveryPlanner {
 public:
  RecoveryPlanner(const Transcript& schedule, std::size_t machines,
                  AttemptSession& transport, const RetryPolicy& policy)
      : schedule_(schedule),
        machines_(machines),
        policy_(policy),
        transport_(transport),
        breakers_(machines, CircuitBreaker(policy)) {
    outcome_.ledger.recovery.sequential_per_machine.assign(machines, 0);
  }

  RecoveryOutcome run() {
    // Segment the schedule: maximal runs of same-direction sequential
    // events are C / C† blocks (Lemma 4.2); each parallel round is its own
    // order-fixed unit. Only forward C blocks have reorder freedom.
    const auto& events = schedule_.events();
    std::size_t i = 0;
    bool failed = false;
    while (i < events.size() && !failed) {
      if (events[i].kind == QueryKind::kParallelRound) {
        failed = !execute_ordered({Slot{events[i], i}});
        ++i;
        continue;
      }
      const bool adjoint = events[i].adjoint;
      std::vector<Slot> segment;
      while (i < events.size() &&
             events[i].kind == QueryKind::kSequential &&
             events[i].adjoint == adjoint) {
        segment.push_back(Slot{events[i], i});
        ++i;
      }
      failed = adjoint ? !execute_adjoint_block(segment)
                       : !execute_forward_block(segment);
    }
    close_breaker_gauge();
    outcome_.ledger.injected_faults = transport_.injected_total();
    // The process-level kinds fold into the transport-level buckets they
    // recover like: a torn frame is one lost reply, a killed or hung worker
    // is a crashed machine. Per-kind counts stay available on the session.
    outcome_.ledger.injected_drops =
        transport_.injected(FaultKind::kDropBundle) +
        transport_.injected(FaultKind::kTornFrame);
    outcome_.ledger.injected_delays = transport_.injected(FaultKind::kDelay);
    outcome_.ledger.injected_crashes =
        transport_.injected(FaultKind::kMachineCrash) +
        transport_.injected(FaultKind::kProcessKill) +
        transport_.injected(FaultKind::kProcessHang);
    outcome_.ledger.injected_transients =
        transport_.injected(FaultKind::kOracleTransient);
    outcome_.ok = !failed;
    return std::move(outcome_);
  }

 private:
  /// Forward C block: work-list scheduling against the surviving machine
  /// set. A slot whose machine is down (or breaker-open) is deferred and
  /// the rest of the block proceeds; when everything pending is blocked,
  /// the planner stalls with capped exponential backoff until a restart.
  bool execute_forward_block(const std::vector<Slot>& canonical) {
    std::vector<Slot> pending = canonical;
    std::vector<TranscriptEvent> executed;
    const std::size_t out_base = outcome_.events.size();
    std::uint64_t stall_rounds = 0;
    std::uint64_t stalled = 0;
    while (!pending.empty()) {
      bool progressed = false;
      for (std::size_t idx = 0; idx < pending.size();) {
        RecoveredEvent ev{pending[idx].event};
        const LandResult r =
            land(pending[idx], /*may_defer=*/pending.size() > 1, ev);
        if (r == LandResult::kOk) {
          outcome_.events.push_back(ev);
          executed.push_back(pending[idx].event);
          pending.erase(pending.begin() + idx);
          progressed = true;
          stall_rounds = 0;
        } else if (r == LandResult::kDeferred) {
          ++outcome_.ledger.deferrals;
          ++idx;
        } else {
          return false;
        }
      }
      if (!pending.empty() && !progressed) {
        ++stall_rounds;
        const std::uint64_t w = backoff(stall_rounds);
        transport_.wait(w);
        outcome_.ledger.backoff_events += w;
        stalled += w;
        if (stalled > policy_.max_wait_events) {
          return fail(pending.front(),
                      "every surviving machine path is blocked");
        }
      }
    }
    // Mark displacement against the canonical block order and remember the
    // executed order so the matching C† block can mirror it (LIFO nesting).
    for (std::size_t k = 0; k < executed.size(); ++k) {
      outcome_.events[out_base + k].displaced =
          executed[k].machine != canonical[k].event.machine;
    }
    forward_orders_.push_back(std::move(executed));
    return true;
  }

  /// C† block: the adjoint of a reordered C block must execute in the
  /// exact reverse of the order C actually ran (the verifier's pushdown
  /// adjoint-nesting invariant), so there is no reorder freedom here —
  /// a blocked machine is waited out under the backoff policy.
  bool execute_adjoint_block(const std::vector<Slot>& canonical) {
    std::vector<Slot> order = canonical;
    if (!forward_orders_.empty() &&
        forward_orders_.back().size() == canonical.size() &&
        same_machine_multiset(forward_orders_.back(), canonical)) {
      const auto forward = std::move(forward_orders_.back());
      forward_orders_.pop_back();
      for (std::size_t k = 0; k < canonical.size(); ++k) {
        order[k].event.machine =
            forward[forward.size() - 1 - k].machine;
        order[k].event.adjoint = true;
      }
    }
    const std::size_t out_base = outcome_.events.size();
    if (!execute_ordered(order)) return false;
    for (std::size_t k = 0; k < order.size(); ++k) {
      outcome_.events[out_base + k].displaced =
          order[k].event.machine != canonical[k].event.machine;
    }
    return true;
  }

  bool execute_ordered(const std::vector<Slot>& order) {
    for (const Slot& slot : order) {
      RecoveredEvent ev{slot.event};
      const LandResult r = land(slot, /*may_defer=*/false, ev);
      if (r != LandResult::kOk) return false;
      outcome_.events.push_back(ev);
    }
    return true;
  }

  /// Retry loop for one primary event. In deferrable (work-list) mode a
  /// down machine or open breaker yields the slot back immediately; in
  /// ordered mode the planner waits it out. Every failed attempt is
  /// charged to the recovery ledger; waits are bounded by
  /// policy.max_wait_events.
  LandResult land(const Slot& slot, bool may_defer, RecoveredEvent& out) {
    const bool sequential = slot.event.kind == QueryKind::kSequential;
    const std::size_t target = slot.event.machine;
    const std::uint64_t injected_before = transport_.injected_total();
    std::uint32_t attempts = 0;
    std::uint32_t failures = 0;
    std::uint64_t waited = 0;
    while (true) {
      if (blocked_by_breaker(slot)) {
        if (may_defer) return LandResult::kDeferred;
        ++failures;
        if (!back_off(failures, waited)) {
          return fail_result(slot, "circuit breaker held open too long");
        }
        continue;
      }
      const Attempt attempt = sequential
                                  ? transport_.attempt_sequential(target)
                                  : transport_.attempt_parallel_round();
      ++attempts;
      if (attempt.result == AttemptResult::kOk) {
        note_success(slot);
        out.attempts = attempts;
        out.waited = waited;
        out.injected = static_cast<std::uint32_t>(
            transport_.injected_total() - injected_before);
        return LandResult::kOk;
      }
      ++outcome_.ledger.failed_attempts;
      if (sequential) {
        ++outcome_.ledger.recovery.sequential_per_machine[target];
      } else {
        ++outcome_.ledger.recovery.parallel_rounds;
      }
      ++failures;
      note_failure(sequential ? target : attempt.machine, attempt.result);
      if (may_defer &&
          (attempt.result == AttemptResult::kMachineDown ||
           attempts >= policy_.max_attempts)) {
        return LandResult::kDeferred;
      }
      if (!back_off(failures, waited)) {
        return fail_result(slot, std::string("retries exhausted after a ") +
                                     to_string_result(attempt.result) +
                                     " fault");
      }
    }
  }

  static const char* to_string_result(AttemptResult r) {
    switch (r) {
      case AttemptResult::kOk: return "ok";
      case AttemptResult::kDropped: return "dropped-bundle";
      case AttemptResult::kMachineDown: return "machine-down";
      case AttemptResult::kTransient: return "transient-oracle";
    }
    return "unknown";
  }

  std::uint64_t backoff(std::uint64_t consecutive) const {
    const std::uint64_t shift = std::min<std::uint64_t>(consecutive - 1, 20);
    const std::uint64_t w =
        std::min(policy_.backoff_max, policy_.backoff_base << shift);
    return std::max<std::uint64_t>(w, 1);  // always advance the clock
  }

  /// One deterministic exponential backoff step; false once the per-event
  /// wait budget is exhausted.
  bool back_off(std::uint32_t failures, std::uint64_t& waited) {
    const std::uint64_t w = backoff(failures);
    transport_.wait(w);
    outcome_.ledger.backoff_events += w;
    waited += w;
    return waited <= policy_.max_wait_events;
  }

  bool blocked_by_breaker(const Slot& slot) {
    if (slot.event.kind == QueryKind::kSequential) {
      return !breakers_[slot.event.machine].allows(transport_.clock());
    }
    for (std::size_t j = 0; j < machines_; ++j) {
      if (!breakers_[j].allows(transport_.clock())) return true;
    }
    return false;
  }

  void note_success(const Slot& slot) {
    if (slot.event.kind == QueryKind::kSequential) {
      note_closed(slot.event.machine);
    } else {
      // A completed collective round proves every machine answered.
      for (std::size_t j = 0; j < machines_; ++j) note_closed(j);
    }
  }

  void note_closed(std::size_t machine) {
    const bool was_open =
        breakers_[machine].state() != CircuitBreaker::State::kClosed;
    breakers_[machine].on_success();
    if (was_open && open_breakers_ > 0) {
      --open_breakers_;
      fault_instruments().breaker_open.add(-1);
    }
  }

  void note_failure(std::size_t machine, AttemptResult result) {
    // Round-level drop/transient faults are not attributable to one
    // machine; only machine-down (and sequential) failures feed breakers.
    if (machine >= machines_ ||
        (result != AttemptResult::kMachineDown &&
         result != AttemptResult::kDropped &&
         result != AttemptResult::kTransient)) {
      return;
    }
    if (breakers_[machine].on_failure(transport_.clock())) {
      ++outcome_.ledger.breaker_opens;
      ++open_breakers_;
      fault_instruments().breaker_opens.add();
      fault_instruments().breaker_open.add(1);
    }
  }

  /// The gauge tracks breakers open DURING planning; planning is over, so
  /// return its contribution to zero (half-open breakers included).
  void close_breaker_gauge() {
    if (open_breakers_ > 0) {
      fault_instruments().breaker_open.add(
          -static_cast<std::int64_t>(open_breakers_));
      open_breakers_ = 0;
    }
  }

  bool fail(const Slot& slot, const std::string& why) {
    fail_result(slot, why);
    return false;
  }

  LandResult fail_result(const Slot& slot, const std::string& why) {
    outcome_.failure =
        "recovery exhausted at schedule event " +
        std::to_string(slot.canonical_index) +
        (slot.event.kind == QueryKind::kSequential
             ? " (machine " + std::to_string(slot.event.machine) + ")"
             : std::string(" (collective round)")) +
        ": " + why + " within max_wait_events=" +
        std::to_string(policy_.max_wait_events);
    outcome_.failed_event = slot.canonical_index;
    return LandResult::kFailed;
  }

  static bool same_machine_multiset(const std::vector<TranscriptEvent>& a,
                                    const std::vector<Slot>& b) {
    std::vector<std::size_t> ma, mb;
    ma.reserve(a.size());
    mb.reserve(b.size());
    for (const auto& e : a) ma.push_back(e.machine);
    for (const auto& s : b) mb.push_back(s.event.machine);
    std::sort(ma.begin(), ma.end());
    std::sort(mb.begin(), mb.end());
    return ma == mb;
  }

  const Transcript& schedule_;
  std::size_t machines_;
  RetryPolicy policy_;
  AttemptSession& transport_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<std::vector<TranscriptEvent>> forward_orders_;
  std::uint64_t open_breakers_ = 0;
  RecoveryOutcome outcome_;
};

/// Replays the recovered order through the sampling layer's oracle seam:
/// the circuit asks for the canonical slot, the interposer substitutes the
/// recovered slot and emits the per-event telemetry. The backend still
/// performs the application, transcript recording and query accounting.
class ReplayInterposer final : public OracleInterposer {
 public:
  explicit ReplayInterposer(const RecoveryOutcome& outcome)
      : events_(outcome.events) {}

  std::size_t on_sequential(std::size_t scheduled, bool adjoint) override {
    const RecoveredEvent& ev = next(QueryKind::kSequential, adjoint);
    (void)scheduled;  // the recovered order is authoritative for this slot
    return ev.event.machine;
  }

  void on_parallel_round(bool adjoint) override {
    next(QueryKind::kParallelRound, adjoint);
  }

  std::size_t consumed() const noexcept { return cursor_; }

 private:
  const RecoveredEvent& next(QueryKind kind, bool adjoint) {
    QS_REQUIRE(cursor_ < events_.size(),
               "recovered schedule exhausted: the circuit executed more "
               "oracle events than recovery planned");
    const RecoveredEvent& ev = events_[cursor_];
    QS_REQUIRE(ev.event.kind == kind && ev.event.adjoint == adjoint,
               "recovered schedule out of step with the circuit at event " +
                   std::to_string(cursor_));
    fault_instruments().attempts.record(ev.attempts);
    if (ev.injected > 0 || ev.attempts > 1 || ev.displaced) {
      // Aligns with the schedule.<op> spans (docs/TELEMETRY.md): the event
      // tag is the recovered transcript index dqs_verify diagnostics use.
      telemetry::Span span("faults.recovery.event");
      span.tag("event", static_cast<std::int64_t>(cursor_));
      span.tag("attempts", ev.attempts);
      span.tag("injected", ev.injected);
      span.tag("displaced", ev.displaced ? 1 : 0);
    }
    ++cursor_;
    return ev;
  }

  const std::vector<RecoveredEvent>& events_;
  std::size_t cursor_ = 0;
};

void emit_ledger_counters(const RecoveryLedger& ledger) {
  auto& instruments = fault_instruments();
  instruments.drops.add(ledger.injected_drops);
  instruments.delays.add(ledger.injected_delays);
  instruments.crashes.add(ledger.injected_crashes);
  instruments.transients.add(ledger.injected_transients);
  instruments.failed.add(ledger.failed_attempts);
}

}  // namespace

RecoveryOutcome plan_recovery(const Transcript& schedule,
                              std::size_t machines, const FaultPlan& plan,
                              const RetryPolicy& policy) {
  FaultyTransportSession transport(machines, plan);
  return plan_recovery(schedule, machines, transport, policy);
}

RecoveryOutcome plan_recovery(const Transcript& schedule,
                              std::size_t machines, AttemptSession& transport,
                              const RetryPolicy& policy) {
  QS_REQUIRE(machines >= 1, "recovery needs at least one machine");
  QS_REQUIRE(policy.max_wait_events >= 1,
             "retry policy needs a positive wait budget");
  static auto& t_ns = telemetry::histogram("faults.plan_recovery.ns");
  telemetry::Span span("faults.plan_recovery", &t_ns);
  span.tag("events", static_cast<std::int64_t>(schedule.size()));
  RecoveryPlanner planner(schedule, machines, transport, policy);
  return planner.run();
}

analysis::RecoveredSchedule to_recovered_schedule(
    const RecoveryOutcome& outcome) {
  QS_REQUIRE(outcome.ok, "cannot lift a failed recovery for analysis");
  analysis::RecoveredSchedule r;
  r.events.reserve(outcome.events.size());
  r.attempts.reserve(outcome.events.size());
  r.displaced.reserve(outcome.events.size());
  for (const auto& e : outcome.events) {
    r.events.push_back(e.event);
    r.attempts.push_back(e.attempts);
    r.displaced.push_back(e.displaced ? 1 : 0);
  }
  r.retry = outcome.ledger.recovery;
  r.failed_attempts = outcome.ledger.failed_attempts;
  r.backoff_events = outcome.ledger.backoff_events;
  return r;
}

FaultedRun run_sampler_with_faults(const DistributedDatabase& db,
                                   QueryMode mode, const FaultPlan& plan,
                                   const RetryPolicy& policy,
                                   const SamplerOptions& options) {
  static auto& t_ns = telemetry::histogram("faults.recovered_run.ns");
  telemetry::Span span("faults.recovered_run", &t_ns);
  const Transcript schedule = compile_schedule(db, mode);
  RecoveryOutcome recovery =
      plan_recovery(schedule, db.num_machines(), plan, policy);
  emit_ledger_counters(recovery.ledger);
  return run_recovered_sampler(db, mode, std::move(recovery), options);
}

FaultedRun run_recovered_sampler(const DistributedDatabase& db,
                                 QueryMode mode, RecoveryOutcome recovery,
                                 const SamplerOptions& options) {
  FaultedRun run;
  run.recovery = std::move(recovery);
  if (!run.recovery.ok) return run;
  ReplayInterposer replay(run.recovery);
  OracleInterposerScope scope(replay);
  run.result = mode == QueryMode::kSequential
                   ? run_sequential_sampler(db, options)
                   : run_parallel_sampler(db, options);
  QS_REQUIRE(replay.consumed() == run.recovery.events.size(),
             "circuit executed fewer oracle events than recovery planned");
  return run;
}

}  // namespace qs
