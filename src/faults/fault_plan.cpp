#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace qs {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropBundle: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kMachineCrash: return "crash";
    case FaultKind::kOracleTransient: return "transient";
    case FaultKind::kProcessKill: return "kill";
    case FaultKind::kProcessHang: return "hang";
    case FaultKind::kTornFrame: return "torn";
  }
  return "unknown";
}

namespace {

bool plan_order(const FaultEvent& a, const FaultEvent& b) {
  if (a.event != b.event) return a.event < b.event;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.machine < b.machine;
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  for (const auto& e : events_) {
    const bool durable =
        e.kind == FaultKind::kMachineCrash || e.kind == FaultKind::kDelay ||
        e.kind == FaultKind::kProcessKill || e.kind == FaultKind::kProcessHang;
    QS_REQUIRE(!durable || e.duration >= 1,
               std::string("fault plan: ") + qs::to_string(e.kind) +
                   " needs duration >= 1 schedule event");
  }
  std::stable_sort(events_.begin(), events_.end(), plan_order);
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint64_t schedule_events,
                            std::size_t machines,
                            const FaultProfile& profile) {
  QS_REQUIRE(machines >= 1, "fault plan needs at least one machine");
  Rng rng(seed);
  std::vector<FaultEvent> events;
  for (std::uint64_t slot = 0; slot < schedule_events; ++slot) {
    // One roll per slot against the cumulative profile — at most one fault
    // per primary event, so plan size is bounded by the schedule length and
    // the injected-fault count is trivially auditable.
    const double roll = rng.uniform01();
    double edge = profile.drop_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kDropBundle, 0, 0});
      continue;
    }
    edge += profile.delay_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kDelay, 0,
                        1 + rng.uniform_below(profile.max_delay)});
      continue;
    }
    edge += profile.crash_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kMachineCrash,
                        static_cast<std::size_t>(rng.uniform_below(machines)),
                        1 + rng.uniform_below(profile.max_crash_duration)});
      continue;
    }
    edge += profile.transient_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kOracleTransient, 0, 0});
      continue;
    }
    // Process-level edges come last so the default (all-zero) rates leave
    // every seed's plan byte-identical to what it was before these kinds
    // existed.
    edge += profile.process_kill_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kProcessKill,
                        static_cast<std::size_t>(rng.uniform_below(machines)),
                        1 + rng.uniform_below(profile.max_crash_duration)});
      continue;
    }
    edge += profile.process_hang_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kProcessHang,
                        static_cast<std::size_t>(rng.uniform_below(machines)),
                        1 + rng.uniform_below(profile.max_crash_duration)});
      continue;
    }
    edge += profile.torn_frame_rate;
    if (roll < edge) {
      events.push_back({slot, FaultKind::kTornFrame, 0, 0});
    }
  }
  return FaultPlan(std::move(events));
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "# dqs-fault-plan-v1\n";
  for (const auto& e : events_) {
    os << qs::to_string(e.kind) << " event=" << e.event
       << " machine=" << e.machine << " duration=" << e.duration << '\n';
  }
  return os.str();
}

namespace {

std::uint64_t parse_u64_field(const std::string& token, const char* key,
                              std::size_t line) {
  const std::string prefix = std::string(key) + "=";
  QS_REQUIRE(token.rfind(prefix, 0) == 0,
             "fault plan line " + std::to_string(line) + ": expected " +
                 prefix + "<n>, got '" + token + "'");
  const std::string digits = token.substr(prefix.size());
  QS_REQUIRE(!digits.empty(), "fault plan line " + std::to_string(line) +
                                  ": empty value for " + key);
  std::uint64_t value = 0;
  for (const char c : digits) {
    QS_REQUIRE(std::isdigit(static_cast<unsigned char>(c)) != 0,
               "fault plan line " + std::to_string(line) +
                   ": malformed value '" + digits + "' for " + key);
    QS_REQUIRE(value <= (~std::uint64_t{0} - 9) / 10,
               "fault plan line " + std::to_string(line) + ": value for " +
                   std::string(key) + " overflows");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  std::vector<FaultEvent> events;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string kind_token;
    if (!(ls >> kind_token) || kind_token[0] == '#') continue;
    FaultEvent e;
    if (kind_token == "drop") {
      e.kind = FaultKind::kDropBundle;
    } else if (kind_token == "delay") {
      e.kind = FaultKind::kDelay;
    } else if (kind_token == "crash") {
      e.kind = FaultKind::kMachineCrash;
    } else if (kind_token == "transient") {
      e.kind = FaultKind::kOracleTransient;
    } else if (kind_token == "kill") {
      e.kind = FaultKind::kProcessKill;
    } else if (kind_token == "hang") {
      e.kind = FaultKind::kProcessHang;
    } else if (kind_token == "torn") {
      e.kind = FaultKind::kTornFrame;
    } else {
      QS_REQUIRE(false, "fault plan line " + std::to_string(lineno) +
                            ": unknown fault kind '" + kind_token + "'");
    }
    std::string field;
    QS_REQUIRE(static_cast<bool>(ls >> field),
               "fault plan line " + std::to_string(lineno) +
                   ": missing event= field");
    e.event = parse_u64_field(field, "event", lineno);
    QS_REQUIRE(static_cast<bool>(ls >> field),
               "fault plan line " + std::to_string(lineno) +
                   ": missing machine= field");
    e.machine = static_cast<std::size_t>(
        parse_u64_field(field, "machine", lineno));
    QS_REQUIRE(static_cast<bool>(ls >> field),
               "fault plan line " + std::to_string(lineno) +
                   ": missing duration= field");
    e.duration = parse_u64_field(field, "duration", lineno);
    QS_REQUIRE(!(ls >> field), "fault plan line " + std::to_string(lineno) +
                                   ": trailing token '" + field + "'");
    events.push_back(e);
  }
  return FaultPlan(std::move(events));
}

}  // namespace qs
