// Recovery planning and fault-tolerant sampler execution.
//
// The key structural fact (Lemma 4.2): within one C block of the
// distributing operator the sequential oracles O_1 … O_n are commuting
// EXACT permutations of the amplitude vector — |i, s⟩ → |i, s + c_ij mod
// (ν+1)⟩ involves no floating point — so the coordinator may execute a C
// block's queries in ANY order, and zero-error AA makes a re-issued query
// round exactly re-executable. Recovery exploits both:
//
//   * plan_recovery() dry-runs the schedule against a FaultyTransportSession
//     (no amplitudes touched): failed attempts retry with deterministic
//     exponential backoff; a crashed machine's slot is DEFERRED within its
//     C block — the remaining block schedule is recompiled against the
//     surviving machine set as a work list — and the matching C† block
//     replays the exact reverse order, preserving the verifier's LIFO
//     adjoint-nesting invariant. Order-fixed segments (adjoint blocks,
//     parallel rounds) wait out the crash under the same backoff policy.
//
//   * run_sampler_with_faults() then executes the real sampler once,
//     replaying the recovered order through the sampling layer's oracle
//     seam (sampling/fault_seam.hpp). Failed attempts never touch the
//     state, every event executes exactly once, and permuted events
//     commute exactly — so the final statevector, the samples, the primary
//     transcript's QueryStats and the per-machine load are BIT-IDENTICAL
//     to the fault-free run (asserted per grid point by tools/dqs_chaos).
//
// plan_recovery is a pure function of (schedule, machines, plan, policy) —
// it never sees the database — so recovery preserves obliviousness by
// construction: the recovered schedule is still a function of public
// knowledge plus the (public) fault plan. All retry cost lands in the
// RecoveryLedger, keeping the primary Thm 4.3/4.5 budget auditable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/abstint/recovered.hpp"
#include "distdb/transcript.hpp"
#include "faults/fault_plan.hpp"
#include "faults/retry.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct RecoveredEvent {
  TranscriptEvent event;        ///< what actually executes at this slot
  std::uint32_t attempts = 1;   ///< attempts consumed, including success
  std::uint64_t waited = 0;     ///< backoff events spent landing this slot
  std::uint32_t injected = 0;   ///< plan activations while landing it
  bool displaced = false;       ///< executed out of canonical block order
};

struct RecoveryOutcome {
  bool ok = false;
  /// The recovered primary schedule: same multiset of events as the input
  /// schedule, per-C-block permutations only, adjoint blocks mirrored.
  std::vector<RecoveredEvent> events;
  RecoveryLedger ledger;
  /// When !ok: what exhausted recovery, naming machine and event index.
  std::string failure;
  std::optional<std::size_t> failed_event;  ///< canonical schedule index
};

/// Dry-run fault recovery for `schedule` (database never consulted).
/// Deterministic: same inputs ⇒ same outcome, bit for bit.
RecoveryOutcome plan_recovery(const Transcript& schedule,
                              std::size_t machines, const FaultPlan& plan,
                              const RetryPolicy& policy);

class AttemptSession;  // faults/faulty_transport.hpp

/// As above, but driving a caller-supplied attempt session — this is how the
/// ipc chaos harness runs the SAME planner over real worker processes
/// (faults/ipc_chaos.hpp): the planner's decisions depend only on the
/// Attempt results and the session's logical clock, so a session that
/// mirrors FaultyTransportSession's clock semantics yields an identical
/// recovered schedule.
RecoveryOutcome plan_recovery(const Transcript& schedule,
                              std::size_t machines, AttemptSession& transport,
                              const RetryPolicy& policy);

struct FaultedRun {
  /// Engaged iff recovery succeeded; then bit-identical to the fault-free
  /// sampler result for the same database and options.
  std::optional<SamplerResult> result;
  RecoveryOutcome recovery;

  bool ok() const noexcept { return result.has_value(); }
};

/// Project a successful recovery onto the analyzer's recovered-schedule
/// view: the executed event order plus the per-event retry metadata and the
/// ledger's retry cost, ready for analysis::lift_recovered /
/// analysis::certify_recovered. Requires outcome.ok.
analysis::RecoveredSchedule to_recovered_schedule(
    const RecoveryOutcome& outcome);

/// Plan recovery for the database's compiled schedule and, if it succeeds,
/// run the real sampler once with the recovered order replayed through the
/// oracle seam. Emits the faults.injected.* counters, the retry.attempts
/// histogram, the faults.breaker.open gauge and per-faulted-event trace
/// spans tagged with the recovered event index.
FaultedRun run_sampler_with_faults(const DistributedDatabase& db,
                                   QueryMode mode, const FaultPlan& plan,
                                   const RetryPolicy& policy,
                                   const SamplerOptions& options = {});

/// Execute the real sampler once with an ALREADY-PLANNED recovery replayed
/// through the oracle seam (the second half of run_sampler_with_faults).
/// The ipc chaos harness uses this to replay a recovery planned over real
/// worker processes — with options.channel set, the replayed oracles move
/// amplitudes over the sockets. Returns recovery unexecuted when !ok.
FaultedRun run_recovered_sampler(const DistributedDatabase& db,
                                 QueryMode mode, RecoveryOutcome recovery,
                                 const SamplerOptions& options = {});

}  // namespace qs
