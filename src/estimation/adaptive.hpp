// A NON-oblivious (adaptive) sampler — probing the paper's Section 6
// conjecture that adaptivity does not reduce query complexity.
//
// Strategy: spend a small probe budget estimating each machine's load M_j
// (quantum counting against that machine alone), then run the sequential
// sampler QUERYING ONLY the machines believed non-empty. The schedule now
// depends on the data — exactly what the oblivious model forbids.
//
// What the experiment (T11) shows: the saving is a factor
// n / n_active in the SEQUENTIAL query count — it never touches the
// √(νN/M) term, consistent with the conjecture that the Grover-type barrier
// is adaptivity-independent (our Section 5 machinery proves the barrier for
// oblivious schedules only). And the probe phase itself costs queries, so
// on databases with no empty machines adaptivity strictly loses.
//
// Correctness is conditional on the probes: a machine wrongly classified
// as empty silently drops its data from the output state. The result
// reports both the realised fidelity and the misclassification count so
// the trade-off is visible.
#pragma once

#include <cstdint>
#include <vector>

#include "estimation/amplitude_estimation.hpp"
#include "sampling/samplers.hpp"

namespace qs {

struct AdaptiveResult {
  SamplerResult sampling;            ///< run over the active machines only
  std::vector<bool> machine_active;  ///< probe verdicts
  std::uint64_t probe_cost = 0;      ///< oracle queries spent probing
  std::size_t misclassified = 0;     ///< non-empty machines judged empty
  /// Total cost (probes + sampling queries) for comparing against the
  /// oblivious sampler.
  std::uint64_t total_cost() const {
    return probe_cost + sampling.stats.total_sequential();
  }

  /// Per-sample cost when the probe phase is AMORTISED over `samples`
  /// repeated sampling runs (probe once, sample many — the regime where
  /// adaptivity can pay, because reliable emptiness detection itself costs
  /// Grover-order queries per machine).
  double amortized_cost(std::size_t samples) const {
    return static_cast<double>(probe_cost) / static_cast<double>(samples) +
           static_cast<double>(sampling.stats.total_sequential());
  }
};

/// Probe every machine with `probe_schedule`, drop machines whose estimated
/// load is below `emptiness_threshold`, then run the sequential sampler on
/// the survivors (planning from the public M, which stays valid when the
/// probes are right).
AdaptiveResult run_adaptive_sampler(const DistributedDatabase& db,
                                    const AeSchedule& probe_schedule,
                                    Rng& rng,
                                    double emptiness_threshold = 0.5,
                                    StatePrep prep = StatePrep::kHouseholder);

}  // namespace qs
